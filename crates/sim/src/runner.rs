//! One-call experiment driver: (program, configuration) → [`Metrics`].
//!
//! Sweeps (fig6/fig7/fig8, property tests) run hundreds of
//! (configuration, workload) pairs. Building a [`Cluster`] allocates 16
//! L1s, 32 L2 banks, and re-derives the interconnect's physical models;
//! [`ClusterPool`] amortises all of that by caching one cluster per
//! configuration and [`Cluster::reset`]-ing it between runs. [`run_spec`]
//! uses a thread-local pool, so every caller — including each worker
//! thread of `mot3d-bench`'s parallel harness — gets the reuse for free
//! while staying bit-deterministic.

use crate::cluster::Cluster;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::Metrics;
use crate::observe::Observer;
use mot3d_phys::fnv::FnvHashMap;
use mot3d_workloads::{streams, SplashBenchmark, WorkloadSource, WorkloadSpec};
use std::cell::RefCell;
use std::collections::hash_map::Entry;

/// One cached cluster plus the recency tick of its last run.
#[derive(Debug)]
struct PooledCluster {
    cluster: Cluster,
    last_used: u64,
}

/// A cache of reusable clusters, keyed by configuration, with an
/// optional LRU capacity bound.
///
/// By default the pool is **unbounded**: it caches one cluster per
/// *distinct* [`SimConfig`] it has ever run, and a cluster (16 L1s + 32
/// L2 banks + interconnect state) is megabytes of arrays. The paper's
/// canned sweeps touch at most a handful of configurations per worker
/// thread, so growth is naturally capped there — but a long ad-hoc
/// sweep over many axes (seeds, DRAM options, power states, page
/// policies), and especially a long-running sweep *service* executing
/// arbitrary client plans, accumulates one cluster for *every* grid
/// cell it visits. Such callers either set a capacity
/// ([`ClusterPool::with_capacity`] / [`ClusterPool::set_capacity`], or
/// [`set_local_pool_capacity`] for the thread-local pool behind
/// [`run_spec`]) so the least-recently-used cluster is evicted on
/// overflow, or [`ClusterPool::shrink_to`] between sweeps.
///
/// Eviction never affects results: a dropped configuration is rebuilt
/// bit-identically on its next run. The eviction *order* is
/// deterministic too (strictly increasing run ticks, least recent
/// first), so a capped pool behaves identically run-to-run.
///
/// # Examples
///
/// ```
/// use mot3d_sim::runner::ClusterPool;
/// use mot3d_sim::SimConfig;
/// use mot3d_workloads::SplashBenchmark;
///
/// let mut pool = ClusterPool::new();
/// let cfg = SimConfig::date16();
/// let a = pool.run_spec(&SplashBenchmark::Fft.spec().scaled(0.002), &cfg)?;
/// // Second run reuses (resets) the cached cluster: bit-identical result.
/// let b = pool.run_spec(&SplashBenchmark::Fft.spec().scaled(0.002), &cfg)?;
/// assert_eq!(a.cycles, b.cycles);
/// assert_eq!(pool.len(), 1);
///
/// // Long ad-hoc sweeps bound the cache between phases:
/// pool.shrink_to(0);
/// assert!(pool.is_empty());
///
/// // Long-running services bound it up front instead:
/// let mut capped = ClusterPool::with_capacity(2);
/// assert_eq!(capped.capacity(), Some(2));
/// # Ok::<(), mot3d_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct ClusterPool {
    clusters: FnvHashMap<SimConfig, PooledCluster>,
    /// Monotonic run counter backing the LRU order.
    tick: u64,
    /// Maximum cached configurations (`None` = unbounded, the default).
    capacity: Option<usize>,
}

impl ClusterPool {
    /// An empty, unbounded pool (today's default behaviour).
    pub fn new() -> Self {
        ClusterPool::default()
    }

    /// An empty pool that caches at most `capacity` configurations,
    /// evicting the least recently used on overflow. A capacity of 0
    /// caches nothing (every run builds a fresh cluster).
    pub fn with_capacity(capacity: usize) -> Self {
        ClusterPool {
            capacity: Some(capacity),
            ..ClusterPool::default()
        }
    }

    /// The current capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Changes the capacity bound, evicting least-recently-used
    /// clusters immediately if the pool already exceeds it. `None`
    /// removes the bound.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        if let Some(cap) = capacity {
            self.shrink_to(cap);
        }
    }

    /// Number of distinct configurations currently cached.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the pool holds no clusters yet.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Whether a cluster for `config` is currently cached (test and
    /// instrumentation hook; a miss is not an error).
    pub fn contains(&self, config: &SimConfig) -> bool {
        self.clusters.contains_key(config)
    }

    /// Drops every cached cluster (frees their cache arrays).
    pub fn clear(&mut self) {
        self.clusters.clear();
    }

    /// Drops least-recently-used clusters until at most `n`
    /// configurations remain.
    ///
    /// Correctness never depends on which clusters survive — a dropped
    /// configuration is simply rebuilt on its next run, bit-identically
    /// — but the order is deterministic: least recent first. Call this
    /// between the phases of a long ad-hoc sweep so the pool does not
    /// hold every configuration it has ever seen alive (see the
    /// type-level docs), or set a capacity once instead.
    pub fn shrink_to(&mut self, n: usize) {
        if n == 0 {
            self.clusters.clear();
            return;
        }
        while self.clusters.len() > n {
            self.evict_lru();
        }
    }

    /// Removes the entry with the smallest recency tick. Ticks are
    /// strictly increasing, so the minimum is unique and the choice is
    /// deterministic whatever the map's iteration order.
    fn evict_lru(&mut self) {
        let lru = self
            .clusters
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(&key, _)| key);
        if let Some(key) = lru {
            self.clusters.remove(&key);
        }
    }

    /// Runs a workload spec on a cluster configuration to completion,
    /// reusing (or creating) the pooled cluster for that configuration
    /// and marking it most recently used.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from construction, reset, or the run.
    pub fn run_spec(
        &mut self,
        spec: &WorkloadSpec,
        config: &SimConfig,
    ) -> Result<Metrics, SimError> {
        let active = config.power_state.active_cores();
        let fresh = streams(spec, active, config.seed);
        self.tick += 1;
        let tick = self.tick;
        if self.capacity == Some(0) {
            // Degenerate bound: never cache, run on a throwaway cluster.
            let mut cluster = Cluster::new(*config, fresh)?;
            return Self::finish_run(&mut cluster, spec, config);
        }
        let cluster = match self.clusters.entry(*config) {
            Entry::Occupied(e) => {
                let entry = e.into_mut();
                entry.cluster.reset(fresh)?;
                entry.last_used = tick;
                &mut entry.cluster
            }
            Entry::Vacant(v) => {
                let entry = v.insert(PooledCluster {
                    cluster: Cluster::new(*config, fresh)?,
                    last_used: tick,
                });
                &mut entry.cluster
            }
        };
        let metrics = Self::finish_run(cluster, spec, config)?;
        if let Some(cap) = self.capacity {
            self.shrink_to(cap);
        }
        Ok(metrics)
    }

    /// Shared tail of a run: drive to completion, verify, label.
    fn finish_run(
        cluster: &mut Cluster,
        spec: &WorkloadSpec,
        config: &SimConfig,
    ) -> Result<Metrics, SimError> {
        cluster.run_to_completion()?;
        cluster.verify_against_golden();
        Ok(cluster.metrics(format!(
            "{} @ {} @ {} @ {}",
            spec.name, config.interconnect, config.power_state, config.dram
        )))
    }

    /// Runs a [`WorkloadSource`] at length `scale` on a configuration,
    /// resolving the source to its concrete spec first (see
    /// [`WorkloadSource::resolve`]). This is the entry point the
    /// declarative experiment plans use, so a plan axis can name any
    /// workload backend — synthetic preset today, trace-driven tomorrow.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from construction, reset, or the run.
    pub fn run_source(
        &mut self,
        source: &dyn WorkloadSource,
        scale: f64,
        config: &SimConfig,
    ) -> Result<Metrics, SimError> {
        self.run_spec(&source.resolve(scale), config)
    }
}

thread_local! {
    static POOL: RefCell<ClusterPool> = RefCell::new(ClusterPool::new());
}

/// Runs a workload spec on a cluster configuration to completion.
///
/// Reuses a thread-local [`ClusterPool`] under the hood: repeated calls
/// with the same configuration reset the cached cluster instead of
/// rebuilding it. Results are bit-identical to a fresh build either way.
///
/// # Errors
///
/// Propagates any [`SimError`] from construction or the run.
///
/// # Examples
///
/// ```
/// use mot3d_sim::{run_spec, SimConfig};
/// use mot3d_workloads::SplashBenchmark;
///
/// let spec = SplashBenchmark::Fft.spec().scaled(0.002); // tiny run
/// let m = run_spec(&spec, &SimConfig::date16())?;
/// assert!(m.cycles > 0);
/// assert!(m.ipc() > 0.0);
/// # Ok::<(), mot3d_sim::SimError>(())
/// ```
pub fn run_spec(spec: &WorkloadSpec, config: &SimConfig) -> Result<Metrics, SimError> {
    POOL.with(|pool| pool.borrow_mut().run_spec(spec, config))
}

/// [`run_spec`] with an [`Observer`] attached to the run loop — the
/// entry point `mot3d_trace` (and any other instrumentation) uses.
///
/// Runs on a **fresh** cluster rather than the thread-local pool: an
/// observed run is a deep dive, and skipping the pool keeps the
/// observer's timeline starting from the cluster's as-constructed state.
/// The simulation itself is bit-identical either way (a reset cluster
/// behaves exactly like a new one — pinned by the pool's own tests and
/// by `mot3d_trace`'s differential suite).
///
/// # Errors
///
/// Propagates any [`SimError`] from construction or the run.
pub fn run_spec_observed<O: Observer>(
    spec: &WorkloadSpec,
    config: &SimConfig,
    obs: &mut O,
) -> Result<Metrics, SimError> {
    let active = config.power_state.active_cores();
    let fresh = streams(spec, active, config.seed);
    let mut cluster = Cluster::new(*config, fresh)?;
    cluster.run_to_completion_with(obs)?;
    cluster.verify_against_golden();
    Ok(cluster.metrics(format!(
        "{} @ {} @ {} @ {}",
        spec.name, config.interconnect, config.power_state, config.dram
    )))
}

/// [`run_spec`] for a [`WorkloadSource`]: resolves the source at length
/// `scale` and runs it on the thread-local [`ClusterPool`].
///
/// # Errors
///
/// Propagates any [`SimError`] from construction or the run.
///
/// # Examples
///
/// ```
/// use mot3d_sim::{run_source, SimConfig};
/// use mot3d_workloads::SplashBenchmark;
///
/// let m = run_source(&SplashBenchmark::Fft, 0.002, &SimConfig::date16())?;
/// assert!(m.cycles > 0);
/// # Ok::<(), mot3d_sim::SimError>(())
/// ```
pub fn run_source(
    source: &dyn WorkloadSource,
    scale: f64,
    config: &SimConfig,
) -> Result<Metrics, SimError> {
    POOL.with(|pool| pool.borrow_mut().run_source(source, scale, config))
}

/// Shrinks the calling thread's [`run_spec`] cluster cache to at most
/// `n` configurations (see [`ClusterPool::shrink_to`]). Long-lived
/// threads that drive many distinct configurations — ad-hoc sweeps, REPL
/// sessions — call this between sweeps to bound memory.
pub fn shrink_local_pool(n: usize) {
    POOL.with(|pool| pool.borrow_mut().shrink_to(n));
}

/// Sets an LRU capacity bound on the calling thread's [`run_spec`]
/// cluster cache (see [`ClusterPool::set_capacity`]; `None` restores
/// the unbounded default). Long-running services whose worker threads
/// execute arbitrary client configurations set this once per thread so
/// the cache stays bounded for the life of the thread instead of
/// requiring periodic shrinks.
pub fn set_local_pool_capacity(capacity: Option<usize>) {
    POOL.with(|pool| pool.borrow_mut().set_capacity(capacity));
}

/// Runs one of the eight SPLASH-2-style programs at a given length scale
/// (1.0 = the default experiment length; tests use ≤ 0.01).
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_benchmark(
    bench: SplashBenchmark,
    scale: f64,
    config: &SimConfig,
) -> Result<Metrics, SimError> {
    run_spec(&bench.spec().scaled(scale), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterconnectChoice;
    use mot3d_mot::PowerState;
    use mot3d_noc::NocTopologyKind;

    fn tiny() -> WorkloadSpec {
        SplashBenchmark::Fmm.spec().scaled(0.002)
    }

    #[test]
    fn shrink_to_bounds_the_cache_without_changing_results() {
        let mut pool = ClusterPool::new();
        let spec = tiny();
        let configs = [
            SimConfig::date16(),
            SimConfig::date16().with_power_state(PowerState::pc16_mb8()),
            SimConfig::date16().with_power_state(PowerState::pc4_mb8()),
        ];
        let fresh: Vec<_> = configs
            .iter()
            .map(|c| pool.run_spec(&spec, c).unwrap())
            .collect();
        assert_eq!(pool.len(), 3);
        pool.shrink_to(1);
        assert_eq!(pool.len(), 1);
        // Evicted configurations are rebuilt bit-identically.
        for (c, want) in configs.iter().zip(&fresh) {
            let again = pool.run_spec(&spec, c).unwrap();
            assert_eq!(again.cycles, want.cycles);
            assert_eq!(again.l2_hits, want.l2_hits);
        }
        pool.shrink_to(0);
        assert!(pool.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let mut pool = ClusterPool::with_capacity(2);
        let spec = tiny();
        let full = SimConfig::date16();
        let pc16 = SimConfig::date16().with_power_state(PowerState::pc16_mb8());
        let pc4 = SimConfig::date16().with_power_state(PowerState::pc4_mb8());
        pool.run_spec(&spec, &full).unwrap();
        pool.run_spec(&spec, &pc16).unwrap();
        assert_eq!(pool.len(), 2);
        // Touch `full` again, then overflow: `pc16` is now the LRU entry.
        pool.run_spec(&spec, &full).unwrap();
        pool.run_spec(&spec, &pc4).unwrap();
        assert_eq!(pool.len(), 2);
        assert!(pool.contains(&full));
        assert!(pool.contains(&pc4));
        assert!(!pool.contains(&pc16));
    }

    #[test]
    fn capacity_changes_apply_immediately_and_zero_caches_nothing() {
        let mut pool = ClusterPool::new();
        assert_eq!(pool.capacity(), None);
        let spec = tiny();
        let configs = [
            SimConfig::date16(),
            SimConfig::date16().with_power_state(PowerState::pc16_mb8()),
            SimConfig::date16().with_power_state(PowerState::pc4_mb8()),
        ];
        for c in &configs {
            pool.run_spec(&spec, c).unwrap();
        }
        assert_eq!(pool.len(), 3);
        pool.set_capacity(Some(1));
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&configs[2]), "most recent entry survives");
        pool.set_capacity(Some(0));
        assert!(pool.is_empty());
        // Capacity 0 still runs correctly, it just never caches.
        let want = ClusterPool::new().run_spec(&spec, &configs[0]).unwrap();
        let got = pool.run_spec(&spec, &configs[0]).unwrap();
        assert_eq!(got, want);
        assert!(pool.is_empty());
        pool.set_capacity(None);
        pool.run_spec(&spec, &configs[0]).unwrap();
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn capped_runs_are_bit_identical_to_uncapped() {
        let spec = tiny();
        let configs = [
            SimConfig::date16(),
            SimConfig::date16().with_power_state(PowerState::pc16_mb8()),
            SimConfig::date16().with_dram(mot3d_mem::dram::DramKind::Weis3d),
            SimConfig::date16(),
        ];
        let mut unbounded = ClusterPool::new();
        let mut capped = ClusterPool::with_capacity(1);
        for c in &configs {
            let a = unbounded.run_spec(&spec, c).unwrap();
            let b = capped.run_spec(&spec, c).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn run_source_matches_run_spec() {
        let bench = SplashBenchmark::Fmm;
        let cfg = SimConfig::date16();
        let via_source = run_source(&bench, 0.002, &cfg).unwrap();
        let via_spec = run_spec(&bench.spec().scaled(0.002), &cfg).unwrap();
        assert_eq!(via_source, via_spec);
    }

    #[test]
    fn mot_run_completes_and_counts() {
        let m = run_spec(&tiny(), &SimConfig::date16()).unwrap();
        assert!(m.cycles > 0);
        assert!(m.instructions > 0);
        assert!(m.l1_hits + m.l1_misses > 0);
        assert!(m.l2_latency.count() > 0, "some L1 misses must reach L2");
        assert!(m.energy.cluster().value() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_spec(&tiny(), &SimConfig::date16()).unwrap();
        let b = run_spec(&tiny(), &SimConfig::date16()).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.l2_hits, b.l2_hits);
        assert_eq!(a.dram_accesses, b.dram_accesses);
    }

    #[test]
    fn golden_check_passes_on_mot() {
        let mut cfg = SimConfig::date16();
        cfg.check_golden = true;
        let m = run_spec(&tiny(), &cfg).unwrap();
        assert!(m.cycles > 0);
    }

    #[test]
    fn golden_check_passes_on_every_noc() {
        for kind in NocTopologyKind::all() {
            let mut cfg = SimConfig::date16().with_interconnect(InterconnectChoice::Noc(kind));
            cfg.check_golden = true;
            let m = run_spec(&tiny(), &cfg).unwrap();
            assert!(m.cycles > 0, "{kind}");
        }
    }

    #[test]
    fn golden_check_passes_on_gated_states() {
        for state in [
            PowerState::pc16_mb8(),
            PowerState::pc4_mb32(),
            PowerState::pc4_mb8(),
        ] {
            let mut cfg = SimConfig::date16().with_power_state(state);
            cfg.check_golden = true;
            let m = run_spec(&tiny(), &cfg).unwrap();
            assert!(m.cycles > 0, "{state}");
        }
    }

    #[test]
    fn noc_rejects_gated_states() {
        let cfg = SimConfig::date16()
            .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d))
            .with_power_state(PowerState::pc16_mb8());
        assert!(matches!(
            run_spec(&tiny(), &cfg),
            Err(SimError::NocNeedsFullState(_))
        ));
    }

    #[test]
    fn mot_beats_the_mesh_on_l2_latency() {
        // Fig. 6(a) shape: circuit-switched MoT < packet-switched mesh.
        let spec = SplashBenchmark::Radix.spec().scaled(0.003);
        let mot = run_spec(&spec, &SimConfig::date16()).unwrap();
        let mesh = run_spec(
            &spec,
            &SimConfig::date16()
                .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d)),
        )
        .unwrap();
        assert!(
            mot.l2_latency.mean() < mesh.l2_latency.mean(),
            "MoT {} vs mesh {}",
            mot.l2_latency.mean(),
            mesh.l2_latency.mean()
        );
        assert!(mot.cycles < mesh.cycles, "and on execution time");
    }

    #[test]
    fn resident_workload_l2_latency_approaches_table1() {
        // A small, heavily-reused working set: after warm-up, nearly all
        // L1 misses hit in L2, so the mean round trip approaches the
        // derived 12-cycle Full-connection latency (plus light
        // arbitration contention and the cold-miss tail).
        let mut spec = SplashBenchmark::Fmm.spec().scaled(0.02);
        spec.working_set_bytes = 16 * 1024; // heavy reuse: cold misses only
        spec.locality = 0.5; // plenty of L1 misses, all L2-resident
        spec.hot_fraction = 0.0; // all traffic hits the small working set
        spec.mem_ratio = 0.3;
        let m = run_spec(&spec, &SimConfig::date16()).unwrap();
        assert!(
            m.l2_miss_ratio() < 0.3,
            "l2 miss ratio {}",
            m.l2_miss_ratio()
        );
        // Table I: 12-cycle round trips land in the [8, 16) bucket, which
        // must dominate (the mean still carries the cold-miss DRAM tail).
        let buckets = m.l2_latency.buckets();
        let modal = buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .unwrap()
            .0;
        assert_eq!(modal, 1, "modal L2 latency bucket {buckets:?}");
        assert!(m.l2_latency.mean() >= 12.0, "mean {}", m.l2_latency.mean());
    }

    #[test]
    fn faster_dram_shortens_runs() {
        let spec = SplashBenchmark::Radix.spec().scaled(0.002);
        let slow = run_spec(&spec, &SimConfig::date16()).unwrap();
        let fast = run_spec(
            &spec,
            &SimConfig::date16().with_dram(mot3d_mem::dram::DramKind::Weis3d),
        )
        .unwrap();
        assert!(fast.cycles < slow.cycles);
    }
}
