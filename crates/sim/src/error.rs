//! Simulator error type.

use mot3d_mem::cache::CacheConfigError;
use mot3d_mot::power_state::PowerStateError;
use mot3d_mot::MotError;
use mot3d_noc::NocTopologyKind;
use mot3d_phys::sram::SramConfigError;
use std::error::Error;
use std::fmt;

/// Any error a simulation can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MoT rejected its configuration.
    Mot(MotError),
    /// The power state is invalid for the cluster.
    PowerState(PowerStateError),
    /// A cache geometry in the cluster configuration is inconsistent.
    CacheConfig(CacheConfigError),
    /// An SRAM geometry in the cluster configuration is inconsistent.
    SramConfig(SramConfigError),
    /// Packet-switched baselines are not reconfigurable: they only run
    /// the full connection (the paper evaluates them there, Fig. 6).
    NocNeedsFullState(NocTopologyKind),
    /// The stream count does not match the active core count.
    StreamCountMismatch {
        /// Streams supplied.
        streams: usize,
        /// Cores the power state keeps on.
        active_cores: usize,
    },
    /// The run exceeded the configured cycle budget.
    CycleLimit(u64),
    /// Runtime reconfiguration requested on a non-reconfigurable
    /// interconnect.
    NotReconfigurable,
    /// Runtime transitions cannot change the core count (no migration
    /// model).
    CoreCountChange {
        /// Cores before.
        from: usize,
        /// Cores requested.
        to: usize,
    },
    /// An injected fault from the serve crate's deterministic
    /// fault-injection harness. A real simulation never produces this
    /// variant; it exists so chaos tests exercise the same typed
    /// failure path production errors take.
    Injected(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mot(e) => write!(f, "interconnect: {e}"),
            SimError::PowerState(e) => write!(f, "power state: {e}"),
            SimError::CacheConfig(e) => write!(f, "cache geometry: {e}"),
            SimError::SramConfig(e) => write!(f, "sram geometry: {e}"),
            SimError::NocNeedsFullState(kind) => write!(
                f,
                "{kind} is not reconfigurable; it only runs Full connection"
            ),
            SimError::StreamCountMismatch {
                streams,
                active_cores,
            } => write!(
                f,
                "{streams} workload streams for {active_cores} active cores"
            ),
            SimError::CycleLimit(n) => write!(f, "simulation exceeded {n} cycles"),
            SimError::NotReconfigurable => {
                write!(
                    f,
                    "runtime power-state switching needs the reconfigurable MoT"
                )
            }
            SimError::CoreCountChange { from, to } => write!(
                f,
                "runtime transition cannot change core count ({from} → {to})"
            ),
            SimError::Injected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Mot(e) => Some(e),
            SimError::PowerState(e) => Some(e),
            SimError::CacheConfig(e) => Some(e),
            SimError::SramConfig(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MotError> for SimError {
    fn from(e: MotError) -> Self {
        SimError::Mot(e)
    }
}

impl From<PowerStateError> for SimError {
    fn from(e: PowerStateError) -> Self {
        SimError::PowerState(e)
    }
}

impl From<CacheConfigError> for SimError {
    fn from(e: CacheConfigError) -> Self {
        SimError::CacheConfig(e)
    }
}

impl From<SramConfigError> for SimError {
    fn from(e: SramConfigError) -> Self {
        SimError::SramConfig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::StreamCountMismatch {
            streams: 4,
            active_cores: 16,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains("16"));
        let e2 = SimError::CycleLimit(100);
        assert!(e2.to_string().contains("100"));
    }
}
