//! The 3-D multi-core cluster (Fig. 1): in-order cores with private L1
//! data caches, the stacked multi-banked shared L2 reached over a
//! swappable [`Interconnect`], the round-robin Miss bus, and DRAM.
//!
//! ## Timing model
//!
//! Cycle-stepped at the 1 GHz cluster clock. Cores retire one instruction
//! per cycle and block on memory; an L1 miss becomes an interconnect
//! transaction whose round trip (inject → bank arbitration → bank access
//! → response) *is* the L2 access latency the paper measures (Fig. 6(a)).
//! L2 misses queue on the Miss bus and pay the Table I DRAM latency.
//!
//! ## Event-driven execution
//!
//! [`Cluster::step`] advances exactly one cycle; [`Cluster::run_to_completion`],
//! [`Cluster::run_until`], and [`Cluster::drain`] are event-driven: when no
//! core can issue at the current cycle they consult every component's wake
//! hint ([`Interconnect::next_activity`], [`MissBus::next_activity`],
//! [`Dram::next_activity`], the action heap, and the cores' compute
//! timers) and jump `now` straight to the earliest upcoming event. Skipped
//! cycles are provably no-ops, so the event-driven paths produce
//! bit-identical metrics to stepping every cycle — the equivalence
//! property tests in `tests/event_driven.rs` enforce this — while cutting
//! wall-clock time by an order of magnitude in the low-IPC regimes the
//! paper's gated power states create (every core stalled on a 200-cycle
//! DRAM miss).
//!
//! ## Functional model (atomic-at-home-node)
//!
//! Architectural state (line tokens, directory, golden memory) updates
//! atomically at well-defined points — stores and directory changes at
//! the bank when the request is serviced, L1-eviction writebacks at
//! eviction time — while the corresponding messages still travel the
//! interconnect for timing and energy. This keeps the MSI protocol free
//! of transient-state races without losing any of the latency/energy
//! effects the paper evaluates; the golden-memory oracle validates the
//! end-to-end result, including across runtime bank power-gating flushes.

use crate::config::{InterconnectChoice, SimConfig};
use crate::error::SimError;
use crate::metrics::{LatencyStats, Metrics};
use crate::observe::{CoreActivity, InterconnectProbe, MotProbe, NocProbe, NullObserver, Observer};
use mot3d_mem::addr::{AddressMap, LineAddr};
use mot3d_mem::bus::{MissBus, Transfer};
use mot3d_mem::cache::{CacheConfig, SetAssocCache, SlotHandle};
use mot3d_mem::coherence::Directory;
use mot3d_mem::dram::{Dram, DramTiming};
use mot3d_mem::golden::GoldenMemory;
use mot3d_mot::latency::MotTimingParams;
use mot3d_mot::reconfig::MotConfiguration;
use mot3d_mot::topology::MotTopology;
use mot3d_mot::traits::{Interconnect, MemRequest, MemResponse, ReqKind};
use mot3d_mot::{MotNetwork, PowerState};
use mot3d_noc::NocNetwork;
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::power::{CorePowerModel, DramEnergyModel, EnergyBreakdown};
use mot3d_phys::slab::GenSlab;
use mot3d_phys::sram::{SramBank, SramConfig};
use mot3d_phys::wheel::TimingWheel;
use mot3d_phys::Technology;
use mot3d_workloads::{CoreStream, Op, StreamOp};

/// Physical cores in the cluster (Table I).
pub const TOTAL_CORES: usize = 16;
/// Physical L2 banks (Table I).
pub const TOTAL_BANKS: usize = 32;
/// Sentinel tag for occupancy-only bus transfers (victim writebacks).
const WB_TAG: u64 = u64::MAX;

/// Per-L1-line coherence view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct L1Meta {
    /// Holds the line in Modified (exclusive) state.
    exclusive: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreStatus {
    Ready,
    Computing { until: u64 },
    WaitingMem,
    WaitingIFetch,
    AtBarrier { id: u32 },
    Finished,
}

#[derive(Debug)]
struct CoreState {
    /// Physical core id (grid position); ranks index into `cores`.
    physical: usize,
    stream: CoreStream,
    l1: SetAssocCache<L1Meta>,
    busy_cycles: u64,
    retired: u64,
    finished_at: Option<u64>,
}

#[derive(Debug)]
struct BankState {
    cache: SetAssocCache<Directory>,
    powered: bool,
    free_at: u64,
    reads: u64,
    writes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxKind {
    Load,
    Store,
    Upgrade,
    L1Writeback,
}

#[derive(Debug, Clone, Copy)]
struct Tx {
    core_idx: usize,
    line: LineAddr,
    kind: TxKind,
    issued_at: u64,
    value: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// L2 tag check done on a miss: start the Miss-bus transfer.
    BusEnqueue { bank: usize, tag: u64 },
    /// DRAM returned the line: fill the bank and respond.
    Refill { bank: usize, tag: u64 },
    /// Send a response into the interconnect.
    Respond {
        tag: u64,
        core: usize,
        bank: usize,
        write: bool,
    },
    /// Instruction refill arrived at the core.
    IFetchDone { core_idx: usize },
}

/// The interconnect under test, dispatched statically: the hot loop
/// calls `tick`/`pop_arrival`/`pop_delivery`/`next_activity` several
/// times per step, and a `Box<dyn Interconnect>` would make each a
/// virtual call the compiler cannot inline.
#[derive(Debug)]
enum ClusterNet {
    Mot(MotNetwork),
    Noc(NocNetwork),
}

impl ClusterNet {
    #[inline]
    fn get(&self) -> &dyn Interconnect {
        match self {
            ClusterNet::Mot(n) => n,
            ClusterNet::Noc(n) => n,
        }
    }
}

impl Interconnect for ClusterNet {
    #[inline]
    fn name(&self) -> &str {
        self.get().name()
    }

    #[inline]
    fn tick(&mut self, now: u64) {
        match self {
            ClusterNet::Mot(n) => n.tick(now),
            ClusterNet::Noc(n) => n.tick(now),
        }
    }

    #[inline]
    fn inject_request(&mut self, now: u64, request: MemRequest) {
        match self {
            ClusterNet::Mot(n) => n.inject_request(now, request),
            ClusterNet::Noc(n) => n.inject_request(now, request),
        }
    }

    #[inline]
    fn pop_arrival(&mut self) -> Option<mot3d_mot::traits::BankArrival> {
        match self {
            ClusterNet::Mot(n) => n.pop_arrival(),
            ClusterNet::Noc(n) => n.pop_arrival(),
        }
    }

    #[inline]
    fn inject_response(&mut self, now: u64, response: MemResponse) {
        match self {
            ClusterNet::Mot(n) => n.inject_response(now, response),
            ClusterNet::Noc(n) => n.inject_response(now, response),
        }
    }

    #[inline]
    fn pop_delivery(&mut self) -> Option<mot3d_mot::traits::CoreDelivery> {
        match self {
            ClusterNet::Mot(n) => n.pop_delivery(),
            ClusterNet::Noc(n) => n.pop_delivery(),
        }
    }

    #[inline]
    fn next_activity(&self, now: u64) -> Option<u64> {
        match self {
            ClusterNet::Mot(n) => n.next_activity(now),
            ClusterNet::Noc(n) => n.next_activity(now),
        }
    }

    #[inline]
    fn reset(&mut self) {
        match self {
            ClusterNet::Mot(n) => Interconnect::reset(n),
            ClusterNet::Noc(n) => Interconnect::reset(n),
        }
    }

    #[inline]
    fn oneway_latency_hint(&self) -> u64 {
        // Statically dispatched: read once per serviced bank access.
        match self {
            ClusterNet::Mot(n) => n.oneway_latency_hint(),
            ClusterNet::Noc(n) => n.oneway_latency_hint(),
        }
    }

    #[inline]
    fn dynamic_energy(&self) -> mot3d_phys::units::Joules {
        self.get().dynamic_energy()
    }

    #[inline]
    fn leakage_power(&self) -> mot3d_phys::units::Watts {
        self.get().leakage_power()
    }

    #[inline]
    fn stats(&self) -> mot3d_mot::traits::InterconnectStats {
        self.get().stats()
    }
}

/// The simulated cluster.
pub struct Cluster {
    config: SimConfig,
    tech: Technology,
    floorplan: Floorplan,
    map: AddressMap,
    interconnect: ClusterNet,
    mot_cfg: Option<MotConfiguration>,
    cores: Vec<CoreState>,
    /// Core statuses, split out of `CoreState` structure-of-arrays
    /// style: the wake/barrier/issue loops consult every core's status
    /// each step, and inside `CoreState` (whose stream + L1 span hundreds
    /// of bytes) each status would be its own cache line. Kept in sync
    /// with the masks below via [`Cluster::set_status`].
    statuses: Vec<CoreStatus>,
    /// Bit `i` set while core `i` is `Ready`.
    ready_mask: u32,
    /// Bit `i` set while core `i` is `Computing`; its deadline is in
    /// `until[i]`. The issue loop walks `ready_mask | computing_mask` in
    /// ascending bit order — the same visit order as scanning every core.
    computing_mask: u32,
    /// Bit `i` set while core `i` is `AtBarrier`.
    barrier_mask: u32,
    /// `Computing` deadlines, indexed by core (valid where
    /// `computing_mask` is set).
    until: Vec<u64>,
    /// Exact minimum of `until[i]` over computing cores (`u64::MAX` when
    /// none compute). `next_wake` runs every step and must not rescan the
    /// mask; `set_status` folds new deadlines in and rebuilds only when
    /// the current minimum's holder transitions.
    until_min: u64,
    banks: Vec<BankState>,
    /// `physical_to_idx[physical]` = index into `cores`, or `usize::MAX`
    /// when that physical core is gated (fixed at construction; coherence
    /// lookups would otherwise scan `cores` linearly per invalidation).
    physical_to_idx: [usize; TOTAL_CORES],
    bus: MissBus,
    dram: Dram,
    golden: Option<GoldenMemory>,
    /// In-flight transactions; the interconnect tag *is* the generational
    /// slab handle, so tag lookups are an index + generation check
    /// instead of a `HashMap` probe.
    txs: GenSlab<Tx>,
    store_tokens: u64,
    /// Pending actions, popped in exact `(time, seq)` order (the wheel
    /// owns the sequence numbering).
    events: TimingWheel<Action>,
    now: u64,
    paused: bool,
    /// Cores whose status is `Finished` (O(1) completion check).
    finished_cores: usize,
    /// Reused victim/holder scratch for coherence fan-outs.
    scratch_cores: Vec<usize>,
    /// `l2_model.access_cycles(&tech)`, cached off the bank-service path.
    l2_access_cycles: u64,
    // metric counters
    l1_hits: u64,
    l1_misses: u64,
    l2_hits: u64,
    l2_misses: u64,
    dram_accesses: u64,
    invalidations: u64,
    recalls: u64,
    l2_latency: LatencyStats,
    // physical models for energy finalisation
    l1_model: SramBank,
    l2_model: SramBank,
    core_power: CorePowerModel,
    dram_power: DramEnergyModel,
    l1_reads: u64,
    l1_writes: u64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.now)
            .field("cores", &self.cores.len())
            .field("state", &self.config.power_state.to_string())
            .field("interconnect", &self.interconnect.name().to_string())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds the cluster for `config`, one workload stream per active
    /// core.
    ///
    /// # Errors
    ///
    /// [`SimError`] if the interconnect rejects the power state (baseline
    /// NoCs only support `Full connection`) or stream count mismatches.
    pub fn new(config: SimConfig, streams: Vec<CoreStream>) -> Result<Self, SimError> {
        let tech = Technology::lp45();
        let floorplan = Floorplan::date16();
        let map = AddressMap::date16();
        let state = config.power_state;
        state.check_fits(TOTAL_CORES, TOTAL_BANKS)?;
        if streams.len() != state.active_cores() {
            return Err(SimError::StreamCountMismatch {
                streams: streams.len(),
                active_cores: state.active_cores(),
            });
        }

        let (interconnect, mot_cfg): (ClusterNet, Option<MotConfiguration>) =
            match config.interconnect {
                InterconnectChoice::Mot => {
                    let net = MotNetwork::new(
                        &tech,
                        &floorplan,
                        MotTopology::date16(),
                        &MotTimingParams::default(),
                        state,
                    )?;
                    let cfg = net.configuration().clone();
                    (ClusterNet::Mot(net), Some(cfg))
                }
                InterconnectChoice::Noc(kind) => {
                    if state != PowerState::full() {
                        return Err(SimError::NocNeedsFullState(kind));
                    }
                    (
                        ClusterNet::Noc(NocNetwork::new(&tech, &floorplan, kind)),
                        None,
                    )
                }
            };

        let physical_cores: Vec<usize> = match &mot_cfg {
            Some(cfg) => cfg.active_cores(),
            None => (0..TOTAL_CORES).collect(),
        };
        debug_assert_eq!(physical_cores.len(), streams.len());

        let mut physical_to_idx = [usize::MAX; TOTAL_CORES];
        for (idx, &physical) in physical_cores.iter().enumerate() {
            physical_to_idx[physical] = idx;
        }

        let cores: Vec<CoreState> = physical_cores
            .into_iter()
            .zip(streams)
            .map(|(physical, stream)| {
                Ok(CoreState {
                    physical,
                    stream,
                    l1: SetAssocCache::new(CacheConfig::l1_date16())?,
                    busy_cycles: 0,
                    retired: 0,
                    finished_at: None,
                })
            })
            .collect::<Result<_, SimError>>()?;

        let banks = (0..TOTAL_BANKS)
            .map(|b| {
                Ok(BankState {
                    cache: SetAssocCache::new(CacheConfig::l2_bank_date16())?,
                    powered: mot_cfg.as_ref().is_none_or(|c| c.is_bank_active(b)),
                    free_at: 0,
                    reads: 0,
                    writes: 0,
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;

        let dram_timing = if config.dram_open_page {
            DramTiming::open_page(config.dram.latency_cycles())
        } else {
            DramTiming::fixed(config.dram.latency_cycles())
        };

        let dram_power = match config.dram {
            mot3d_mem::dram::DramKind::OffChipDdr3 => DramEnergyModel::off_chip_ddr3(),
            mot3d_mem::dram::DramKind::WideIo => DramEnergyModel::wide_io(),
            mot3d_mem::dram::DramKind::Weis3d => DramEnergyModel::weis_3d(),
        };

        let l2_model = SramBank::model(&tech, SramConfig::l2_bank_date16())?;

        let statuses = vec![CoreStatus::Ready; cores.len()];
        let all_cores_mask = u32::MAX >> (32 - cores.len() as u32);

        Ok(Cluster {
            config,
            floorplan,
            map,
            interconnect,
            mot_cfg,
            ready_mask: all_cores_mask,
            computing_mask: 0,
            barrier_mask: 0,
            until: vec![0; cores.len()],
            until_min: u64::MAX,
            cores,
            statuses,
            banks,
            physical_to_idx,
            bus: MissBus::new(TOTAL_BANKS + TOTAL_CORES, config.miss_bus_occupancy),
            dram: Dram::new(dram_timing, map),
            golden: config.check_golden.then(GoldenMemory::new),
            txs: GenSlab::new(),
            store_tokens: 0,
            events: TimingWheel::new(),
            now: 0,
            paused: false,
            finished_cores: 0,
            scratch_cores: Vec::new(),
            l2_access_cycles: l2_model.access_cycles(&tech),
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
            dram_accesses: 0,
            invalidations: 0,
            recalls: 0,
            l2_latency: LatencyStats::default(),
            l1_model: SramBank::model(&tech, SramConfig::l1_date16())?,
            l2_model,
            core_power: CorePowerModel::cortex_a5_like(),
            dram_power: DramEnergyModel::off_chip_ddr3(),
            l1_reads: 0,
            l1_writes: 0,
            tech,
        }
        .with_dram_power(dram_power))
    }

    fn with_dram_power(mut self, p: DramEnergyModel) -> Self {
        self.dram_power = p;
        self
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether every core finished and all machinery drained (O(1): every
    /// term is a counter or an emptiness flag).
    pub fn is_done(&self) -> bool {
        self.finished_cores == self.cores.len()
            && self.txs.is_empty()
            && self.events.is_empty()
            && self.bus.is_idle()
    }

    /// Single point of truth for core-status transitions: updates the
    /// status array and every derived mask/counter together.
    #[inline]
    fn set_status(&mut self, idx: usize, status: CoreStatus) {
        let bit = 1u32 << idx;
        // Whether this transition can retire the cached `until_min`: the
        // core held it while computing, and is about to stop (or move it).
        let held_min = self.computing_mask & bit != 0 && self.until[idx] == self.until_min;
        self.ready_mask &= !bit;
        self.computing_mask &= !bit;
        self.barrier_mask &= !bit;
        match status {
            CoreStatus::Ready => self.ready_mask |= bit,
            CoreStatus::Computing { until } => {
                self.computing_mask |= bit;
                self.until[idx] = until;
                if until < self.until_min {
                    self.until_min = until;
                }
            }
            CoreStatus::AtBarrier { .. } => self.barrier_mask |= bit,
            // `Finished` is terminal, so the count can only grow (reset
            // rebuilds it from scratch).
            CoreStatus::Finished => self.finished_cores += 1,
            CoreStatus::WaitingMem | CoreStatus::WaitingIFetch => {}
        }
        self.statuses[idx] = status;
        if held_min {
            self.recompute_until_min();
        }
    }

    /// Rebuilds [`Cluster::until_min`] from the computing mask. Only runs
    /// when the minimum's holder leaves `Computing` — once per compute
    /// run, not per step.
    fn recompute_until_min(&mut self) {
        let mut min = u64::MAX;
        let mut computing = self.computing_mask;
        while computing != 0 {
            let idx = computing.trailing_zeros() as usize;
            computing &= computing - 1;
            min = min.min(self.until[idx]);
        }
        self.until_min = min;
    }

    /// The physical bank that currently serves a home bank index.
    fn serving_bank(&self, home: usize) -> usize {
        match &self.mot_cfg {
            Some(cfg) => cfg.remap_bank(home),
            None => home,
        }
    }

    fn l2_cycles(&self) -> u64 {
        self.l2_access_cycles
    }

    fn schedule(&mut self, at: u64, action: Action) {
        self.events.schedule(at, action);
    }

    fn fresh_token(&mut self, core_idx: usize) -> u64 {
        self.store_tokens += 1;
        ((core_idx as u64 + 1) << 48) | self.store_tokens
    }

    /// Starts a memory transaction for a core and blocks it.
    fn start_tx(&mut self, core_idx: usize, line: LineAddr, kind: TxKind) {
        let value = if matches!(kind, TxKind::Store | TxKind::Upgrade) {
            self.fresh_token(core_idx)
        } else {
            0
        };
        let tag = self.txs.insert(Tx {
            core_idx,
            line,
            kind,
            issued_at: self.now,
            value,
        });
        debug_assert_ne!(tag, WB_TAG);
        let physical = self.cores[core_idx].physical;
        self.interconnect.inject_request(
            self.now,
            MemRequest {
                core: physical,
                home_bank: self.map.home_bank(line),
                kind: ReqKind::ReadLine,
                tag,
            },
        );
        self.set_status(core_idx, CoreStatus::WaitingMem);
    }

    /// L1 dirty eviction: functional state syncs immediately; a ghost
    /// WriteLine message still travels for timing/energy.
    fn l1_writeback(&mut self, core_idx: usize, line: LineAddr, data: u64) {
        let bank = self.serving_bank(self.map.home_bank(line));
        let physical = self.cores[core_idx].physical;
        // Functional: L2 is kept current by the atomic-at-home-node rule,
        // so the data matches; just release the directory slot.
        if let Some(dir) = self.banks[bank].cache.payload_mut(line) {
            dir.drop_core(physical);
        }
        let _ = data;
        let tag = self.txs.insert(Tx {
            core_idx,
            line,
            kind: TxKind::L1Writeback,
            issued_at: self.now,
            value: 0,
        });
        debug_assert_ne!(tag, WB_TAG);
        self.interconnect.inject_request(
            self.now,
            MemRequest {
                core: physical,
                home_bank: self.map.home_bank(line),
                kind: ReqKind::WriteLine,
                tag,
            },
        );
    }

    /// Fills a line into a core's L1, handling the displaced victim.
    fn l1_fill(&mut self, core_idx: usize, line: LineAddr, value: u64, exclusive: bool) {
        let (slot, evicted) = self.cores[core_idx].l1.fill_slot(line, value, exclusive);
        self.cores[core_idx].l1.payload_at_mut(slot).exclusive = exclusive;
        match evicted {
            Some(ev) if ev.dirty => self.l1_writeback(core_idx, ev.addr, ev.data),
            Some(ev) => {
                // Clean evictions are silent; the directory may retain a
                // stale sharer, which later invalidations tolerate.
                let _ = ev;
            }
            None => {}
        }
    }

    /// Invalidate a line from a specific physical core's L1 (coherence).
    fn invalidate_l1(&mut self, physical: usize, line: LineAddr) {
        let idx = self.physical_to_idx[physical];
        if idx != usize::MAX {
            self.cores[idx].l1.invalidate(line);
        }
    }

    /// Services a request at its bank. Mutates architectural state now;
    /// schedules the response at the right time.
    // mot3d-lint: no-alloc
    fn service_bank(&mut self, bank_idx: usize, tag: u64, at_cycle: u64) {
        // mot3d-lint: allow(P1) -- a scheduled arrival's tx is removed only at delivery, later
        let tx = *self.txs.get(tag).expect("arrival has a transaction");
        assert!(
            self.banks[bank_idx].powered,
            "request arrived at gated bank {bank_idx}"
        );
        let access = self.l2_cycles();
        let start = at_cycle.max(self.banks[bank_idx].free_at);
        self.banks[bank_idx].free_at = start + access;
        let done = start + access;

        if tx.kind == TxKind::L1Writeback {
            // Ghost writeback: occupancy + stats only (state already
            // synced at eviction).
            self.banks[bank_idx].writes += 1;
            self.txs.remove(tag);
            return;
        }

        let physical = self.cores[tx.core_idx].physical;
        let is_store = matches!(tx.kind, TxKind::Store | TxKind::Upgrade);

        if let Some(slot) = self.banks[bank_idx].cache.find(tx.line) {
            // --- L2 hit ---------------------------------------------
            self.l2_hits += 1;
            let extra = self.access_resident_line(bank_idx, tag, slot);
            self.schedule(
                done + extra,
                Action::Respond {
                    tag,
                    core: physical,
                    bank: bank_idx,
                    write: is_store,
                },
            );
        } else {
            // --- L2 miss: tag check, then the Miss bus + DRAM ---------
            self.l2_misses += 1;
            self.schedule(
                done,
                Action::BusEnqueue {
                    bank: bank_idx,
                    tag,
                },
            );
        }
    }

    /// Performs the coherence actions and data movement for a transaction
    /// whose line is resident in `bank_idx` at `slot` (resolved once by
    /// the caller — every directory/data access below goes through the
    /// handle instead of re-probing the tags). Returns the extra
    /// response latency charged for recalls/invalidations. Shared by the
    /// L2-hit path and the post-refill path (a concurrent miss to the
    /// same line may find it already filled and owned — the
    /// blocking-cache equivalent of an MSHR merge).
    // mot3d-lint: no-alloc
    fn access_resident_line(&mut self, bank_idx: usize, tag: u64, slot: SlotHandle) -> u64 {
        // mot3d-lint: allow(P1) -- callers hold a live tag (removed only at delivery)
        let tx = *self.txs.get(tag).expect("transaction exists");
        let physical = self.cores[tx.core_idx].physical;
        let is_store = matches!(tx.kind, TxKind::Store | TxKind::Upgrade);
        let mut extra = 0u64;
        let oneway = self.interconnect.oneway_latency_hint();

        let dir_owner = self.banks[bank_idx].cache.payload_at(slot).owner();
        if let Some(owner) = dir_owner {
            if owner != physical {
                // Recall the modified copy (data already current in L2 by
                // the atomic rule; pay the protocol latency).
                self.recalls += 1;
                extra += 2 * oneway + 4;
                if is_store {
                    self.invalidate_l1(owner, tx.line);
                    self.invalidations += 1;
                } else if self.physical_to_idx[owner] != usize::MAX {
                    let core = &mut self.cores[self.physical_to_idx[owner]];
                    if let Some(meta) = core.l1.payload_mut(tx.line) {
                        meta.exclusive = false;
                    }
                }
                self.banks[bank_idx]
                    .cache
                    .payload_at_mut(slot)
                    .owner_writeback(!is_store);
            }
        }

        if is_store {
            let mut victims = std::mem::take(&mut self.scratch_cores);
            victims.clear();
            self.banks[bank_idx]
                .cache
                .payload_at_mut(slot)
                .grant_exclusive_into(physical, &mut victims);
            if !victims.is_empty() {
                extra += 2 * oneway + 2;
                self.invalidations += victims.len() as u64;
                for &v in &victims {
                    self.invalidate_l1(v, tx.line);
                }
            }
            self.scratch_cores = victims;
            // Store becomes architecturally visible now.
            self.banks[bank_idx].cache.write_at(slot, tx.value);
            if let Some(golden) = &mut self.golden {
                golden.write(tx.line, tx.value);
            }
            self.banks[bank_idx].writes += 1;
        } else {
            self.banks[bank_idx]
                .cache
                .payload_at_mut(slot)
                .add_sharer(physical);
            let value = self.banks[bank_idx].cache.read_at(slot);
            // The load is architecturally ordered *here*; the golden
            // comparison must use this point, not the delivery time (a
            // store ordered in between is not a violation).
            if let Some(golden) = &self.golden {
                assert_eq!(
                    value,
                    golden.read(tx.line),
                    "load mismatch at {:?} cycle {} (ordering point)",
                    tx.line,
                    self.now
                );
            }
            // mot3d-lint: allow(P1) -- same live tag the function was entered with
            self.txs.get_mut(tag).expect("tx exists").value = value;
            self.banks[bank_idx].reads += 1;
        }
        extra
    }

    /// DRAM refill arrives at the bank: fill, handle the victim, respond.
    // mot3d-lint: no-alloc
    fn refill_bank(&mut self, bank_idx: usize, tag: u64) {
        // mot3d-lint: allow(P1) -- a scheduled refill's tx is removed only at delivery, later
        let tx = *self.txs.get(tag).expect("refill has a transaction");
        let physical = self.cores[tx.core_idx].physical;
        let is_store = matches!(tx.kind, TxKind::Store | TxKind::Upgrade);

        let slot = match self.banks[bank_idx].cache.find(tx.line) {
            // A concurrent miss filled the line meanwhile.
            Some(slot) => slot,
            None => {
                let dram_value = self.dram.read_line(tx.line);
                let (slot, evicted) = self.banks[bank_idx]
                    .cache
                    .fill_slot(tx.line, dram_value, false);
                if let Some(ev) = evicted {
                    // Maintain inclusion: kick the victim out of any L1
                    // holding it (`ev` is owned, so the sharer iterator can
                    // drive the invalidations directly — no temporary).
                    for h in ev.payload.sharers() {
                        self.invalidate_l1(h, ev.addr);
                        self.invalidations += 1;
                    }
                    if let Some(owner) = ev.payload.owner() {
                        self.invalidate_l1(owner, ev.addr);
                        self.invalidations += 1;
                    }
                    if ev.dirty {
                        self.dram.write_line(ev.addr, ev.data);
                        self.dram_accesses += 1;
                        // Victim writeback occupies the Miss bus (timing only).
                        self.bus.enqueue(Transfer {
                            requester: bank_idx,
                            tag: WB_TAG,
                        });
                    }
                }
                slot
            }
        };
        // Either way the line is resident now at `slot` and the normal
        // access path applies.
        let extra = self.access_resident_line(bank_idx, tag, slot);

        self.schedule(
            self.now + self.l2_cycles() + extra,
            Action::Respond {
                tag,
                core: physical,
                bank: bank_idx,
                write: is_store,
            },
        );
    }

    /// Whether the directory still registers this core for the line (a
    /// concurrent transaction may have invalidated it while the response
    /// was in flight; in that case the fill must be dropped — the
    /// operation itself was already ordered at the bank).
    fn still_registered(&self, physical: usize, line: LineAddr, as_owner: bool) -> bool {
        let bank = self.serving_bank(self.map.home_bank(line));
        match self.banks[bank].cache.payload(line) {
            Some(dir) if as_owner => dir.owner() == Some(physical),
            Some(dir) => dir.holds(physical),
            None => false,
        }
    }

    /// A response arrived back at its core: complete the instruction.
    // mot3d-lint: no-alloc
    fn complete_delivery(&mut self, tag: u64, at_cycle: u64) {
        // mot3d-lint: allow(P1) -- each tag is delivered exactly once; this is its removal point
        let tx = self.txs.remove(tag).expect("delivery has a transaction");
        self.l2_latency
            .record(at_cycle.saturating_sub(tx.issued_at));
        let physical = self.cores[tx.core_idx].physical;
        match tx.kind {
            TxKind::Load => {
                // (Golden-checked at the bank, the architectural ordering
                // point.) Drop the fill if an in-flight invalidation
                // already revoked our copy.
                if self.still_registered(physical, tx.line, false) {
                    self.l1_fill(tx.core_idx, tx.line, tx.value, false);
                }
            }
            TxKind::Store | TxKind::Upgrade => {
                // The store was performed at the bank; only cache the
                // line in M state if we still own it.
                if self.still_registered(physical, tx.line, true) {
                    if let Some(slot) = self.cores[tx.core_idx].l1.find(tx.line) {
                        self.cores[tx.core_idx].l1.write_at(slot, tx.value);
                        self.cores[tx.core_idx].l1.payload_at_mut(slot).exclusive = true;
                    } else {
                        // `l1_fill(…, exclusive = true)` marks M state.
                        self.l1_fill(tx.core_idx, tx.line, tx.value, true);
                    }
                } else {
                    // Ownership was revoked in flight (e.g. a reader
                    // downgraded us). An upgrade's surviving L1 copy is
                    // the *pre-store* image — newer data already lives in
                    // L2 — so it must not serve future hits.
                    self.cores[tx.core_idx].l1.invalidate(tx.line);
                }
            }
            TxKind::L1Writeback => unreachable!("writebacks have no responses"),
        }
        self.set_status(tx.core_idx, CoreStatus::Ready);
    }

    /// One core issue step.
    // mot3d-lint: no-alloc
    fn step_core(&mut self, idx: usize) {
        match self.statuses[idx] {
            CoreStatus::Computing { until } if self.now >= until => {
                self.set_status(idx, CoreStatus::Ready);
            }
            _ => {}
        }
        if self.statuses[idx] != CoreStatus::Ready || self.paused {
            return;
        }
        let Some(op) = self.cores[idx].stream.next() else {
            self.set_status(idx, CoreStatus::Finished);
            self.cores[idx].finished_at = Some(self.now);
            return;
        };
        match op {
            StreamOp::Op(Op::Compute(n)) => {
                let c = &mut self.cores[idx];
                c.busy_cycles += n as u64;
                c.retired += n as u64;
                self.set_status(
                    idx,
                    CoreStatus::Computing {
                        until: self.now + n as u64,
                    },
                );
            }
            StreamOp::Op(Op::Load(addr)) => {
                let line = self.map.line_of(addr);
                self.cores[idx].busy_cycles += 1;
                self.cores[idx].retired += 1;
                self.l1_reads += 1;
                if let Some(value) = self.cores[idx].l1.read(line) {
                    self.l1_hits += 1;
                    if let Some(golden) = &self.golden {
                        assert_eq!(
                            value,
                            golden.read(line),
                            "L1 load mismatch at {line:?} cycle {}",
                            self.now
                        );
                    }
                    self.set_status(
                        idx,
                        CoreStatus::Computing {
                            until: self.now + 1,
                        },
                    );
                } else {
                    self.l1_misses += 1;
                    self.start_tx(idx, line, TxKind::Load);
                }
            }
            StreamOp::Op(Op::Store(addr)) => {
                let line = self.map.line_of(addr);
                self.cores[idx].busy_cycles += 1;
                self.cores[idx].retired += 1;
                self.l1_writes += 1;
                match self.cores[idx].l1.find(line) {
                    Some(slot) if self.cores[idx].l1.payload_at(slot).exclusive => {
                        // M-state store: 1 cycle; keep L2 architecturally
                        // current (atomic-at-home-node bookkeeping, no
                        // traffic).
                        self.l1_hits += 1;
                        let token = self.fresh_token(idx);
                        self.cores[idx].l1.write_at(slot, token);
                        let bank = self.serving_bank(self.map.home_bank(line));
                        let bank_slot = self.banks[bank].cache.find(line);
                        debug_assert!(bank_slot.is_some(), "inclusion violated for {line:?}");
                        if let Some(bank_slot) = bank_slot {
                            self.banks[bank].cache.write_at(bank_slot, token);
                        }
                        if let Some(golden) = &mut self.golden {
                            golden.write(line, token);
                        }
                        self.set_status(
                            idx,
                            CoreStatus::Computing {
                                until: self.now + 1,
                            },
                        );
                    }
                    Some(_) => {
                        self.l1_misses += 1;
                        self.start_tx(idx, line, TxKind::Upgrade);
                    }
                    None => {
                        self.l1_misses += 1;
                        self.start_tx(idx, line, TxKind::Store);
                    }
                }
            }
            StreamOp::Op(Op::Barrier(id)) => {
                self.set_status(idx, CoreStatus::AtBarrier { id });
            }
            StreamOp::IFetchMiss(addr) => {
                let physical = self.cores[idx].physical;
                self.set_status(idx, CoreStatus::WaitingIFetch);
                self.bus.enqueue(Transfer {
                    requester: TOTAL_BANKS + physical,
                    tag: addr,
                });
            }
        }
    }

    /// Releases barriers when every unfinished core reached one. O(1)
    /// when the barrier is not ready: a core is at a barrier or finished
    /// iff it is in `barrier_mask` / the finished count, so the release
    /// condition is one popcount.
    fn check_barriers(&mut self) {
        if self.barrier_mask == 0 {
            return;
        }
        if self.barrier_mask.count_ones() as usize + self.finished_cores != self.cores.len() {
            return; // someone still working: barrier not ready
        }
        let mut waiting = self.barrier_mask;
        while waiting != 0 {
            let idx = waiting.trailing_zeros() as usize;
            waiting &= waiting - 1;
            self.set_status(idx, CoreStatus::Ready);
        }
    }

    /// Advances the cluster by one cycle.
    pub fn step(&mut self) {
        self.step_with(&mut NullObserver);
    }

    /// [`Cluster::step`] with an [`Observer`] sampled at the end of the
    /// step (before `now` advances). With [`NullObserver`] the guard
    /// folds away and this *is* `step` — same machine code, no branch.
    // mot3d-lint: no-alloc
    pub fn step_with<O: Observer>(&mut self, obs: &mut O) {
        let now = self.now;
        self.interconnect.tick(now);

        // Scheduled actions due this cycle.
        while let Some((_, action)) = self.events.pop_due(now) {
            match action {
                Action::BusEnqueue { bank, tag } => {
                    self.bus.enqueue(Transfer {
                        requester: bank,
                        tag,
                    });
                }
                Action::Refill { bank, tag } => self.refill_bank(bank, tag),
                Action::Respond {
                    tag,
                    core,
                    bank,
                    write,
                } => {
                    self.interconnect.inject_response(
                        now,
                        MemResponse {
                            core,
                            bank,
                            kind: if write {
                                ReqKind::WriteLine
                            } else {
                                ReqKind::ReadLine
                            },
                            tag,
                        },
                    );
                }
                Action::IFetchDone { core_idx } => {
                    if self.statuses[core_idx] == CoreStatus::WaitingIFetch {
                        self.set_status(core_idx, CoreStatus::Ready);
                    }
                }
            }
        }

        // Miss-bus grant completion (one per cycle).
        if let Some(t) = self.bus.tick(now) {
            if t.requester < TOTAL_BANKS {
                if t.tag == WB_TAG {
                    // Victim writeback reached DRAM; already applied.
                } else {
                    // mot3d-lint: allow(P1) -- a queued transfer's tx is removed only at delivery, later
                    let tx = self.txs.get(t.tag).expect("bus transfer has tx");
                    let done = self.dram.access(now, tx.line, false);
                    self.dram_accesses += 1;
                    self.schedule(
                        done,
                        Action::Refill {
                            bank: t.requester,
                            tag: t.tag,
                        },
                    );
                }
            } else {
                // Instruction refill: straight to DRAM and back (§II).
                let physical = t.requester - TOTAL_BANKS;
                let line = self.map.line_of(t.tag);
                let done = self.dram.access(now, line, false);
                self.dram_accesses += 1;
                let core_idx = self.physical_to_idx[physical];
                if core_idx != usize::MAX {
                    self.schedule(done, Action::IFetchDone { core_idx });
                }
            }
        }

        // Requests arriving at banks.
        while let Some(a) = self.interconnect.pop_arrival() {
            self.service_bank(a.bank, a.request.tag, a.at_cycle);
        }

        // Responses arriving at cores.
        while let Some(d) = self.interconnect.pop_delivery() {
            self.complete_delivery(d.response.tag, d.at_cycle);
        }

        self.check_barriers();

        // Only Ready cores can issue and only Computing cores can change
        // state in `step_core`; walking the mask in ascending bit order
        // visits them exactly as the full 0..cores scan would. Issuing
        // never changes another core's status, so the snapshot is exact.
        // A computing core whose deadline is still ahead provably no-ops
        // in `step_core`, so it is masked out instead of called.
        let mut actionable = self.ready_mask | self.computing_mask;
        while actionable != 0 {
            let idx = actionable.trailing_zeros() as usize;
            let bit = actionable & actionable.wrapping_neg();
            actionable &= actionable - 1;
            if self.computing_mask & bit != 0 && self.until[idx] > now {
                continue;
            }
            self.step_core(idx);
        }

        if O::ENABLED {
            obs.sample(self);
        }
        self.now += 1;
    }

    /// The earliest upcoming cycle at which stepping can change state, or
    /// `None` when every component is idle (quiescence or deadlock).
    ///
    /// Returns `self.now` (no skip possible) when a core is ready to
    /// issue, a pending barrier release is due, or any component reports
    /// immediate activity. Every cycle strictly between `self.now` and the
    /// returned value is a provable no-op: all cores are blocked past it,
    /// no scheduled action is due, the Miss bus neither completes nor
    /// grants, and the interconnect neither lands a transit nor arbitrates
    /// (its grant logic does not mutate round-robin state when no request
    /// is asserted, so skipping preserves grant order bit-for-bit).
    // mot3d-lint: no-alloc
    fn next_wake(&self) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let merge = |w: &mut Option<u64>, t: u64| *w = Some(w.map_or(t, |x| x.min(t)));
        if !self.paused {
            // A paused cluster never issues, so core states cannot create
            // activity; unpaused, a Ready core issues this very cycle.
            if self.ready_mask != 0 {
                return Some(self.now);
            }
            // Everyone unfinished is at the barrier: the release fires on
            // the next step's barrier check. (No core is Ready here, so
            // barrier + finished covering all cores means none is
            // computing or waiting.)
            if self.barrier_mask != 0
                && self.barrier_mask.count_ones() as usize + self.finished_cores == self.cores.len()
            {
                return Some(self.now);
            }
            debug_assert!({
                let mut min = u64::MAX;
                let mut computing = self.computing_mask;
                while computing != 0 {
                    let idx = computing.trailing_zeros() as usize;
                    computing &= computing - 1;
                    min = min.min(self.until[idx]);
                }
                min == self.until_min
            });
            if self.until_min != u64::MAX {
                merge(&mut wake, self.until_min);
            }
        }
        if let Some(t) = self.events.next_time() {
            merge(&mut wake, t);
        }
        if let Some(t) = self.bus.next_activity(self.now) {
            merge(&mut wake, t);
        }
        if let Some(t) = self.interconnect.next_activity(self.now) {
            merge(&mut wake, t);
        }
        if let Some(t) = self.dram.next_activity(self.now) {
            merge(&mut wake, t);
        }
        wake.map(|w| w.max(self.now))
    }

    /// Event-driven advance: jumps `now` to the next wake-up (clamped to
    /// `limit`) and steps once. With no upcoming wake-up, jumps straight
    /// to `limit` so the caller's cycle-limit check fires — exactly where
    /// per-cycle stepping would have idled its way to.
    // mot3d-lint: no-alloc
    fn advance_with<O: Observer>(&mut self, limit: u64, obs: &mut O) {
        match self.next_wake() {
            Some(wake) => {
                if wake > self.now {
                    self.now = wake.min(limit);
                }
            }
            None => self.now = limit,
        }
        if self.now < limit {
            self.step_with(obs);
            if O::ENABLED {
                // Between steps: outside the no-alloc hot path, so a
                // buffered observer can drain its ring here.
                obs.maintain();
            }
        }
    }

    /// Runs to completion, event-driven: idle stretches where every core
    /// is blocked are skipped in one jump instead of ticked cycle by
    /// cycle. Produces bit-identical metrics to calling [`Cluster::step`]
    /// in a loop.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if `max_cycles` is exceeded (a deadlock or
    /// runaway configuration).
    pub fn run_to_completion(&mut self) -> Result<(), SimError> {
        self.run_to_completion_with(&mut NullObserver)
    }

    /// [`Cluster::run_to_completion`] with an [`Observer`]: samples the
    /// pre-run state once, then after every executed step, and lets the
    /// observer [`Observer::maintain`] itself between steps. With
    /// [`NullObserver`] every hook folds away and this is exactly
    /// `run_to_completion`.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if `max_cycles` is exceeded (a deadlock or
    /// runaway configuration).
    pub fn run_to_completion_with<O: Observer>(&mut self, obs: &mut O) -> Result<(), SimError> {
        if O::ENABLED {
            // Baseline sample: the cycle-zero state every timeline opens
            // with (all cores Ready, everything idle).
            obs.sample(self);
            obs.maintain();
        }
        while !self.is_done() {
            if self.now >= self.config.max_cycles {
                return Err(SimError::CycleLimit(self.config.max_cycles));
            }
            self.advance_with(self.config.max_cycles, obs);
        }
        Ok(())
    }

    /// Advances (event-driven) until `cycle` is reached or the cluster
    /// finishes, whichever comes first. State afterwards is bit-identical
    /// to `while !is_done() && now() < cycle { step() }` — the idle cycles
    /// between the last event before `cycle` and `cycle` itself change
    /// nothing.
    pub fn run_until(&mut self, cycle: u64) {
        self.run_until_with(cycle, &mut NullObserver);
    }

    /// [`Cluster::run_until`] with an [`Observer`] (see
    /// [`Cluster::run_to_completion_with`] for the sampling contract).
    pub fn run_until_with<O: Observer>(&mut self, cycle: u64, obs: &mut O) {
        while !self.is_done() && self.now < cycle {
            match self.next_wake() {
                Some(wake) if wake < cycle => {
                    if wake > self.now {
                        self.now = wake;
                    }
                    self.step_with(obs);
                    if O::ENABLED {
                        obs.maintain();
                    }
                }
                _ => self.now = cycle,
            }
        }
    }

    /// Drains all in-flight work without issuing new instructions
    /// (pre-transition quiescence). Event-driven like
    /// [`Cluster::run_to_completion`].
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if draining does not converge.
    pub fn drain(&mut self) -> Result<(), SimError> {
        self.paused = true;
        let limit = self.now + 1_000_000;
        while !(self.txs.is_empty() && self.events.is_empty() && self.bus.is_idle()) {
            if self.now >= limit {
                self.paused = false;
                return Err(SimError::CycleLimit(limit));
            }
            self.advance_with(limit, &mut NullObserver);
        }
        self.paused = false;
        Ok(())
    }

    /// Restores the cluster to its freshly-constructed state in the
    /// *current* configuration and re-seeds the workload streams — without
    /// reallocating the caches or re-deriving the physical models, which
    /// is what makes sweeps (fig6/fig7/fig8, property tests) much cheaper
    /// than rebuilding per run. A reset cluster behaves bit-identically to
    /// a newly built one: caches, DRAM, golden memory, the Miss bus's and
    /// interconnect's round-robin state, and all counters return to cycle
    /// zero.
    ///
    /// # Errors
    ///
    /// [`SimError::StreamCountMismatch`] if the stream count does not
    /// match the active core count.
    pub fn reset(&mut self, streams: Vec<CoreStream>) -> Result<(), SimError> {
        if streams.len() != self.cores.len() {
            return Err(SimError::StreamCountMismatch {
                streams: streams.len(),
                active_cores: self.cores.len(),
            });
        }
        for (core, stream) in self.cores.iter_mut().zip(streams) {
            core.stream = stream;
            core.l1.clear();
            core.busy_cycles = 0;
            core.retired = 0;
            core.finished_at = None;
        }
        self.statuses.fill(CoreStatus::Ready);
        self.ready_mask = u32::MAX >> (32 - self.cores.len() as u32);
        self.computing_mask = 0;
        self.barrier_mask = 0;
        self.until.fill(0);
        self.until_min = u64::MAX;
        for (b, bank) in self.banks.iter_mut().enumerate() {
            bank.cache.clear();
            bank.powered = self.mot_cfg.as_ref().is_none_or(|c| c.is_bank_active(b));
            bank.free_at = 0;
            bank.reads = 0;
            bank.writes = 0;
        }
        self.interconnect.reset();
        self.bus.reset();
        self.dram.reset();
        if let Some(golden) = &mut self.golden {
            *golden = GoldenMemory::new();
        }
        self.txs.clear();
        self.store_tokens = 0;
        self.events.clear();
        self.now = 0;
        self.paused = false;
        self.finished_cores = 0;
        self.l1_hits = 0;
        self.l1_misses = 0;
        self.l2_hits = 0;
        self.l2_misses = 0;
        self.dram_accesses = 0;
        self.invalidations = 0;
        self.recalls = 0;
        self.l2_latency = LatencyStats::default();
        self.l1_reads = 0;
        self.l1_writes = 0;
        Ok(())
    }

    /// The current power state.
    pub fn power_state(&self) -> PowerState {
        self.config.power_state
    }

    /// Collects final metrics (consumes nothing; callable after
    /// [`Cluster::run_to_completion`]).
    pub fn metrics(&self, label: impl Into<String>) -> Metrics {
        let cycles = self.now;
        let exec_time = self.tech.period() * cycles as f64;
        let instructions: u64 = self.cores.iter().map(|c| c.retired).sum();

        let mut energy = EnergyBreakdown::default();
        for c in &self.cores {
            let busy = c.busy_cycles;
            let span = c.finished_at.unwrap_or(cycles).max(busy);
            let stall = span - busy;
            energy.cores += self.core_power.energy(busy, stall, exec_time, true);
        }
        // Private L1s: per-access dynamic + leakage while powered.
        energy.l1 += self.l1_model.read_energy() * self.l1_reads as f64
            + self.l1_model.write_energy() * self.l1_writes as f64
            + self.l1_model.leakage() * exec_time * self.cores.len() as f64;
        let powered_banks = self.banks.iter().filter(|b| b.powered).count() as f64;
        let l2_reads: u64 = self.banks.iter().map(|b| b.reads).sum();
        let l2_writes: u64 = self.banks.iter().map(|b| b.writes).sum();
        energy.l2 += self.l2_model.read_energy() * l2_reads as f64
            + self.l2_model.write_energy() * l2_writes as f64
            + self.l2_model.leakage() * exec_time * powered_banks;
        energy.interconnect +=
            self.interconnect.dynamic_energy() + self.interconnect.leakage_power() * exec_time;
        energy.dram += self.dram_power.energy(self.dram_accesses, exec_time);

        Metrics {
            label: label.into(),
            cycles,
            exec_time,
            instructions,
            l1_hits: self.l1_hits,
            l1_misses: self.l1_misses,
            l2_hits: self.l2_hits,
            l2_misses: self.l2_misses,
            dram_accesses: self.dram_accesses,
            l2_latency: self.l2_latency.clone(),
            invalidations: self.invalidations,
            recalls: self.recalls,
            interconnect: self.interconnect.stats(),
            energy,
        }
    }

    /// Runtime power-state transition (§III): drain, flush the lines that
    /// no longer belong (dirty ones to DRAM over the Miss bus), swap the
    /// interconnect configuration, resume. Core counts must match — core
    /// migration is an OS concern outside this model.
    ///
    /// # Errors
    ///
    /// [`SimError`] if the new state changes the core count, the
    /// interconnect is not the reconfigurable MoT, or draining fails.
    pub fn switch_power_state(&mut self, new_state: PowerState) -> Result<(), SimError> {
        if self.mot_cfg.is_none() {
            return Err(SimError::NotReconfigurable);
        }
        if new_state.active_cores() != self.config.power_state.active_cores() {
            return Err(SimError::CoreCountChange {
                from: self.config.power_state.active_cores(),
                to: new_state.active_cores(),
            });
        }
        self.drain()?;

        let new_net = MotNetwork::new(
            &self.tech,
            &self.floorplan,
            MotTopology::date16(),
            &MotTimingParams::default(),
            new_state,
        )?;
        let new_cfg = new_net.configuration().clone();

        // Flush every line whose serving bank changes (covers both
        // gating — bank turns off — and un-gating — folded lines going
        // home). Dirty lines ride the Miss bus to DRAM.
        let mut flushed = 0u64;
        for bank_idx in 0..TOTAL_BANKS {
            let to_flush: Vec<LineAddr> = self.banks[bank_idx]
                .cache
                .resident_addrs()
                .filter(|line| new_cfg.remap_bank(self.map.home_bank(*line)) != bank_idx)
                .collect();
            for line in to_flush {
                let ev = self.banks[bank_idx]
                    .cache
                    .invalidate(line)
                    // mot3d-lint: allow(P1) -- `line` came from this cache's own resident_lines()
                    .expect("line is resident");
                for h in ev.payload.sharers() {
                    self.invalidate_l1(h, line);
                    self.invalidations += 1;
                }
                if let Some(owner) = ev.payload.owner() {
                    self.invalidate_l1(owner, line);
                    self.invalidations += 1;
                }
                if ev.dirty {
                    self.dram.write_line(ev.addr, ev.data);
                    self.dram_accesses += 1;
                    self.bus.enqueue(Transfer {
                        requester: bank_idx,
                        tag: WB_TAG,
                    });
                    flushed += 1;
                }
            }
        }
        let _ = flushed;
        // Let the flush traffic drain over the bus (paper: write back
        // before power-off).
        self.drain()?;

        for (b, bank) in self.banks.iter_mut().enumerate() {
            bank.powered = new_cfg.is_bank_active(b);
        }
        self.interconnect = ClusterNet::Mot(new_net);
        self.mot_cfg = Some(new_cfg);
        self.config.power_state = new_state;
        Ok(())
    }

    /// Read-only view of the golden memory (when `check_golden` is on).
    pub fn golden(&self) -> Option<&GoldenMemory> {
        self.golden.as_ref()
    }

    /// Verifies the entire cache hierarchy against the golden memory:
    /// every L2-resident line and every golden line must agree (L1s are
    /// kept coherent with L2 by construction). Panics on mismatch.
    pub fn verify_against_golden(&self) {
        let Some(golden) = &self.golden else {
            return;
        };
        for (line, want) in golden.iter() {
            let bank = self.serving_bank(self.map.home_bank(line));
            let got = match self.banks[bank].cache.peek(line) {
                Some((v, _)) => v,
                None => self.dram.read_line(line),
            };
            assert_eq!(got, want, "hierarchy lost a store at {line:?}");
        }
    }
}

/// Read-only observability probes: the surface [`Observer`]
/// implementations sample from. All of these are plain field reads or
/// O(components) scans — none allocates, so calling them from
/// [`Observer::sample`] respects the hot-path `no-alloc` invariant.
impl Cluster {
    /// Number of active (ungated) cores; observer core indices range
    /// over `0..active_core_count()`.
    pub fn active_core_count(&self) -> usize {
        self.cores.len()
    }

    /// Physical grid id of active core `idx` (gated power states leave
    /// holes in the physical numbering).
    pub fn core_physical_id(&self, idx: usize) -> usize {
        self.cores[idx].physical
    }

    /// What active core `idx` is doing this cycle.
    pub fn core_activity(&self, idx: usize) -> CoreActivity {
        match self.statuses[idx] {
            CoreStatus::Ready => CoreActivity::Ready,
            CoreStatus::Computing { .. } => CoreActivity::Computing,
            CoreStatus::WaitingMem => CoreActivity::WaitingMem,
            CoreStatus::WaitingIFetch => CoreActivity::WaitingIFetch,
            CoreStatus::AtBarrier { .. } => CoreActivity::AtBarrier,
            CoreStatus::Finished => CoreActivity::Finished,
        }
    }

    /// Physical L2 banks (including gated ones).
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Whether bank `bank` is powered in the current configuration.
    pub fn bank_powered(&self, bank: usize) -> bool {
        self.banks[bank].powered
    }

    /// Whether bank `bank` is mid-access this cycle (its SRAM array is
    /// occupied until a scheduled completion).
    pub fn bank_busy(&self, bank: usize) -> bool {
        self.banks[bank].free_at > self.now
    }

    /// Transfers queued on the Miss bus (excluding any granted one).
    pub fn bus_queue_depth(&self) -> usize {
        self.bus.queued()
    }

    /// The DRAM row left open by the last access (`None` before the
    /// first access or under closed-page timing assumptions).
    pub fn dram_open_row(&self) -> Option<u64> {
        self.dram.open_row()
    }

    /// Outstanding memory transactions (issued, not yet delivered).
    pub fn in_flight_transactions(&self) -> usize {
        self.txs.len()
    }

    /// Actions pending in the timing-wheel event queue.
    pub fn event_queue_depth(&self) -> usize {
        self.events.len()
    }

    /// Running `(hits, misses)` counters of the shared L2.
    pub fn l2_hit_counts(&self) -> (u64, u64) {
        (self.l2_hits, self.l2_misses)
    }

    /// Occupancy snapshot of whichever interconnect this cluster runs.
    pub fn interconnect_probe(&self) -> InterconnectProbe {
        match &self.interconnect {
            ClusterNet::Mot(n) => {
                let topo = n.configuration().topology();
                InterconnectProbe::Mot(MotProbe {
                    waiting_banks: n.waiting_banks(),
                    transit_banks: n.transit_banks(),
                    transit_requests: n.transit_request_depth(),
                    transit_responses: n.transit_response_depth(),
                    routing_levels: topo.routing_levels(),
                    banks: topo.banks(),
                })
            }
            ClusterNet::Noc(n) => InterconnectProbe::Noc(NocProbe {
                busy_ports: n.busy_ports(self.now),
                busy_buses: n.busy_buses(self.now),
                routers: n.router_count(),
            }),
        }
    }
}
