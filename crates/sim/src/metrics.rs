//! Run metrics: cycles, latency distributions, energy, EDP.

use mot3d_mot::traits::InterconnectStats;
use mot3d_phys::power::EnergyBreakdown;
use mot3d_phys::units::{JouleSeconds, Seconds};

/// Online latency statistics (count / mean / max + coarse histogram).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    count: u64,
    total: u64,
    max: u64,
    /// Buckets: [0-8), [8-16), [16-32), [32-64), [64-128), [128-256), ≥256.
    buckets: [u64; 7],
}

impl LatencyStats {
    /// Records one sample (cycles).
    pub fn record(&mut self, cycles: u64) {
        self.count += 1;
        self.total += cycles;
        self.max = self.max.max(cycles);
        let b = match cycles {
            0..=7 => 0,
            8..=15 => 1,
            16..=31 => 2,
            32..=63 => 3,
            64..=127 => 4,
            128..=255 => 5,
            _ => 6,
        };
        self.buckets[b] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in cycles (exact, unlike the derived mean) —
    /// the field serializers need to round-trip the stats losslessly.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rebuilds stats from their raw fields, the inverse of reading
    /// [`LatencyStats::count`]/[`LatencyStats::total`]/
    /// [`LatencyStats::max`]/[`LatencyStats::buckets`]. Used by result
    /// stores that persist metrics and must replay them bit-identically.
    pub fn from_raw(count: u64, total: u64, max: u64, buckets: [u64; 7]) -> Self {
        LatencyStats {
            count,
            total,
            max,
            buckets,
        }
    }

    /// Mean in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The coarse histogram buckets.
    pub fn buckets(&self) -> &[u64; 7] {
        &self.buckets
    }
}

/// Everything a run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Human-readable run label (program @ interconnect @ state).
    pub label: String,
    /// Total execution cycles.
    pub cycles: u64,
    /// Execution wall time at the cluster clock.
    pub exec_time: Seconds,
    /// Instructions retired over all cores.
    pub instructions: u64,
    /// L1 data-cache hits / misses (loads + stores).
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 accesses that hit.
    pub l2_hits: u64,
    /// L2 accesses that missed to DRAM.
    pub l2_misses: u64,
    /// DRAM accesses (L2 refills + writebacks + instruction refills).
    pub dram_accesses: u64,
    /// Round-trip L2 access latency as seen by the cores (inject →
    /// delivery) — the quantity Fig. 6(a) plots.
    pub l2_latency: LatencyStats,
    /// Coherence events: invalidations sent.
    pub invalidations: u64,
    /// Coherence events: dirty recalls from owning L1s.
    pub recalls: u64,
    /// Interconnect-level statistics.
    pub interconnect: InterconnectStats,
    /// Per-component energy.
    pub energy: EnergyBreakdown,
}

impl Metrics {
    /// The paper's power-efficiency metric: cluster energy × execution
    /// time (Fig. 7(a) / Fig. 8).
    pub fn edp(&self) -> JouleSeconds {
        self.energy.edp(self.exec_time)
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1 miss ratio.
    pub fn l1_miss_ratio(&self) -> f64 {
        let acc = self.l1_hits + self.l1_misses;
        if acc == 0 {
            0.0
        } else {
            self.l1_misses as f64 / acc as f64
        }
    }

    /// L2 miss ratio.
    pub fn l2_miss_ratio(&self) -> f64 {
        let acc = self.l2_hits + self.l2_misses;
        if acc == 0 {
            0.0
        } else {
            self.l2_misses as f64 / acc as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_track_mean_and_max() {
        let mut s = LatencyStats::default();
        for v in [10, 20, 30] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.max(), 30);
    }

    #[test]
    fn histogram_buckets_cover_ranges() {
        let mut s = LatencyStats::default();
        for v in [0, 7, 8, 16, 32, 64, 128, 256, 1000] {
            s.record(v);
        }
        assert_eq!(s.buckets(), &[2, 1, 1, 1, 1, 1, 2]);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn raw_fields_round_trip() {
        let mut s = LatencyStats::default();
        for v in [3, 9, 17, 900] {
            s.record(v);
        }
        let rebuilt = LatencyStats::from_raw(s.count(), s.total(), s.max(), *s.buckets());
        assert_eq!(rebuilt, s);
        assert_eq!(s.total(), 3 + 9 + 17 + 900);
    }
}
