//! Simulation configuration (Table I).

use mot3d_mem::dram::DramKind;
use mot3d_mot::power_state::PowerState;
use mot3d_noc::NocTopologyKind;

/// Which interconnect connects cores to the stacked L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterconnectChoice {
    /// The paper's reconfigurable circuit-switched 3-D MoT.
    Mot,
    /// One of the packet-switched baselines (§IV / Fig. 6).
    Noc(NocTopologyKind),
}

impl std::fmt::Display for InterconnectChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterconnectChoice::Mot => write!(f, "3-D MoT"),
            InterconnectChoice::Noc(kind) => write!(f, "{kind}"),
        }
    }
}

/// Full cluster configuration for one run.
///
/// Hashable so run drivers can key reusable [`crate::Cluster`]s by
/// configuration (see [`crate::runner::ClusterPool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Interconnect under test.
    pub interconnect: InterconnectChoice,
    /// Power state (baseline NoCs only support `Full`).
    pub power_state: PowerState,
    /// DRAM option (Table I: 200/63/42 ns).
    pub dram: DramKind,
    /// Use the open-page DRAM refinement instead of the paper's flat
    /// latency.
    pub dram_open_page: bool,
    /// Seed for the workload streams.
    pub seed: u64,
    /// Run the cluster against a golden memory and panic on any load
    /// mismatch (tests; slows the run slightly).
    pub check_golden: bool,
    /// Cycles one Miss-bus line transfer occupies (32 B over a 64-bit
    /// bus).
    pub miss_bus_occupancy: u64,
    /// Safety valve: abort if a run exceeds this many cycles.
    pub max_cycles: u64,
}

impl SimConfig {
    /// The paper's default setup: 3-D MoT, full connection, 200 ns DRAM.
    pub fn date16() -> Self {
        SimConfig {
            interconnect: InterconnectChoice::Mot,
            power_state: PowerState::full(),
            dram: DramKind::OffChipDdr3,
            dram_open_page: false,
            seed: 0x0DA7E2016,
            check_golden: false,
            miss_bus_occupancy: 4,
            max_cycles: 500_000_000,
        }
    }

    /// Same configuration with a different interconnect.
    pub fn with_interconnect(mut self, interconnect: InterconnectChoice) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Same configuration with a different power state.
    pub fn with_power_state(mut self, state: PowerState) -> Self {
        self.power_state = state;
        self
    }

    /// Same configuration with a different DRAM option.
    pub fn with_dram(mut self, dram: DramKind) -> Self {
        self.dram = dram;
        self
    }

    /// Same configuration with the open-page DRAM refinement toggled.
    pub fn with_open_page(mut self, open_page: bool) -> Self {
        self.dram_open_page = open_page;
        self
    }
}

impl Default for SimConfig {
    /// Defaults to [`SimConfig::date16`].
    fn default() -> Self {
        SimConfig::date16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date16_defaults_match_table1() {
        let c = SimConfig::date16();
        assert_eq!(c.dram, DramKind::OffChipDdr3);
        assert_eq!(c.power_state, PowerState::full());
        assert_eq!(c.interconnect, InterconnectChoice::Mot);
        assert!(!c.dram_open_page);
    }

    #[test]
    fn builder_methods_update_fields() {
        let c = SimConfig::date16()
            .with_dram(DramKind::WideIo)
            .with_power_state(PowerState::pc4_mb8())
            .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d));
        assert_eq!(c.dram, DramKind::WideIo);
        assert_eq!(c.power_state, PowerState::pc4_mb8());
        assert!(matches!(c.interconnect, InterconnectChoice::Noc(_)));
    }

    #[test]
    fn display_names() {
        assert_eq!(InterconnectChoice::Mot.to_string(), "3-D MoT");
        assert_eq!(
            InterconnectChoice::Noc(NocTopologyKind::Mesh3d).to_string(),
            "True 3-D Mesh"
        );
    }
}
