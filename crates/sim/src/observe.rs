//! Zero-cost-when-off observation hooks for the cluster step path.
//!
//! An [`Observer`] is a generic parameter on the `_with` variants of the
//! [`Cluster`](crate::Cluster) run loop ([`Cluster::step_with`],
//! [`Cluster::run_to_completion_with`], …). The default
//! [`NullObserver`] is a zero-sized type whose `ENABLED` constant is
//! `false`: every `if O::ENABLED { … }` guard in the hot loop folds away
//! at monomorphisation, so the untraced build compiles to exactly the
//! machine code it had before the hook existed (pinned by the committed
//! BENCH checksums and `mot3d perf check`).
//!
//! The simulator is event-driven: state only changes inside
//! [`Cluster::step`], and the wake-hint protocol jumps `now` over cycles
//! that are provably no-ops. One [`Observer::sample`] call at the end of
//! every executed step therefore sees *every* state transition — there is
//! nothing to observe in the skipped cycles. Samples receive `&Cluster`
//! and read component state through the read-only probe surface
//! ([`Cluster::core_activity`], [`Cluster::bank_busy`],
//! [`Cluster::interconnect_probe`], …), which allocates nothing.
//!
//! [`Observer::maintain`] runs between steps (outside the `no-alloc`
//! hot-path regions); buffered observers such as `mot3d_trace`'s
//! `TraceObserver` flush their pre-sized event ring there.
//!
//! [`Cluster::step_with`]: crate::Cluster::step_with
//! [`Cluster::run_to_completion_with`]: crate::Cluster::run_to_completion_with
//! [`Cluster::step`]: crate::Cluster::step
//! [`Cluster::core_activity`]: crate::Cluster::core_activity
//! [`Cluster::bank_busy`]: crate::Cluster::bank_busy
//! [`Cluster::interconnect_probe`]: crate::Cluster::interconnect_probe

use crate::cluster::Cluster;

/// A hook on the cluster step path, sampled at every executed step.
///
/// Implementations with `ENABLED = false` must keep both methods empty:
/// the run loop only *calls* them behind `if O::ENABLED` guards, so the
/// disabled case costs nothing at all.
pub trait Observer {
    /// Whether this observer receives samples. Guards in the step path
    /// test this associated constant, so a `false` observer
    /// monomorphizes to the unobserved loop.
    const ENABLED: bool;

    /// Called at the end of every executed [`Cluster::step`], before
    /// `now` advances, with the cluster in its post-step state. Runs
    /// inside the `no-alloc` hot path: implementations must not
    /// allocate here (buffer into pre-sized storage and flush from
    /// [`Observer::maintain`] instead).
    ///
    /// [`Cluster::step`]: crate::Cluster::step
    fn sample(&mut self, cluster: &Cluster);

    /// Called between steps, outside the hot-path `no-alloc` regions.
    /// Buffered observers drain their rings here; the default does
    /// nothing.
    fn maintain(&mut self) {}
}

/// The default no-op observer: zero-sized, disabled, and guaranteed to
/// monomorphize away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn sample(&mut self, _cluster: &Cluster) {}

    #[inline(always)]
    fn maintain(&mut self) {}
}

/// What a core is doing this cycle, as seen by an observer.
///
/// A public mirror of the cluster's internal per-core status (which
/// carries scheduling payloads — compute deadlines, barrier ids — that
/// observers do not need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreActivity {
    /// Ready to issue an instruction this cycle.
    Ready,
    /// Executing a multi-cycle compute burst.
    Computing,
    /// Stalled on a data-memory round trip.
    WaitingMem,
    /// Stalled on an instruction refill.
    WaitingIFetch,
    /// Parked at a synchronisation barrier.
    AtBarrier,
    /// Retired its whole stream.
    Finished,
}

impl CoreActivity {
    /// A short stable label for trace tracks.
    pub fn label(self) -> &'static str {
        match self {
            CoreActivity::Ready => "Ready",
            CoreActivity::Computing => "Computing",
            CoreActivity::WaitingMem => "Stalled (mem)",
            CoreActivity::WaitingIFetch => "Stalled (ifetch)",
            CoreActivity::AtBarrier => "Barrier",
            CoreActivity::Finished => "Finished",
        }
    }
}

/// A read-only snapshot of the interconnect's occupancy, shaped by which
/// network the cluster runs.
#[derive(Debug, Clone, Copy)]
pub enum InterconnectProbe {
    /// The circuit-switched Mesh-of-Trees.
    Mot(MotProbe),
    /// One of the packet-switched baselines.
    Noc(NocProbe),
}

/// Occupancy snapshot of the MoT fabric.
#[derive(Debug, Clone, Copy)]
pub struct MotProbe {
    /// Bit `b` set while at least one request is queued at bank `b`'s
    /// arbitration tree.
    pub waiting_banks: u64,
    /// Bit `b` set while a request is still in transit down the tree
    /// toward bank `b`.
    pub transit_banks: u64,
    /// Requests in flight between cores and bank arbiters.
    pub transit_requests: usize,
    /// Responses in flight back to the cores.
    pub transit_responses: usize,
    /// Routing levels in the (possibly gated) tree; level `l` has
    /// `2^(l-1)` switches, each covering `banks >> (l-1)` consecutive
    /// banks (MSB-first splits).
    pub routing_levels: u32,
    /// Physical banks spanned by the tree.
    pub banks: usize,
}

impl MotProbe {
    /// Number of level-`level` switches (1-based from the root) whose
    /// bank subtree currently carries traffic (a busy or awaited bank).
    /// This is the per-level occupancy the MoT timeline tracks plot.
    pub fn level_occupancy(&self, level: u32) -> usize {
        if level == 0 || level > self.routing_levels || self.banks == 0 {
            return 0;
        }
        let active = self.waiting_banks | self.transit_banks;
        let span = self.banks >> (level - 1);
        if span == 0 {
            return 0;
        }
        let mut occupied = 0;
        let mut lo = 0;
        while lo < self.banks {
            let mask = if span >= 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << lo
            };
            if active & mask != 0 {
                occupied += 1;
            }
            lo += span;
        }
        occupied
    }
}

/// Occupancy snapshot of a packet-switched baseline.
#[derive(Debug, Clone, Copy)]
pub struct NocProbe {
    /// Directed router→router ports serialising a packet right now.
    pub busy_ports: usize,
    /// Vertical buses serialising a packet right now.
    pub busy_buses: usize,
    /// Routers in the topology.
    pub routers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_occupancy_counts_subtrees_with_traffic() {
        let probe = MotProbe {
            waiting_banks: 1,       // bank 0
            transit_banks: 1 << 31, // bank 31
            transit_requests: 0,
            transit_responses: 0,
            routing_levels: 5,
            banks: 32,
        };
        // Root switch covers everything.
        assert_eq!(probe.level_occupancy(1), 1);
        // Level 2 splits by MSB: both halves carry traffic.
        assert_eq!(probe.level_occupancy(2), 2);
        // Leaf level: exactly the two banks.
        assert_eq!(probe.level_occupancy(5), 2);
        // Out-of-range levels are empty, not a panic.
        assert_eq!(probe.level_occupancy(0), 0);
        assert_eq!(probe.level_occupancy(6), 0);
    }

    #[test]
    fn idle_fabric_has_no_occupancy() {
        let probe = MotProbe {
            waiting_banks: 0,
            transit_banks: 0,
            transit_requests: 0,
            transit_responses: 0,
            routing_levels: 5,
            banks: 32,
        };
        for level in 1..=5 {
            assert_eq!(probe.level_occupancy(level), 0);
        }
    }

    #[test]
    fn activity_labels_are_stable() {
        assert_eq!(CoreActivity::Ready.label(), "Ready");
        assert_eq!(CoreActivity::Computing.label(), "Computing");
        assert_eq!(CoreActivity::AtBarrier.label(), "Barrier");
    }
}
