//! # mot3d-sim — the multicore cluster simulator (Graphite substitute)
//!
//! "For the performance evaluation of real applications, we employed
//! Graphite \[11\]" (§IV). This crate plays Graphite's role: a
//! cycle-accurate model of the paper's cluster — 16 in-order 1 GHz cores
//! with private L1 data caches, a shared 32-bank stacked L2 reached over a
//! swappable interconnect (the 3-D MoT or any of the three packet-switched
//! baselines), a round-robin Miss bus, and Table I's three DRAM options —
//! driving the SPLASH-2-style workloads of `mot3d-workloads` and reporting
//! execution time, L2 access latency, per-component energy, and EDP.
//!
//! * [`config`] — run configuration (interconnect, power state, DRAM);
//! * [`cluster`] — the cluster model, including runtime power-state
//!   transitions with dirty-bank flushing (§III);
//! * [`metrics`] — cycles, latency histograms, energy breakdown, EDP;
//! * [`observe`] — zero-cost-when-off observation hooks on the step path
//!   (the seam `mot3d_trace` plugs its timeline tracer into);
//! * [`runner`] — one-call experiment driver.
//!
//! # Quick example
//!
//! ```
//! use mot3d_sim::{run_benchmark, SimConfig};
//! use mot3d_workloads::SplashBenchmark;
//!
//! let m = run_benchmark(SplashBenchmark::Fft, 0.002, &SimConfig::date16())?;
//! println!("fft: {} cycles, mean L2 latency {:.1}", m.cycles, m.l2_latency.mean());
//! # Ok::<(), mot3d_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod config;
mod error;
pub mod metrics;
pub mod observe;
pub mod runner;

pub use cluster::Cluster;
pub use config::{InterconnectChoice, SimConfig};
pub use error::SimError;
pub use metrics::Metrics;
pub use observe::{NullObserver, Observer};
pub use runner::{
    run_benchmark, run_source, run_spec, run_spec_observed, set_local_pool_capacity,
    shrink_local_pool, ClusterPool,
};
