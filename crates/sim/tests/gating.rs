//! Runtime power-state transition tests (§III): banks are gated and
//! un-gated mid-run, dirty lines are flushed, and no store is ever lost.

use mot3d_mot::PowerState;
use mot3d_sim::{Cluster, SimConfig};
use mot3d_workloads::{streams, SplashBenchmark, WorkloadSpec};

fn spec() -> WorkloadSpec {
    let mut s = SplashBenchmark::Fft.spec().scaled(0.005);
    s.working_set_bytes = 128 * 1024; // enough dirty lines to matter
    s
}

fn checked_config(state: PowerState) -> SimConfig {
    let mut cfg = SimConfig::date16().with_power_state(state);
    cfg.check_golden = true;
    cfg
}

/// Runs `cycles` steps (or to completion).
fn run_some(cluster: &mut Cluster, cycles: u64) {
    for _ in 0..cycles {
        if cluster.is_done() {
            return;
        }
        cluster.step();
    }
}

#[test]
fn bank_gating_mid_run_preserves_all_stores() {
    let cfg = checked_config(PowerState::full());
    let s = spec();
    let mut cluster = Cluster::new(cfg, streams(&s, 16, 7)).unwrap();

    run_some(&mut cluster, 20_000);
    // Gate 24 of the 32 banks: dirty lines in them must be flushed.
    cluster.switch_power_state(PowerState::pc16_mb8()).unwrap();
    cluster.verify_against_golden();

    run_some(&mut cluster, 20_000);
    // Un-gate again: folded lines must go home without losing data.
    cluster.switch_power_state(PowerState::full()).unwrap();
    cluster.verify_against_golden();

    cluster.run_to_completion().unwrap();
    cluster.verify_against_golden();
}

#[test]
fn repeated_transitions_are_stable() {
    let cfg = checked_config(PowerState::full());
    let s = spec();
    let mut cluster = Cluster::new(cfg, streams(&s, 16, 21)).unwrap();
    let cycle_states = [
        PowerState::pc16_mb8(),
        PowerState::full(),
        PowerState::new(16, 16).unwrap(),
        PowerState::pc16_mb8(),
        PowerState::full(),
    ];
    for state in cycle_states {
        run_some(&mut cluster, 5_000);
        if cluster.is_done() {
            break;
        }
        cluster.switch_power_state(state).unwrap();
        cluster.verify_against_golden();
        assert_eq!(cluster.power_state(), state);
    }
    cluster.run_to_completion().unwrap();
    cluster.verify_against_golden();
}

#[test]
fn transition_cannot_change_core_count() {
    let cfg = checked_config(PowerState::full());
    let s = spec();
    let mut cluster = Cluster::new(cfg, streams(&s, 16, 3)).unwrap();
    run_some(&mut cluster, 1_000);
    let err = cluster
        .switch_power_state(PowerState::pc4_mb32())
        .unwrap_err();
    assert!(err.to_string().contains("core count"));
}

#[test]
fn gated_runs_complete_with_fewer_resources() {
    // PC16-MB8 completes the same program; with a large working set it
    // needs more cycles than Full (the Fig. 7(b) penalty). The footprint
    // must actually be touched repeatedly and exceed 8 × 64 KB, so this
    // uses a purpose-built spec rather than a scaled-down benchmark.
    let mut large = SplashBenchmark::Cholesky.spec();
    large.working_set_bytes = 768 * 1024; // > 512 KB of 8 banks, < 2 MB
    large.mem_ratio = 0.4;
    large.locality = 0.4;
    large.shared_fraction = 0.1;
    large.serial_fraction = 0.05;
    large.total_ops = 240_000;
    large.phases = 4;
    let full = {
        let mut c =
            Cluster::new(checked_config(PowerState::full()), streams(&large, 16, 5)).unwrap();
        c.run_to_completion().unwrap();
        c.verify_against_golden();
        c.metrics("full")
    };
    let gated = {
        let mut c = Cluster::new(
            checked_config(PowerState::pc16_mb8()),
            streams(&large, 16, 5),
        )
        .unwrap();
        c.run_to_completion().unwrap();
        c.verify_against_golden();
        c.metrics("pc16-mb8")
    };
    assert!(
        gated.cycles > full.cycles,
        "large-footprint program must slow down on 8 banks: {} vs {}",
        gated.cycles,
        full.cycles
    );
    assert!(gated.l2_misses > full.l2_misses);
}
