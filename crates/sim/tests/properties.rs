//! Property-based tests of the whole simulated cluster (DESIGN.md §5).

use mot3d_mot::PowerState;
use mot3d_noc::NocTopologyKind;
use mot3d_sim::{run_spec, InterconnectChoice, SimConfig};
use mot3d_workloads::{SplashBenchmark, WorkloadSpec};
use proptest::prelude::*;

/// A small random-but-valid workload spec.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0usize..8,
        0.0..0.5f64,   // serial fraction
        0.05..0.45f64, // mem ratio
        0.0..0.6f64,   // write fraction
        0.3..0.95f64,  // locality
        0.0..0.8f64,   // hot fraction
        1u32..6,       // phases
        2_000u64..12_000,
    )
        .prop_map(
            |(bench, serial, mem, write, locality, hot, phases, ops)| WorkloadSpec {
                serial_fraction: serial,
                mem_ratio: mem,
                write_fraction: write,
                locality,
                hot_fraction: hot,
                phases,
                total_ops: ops,
                ..SplashBenchmark::all()[bench].spec()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid workload completes on any power state with golden checks
    /// on — the cluster never deadlocks, never loses a store.
    #[test]
    fn cluster_never_loses_stores(spec in spec_strategy(), state_pick in 0usize..4) {
        let state = PowerState::date16_states()[state_pick];
        let mut cfg = SimConfig::date16().with_power_state(state);
        cfg.check_golden = true;
        cfg.max_cycles = 30_000_000;
        let m = run_spec(&spec, &cfg).expect("run completes");
        prop_assert!(m.cycles > 0);
        // Every retired instruction is accounted for.
        prop_assert!(m.instructions > 0);
        prop_assert!(m.ipc() > 0.0 && m.ipc() <= state.active_cores() as f64);
    }

    /// The same workload takes no fewer cycles on a packet-switched
    /// baseline than on the MoT (Fig. 6's ordering, generalised).
    #[test]
    fn mot_is_never_slower_than_mesh(spec in spec_strategy()) {
        let mot = run_spec(&spec, &SimConfig::date16()).expect("mot run");
        let mesh = run_spec(
            &spec,
            &SimConfig::date16()
                .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d)),
        )
        .expect("mesh run");
        prop_assert!(
            mot.cycles <= mesh.cycles,
            "MoT {} vs mesh {} cycles",
            mot.cycles,
            mesh.cycles
        );
    }

    /// Cache-accounting invariants hold on arbitrary runs: L2 accesses
    /// are bounded by L1 misses plus coherence traffic, and DRAM accesses
    /// cannot exceed L2 misses plus writebacks plus instruction refills.
    #[test]
    fn counter_invariants(spec in spec_strategy()) {
        let m = run_spec(&spec, &SimConfig::date16()).expect("run");
        // Each L1 (data) miss creates exactly one L2 transaction.
        prop_assert!(m.l2_hits + m.l2_misses <= m.l1_misses,
            "L2 accesses {} exceed L1 misses {}", m.l2_hits + m.l2_misses, m.l1_misses);
        prop_assert!(m.dram_accesses >= m.l2_misses,
            "every L2 miss reaches DRAM");
        prop_assert!(m.l2_latency.count() == m.l1_misses,
            "every miss transaction is measured: {} vs {}", m.l2_latency.count(), m.l1_misses);
    }
}
