//! Differential tests for the allocation-free data-layout overhaul.
//!
//! The hot paths were re-laid-out (structure-of-arrays caches, slab-backed
//! queues, generational transaction handles, status masks). These tests
//! pin the overhaul's contract end to end: across **all four power
//! states** and **all three NoC baselines**, a reused (reset) cluster must
//! produce bit-identical [`Metrics`] to a freshly built one, with the
//! golden-memory oracle armed so any lost or reordered store panics —
//! the PR 2 `event_driven.rs` pattern applied to the layout change.

use mot3d_mot::PowerState;
use mot3d_noc::NocTopologyKind;
use mot3d_sim::runner::ClusterPool;
use mot3d_sim::{Cluster, InterconnectChoice, Metrics, SimConfig};
use mot3d_workloads::{streams, SplashBenchmark, WorkloadSpec};
use proptest::prelude::*;

/// The seven tier-1 interconnect/power-state combinations: the MoT in all
/// four Table I states, and the three packet-switched baselines (Full
/// state only — NoCs reject gating).
fn config_for(pick: usize) -> SimConfig {
    let mut cfg = match pick {
        0..=3 => SimConfig::date16().with_power_state(PowerState::date16_states()[pick]),
        4 => {
            SimConfig::date16().with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d))
        }
        5 => SimConfig::date16()
            .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::HybridBusMesh)),
        _ => SimConfig::date16()
            .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::HybridBusTree)),
    };
    cfg.check_golden = true;
    cfg
}

fn small_spec(bench: usize, ops: u64, mem: f64, write: f64, locality: f64) -> WorkloadSpec {
    WorkloadSpec {
        mem_ratio: mem,
        write_fraction: write,
        locality,
        total_ops: ops,
        ..SplashBenchmark::all()[bench % 8].spec()
    }
}

/// Runs `spec` on a freshly-constructed cluster (no pooling).
fn run_fresh(spec: &WorkloadSpec, cfg: &SimConfig) -> Metrics {
    let mut cluster = Cluster::new(
        *cfg,
        streams(spec, cfg.power_state.active_cores(), cfg.seed),
    )
    .expect("config is valid");
    cluster.run_to_completion().expect("run completes");
    cluster.verify_against_golden();
    cluster.metrics("fresh")
}

fn metrics_match(a: &Metrics, mut b: Metrics) -> Result<(), TestCaseError> {
    // Labels differ by construction; everything else must be identical.
    b.label = a.label.clone();
    prop_assert_eq!(a, &b);
    Ok(())
}

proptest! {
    /// A pool-reused (reset) cluster is observationally identical to a
    /// fresh build: same cycles, same hit/miss counters, same latency
    /// histogram, same energy — for every interconnect and power state.
    #[test]
    fn reset_cluster_matches_fresh_build(
        pick in 0usize..7,
        bench in 0usize..8,
        ops in 800u64..4_000,
        mem in 0.1..0.45f64,
        write in 0.0..0.5f64,
        locality in 0.3..0.95f64,
    ) {
        let cfg = config_for(pick);
        let spec = small_spec(bench, ops, mem, write, locality);
        let fresh = run_fresh(&spec, &cfg);

        let mut pool = ClusterPool::new();
        // First pooled run constructs; second resets and reruns — both
        // must equal the fresh build bit for bit.
        let first = pool.run_spec(&spec, &cfg).expect("pooled run");
        let second = pool.run_spec(&spec, &cfg).expect("reset run");
        prop_assert_eq!(pool.len(), 1, "one cached cluster");
        metrics_match(&fresh, first)?;
        metrics_match(&fresh, second)?;
    }

    /// Back-to-back different workloads through one pooled cluster leave
    /// no residue: re-running workload A after B reproduces A's metrics.
    #[test]
    fn pooled_cluster_carries_no_state_between_workloads(
        pick in 0usize..7,
        ops_a in 800u64..2_500,
        ops_b in 800u64..2_500,
    ) {
        let cfg = config_for(pick);
        let spec_a = small_spec(1, ops_a, 0.3, 0.3, 0.7);
        let spec_b = small_spec(5, ops_b, 0.2, 0.1, 0.5);
        let mut pool = ClusterPool::new();
        let a1 = pool.run_spec(&spec_a, &cfg).expect("run a1");
        let _b = pool.run_spec(&spec_b, &cfg).expect("run b");
        let a2 = pool.run_spec(&spec_a, &cfg).expect("run a2");
        prop_assert_eq!(a1, a2);
    }
}
