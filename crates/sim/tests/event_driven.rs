//! Equivalence of the event-driven engine with per-cycle stepping.
//!
//! `run_to_completion`, `run_until`, and `drain` skip provably idle
//! cycles. These tests pin down the contract that makes that refactor
//! safe: the skipping paths must be *observationally invisible* —
//! bit-identical `Metrics` against a cluster advanced with `step()` in a
//! loop — on random workloads, every interconnect, every power state,
//! and across `drain`/`switch_power_state` at a skip boundary.

use mot3d_mot::PowerState;
use mot3d_noc::NocTopologyKind;
use mot3d_sim::{Cluster, InterconnectChoice, SimConfig};
use mot3d_workloads::{streams, SplashBenchmark, WorkloadSpec};
use proptest::prelude::*;

/// Per-cycle baseline: advances one cycle at a time, no skipping.
fn step_to_completion(cluster: &mut Cluster) {
    while !cluster.is_done() {
        assert!(cluster.now() < 30_000_000, "per-cycle baseline ran away");
        cluster.step();
    }
}

/// The seven tier-1 interconnect/power-state combinations: the MoT in all
/// four Table I states, and the three packet-switched baselines (Full
/// state only — NoCs reject gating).
fn config_for(pick: usize) -> SimConfig {
    let mut cfg = match pick {
        0..=3 => SimConfig::date16().with_power_state(PowerState::date16_states()[pick]),
        4 => {
            SimConfig::date16().with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d))
        }
        5 => SimConfig::date16()
            .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::HybridBusMesh)),
        _ => SimConfig::date16()
            .with_interconnect(InterconnectChoice::Noc(NocTopologyKind::HybridBusTree)),
    };
    cfg.check_golden = true;
    cfg
}

/// A small random-but-valid workload spec (kept small: the per-cycle
/// baseline pays for every idle cycle).
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0usize..8,
        0.0..0.5f64,   // serial fraction
        0.05..0.45f64, // mem ratio
        0.0..0.6f64,   // write fraction
        0.3..0.95f64,  // locality
        0.0..0.8f64,   // hot fraction
        1u32..5,       // phases
        1_000u64..6_000,
    )
        .prop_map(
            |(bench, serial, mem, write, locality, hot, phases, ops)| WorkloadSpec {
                serial_fraction: serial,
                mem_ratio: mem,
                write_fraction: write,
                locality,
                hot_fraction: hot,
                phases,
                total_ops: ops,
                ..SplashBenchmark::all()[bench].spec()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant: skipping idle cycles changes nothing —
    /// not cycles, not any counter, not a single energy figure.
    #[test]
    fn run_to_completion_matches_per_cycle_stepping(
        spec in spec_strategy(),
        pick in 0usize..7,
    ) {
        let cfg = config_for(pick);
        let ranks = streams(&spec, cfg.power_state.active_cores(), cfg.seed);
        let mut stepped = Cluster::new(cfg, ranks.clone()).expect("stepped cluster");
        let mut skipped = Cluster::new(cfg, ranks).expect("skipped cluster");
        step_to_completion(&mut stepped);
        skipped.run_to_completion().expect("event-driven run completes");
        stepped.verify_against_golden();
        skipped.verify_against_golden();
        prop_assert_eq!(stepped.metrics("run"), skipped.metrics("run"));
    }

    /// `run_until` lands on the same cycle with the same state as the
    /// per-cycle loop, wherever the boundary falls relative to events.
    #[test]
    fn run_until_matches_per_cycle_stepping(
        spec in spec_strategy(),
        boundary in 500u64..20_000,
    ) {
        let cfg = config_for(0);
        let ranks = streams(&spec, cfg.power_state.active_cores(), cfg.seed);
        let mut stepped = Cluster::new(cfg, ranks.clone()).expect("stepped cluster");
        let mut skipped = Cluster::new(cfg, ranks).expect("skipped cluster");
        while !stepped.is_done() && stepped.now() < boundary {
            stepped.step();
        }
        skipped.run_until(boundary);
        prop_assert_eq!(stepped.now(), skipped.now());
        prop_assert_eq!(stepped.metrics("mid"), skipped.metrics("mid"));
        // And the remainder of the run still agrees.
        step_to_completion(&mut stepped);
        skipped.run_to_completion().expect("tail completes");
        prop_assert_eq!(stepped.metrics("end"), skipped.metrics("end"));
    }
}

/// `drain` + `switch_power_state` at a skip boundary: an event-driven
/// cluster that jumped over idle stretches must gate, flush, and resume
/// exactly like the per-cycle one.
#[test]
fn drain_and_switch_at_a_skip_boundary_match_stepping() {
    let mut spec = SplashBenchmark::Fft.spec().scaled(0.005);
    spec.working_set_bytes = 128 * 1024; // enough dirty lines to flush
    let mut cfg = SimConfig::date16();
    cfg.check_golden = true;
    let ranks = streams(&spec, 16, 7);
    let mut stepped = Cluster::new(cfg, ranks.clone()).unwrap();
    let mut skipped = Cluster::new(cfg, ranks).unwrap();

    for boundary in [15_000u64, 30_000] {
        while !stepped.is_done() && stepped.now() < boundary {
            stepped.step();
        }
        skipped.run_until(boundary);
        assert_eq!(stepped.now(), skipped.now(), "skip boundary diverged");
        // Gate on the first pass, un-gate on the second; both clusters
        // drain (event-driven) and flush from identical states.
        let target = if boundary == 15_000 {
            PowerState::pc16_mb8()
        } else {
            PowerState::full()
        };
        stepped.switch_power_state(target).unwrap();
        skipped.switch_power_state(target).unwrap();
        assert_eq!(stepped.now(), skipped.now(), "post-drain cycle diverged");
        stepped.verify_against_golden();
        skipped.verify_against_golden();
    }

    step_to_completion(&mut stepped);
    skipped.run_to_completion().unwrap();
    stepped.verify_against_golden();
    skipped.verify_against_golden();
    assert_eq!(stepped.metrics("end"), skipped.metrics("end"));
}

/// `Cluster::reset` reuse: a reset cluster — even one dirtied by a
/// different workload in between — reproduces a fresh build bit-for-bit.
#[test]
fn reset_cluster_matches_fresh_build() {
    let spec = SplashBenchmark::Radix.spec().scaled(0.004);
    let mut cfg = SimConfig::date16();
    cfg.check_golden = true;

    let mut cluster = Cluster::new(cfg, streams(&spec, 16, cfg.seed)).unwrap();
    cluster.run_to_completion().unwrap();
    cluster.verify_against_golden();
    let fresh = cluster.metrics("run");

    // Dirty every structure with an unrelated workload…
    let other = SplashBenchmark::Fmm.spec().scaled(0.003);
    cluster.reset(streams(&other, 16, 99)).unwrap();
    cluster.run_to_completion().unwrap();

    // …then reset back to the original and compare bit-for-bit.
    cluster.reset(streams(&spec, 16, cfg.seed)).unwrap();
    cluster.run_to_completion().unwrap();
    cluster.verify_against_golden();
    assert_eq!(fresh, cluster.metrics("run"));
}

/// Resetting with the wrong rank count is rejected, like construction.
#[test]
fn reset_rejects_stream_count_mismatch() {
    let spec = SplashBenchmark::Fft.spec().scaled(0.002);
    let mut cluster = Cluster::new(SimConfig::date16(), streams(&spec, 16, 1)).unwrap();
    let err = cluster.reset(streams(&spec, 4, 1)).unwrap_err();
    assert!(
        err.to_string().contains("stream"),
        "unexpected error: {err}"
    );
}
