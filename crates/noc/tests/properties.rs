//! Property-based tests for the packet-switched baselines (DESIGN.md §5).

use mot3d_mot::traits::{Interconnect, MemRequest, MemResponse, ReqKind};
use mot3d_noc::topo::{Hop, Topology, BANKS, CORES};
use mot3d_noc::{NocNetwork, NocTopologyKind};
use mot3d_phys::fnv::FnvHashSet;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = NocTopologyKind> {
    prop_oneof![
        Just(NocTopologyKind::Mesh3d),
        Just(NocTopologyKind::HybridBusMesh),
        Just(NocTopologyKind::HybridBusTree),
    ]
}

/// Walks a request route to termination, returning the router trail.
fn walk_request(topo: &Topology, core: usize, bank: usize) -> Vec<usize> {
    let mut at = topo.core_router(core);
    let mut trail = vec![at];
    loop {
        match topo.route_to_bank(at, bank) {
            Hop::Router(n) => {
                at = n;
                trail.push(n);
                assert!(trail.len() < 32, "livelock");
            }
            Hop::Bus(_) | Hop::Eject => return trail,
        }
    }
}

proptest! {
    /// Every route terminates, never repeats a router (no loops), and on
    /// the meshes its length equals the Manhattan/hop distance.
    #[test]
    fn routes_are_loop_free_and_minimal(
        kind in kind_strategy(),
        core in 0usize..CORES,
        bank in 0usize..BANKS,
    ) {
        let topo = Topology::new(kind);
        let trail = walk_request(&topo, core, bank);
        let unique: FnvHashSet<_> = trail.iter().collect();
        prop_assert_eq!(unique.len(), trail.len(), "router revisited: {:?}", trail);
        let end = match kind {
            NocTopologyKind::Mesh3d => topo.bank_router(bank).unwrap(),
            _ => topo.bus_router(topo.bank_bus(bank).unwrap()),
        };
        prop_assert_eq!(*trail.last().unwrap(), end);
        prop_assert_eq!(
            trail.len() - 1,
            topo.hop_distance(topo.core_router(core), end),
            "non-minimal route"
        );
    }

    /// Dimension-order routing is deadlock-free: the channel-dependency
    /// relation only ever steps X→Y→Z, so the dependency graph over
    /// directed links is acyclic. We verify the witness directly: along
    /// any route, the dimension index of successive hops never decreases.
    #[test]
    fn dor_dimension_index_is_monotone(
        core in 0usize..CORES,
        bank in 0usize..BANKS,
    ) {
        let topo = Topology::new(NocTopologyKind::Mesh3d);
        let trail = walk_request(&topo, core, bank);
        let mut last_dim = 0u8;
        for pair in trail.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (al, ap) = (a / CORES, a % CORES);
            let (bl, bp) = (b / CORES, b % CORES);
            let dim = if al != bl {
                2
            } else if ap % 4 != bp % 4 {
                0
            } else {
                1
            };
            prop_assert!(dim >= last_dim, "dimension went backwards in {:?}", trail);
            last_dim = dim;
        }
    }

    /// End-to-end conservation: every injected request arrives exactly
    /// once at its addressed bank, and every response comes home.
    #[test]
    fn full_round_trip_conservation(
        kind in kind_strategy(),
        picks in prop::collection::vec((0usize..CORES, 0usize..BANKS), 1..30),
    ) {
        let mut net = NocNetwork::date16(kind);
        for (i, (c, b)) in picks.iter().enumerate() {
            net.inject_request(0, MemRequest {
                core: *c,
                home_bank: *b,
                kind: if i % 3 == 0 { ReqKind::WriteLine } else { ReqKind::ReadLine },
                tag: i as u64,
            });
        }
        let mut arrived = FnvHashSet::default();
        let mut returned = FnvHashSet::default();
        for now in 0..20_000u64 {
            net.tick(now);
            while let Some(a) = net.pop_arrival() {
                prop_assert_eq!(a.bank, a.request.home_bank, "wrong bank");
                prop_assert!(arrived.insert(a.request.tag), "dup arrival");
                net.inject_response(now, MemResponse {
                    core: a.request.core,
                    bank: a.bank,
                    kind: a.request.kind,
                    tag: a.request.tag,
                });
            }
            while let Some(d) = net.pop_delivery() {
                prop_assert!(returned.insert(d.response.tag), "dup delivery");
            }
            if returned.len() == picks.len() {
                break;
            }
        }
        prop_assert_eq!(arrived.len(), picks.len(), "requests lost");
        prop_assert_eq!(returned.len(), picks.len(), "responses lost");
    }

    /// Transit times are causal and bounded below by the uncontended
    /// physical minimum (injection + at least one cycle).
    #[test]
    fn arrivals_are_causal(
        kind in kind_strategy(),
        core in 0usize..CORES,
        bank in 0usize..BANKS,
    ) {
        let mut net = NocNetwork::date16(kind);
        net.inject_request(5, MemRequest {
            core, home_bank: bank, kind: ReqKind::ReadLine, tag: 0,
        });
        let mut seen = None;
        for now in 0..500 {
            net.tick(now);
            if let Some(a) = net.pop_arrival() {
                seen = Some(a);
                break;
            }
        }
        let a = seen.expect("must arrive");
        prop_assert!(a.at_cycle > 5, "arrived before injection");
    }
}
