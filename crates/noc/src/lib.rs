//! # mot3d-noc — packet-switched 3-D baselines
//!
//! The three packet-switched 3-D on-chip interconnects the paper compares
//! against (§IV, Fig. 6):
//!
//! * **True 3-D Mesh** — routers at every core and bank, XYZ
//!   dimension-order routing;
//! * **3-D Hybrid Bus-Mesh** (Li et al., ISCA'06) — a 2-D mesh on the core
//!   layer plus one vertical dTDMA bus pillar per grid position;
//! * **3-D Hybrid Bus-Tree** (Madan et al., HPCA'09) — a quadrant tree on
//!   the core layer plus one shared vertical bus per quadrant.
//!
//! All three implement the same [`mot3d_mot::traits::Interconnect`]
//! contract as the 3-D MoT, so the cluster simulator can swap them freely.
//! Timing/energy constants derive from the shared `mot3d-phys` models.
//!
//! # Quick example
//!
//! ```
//! use mot3d_noc::{NocNetwork, NocTopologyKind};
//! use mot3d_mot::traits::Interconnect;
//!
//! let mesh = NocNetwork::date16(NocTopologyKind::Mesh3d);
//! let mot = mot3d_mot::MotNetwork::date16(mot3d_mot::PowerState::full())?;
//! // The hop-by-hop baselines are slower than the circuit-switched MoT.
//! assert!(mesh.oneway_latency_hint() > mot.oneway_latency_hint());
//! # Ok::<(), mot3d_mot::MotError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod network;
pub mod packet;
pub mod params;
pub mod topo;

pub use network::NocNetwork;
pub use topo::NocTopologyKind;
