//! The three packet-switched 3-D topologies of the paper's comparison
//! (§IV): True 3-D Mesh, 3-D Hybrid Bus-Mesh (Li et al., ISCA'06) and
//! 3-D Hybrid Bus-Tree (Madan et al., HPCA'09).
//!
//! All three serve the same cluster: 16 cores on a 4 × 4 grid (layer 0)
//! and 32 banks on two stacked 4 × 4 layers.
//!
//! * **True 3-D Mesh** — every core and every bank has a router; links run
//!   ±x, ±y in-plane and ±z through TSVs; routing is dimension-ordered
//!   X→Y→Z (deadlock-free).
//! * **Hybrid Bus-Mesh** — routers only on the core layer; each grid
//!   position carries a vertical dTDMA bus pillar serving the 2 banks
//!   stacked above it. Packets mesh-route in-plane, then ride the bus.
//! * **Hybrid Bus-Tree** — four quadrant routers under one root router
//!   replace the mesh (fewer in-plane hops); each quadrant router hosts
//!   one bus pillar serving all 8 banks of its quadrant (2 tiers × 4
//!   positions). Fewer hops, but 4× more traffic per bus — the contention
//!   that makes it the worst performer in Fig. 6.

use std::fmt;

/// Grid side of the core layer (4 × 4 = 16 cores).
pub const GRID: usize = 4;
/// Number of cores.
pub const CORES: usize = GRID * GRID;
/// Number of banks (two stacked layers).
pub const BANKS: usize = 2 * CORES;

/// Which baseline topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NocTopologyKind {
    /// True 3-D Mesh with per-bank routers and Z links.
    Mesh3d,
    /// 2-D mesh on the core layer + one vertical bus per grid position.
    HybridBusMesh,
    /// Quadrant tree on the core layer + one vertical bus per quadrant.
    HybridBusTree,
}

impl NocTopologyKind {
    /// All three baselines in the paper's order.
    pub fn all() -> [NocTopologyKind; 3] {
        [
            NocTopologyKind::Mesh3d,
            NocTopologyKind::HybridBusMesh,
            NocTopologyKind::HybridBusTree,
        ]
    }
}

impl fmt::Display for NocTopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocTopologyKind::Mesh3d => write!(f, "True 3-D Mesh"),
            NocTopologyKind::HybridBusMesh => write!(f, "3-D Hybrid Bus-Mesh"),
            NocTopologyKind::HybridBusTree => write!(f, "3-D Hybrid Bus-Tree"),
        }
    }
}

/// (x, y) of a core-layer grid position `p ∈ 0..16` (row-major).
pub fn grid_xy(p: usize) -> (usize, usize) {
    (p % GRID, p / GRID)
}

/// Grid position of an (x, y).
pub fn grid_pos(x: usize, y: usize) -> usize {
    y * GRID + x
}

/// The quadrant (0..4) of a grid position: 2 × 2 blocks, row-major.
pub fn quadrant(p: usize) -> usize {
    let (x, y) = grid_xy(p);
    (y / 2) * 2 + x / 2
}

/// Where a hop goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// Forward to another router.
    Router(usize),
    /// Board vertical bus `bus` (the endpoint is resolved by the engine
    /// from the packet's destination).
    Bus(usize),
    /// The packet is at its destination router: eject locally.
    Eject,
}

/// A resolved topology: routers, a routing function, bus layout, and the
/// geometry needed for energy accounting.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: NocTopologyKind,
}

impl Topology {
    /// Builds the topology graph for `kind`.
    pub fn new(kind: NocTopologyKind) -> Self {
        Topology { kind }
    }

    /// Which baseline this is.
    pub fn kind(&self) -> NocTopologyKind {
        self.kind
    }

    /// Number of routers.
    pub fn routers(&self) -> usize {
        match self.kind {
            // 16 core + 32 bank routers.
            NocTopologyKind::Mesh3d => CORES + BANKS,
            // Core-layer mesh only.
            NocTopologyKind::HybridBusMesh => CORES,
            // 4 quadrant routers + 1 root.
            NocTopologyKind::HybridBusTree => 5,
        }
    }

    /// Number of vertical buses.
    pub fn buses(&self) -> usize {
        match self.kind {
            NocTopologyKind::Mesh3d => 0,
            NocTopologyKind::HybridBusMesh => CORES, // one pillar per position
            NocTopologyKind::HybridBusTree => 4,     // one per quadrant
        }
    }

    /// The router where core `c` injects/ejects.
    pub fn core_router(&self, core: usize) -> usize {
        assert!(core < CORES, "core {core} out of range");
        match self.kind {
            NocTopologyKind::Mesh3d | NocTopologyKind::HybridBusMesh => core,
            NocTopologyKind::HybridBusTree => quadrant(core),
        }
    }

    /// The router co-located with bank `b` (Mesh3d only).
    pub fn bank_router(&self, bank: usize) -> Option<usize> {
        assert!(bank < BANKS, "bank {bank} out of range");
        match self.kind {
            NocTopologyKind::Mesh3d => Some(CORES + bank),
            _ => None,
        }
    }

    /// The bus serving bank `b` (bus topologies only).
    pub fn bank_bus(&self, bank: usize) -> Option<usize> {
        assert!(bank < BANKS, "bank {bank} out of range");
        match self.kind {
            NocTopologyKind::Mesh3d => None,
            NocTopologyKind::HybridBusMesh => Some(bank % CORES),
            NocTopologyKind::HybridBusTree => Some(quadrant(bank % CORES)),
        }
    }

    /// The router a bus connects to on the core layer.
    pub fn bus_router(&self, bus: usize) -> usize {
        match self.kind {
            // mot3d-lint: allow(P1) -- callers reach here only via a Some(bank_bus) bus id
            NocTopologyKind::Mesh3d => panic!("Mesh3d has no buses"),
            NocTopologyKind::HybridBusMesh => bus,
            NocTopologyKind::HybridBusTree => bus, // quadrant router id == bus id
        }
    }

    /// Routing step: where does a packet at router `at`, destined to bank
    /// `bank` (request) go next?
    pub fn route_to_bank(&self, at: usize, bank: usize) -> Hop {
        match self.kind {
            NocTopologyKind::Mesh3d => {
                let dst = CORES + bank;
                if at == dst {
                    return Hop::Eject;
                }
                Hop::Router(self.mesh3d_next(at, dst))
            }
            NocTopologyKind::HybridBusMesh => {
                let pillar = bank % CORES;
                if at == pillar {
                    Hop::Bus(pillar)
                } else {
                    Hop::Router(self.mesh2d_next(at, pillar))
                }
            }
            NocTopologyKind::HybridBusTree => {
                let q = quadrant(bank % CORES);
                if at == q {
                    Hop::Bus(q)
                } else if at == 4 {
                    Hop::Router(q) // root → quadrant
                } else {
                    Hop::Router(4) // quadrant → root
                }
            }
        }
    }

    /// Routing step for responses: at router `at`, destined to core
    /// `core`.
    pub fn route_to_core(&self, at: usize, core: usize) -> Hop {
        match self.kind {
            NocTopologyKind::Mesh3d => {
                if at == core {
                    return Hop::Eject;
                }
                Hop::Router(self.mesh3d_next(at, core))
            }
            NocTopologyKind::HybridBusMesh => {
                if at == core {
                    Hop::Eject
                } else {
                    Hop::Router(self.mesh2d_next(at, core))
                }
            }
            NocTopologyKind::HybridBusTree => {
                let q = quadrant(core);
                if at == q {
                    Hop::Eject
                } else if at == 4 {
                    Hop::Router(q)
                } else {
                    Hop::Router(4)
                }
            }
        }
    }

    /// Dimension-order next hop on the core-layer 2-D mesh.
    fn mesh2d_next(&self, at: usize, dst: usize) -> usize {
        let (x, y) = grid_xy(at);
        let (dx, dy) = grid_xy(dst);
        if x != dx {
            grid_pos(if x < dx { x + 1 } else { x - 1 }, y)
        } else {
            grid_pos(x, if y < dy { y + 1 } else { y - 1 })
        }
    }

    /// X→Y→Z dimension-order next hop on the 3-D mesh.
    fn mesh3d_next(&self, at: usize, dst: usize) -> usize {
        let (al, ap) = (at / CORES, at % CORES);
        let (dl, dp) = (dst / CORES, dst % CORES);
        let (x, y) = grid_xy(ap);
        let (dx, dy) = grid_xy(dp);
        if x != dx {
            al * CORES + grid_pos(if x < dx { x + 1 } else { x - 1 }, y)
        } else if y != dy {
            al * CORES + grid_pos(x, if y < dy { y + 1 } else { y - 1 })
        } else if al < dl {
            (al + 1) * CORES + ap
        } else {
            (al - 1) * CORES + ap
        }
    }

    /// In-plane hop count from router `a` to router `b` (for hint/energy
    /// estimates). For Mesh3d, includes Z hops.
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        match self.kind {
            NocTopologyKind::Mesh3d => {
                let (al, ap) = (a / CORES, a % CORES);
                let (bl, bp) = (b / CORES, b % CORES);
                let (ax, ay) = grid_xy(ap);
                let (bx, by) = grid_xy(bp);
                ax.abs_diff(bx) + ay.abs_diff(by) + al.abs_diff(bl)
            }
            NocTopologyKind::HybridBusMesh => {
                let (ax, ay) = grid_xy(a);
                let (bx, by) = grid_xy(b);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            NocTopologyKind::HybridBusTree => {
                if a == b {
                    0
                } else if a == 4 || b == 4 {
                    1
                } else {
                    2
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_and_bus_inventories() {
        assert_eq!(Topology::new(NocTopologyKind::Mesh3d).routers(), 48);
        assert_eq!(Topology::new(NocTopologyKind::Mesh3d).buses(), 0);
        assert_eq!(Topology::new(NocTopologyKind::HybridBusMesh).routers(), 16);
        assert_eq!(Topology::new(NocTopologyKind::HybridBusMesh).buses(), 16);
        assert_eq!(Topology::new(NocTopologyKind::HybridBusTree).routers(), 5);
        assert_eq!(Topology::new(NocTopologyKind::HybridBusTree).buses(), 4);
    }

    #[test]
    fn quadrants_partition_the_grid() {
        let mut counts = [0usize; 4];
        for p in 0..16 {
            counts[quadrant(p)] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
        assert_eq!(quadrant(grid_pos(0, 0)), 0);
        assert_eq!(quadrant(grid_pos(3, 0)), 1);
        assert_eq!(quadrant(grid_pos(0, 3)), 2);
        assert_eq!(quadrant(grid_pos(3, 3)), 3);
    }

    #[test]
    fn mesh3d_routes_reach_any_bank() {
        let t = Topology::new(NocTopologyKind::Mesh3d);
        for core in 0..CORES {
            for bank in 0..BANKS {
                let mut at = t.core_router(core);
                let mut hops = 0;
                loop {
                    match t.route_to_bank(at, bank) {
                        Hop::Router(n) => {
                            at = n;
                            hops += 1;
                            assert!(hops < 20, "livelock core {core} bank {bank}");
                        }
                        Hop::Eject => break,
                        Hop::Bus(_) => panic!("mesh has no buses"),
                    }
                }
                assert_eq!(at, t.bank_router(bank).unwrap());
                // DOR: hop count equals Manhattan distance.
                assert_eq!(
                    hops,
                    t.hop_distance(t.core_router(core), t.bank_router(bank).unwrap())
                );
            }
        }
    }

    #[test]
    fn mesh3d_dor_is_x_then_y_then_z() {
        let t = Topology::new(NocTopologyKind::Mesh3d);
        // Core 0 (0,0,0) to bank 31 (pos 15 = (3,3), tier 2 → layer 2).
        let mut at = 0;
        let mut trail = vec![at];
        loop {
            match t.route_to_bank(at, 31) {
                Hop::Router(n) => {
                    at = n;
                    trail.push(n);
                }
                Hop::Eject => break,
                Hop::Bus(_) => unreachable!(),
            }
        }
        // X first: 0→1→2→3; then Y: 3→7→11→15; then Z: 15→31→47.
        assert_eq!(trail, vec![0, 1, 2, 3, 7, 11, 15, 31, 47]);
    }

    #[test]
    fn bus_mesh_reaches_banks_via_their_pillar() {
        let t = Topology::new(NocTopologyKind::HybridBusMesh);
        for bank in 0..BANKS {
            let pillar = bank % CORES;
            let mut at = t.core_router(5);
            let mut hops = 0;
            let bus = loop {
                match t.route_to_bank(at, bank) {
                    Hop::Router(n) => {
                        at = n;
                        hops += 1;
                        assert!(hops < 10);
                    }
                    Hop::Bus(b) => break b,
                    Hop::Eject => panic!("banks are not on the mesh"),
                }
            };
            assert_eq!(bus, pillar);
            assert_eq!(t.bank_bus(bank), Some(pillar));
        }
    }

    #[test]
    fn bus_tree_is_at_most_two_router_hops() {
        let t = Topology::new(NocTopologyKind::HybridBusTree);
        for core in 0..CORES {
            for bank in 0..BANKS {
                let mut at = t.core_router(core);
                let mut hops = 0;
                loop {
                    match t.route_to_bank(at, bank) {
                        Hop::Router(n) => {
                            at = n;
                            hops += 1;
                            assert!(hops <= 2, "tree routes are ≤ 2 router hops");
                        }
                        Hop::Bus(b) => {
                            assert_eq!(b, quadrant(bank % CORES));
                            break;
                        }
                        Hop::Eject => panic!("banks not on tree routers"),
                    }
                }
            }
        }
    }

    #[test]
    fn bus_tree_buses_serve_eight_banks_each() {
        let t = Topology::new(NocTopologyKind::HybridBusTree);
        let mut counts = [0usize; 4];
        for bank in 0..BANKS {
            counts[t.bank_bus(bank).unwrap()] += 1;
        }
        assert_eq!(counts, [8, 8, 8, 8]);
        // vs Bus-Mesh: 2 banks per pillar — the contention asymmetry that
        // Fig. 6 punishes.
        let bm = Topology::new(NocTopologyKind::HybridBusMesh);
        let mut bm_counts = [0usize; 16];
        for bank in 0..BANKS {
            bm_counts[bm.bank_bus(bank).unwrap()] += 1;
        }
        assert!(bm_counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn responses_route_back_to_the_core() {
        for kind in NocTopologyKind::all() {
            let t = Topology::new(kind);
            for core in 0..CORES {
                // Start a response at the router/bus-router nearest bank 17.
                let mut at = match kind {
                    NocTopologyKind::Mesh3d => t.bank_router(17).unwrap(),
                    _ => t.bus_router(t.bank_bus(17).unwrap()),
                };
                let mut hops = 0;
                loop {
                    match t.route_to_core(at, core) {
                        Hop::Router(n) => {
                            at = n;
                            hops += 1;
                            assert!(hops < 20, "{kind}: livelock to core {core}");
                        }
                        Hop::Eject => break,
                        Hop::Bus(_) => panic!("{kind}: response re-boarded a bus"),
                    }
                }
                assert_eq!(at, t.core_router(core), "{kind}");
            }
        }
    }

    #[test]
    fn display_names_match_the_paper() {
        assert_eq!(NocTopologyKind::Mesh3d.to_string(), "True 3-D Mesh");
        assert_eq!(
            NocTopologyKind::HybridBusMesh.to_string(),
            "3-D Hybrid Bus-Mesh"
        );
        assert_eq!(
            NocTopologyKind::HybridBusTree.to_string(),
            "3-D Hybrid Bus-Tree"
        );
    }
}
