//! Packets and flit accounting.
//!
//! The packet-switched baselines move memory transactions as multi-flit
//! packets over 64-bit links: a head flit carries address/command, data
//! payloads add one flit per 64 data bits. A 32 B line is 4 data flits, so
//!
//! | transaction     | flits |
//! |-----------------|-------|
//! | read request    | 1     |
//! | write request   | 5     |
//! | read response   | 5     |
//! | write ack       | 1     |
//!
//! This is the hop-by-hop serialisation cost that the circuit-switched
//! MoT avoids — the source of the latency gap in Fig. 6.

use mot3d_mot::traits::{MemRequest, MemResponse, ReqKind};

/// Link/flit width in bits.
pub const FLIT_BITS: usize = 64;
/// Data flits in one 32 B line.
pub const LINE_FLITS: usize = 4;

/// Payload carried by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A core→bank request.
    Request(MemRequest),
    /// A bank→core response.
    Response(MemResponse),
}

impl Payload {
    /// Number of flits this payload serialises into.
    pub fn flits(&self) -> u64 {
        match self {
            Payload::Request(r) => match r.kind {
                ReqKind::ReadLine => 1,
                ReqKind::WriteLine => 1 + LINE_FLITS as u64,
            },
            Payload::Response(r) => match r.kind {
                ReqKind::ReadLine => 1 + LINE_FLITS as u64,
                ReqKind::WriteLine => 1,
            },
        }
    }

    /// Total bits on the wire (flits × flit width).
    pub fn bits(&self) -> usize {
        self.flits() as usize * FLIT_BITS
    }
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// What it carries.
    pub payload: Payload,
    /// Cycle it was injected.
    pub injected_at: u64,
    /// Router hops traversed so far (for energy/stats).
    pub hops: u32,
}

impl Packet {
    /// Wraps a request.
    pub fn request(injected_at: u64, req: MemRequest) -> Self {
        Packet {
            payload: Payload::Request(req),
            injected_at,
            hops: 0,
        }
    }

    /// Wraps a response.
    pub fn response(injected_at: u64, resp: MemResponse) -> Self {
        Packet {
            payload: Payload::Response(resp),
            injected_at,
            hops: 0,
        }
    }

    /// Serialisation length in flits.
    pub fn flits(&self) -> u64 {
        self.payload.flits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_req() -> MemRequest {
        MemRequest {
            core: 0,
            home_bank: 0,
            kind: ReqKind::ReadLine,
            tag: 0,
        }
    }

    #[test]
    fn flit_counts_match_the_table() {
        let mut wr = read_req();
        wr.kind = ReqKind::WriteLine;
        assert_eq!(Payload::Request(read_req()).flits(), 1);
        assert_eq!(Payload::Request(wr).flits(), 5);
        let rd_resp = MemResponse {
            core: 0,
            bank: 0,
            kind: ReqKind::ReadLine,
            tag: 0,
        };
        let wr_resp = MemResponse {
            kind: ReqKind::WriteLine,
            ..rd_resp
        };
        assert_eq!(Payload::Response(rd_resp).flits(), 5);
        assert_eq!(Payload::Response(wr_resp).flits(), 1);
    }

    #[test]
    fn bits_scale_with_flits() {
        let p = Payload::Request(read_req());
        assert_eq!(p.bits(), 64);
    }

    #[test]
    fn packet_records_injection_time() {
        let p = Packet::request(17, read_req());
        assert_eq!(p.injected_at, 17);
        assert_eq!(p.hops, 0);
        assert_eq!(p.flits(), 1);
    }
}
