//! Timing and energy parameters of the packet-switched baselines.
//!
//! Derived from the same `mot3d-phys` models as the MoT so the comparison
//! is apples-to-apples: link energy from the repeated-wire model over the
//! actual link length, TSV bus energy from the TSV model, router costs
//! from per-flit switched capacitance.

use crate::topo::{NocTopologyKind, GRID};
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::rc::RepeatedWire;
use mot3d_phys::units::{Farads, Joules, Watts};
use mot3d_phys::Technology;

use crate::packet::FLIT_BITS;

/// Switched capacitance per bit through one router (buffers + crossbar +
/// allocation).
const ROUTER_CAP_PER_BIT: Farads = Farads::from_ff(15.0);
/// Leakage of one wormhole router (buffers dominate).
const ROUTER_LEAKAGE: Watts = Watts::from_uw(25.0);
/// Leakage of one vertical dTDMA bus (drivers + arbitration).
const BUS_LEAKAGE: Watts = Watts::from_uw(4.0);
/// Toggle probability per bit.
const ACTIVITY: f64 = 0.5;

/// All timing/energy constants of one baseline NoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocParams {
    /// Router pipeline depth in cycles (route + allocate + traverse).
    pub router_pipeline: u64,
    /// Link traversal cycles.
    pub link_cycles: u64,
    /// Bus arbitration overhead per boarding.
    pub bus_arb_cycles: u64,
    /// Bus driver turnaround between back-to-back transfers.
    pub bus_turnaround_cycles: u64,
    /// Cycles per flit on the bus. Pillars with few drops run at link
    /// speed; the Bus-Tree's 8-bank buses carry ~3× the capacitive load
    /// (9 drops vs 3) and run at half rate — the physical root of the
    /// paper's "increased vertical bus accesses ... make the performance
    /// even worse" finding.
    pub bus_cycles_per_flit: u64,
    /// Energy of one flit through one router.
    pub router_energy_per_flit: Joules,
    /// Energy of one flit over one in-plane link.
    pub link_energy_per_flit: Joules,
    /// Energy of one flit over one vertical bus transfer.
    pub bus_energy_per_flit: Joules,
    /// Standing leakage of the whole network.
    pub leakage: Watts,
}

impl NocParams {
    /// Derives the parameters for `kind` on the given node/floorplan.
    pub fn derive(tech: &Technology, floorplan: &Floorplan, kind: NocTopologyKind) -> Self {
        let topo = crate::topo::Topology::new(kind);

        // Link length: grid pitch for meshes, quadrant pitch for the tree.
        let link_length = match kind {
            NocTopologyKind::Mesh3d | NocTopologyKind::HybridBusMesh => {
                floorplan.die_width / GRID as f64
            }
            NocTopologyKind::HybridBusTree => floorplan.die_width / 2.0,
        };
        let link_wire = RepeatedWire::new(tech, link_length);

        let per_bit_router = ROUTER_CAP_PER_BIT.switching_energy(tech.vdd);
        let router_energy_per_flit = per_bit_router * (FLIT_BITS as f64 * ACTIVITY);
        let link_energy_per_flit =
            link_wire.energy_per_transition() * (FLIT_BITS as f64 * ACTIVITY);
        // A bus transfer crosses up to both cache tiers.
        let bus_energy_per_flit =
            floorplan.tsv.hop_energy(tech, floorplan.bank_tiers) * (FLIT_BITS as f64 * ACTIVITY);

        // Leakage: routers + buses + link repeaters (one link set per
        // router, FLIT_BITS wires each — a deliberate simplification that
        // charges the baselines the same per-wire repeater costs as the
        // MoT).
        let repeaters_per_link = link_wire.repeater_count() as f64 * FLIT_BITS as f64;
        let links = match kind {
            NocTopologyKind::Mesh3d => 2 * (GRID * (GRID - 1)) * 3 + 2 * GRID * GRID * 2,
            NocTopologyKind::HybridBusMesh => 2 * (GRID * (GRID - 1)) * 2,
            NocTopologyKind::HybridBusTree => 2 * 4,
        } as f64;
        let leakage = ROUTER_LEAKAGE * topo.routers() as f64
            + BUS_LEAKAGE * topo.buses() as f64
            + tech.repeater.leakage * (repeaters_per_link * links);

        NocParams {
            router_pipeline: 2,
            link_cycles: 1,
            bus_arb_cycles: 1,
            bus_turnaround_cycles: match kind {
                NocTopologyKind::HybridBusTree => 2,
                _ => 1,
            },
            bus_cycles_per_flit: match kind {
                // 9 drops (8 banks + router) vs 3: ~3× the capacitive
                // load, one third the transfer rate.
                NocTopologyKind::HybridBusTree => 3,
                _ => 1,
            },
            router_energy_per_flit,
            link_energy_per_flit,
            bus_energy_per_flit,
            leakage,
        }
    }

    /// Cycles one packet occupies a router output: pipeline + link.
    pub fn hop_latency(&self) -> u64 {
        self.router_pipeline + self.link_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(kind: NocTopologyKind) -> NocParams {
        NocParams::derive(&Technology::lp45(), &Floorplan::date16(), kind)
    }

    #[test]
    fn hop_latency_is_pipeline_plus_link() {
        let p = params(NocTopologyKind::Mesh3d);
        assert_eq!(p.hop_latency(), 3);
    }

    #[test]
    fn tree_links_cost_more_energy_than_mesh_links() {
        // Tree links span half the die vs a quarter.
        let tree = params(NocTopologyKind::HybridBusTree);
        let mesh = params(NocTopologyKind::Mesh3d);
        assert!(tree.link_energy_per_flit > mesh.link_energy_per_flit);
    }

    #[test]
    fn mesh3d_leaks_most_it_has_most_routers() {
        let m3 = params(NocTopologyKind::Mesh3d);
        let bm = params(NocTopologyKind::HybridBusMesh);
        let bt = params(NocTopologyKind::HybridBusTree);
        assert!(m3.leakage > bm.leakage);
        assert!(bm.leakage > bt.leakage);
    }

    #[test]
    fn energies_in_plausible_pj_bands() {
        let p = params(NocTopologyKind::Mesh3d);
        assert!(p.router_energy_per_flit.pj() > 0.05 && p.router_energy_per_flit.pj() < 5.0);
        assert!(p.link_energy_per_flit.pj() > 0.5 && p.link_energy_per_flit.pj() < 20.0);
        assert!(p.bus_energy_per_flit.pj() > 0.05 && p.bus_energy_per_flit.pj() < 20.0);
    }
}
