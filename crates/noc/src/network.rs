//! Event-driven packet-level network engine.
//!
//! Models the three baselines at the abstraction level Graphite itself
//! uses for NoCs: packets (not individual flits) move hop by hop; each
//! router output port and each vertical bus is a serialising resource
//! (`flits` cycles per packet) with FIFO service, so queueing delay under
//! contention emerges naturally; each hop costs the router pipeline plus
//! one link cycle. Wormhole flit interleaving is abstracted away —
//! at L1-miss traffic loads the port-occupancy model matches it closely,
//! and it keeps the engine exact and fast.

use std::collections::VecDeque;

use crate::packet::{Packet, Payload};
use crate::params::NocParams;
use crate::topo::{Hop, NocTopologyKind, Topology, BANKS, CORES};
use mot3d_mot::traits::{
    BankArrival, CoreDelivery, Interconnect, InterconnectStats, MemRequest, MemResponse,
};
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::units::{Joules, Watts};
use mot3d_phys::wheel::TimingWheel;
use mot3d_phys::Technology;

/// Where a scheduled event takes place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Packet is at a router, ready for its next hop decision.
    AtRouter(usize),
    /// Packet completes delivery into a bank.
    DeliverBank(usize),
    /// Packet completes delivery into a core.
    DeliverCore(usize),
}

/// A packet at a location; the wheel supplies the time and tie order.
#[derive(Debug, Clone, Copy)]
struct Event {
    loc: Loc,
    packet: Packet,
}

/// A packet-switched baseline interconnect.
///
/// # Examples
///
/// ```
/// use mot3d_noc::{NocNetwork, NocTopologyKind};
/// use mot3d_mot::traits::{Interconnect, MemRequest, ReqKind};
///
/// let mut net = NocNetwork::date16(NocTopologyKind::Mesh3d);
/// net.inject_request(0, MemRequest { core: 0, home_bank: 31, kind: ReqKind::ReadLine, tag: 7 });
/// let mut arrived = None;
/// for now in 0..100 {
///     net.tick(now);
///     if let Some(a) = net.pop_arrival() { arrived = Some(a); break; }
/// }
/// assert_eq!(arrived.unwrap().bank, 31);
/// ```
#[derive(Debug)]
pub struct NocNetwork {
    topo: Topology,
    params: NocParams,
    name: String,
    /// Pending packet events, popped in exact `(time, seq)` order (the
    /// wheel owns the sequence numbering).
    events: TimingWheel<Event>,
    /// Next-free cycle of each directed router→router port, as a flat
    /// `routers × routers` table indexed `from * routers + to` — a plain
    /// load on the forwarding hot path where a `HashMap<(usize, usize),
    /// u64>` would hash and chase buckets per hop. At most 48 routers
    /// (True 3-D Mesh), so the dense table is 18 KB.
    port_free: Box<[u64]>,
    /// Router count cached for the port-table stride.
    routers: usize,
    /// Next-free cycle of each vertical bus.
    bus_free: Vec<u64>,
    arrivals: VecDeque<BankArrival>,
    deliveries: VecDeque<CoreDelivery>,
    dynamic_energy: Joules,
    stats: InterconnectStats,
    hint: u64,
}

impl NocNetwork {
    /// Builds a baseline network on an explicit technology/floorplan.
    pub fn new(tech: &Technology, floorplan: &Floorplan, kind: NocTopologyKind) -> Self {
        let topo = Topology::new(kind);
        let params = NocParams::derive(tech, floorplan, kind);
        let buses = topo.buses();
        let routers = topo.routers();
        let hint = uncontended_hint(&topo, &params);
        NocNetwork {
            topo,
            params,
            name: kind.to_string(),
            events: TimingWheel::new(),
            port_free: vec![0; routers * routers].into_boxed_slice(),
            routers,
            bus_free: vec![0; buses],
            arrivals: VecDeque::new(),
            deliveries: VecDeque::new(),
            dynamic_energy: Joules::ZERO,
            stats: InterconnectStats::default(),
            hint,
        }
    }

    /// The paper's cluster on the calibrated node.
    pub fn date16(kind: NocTopologyKind) -> Self {
        NocNetwork::new(&Technology::lp45(), &Floorplan::date16(), kind)
    }

    /// The topology being modelled.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    // --- Observability probes (read-only, allocation-free) ---

    /// Directed router→router ports still serialising a packet at `now`.
    pub fn busy_ports(&self, now: u64) -> usize {
        self.port_free.iter().filter(|&&free| free > now).count()
    }

    /// Vertical buses still serialising a packet at `now`.
    pub fn busy_buses(&self, now: u64) -> usize {
        self.bus_free.iter().filter(|&&free| free > now).count()
    }

    /// Routers in the topology (the port table is `routers × routers`).
    pub fn router_count(&self) -> usize {
        self.routers
    }

    /// The derived parameters.
    pub fn params(&self) -> &NocParams {
        &self.params
    }

    fn push(&mut self, time: u64, loc: Loc, packet: Packet) {
        self.events.schedule(time, Event { loc, packet });
    }

    /// Boards a bus: waits for the bus to free, transfers the whole
    /// packet (a bus has no cut-through — `flits × cycles_per_flit`).
    /// Returns the cycle the transfer completes.
    fn board_bus(&mut self, bus: usize, at: u64, flits: u64) -> u64 {
        let start = (at + self.params.bus_arb_cycles).max(self.bus_free[bus]);
        let end = start + flits * self.params.bus_cycles_per_flit;
        self.bus_free[bus] = end + self.params.bus_turnaround_cycles;
        self.dynamic_energy += self.params.bus_energy_per_flit * flits as f64;
        end
    }

    /// Forwards over a router→router port. Virtual cut-through: the head
    /// proceeds after the router pipeline + link; the packet's flits
    /// occupy the output port for `flits` cycles (the bandwidth limit that
    /// creates queueing), and the tail-drain serialisation is charged once
    /// at ejection rather than per hop.
    fn forward(&mut self, from: usize, to: usize, at: u64, mut packet: Packet) {
        let flits = packet.flits();
        let port = &mut self.port_free[from * self.routers + to];
        let start = (at + self.params.router_pipeline).max(*port);
        *port = start + flits;
        packet.hops += 1;
        self.dynamic_energy +=
            (self.params.router_energy_per_flit + self.params.link_energy_per_flit) * flits as f64;
        self.push(start + self.params.link_cycles, Loc::AtRouter(to), packet);
    }

    fn handle(&mut self, t: u64, ev: Event) {
        match ev.loc {
            Loc::AtRouter(r) => {
                let hop = match ev.packet.payload {
                    Payload::Request(req) => self.topo.route_to_bank(r, req.home_bank),
                    Payload::Response(resp) => self.topo.route_to_core(r, resp.core),
                };
                match hop {
                    Hop::Router(n) => self.forward(r, n, t, ev.packet),
                    Hop::Bus(b) => {
                        // Requests ride the bus up into their bank.
                        let flits = ev.packet.flits();
                        let done = self.board_bus(b, t + self.params.router_pipeline, flits);
                        match ev.packet.payload {
                            Payload::Request(req) => {
                                self.push(done, Loc::DeliverBank(req.home_bank), ev.packet)
                            }
                            Payload::Response(_) => {
                                unreachable!("responses never board a bus from a router")
                            }
                        }
                    }
                    Hop::Eject => {
                        // Tail drain: the whole packet serialises out of
                        // the local port (charged once, cut-through).
                        let drain = ev.packet.flits();
                        match ev.packet.payload {
                            Payload::Request(req) => {
                                self.push(t + drain, Loc::DeliverBank(req.home_bank), ev.packet)
                            }
                            Payload::Response(resp) => {
                                self.push(t + drain, Loc::DeliverCore(resp.core), ev.packet)
                            }
                        }
                    }
                }
            }
            Loc::DeliverBank(bank) => {
                let Payload::Request(req) = ev.packet.payload else {
                    unreachable!("only requests are delivered to banks");
                };
                let transit = t.saturating_sub(ev.packet.injected_at);
                self.stats.total_request_latency += transit;
                self.stats.max_request_latency = self.stats.max_request_latency.max(transit);
                self.arrivals.push_back(BankArrival {
                    request: req,
                    bank,
                    at_cycle: t,
                });
            }
            Loc::DeliverCore(_) => {
                let Payload::Response(resp) = ev.packet.payload else {
                    unreachable!("only responses are delivered to cores");
                };
                self.stats.responses += 1;
                self.deliveries.push_back(CoreDelivery {
                    response: resp,
                    at_cycle: t,
                });
            }
        }
    }
}

/// Mean uncontended one-way request latency over all (core, bank) pairs.
fn uncontended_hint(topo: &Topology, params: &NocParams) -> u64 {
    let mut total = 0u64;
    let mut pairs = 0u64;
    for core in 0..CORES {
        for bank in 0..BANKS {
            let mut at = topo.core_router(core);
            let mut cycles = 1u64; // injection
            loop {
                match topo.route_to_bank(at, bank) {
                    Hop::Router(n) => {
                        cycles += params.hop_latency() + 1; // +1 head serialisation
                        at = n;
                    }
                    Hop::Bus(_) => {
                        cycles += params.router_pipeline + params.bus_arb_cycles + 1;
                        break;
                    }
                    Hop::Eject => {
                        cycles += 1;
                        break;
                    }
                }
            }
            total += cycles;
            pairs += 1;
        }
    }
    (total + pairs / 2) / pairs
}

impl Interconnect for NocNetwork {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now: u64) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            self.handle(t, ev);
        }
    }

    fn inject_request(&mut self, now: u64, request: MemRequest) {
        assert!(request.core < CORES, "core {} out of range", request.core);
        assert!(
            request.home_bank < BANKS,
            "bank {} out of range",
            request.home_bank
        );
        self.stats.requests += 1;
        let packet = Packet::request(now, request);
        // One injection-link cycle into the core's router.
        self.push(
            now + 1,
            Loc::AtRouter(self.topo.core_router(request.core)),
            packet,
        );
    }

    fn pop_arrival(&mut self) -> Option<BankArrival> {
        self.arrivals.pop_front()
    }

    fn inject_response(&mut self, now: u64, response: MemResponse) {
        assert!(response.bank < BANKS, "bank {} out of range", response.bank);
        let packet = Packet::response(now, response);
        match self.topo.kind() {
            NocTopologyKind::Mesh3d => {
                let router = self
                    .topo
                    .bank_router(response.bank)
                    // mot3d-lint: allow(P1) -- Mesh3d arm: bank_router is Some for every bank there
                    .expect("mesh banks have routers");
                self.push(now + 1, Loc::AtRouter(router), packet);
            }
            _ => {
                // Bus topologies: the response rides the bus down first.
                let bus = self
                    .topo
                    .bank_bus(response.bank)
                    // mot3d-lint: allow(P1) -- non-mesh arm: bank_bus is Some for every bank there
                    .expect("bus topologies attach banks to buses");
                let flits = packet.flits();
                let done = self.board_bus(bus, now, flits);
                let router = self.topo.bus_router(bus);
                self.push(done, Loc::AtRouter(router), packet);
            }
        }
    }

    fn pop_delivery(&mut self) -> Option<CoreDelivery> {
        self.deliveries.pop_front()
    }

    fn next_activity(&self, now: u64) -> Option<u64> {
        // The engine is already event-driven internally: the next scheduled
        // packet event is the only thing that can change state. Pending
        // arrivals/deliveries the caller has not popped count as immediate.
        if !self.arrivals.is_empty() || !self.deliveries.is_empty() {
            return Some(now);
        }
        self.events.next_time().map(|t| t.max(now))
    }

    fn reset(&mut self) {
        self.events.clear();
        self.port_free.fill(0);
        self.bus_free.fill(0);
        self.arrivals.clear();
        self.deliveries.clear();
        self.dynamic_energy = Joules::ZERO;
        self.stats = InterconnectStats::default();
    }

    fn oneway_latency_hint(&self) -> u64 {
        self.hint
    }

    fn dynamic_energy(&self) -> Joules {
        self.dynamic_energy
    }

    fn leakage_power(&self) -> Watts {
        self.params.leakage
    }

    fn stats(&self) -> InterconnectStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot3d_mot::traits::ReqKind;

    fn req(core: usize, bank: usize, tag: u64) -> MemRequest {
        MemRequest {
            core,
            home_bank: bank,
            kind: ReqKind::ReadLine,
            tag,
        }
    }

    /// Drives the network until `n` arrivals (or panics after `horizon`).
    fn collect_arrivals(net: &mut NocNetwork, n: usize, horizon: u64) -> Vec<BankArrival> {
        let mut out = Vec::new();
        for now in 0..horizon {
            net.tick(now);
            while let Some(a) = net.pop_arrival() {
                out.push(a);
            }
            if out.len() >= n {
                return out;
            }
        }
        panic!(
            "only {} of {} arrivals within {} cycles",
            out.len(),
            n,
            horizon
        );
    }

    #[test]
    fn every_topology_delivers_requests() {
        for kind in NocTopologyKind::all() {
            let mut net = NocNetwork::date16(kind);
            net.inject_request(0, req(0, 31, 1));
            let arr = collect_arrivals(&mut net, 1, 200);
            assert_eq!(arr[0].bank, 31, "{kind}");
            assert_eq!(arr[0].request.tag, 1);
        }
    }

    #[test]
    fn every_topology_round_trips_responses() {
        for kind in NocTopologyKind::all() {
            let mut net = NocNetwork::date16(kind);
            net.inject_request(0, req(3, 17, 9));
            let mut delivered = None;
            for now in 0..300 {
                net.tick(now);
                while let Some(a) = net.pop_arrival() {
                    net.inject_response(
                        now,
                        MemResponse {
                            core: a.request.core,
                            bank: a.bank,
                            kind: a.request.kind,
                            tag: a.request.tag,
                        },
                    );
                }
                if let Some(d) = net.pop_delivery() {
                    delivered = Some(d);
                    break;
                }
            }
            let d = delivered.unwrap_or_else(|| panic!("{kind}: no delivery"));
            assert_eq!(d.response.core, 3, "{kind}");
            assert_eq!(d.response.tag, 9);
        }
    }

    #[test]
    fn no_request_is_lost_or_duplicated_under_load() {
        for kind in NocTopologyKind::all() {
            let mut net = NocNetwork::date16(kind);
            let mut tag = 0u64;
            for core in 0..CORES {
                for bank in [0usize, 13, 31] {
                    net.inject_request(0, req(core, bank, tag));
                    tag += 1;
                }
            }
            let arrivals = collect_arrivals(&mut net, tag as usize, 5_000);
            let mut tags: Vec<u64> = arrivals.iter().map(|a| a.request.tag).collect();
            tags.sort();
            tags.dedup();
            assert_eq!(tags.len() as u64, tag, "{kind}: lost/duplicated packets");
        }
    }

    #[test]
    fn mesh_transit_matches_hop_count() {
        // Core 0 → bank 31: 9 router hops (Fig.-style DOR), uncontended.
        let mut net = NocNetwork::date16(NocTopologyKind::Mesh3d);
        net.inject_request(0, req(0, 31, 1));
        let arr = collect_arrivals(&mut net, 1, 200);
        let hops = 8; // 3 X + 3 Y + 2 Z (see topo::tests::mesh3d_dor...)
                      // Cut-through: injection(1) + hops·(pipeline 2 + link 1) + tail
                      // drain (1 flit).
        let expect = 1 + hops * 3 + 1;
        assert_eq!(arr[0].at_cycle, expect, "transit {}", arr[0].at_cycle);
    }

    #[test]
    fn bus_tree_congests_worse_than_bus_mesh() {
        // The paper's Fig. 6 inversion: with every core hitting banks of
        // one quadrant, the tree's single shared bus queues far deeper
        // than the mesh's per-position pillars.
        let run = |kind: NocTopologyKind| -> f64 {
            let mut net = NocNetwork::date16(kind);
            let mut tag = 0;
            for core in 0..CORES {
                for bank in [0usize, 1, 16, 17] {
                    net.inject_request(0, req(core, bank, tag));
                    tag += 1;
                }
            }
            let _ = collect_arrivals(&mut net, tag as usize, 10_000);
            net.stats().mean_request_latency()
        };
        let mesh = run(NocTopologyKind::HybridBusMesh);
        let tree = run(NocTopologyKind::HybridBusTree);
        assert!(
            tree > mesh,
            "tree should congest worse: tree {tree:.1} vs mesh {mesh:.1}"
        );
    }

    #[test]
    fn hints_reflect_topology_hop_counts() {
        let mesh3d = NocNetwork::date16(NocTopologyKind::Mesh3d);
        let bus_mesh = NocNetwork::date16(NocTopologyKind::HybridBusMesh);
        let bus_tree = NocNetwork::date16(NocTopologyKind::HybridBusTree);
        // Bus-Mesh avoids per-hop Z routers: cheaper than the true mesh.
        assert!(bus_mesh.oneway_latency_hint() < mesh3d.oneway_latency_hint());
        // Bus-Tree has the fewest hops of all (uncontended).
        assert!(bus_tree.oneway_latency_hint() < bus_mesh.oneway_latency_hint());
    }

    #[test]
    fn energy_grows_with_traffic() {
        let mut net = NocNetwork::date16(NocTopologyKind::Mesh3d);
        net.inject_request(0, req(0, 31, 0));
        let _ = collect_arrivals(&mut net, 1, 200);
        let one = net.dynamic_energy();
        net.inject_request(100, req(0, 31, 1)); // identical route: same cost
        net.inject_request(100, req(5, 20, 2)); // shorter route: some cost
        for now in 100..300 {
            net.tick(now);
            while net.pop_arrival().is_some() {}
        }
        assert!(net.dynamic_energy() > one * 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_core() {
        let mut net = NocNetwork::date16(NocTopologyKind::Mesh3d);
        net.inject_request(0, req(99, 0, 0));
    }
}
