//! # mot3d-lint — workspace static analysis for determinism invariants
//!
//! The repo's verification story rests on two invariants the compiler
//! cannot see: results must be **bit-identical** across runs and thread
//! counts (the golden-equivalence suites), and the active-cycle hot
//! paths must stay **allocation-free** (the flat-storage rewrites).
//! Both were protected only by after-the-fact differential tests; this
//! crate enforces them *by construction* with a hand-rolled token
//! scanner (no new dependencies — consistent with the offline vendoring
//! policy) and repo-specific rules. See [`rules`] for the rule table
//! and [`lexer`] for what the scanner understands.
//!
//! Run it as `cargo run -p mot3d-lint -- --deny`, or through the CLI as
//! `mot3d lint --deny`. `--json` emits a machine-readable report; CI
//! gates on `--deny` (any unsuppressed finding fails the job).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod rules;

use rules::Finding;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, and path prefixes excluded
/// from the scan (the lint fixtures deliberately contain violations).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", ".github"];
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/tests/fixtures"];

/// Aggregated result of scanning a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, ordered by (file, line).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Findings silenced by valid `allow(...)` directives.
    pub suppressed: usize,
}

impl Report {
    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}", f.render());
        }
        let _ = writeln!(
            out,
            "mot3d-lint: {} finding{} ({} suppressed) across {} files",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed,
            self.files
        );
        out
    }

    /// Renders the machine-readable (`--json`) report: one object with
    /// a findings array. Assembled by hand like the bench perf
    /// document — the schema is flat and the build stays offline.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"files\": {},", self.files);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(out, "  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"rule\": \"{}\", \"message\": {}, \"rationale\": {}}}{}",
                json_string(&f.file),
                f.line,
                f.rule,
                json_string(&f.message),
                json_string(rules::rationale(f.rule)),
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Minimal JSON string escaping (mirrors the bench perf writer).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finds the workspace root by walking up from `start` until a
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects every `.rs` file under `root` (sorted, workspace-relative)
/// that the scan covers — the scan itself must be deterministic too.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                let rel = path.strip_prefix(root).unwrap_or(&path);
                let rel = rel.to_string_lossy().replace('\\', "/");
                if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans the workspace rooted at `root` with every rule.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading sources.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let file_report = rules::check_file(&rel, &src);
        report.files += 1;
        report.suppressed += file_report.suppressed;
        report.findings.extend(file_report.findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Parsed command-line options for the lint binary / subcommand.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct LintOptions {
    /// Workspace root override (`--root <dir>`); auto-detected otherwise.
    pub root: Option<PathBuf>,
    /// Emit the JSON report instead of the human one (`--json`), to
    /// stdout or to the given path (`--json <path>` when the next
    /// argument is not a flag).
    pub json: Option<Option<PathBuf>>,
    /// Exit non-zero when findings remain (`--deny`) — the CI gate.
    pub deny: bool,
}

impl LintOptions {
    /// Parses `args` (without the program/subcommand name).
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = LintOptions::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--root" => {
                    let v = it.next().ok_or("--root needs a directory")?;
                    opts.root = Some(PathBuf::from(v));
                }
                "--json" => {
                    let target = it
                        .peek()
                        .filter(|v| !v.starts_with("--"))
                        .map(|v| PathBuf::from(v.as_str()));
                    if target.is_some() {
                        it.next();
                    }
                    opts.json = Some(target);
                }
                "--deny" => opts.deny = true,
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown option {other:?}\n\n{}", usage())),
            }
        }
        Ok(opts)
    }
}

fn usage() -> String {
    "\
mot3d-lint — workspace static analysis for determinism and hot-path invariants

USAGE: mot3d-lint [--root <dir>] [--json [path]] [--deny]

  --root <dir>   workspace root (default: walk up from the current directory)
  --json [path]  machine-readable report to stdout or <path>
  --deny         exit 1 when any unsuppressed finding remains (CI gate)

Rules: D1 default-hasher maps · D2 hash-order iteration on report paths ·
D3 clock/env reads outside bench timing modules · A1 allocation in
`// mot3d-lint: no-alloc` regions · P1 unwrap/expect/panic! in library
code · H1 BinaryHeap in hot-path crates · H2 wall-clock reads in trace
code · S1 malformed markers. Suppress with
`// mot3d-lint: allow(<rules>) -- <reason>` (reason mandatory)."
        .to_string()
}

/// Entry point shared by the `mot3d-lint` binary and the `mot3d lint`
/// subcommand. Returns the process exit code: 0 clean (or findings
/// without `--deny`), 1 findings under `--deny`, 2 usage/I-O errors.
pub fn run_cli(args: &[String]) -> i32 {
    let opts = match LintOptions::parse(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "mot3d-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mot3d-lint: scan failed: {e}");
            return 2;
        }
    };
    match &opts.json {
        Some(Some(path)) => {
            if let Err(e) = fs::write(path, report.render_json()) {
                eprintln!("mot3d-lint: cannot write {}: {e}", path.display());
                return 2;
            }
            eprint!("{}", report.render_human());
        }
        Some(None) => print!("{}", report.render_json()),
        None => print!("{}", report.render_human()),
    }
    if opts.deny && !report.findings.is_empty() {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_all_forms() {
        let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        let o = LintOptions::parse(&argv("--deny --json out.json --root /tmp/ws")).unwrap();
        assert!(o.deny);
        assert_eq!(o.json, Some(Some(PathBuf::from("out.json"))));
        assert_eq!(o.root, Some(PathBuf::from("/tmp/ws")));
        // --json without a path streams to stdout; --deny after it must
        // not be eaten as the path.
        let o = LintOptions::parse(&argv("--json --deny")).unwrap();
        assert_eq!(o.json, Some(None));
        assert!(o.deny);
        assert!(LintOptions::parse(&argv("--wat")).is_err());
        assert!(LintOptions::parse(&argv("--root")).is_err());
    }

    #[test]
    fn json_report_is_balanced_and_escaped() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/sim/src/x.rs".into(),
                line: 3,
                rule: "P1",
                message: "`.unwrap()` \"quoted\"".into(),
            }],
            files: 10,
            suppressed: 2,
        };
        let json = report.render_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"suppressed\": 2"));
        assert!(json.contains("\"rule\": \"P1\""));
    }

    #[test]
    fn workspace_root_detection_walks_up() {
        // The crate's own manifest dir sits two levels below the root.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint/Cargo.toml").exists());
    }
}
