//! The `mot3d-lint` binary: scan the workspace, report findings, gate
//! CI with `--deny`. All logic lives in the library (shared with the
//! `mot3d lint` subcommand).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mot3d_lint::run_cli(&args));
}
