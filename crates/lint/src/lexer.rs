//! A minimal Rust token scanner for lint-rule matching.
//!
//! This is **not** a full Rust lexer: it produces just enough structure
//! for the lexical rules in [`crate::rules`] — identifiers and
//! punctuation with line numbers — while being exactly right about the
//! parts that would otherwise cause false findings:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`) produce no tokens;
//! * string literals, byte strings, and raw strings (`r"…"`,
//!   `r#"…"#`, any hash depth, with `b`/`br` prefixes) produce no
//!   tokens, so `let s = "HashMap::new()";` never matches a rule;
//! * char literals (`'a'`, `'\n'`, `'\u{1F600}'`) are distinguished
//!   from lifetimes (`'a`), so `'"'` cannot desynchronise string
//!   tracking;
//! * number literals (including `0x1E`, `1_000`, `2.5e-3`) are consumed
//!   whole so their digits and exponent signs never leak as tokens.
//!
//! Comments are skipped, with one exception: line comments carrying a
//! `mot3d-lint:` marker are surfaced as [`Directive`]s — the
//! suppression and `no-alloc` annotation channel.

/// One token kind the rules can match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// A parsed `mot3d-lint:` comment marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// mot3d-lint: no-alloc` — the next `fn`/`impl`/`mod` item (or
    /// the whole file for the inner `//!` form) must not allocate.
    NoAlloc {
        /// `true` for the inner-doc form (`//! mot3d-lint: no-alloc`),
        /// which covers the entire file.
        whole_file: bool,
    },
    /// `// mot3d-lint: allow(<rules>) -- <reason>` — suppress the named
    /// rules on this line and the next. The reason is mandatory.
    Allow {
        /// Upper-cased rule ids, e.g. `["P1"]`.
        rules: Vec<String>,
        /// The justification after `--` (never empty).
        reason: String,
    },
    /// A `mot3d-lint:` marker that does not parse — surfaced as an `S1`
    /// finding so typos cannot silently disable enforcement.
    Malformed {
        /// Human-readable description of what is wrong.
        why: String,
    },
}

/// A directive with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line of the comment carrying the marker.
    pub line: u32,
    /// What the marker said.
    pub kind: DirectiveKind,
}

/// The scanner's output: the token stream plus any lint directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Directives in source order.
    pub directives: Vec<Directive>,
}

/// The marker every directive comment starts with.
pub const MARKER: &str = "mot3d-lint:";

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into tokens and directives. Never panics, whatever the
/// input: unterminated strings or comments simply end at end-of-file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.out.tokens.push(Token {
                        line,
                        tok: Tok::Punct(c),
                    });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if let Some(directive) = parse_directive(&text, line) {
            self.out.directives.push(directive);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
    }

    /// A plain `"…"` string with `\"` / `\\` escapes.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// A raw string starting at the current position's `#`* `"` run,
    /// with `hashes` leading `#`s already counted (0 for `r"…"`).
    fn raw_string(&mut self, hashes: usize) {
        for _ in 0..hashes {
            self.bump(); // the `#`s
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// `'a'` / `'\n'` / `'\u{…}'` char literals vs `'a` lifetimes.
    fn char_or_lifetime(&mut self) {
        self.bump(); // the `'`
        match self.peek(0) {
            // `'\…'` is always a char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char (or `u` of `\u{…}`)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            // `'x…`: a lifetime unless a closing quote follows the one
            // character, i.e. `'x'`.
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump(); // char literal like `'x'`
                } else {
                    // Lifetime: consume the identifier, emit nothing.
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        self.bump();
                    }
                }
            }
            // `'('`-style single-char literal of a non-ident char.
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }

    /// Number literals: `1_000`, `0x1F`, `1.5e-3`, `1.`, `42u64`.
    fn number(&mut self) {
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O'));
        let mut last = ' ';
        while let Some(c) = self.peek(0) {
            let digit_follows = || self.peek(1).is_some_and(|d| d.is_ascii_digit());
            let continues = is_ident_continue(c)
                || (c == '.' && digit_follows())
                || (matches!(c, '+' | '-')
                    && matches!(last, 'e' | 'E')
                    && !radix_prefixed
                    && digit_follows());
            if !continues {
                break;
            }
            last = c;
            self.bump();
        }
    }

    /// An identifier — unless it is the `r`/`b`/`br` prefix of a (raw)
    /// string/byte literal, or the `r#` of a raw identifier.
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut ident = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            ident.push(c);
            self.bump();
        }
        match (ident.as_str(), self.peek(0)) {
            // r"…" / b"…" / br"…" / rb"…" plain-quote forms.
            ("r" | "b" | "br" | "rb", Some('"')) => self.string_or_raw(&ident, 0),
            // r#"…"# (any hash depth) or the r#ident raw-identifier form.
            ("r" | "br" | "rb", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                match self.peek(hashes) {
                    Some('"') => self.raw_string(hashes),
                    // `r#ident`: emit the identifier without its sigil.
                    Some(c) if hashes == 1 && is_ident_start(c) => {
                        self.bump(); // the `#`
                        self.ident_or_prefixed_literal();
                    }
                    _ => self.out.tokens.push(Token {
                        line,
                        tok: Tok::Ident(ident),
                    }),
                }
            }
            // b'x' byte char literal.
            ("b", Some('\'')) => self.char_or_lifetime(),
            _ => self.out.tokens.push(Token {
                line,
                tok: Tok::Ident(ident),
            }),
        }
    }

    fn string_or_raw(&mut self, prefix: &str, hashes: usize) {
        if prefix.contains('r') {
            self.raw_string(hashes);
        } else {
            self.string_literal();
        }
    }
}

/// Parses a `mot3d-lint:` marker out of a line comment's text (the part
/// after `//`). Returns `None` for ordinary comments.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    // Doc-comment sigils: `///` and `//!` arrive as leading `/` or `!`.
    let inner_doc = comment.starts_with('!');
    let text = comment.trim_start_matches(['/', '!']).trim();
    let rest = text.strip_prefix(MARKER)?.trim();
    let kind = if rest == "no-alloc" {
        DirectiveKind::NoAlloc {
            whole_file: inner_doc,
        }
    } else if let Some(after) = rest.strip_prefix("allow") {
        parse_allow(after.trim())
    } else {
        DirectiveKind::Malformed {
            why: format!(
                "unknown directive {rest:?} (expected `no-alloc` or `allow(<rules>) -- <reason>`)"
            ),
        }
    };
    Some(Directive { line, kind })
}

fn parse_allow(after: &str) -> DirectiveKind {
    let Some(inner) = after.strip_prefix('(') else {
        return DirectiveKind::Malformed {
            why: "allow needs a parenthesised rule list: allow(<rules>) -- <reason>".into(),
        };
    };
    let Some((list, tail)) = inner.split_once(')') else {
        return DirectiveKind::Malformed {
            why: "unclosed rule list in allow(...)".into(),
        };
    };
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return DirectiveKind::Malformed {
            why: "empty rule list in allow(...)".into(),
        };
    }
    let reason = tail
        .trim()
        .strip_prefix("--")
        .map(str::trim)
        .unwrap_or_default();
    if reason.is_empty() {
        return DirectiveKind::Malformed {
            why: "suppression reason is mandatory: allow(<rules>) -- <reason>".into(),
        };
    }
    DirectiveKind::Allow {
        rules,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn plain_tokens_carry_lines() {
        let l = lex("fn a() {\n  b.c();\n}\n");
        assert_eq!(
            l.tokens[0],
            Token {
                line: 1,
                tok: Tok::Ident("fn".into())
            }
        );
        let b = l
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn line_comments_hide_identifiers() {
        assert_eq!(idents("// HashMap::new()\nlet x = 1;"), ["let", "x"]);
        assert_eq!(idents("/// doc with unwrap()\nfn f() {}"), ["fn", "f"]);
    }

    #[test]
    fn nested_block_comments_are_skipped_whole() {
        let src = "/* outer /* inner unwrap() */ still comment */ fn g() {}";
        assert_eq!(idents(src), ["fn", "g"]);
        // Unterminated: swallow to EOF without panicking.
        assert_eq!(
            idents("/* /* never closed */ HashMap"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn strings_hide_identifiers_and_escapes_work() {
        assert_eq!(
            idents(r#"let s = "HashMap \" still string";"#),
            ["let", "s"]
        );
        assert_eq!(
            idents(r#"let s = "ends \\"; unwrap"#),
            ["let", "s", "unwrap"]
        );
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        assert_eq!(
            idents(r###"let s = r"no # close"; done"###),
            ["let", "s", "done"]
        );
        assert_eq!(
            idents(r####"let s = r#"quote " inside"#; done"####),
            ["let", "s", "done"]
        );
        assert_eq!(
            idents(r####"let s = r##"deep "# inside"##; done"####),
            ["let", "s", "done"]
        );
        assert_eq!(
            idents(r###"let s = br#"bytes"#; done"###),
            ["let", "s", "done"]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(idents("let c = 'a'; next"), ["let", "c", "next"]);
        assert_eq!(idents(r"let c = '\n'; next"), ["let", "c", "next"]);
        assert_eq!(idents(r"let c = '\u{1F600}'; next"), ["let", "c", "next"]);
        // A quote char literal must not open a "string".
        assert_eq!(idents("let q = '\"'; unwrap"), ["let", "q", "unwrap"]);
        // Lifetimes emit nothing and consume no closing quote.
        assert_eq!(idents("fn f<'a>(x: &'a str) {}"), ["fn", "f", "x", "str"]);
        assert_eq!(idents("&'static str"), ["str"]);
    }

    #[test]
    fn raw_identifiers_lose_their_sigil() {
        assert_eq!(idents("let r#fn = 1;"), ["let", "fn"]);
    }

    #[test]
    fn numbers_consume_exponents_and_radix_prefixes() {
        assert_eq!(idents("let x = 2.5e-3 + 0x1F + 1_000u64;"), ["let", "x"]);
        // Hex `E` must not swallow a following `+`.
        let l = lex("0x1E + 2");
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Punct('+')));
    }

    #[test]
    fn directive_no_alloc_outer_and_inner() {
        let l = lex("// mot3d-lint: no-alloc\nfn f() {}\n");
        assert_eq!(
            l.directives,
            [Directive {
                line: 1,
                kind: DirectiveKind::NoAlloc { whole_file: false }
            }]
        );
        let l = lex("//! mot3d-lint: no-alloc\n");
        assert_eq!(
            l.directives[0].kind,
            DirectiveKind::NoAlloc { whole_file: true }
        );
    }

    #[test]
    fn directive_allow_requires_reason() {
        let l = lex("x(); // mot3d-lint: allow(P1, d2) -- invariant: peeked first\n");
        assert_eq!(
            l.directives[0].kind,
            DirectiveKind::Allow {
                rules: vec!["P1".into(), "D2".into()],
                reason: "invariant: peeked first".into()
            }
        );
        for bad in [
            "// mot3d-lint: allow(P1)",
            "// mot3d-lint: allow(P1) -- ",
            "// mot3d-lint: allow()  -- why",
            "// mot3d-lint: allow P1 -- why",
            "// mot3d-lint: allwo(P1) -- why",
        ] {
            let l = lex(bad);
            assert!(
                matches!(l.directives[0].kind, DirectiveKind::Malformed { .. }),
                "{bad} should be malformed"
            );
        }
    }

    #[test]
    fn directives_inside_strings_are_not_directives() {
        let l = lex(r#"let s = "// mot3d-lint: no-alloc";"#);
        assert!(l.directives.is_empty());
    }
}
