//! The repo-specific lint rules and their matching engine.
//!
//! Every rule here protects an invariant the compiler cannot see but
//! the verification story depends on — bit-identical results across
//! runs and thread counts, and allocation-free active-cycle hot paths:
//!
//! | id | rule |
//! |----|------|
//! | D1 | no default-hasher `HashMap`/`HashSet` in result-affecting crates |
//! | D2 | no iteration in hash-map order on metrics/report paths |
//! | D3 | no `Instant::now`/`SystemTime`/`env::var` outside bench timing/CLI modules |
//! | A1 | `// mot3d-lint: no-alloc` regions must not allocate |
//! | P1 | no `unwrap`/`expect`/`panic!` in library crates (incl. serve) outside tests/`debug_assert`s |
//! | H1 | no `BinaryHeap` in the simulator hot-path crates (`sim`/`noc`/`mem`) |
//! | H2 | no `Instant`/`SystemTime` in the trace crate — timestamps are sim cycles |
//! | S1 | `mot3d-lint:` markers must parse and name known rules |
//!
//! Suppression: `// mot3d-lint: allow(<rules>) -- <reason>` on the
//! finding's line or the line above. The reason is mandatory (S1
//! otherwise), so every escape hatch documents why it is sound.

use crate::lexer::{self, Directive, DirectiveKind, Tok, Token};

/// The known rule ids, in report order.
pub const RULES: [&str; 8] = ["D1", "D2", "D3", "A1", "P1", "H1", "H2", "S1"];

/// One-line rationale shown with every finding of a rule.
pub fn rationale(rule: &str) -> &'static str {
    match rule {
        "D1" => {
            "default RandomState iteration order varies per process and silently \
             breaks golden checksums; use mot3d_phys::fnv::{FnvHashMap, FnvHashSet} \
             or mot3d_mem's LineMap"
        }
        "D2" => {
            "hash-map iteration order is unspecified, so metrics/report output \
             built from it is nondeterministic; iterate a sorted or dense \
             structure instead"
        }
        "D3" => {
            "wall-clock and environment reads make runs irreproducible; only the \
             bench crate's timing/CLI modules may observe them"
        }
        "A1" => {
            "this region is a declared active-cycle hot path: steady-state \
             allocation undoes the flat-storage wins and perturbs run time"
        }
        "P1" => {
            "library panics abort a whole sweep service; return an error (or \
             suppress with the invariant that makes the panic unreachable)"
        }
        "H1" => {
            "the event queues here were migrated to mot3d_phys::wheel::TimingWheel \
             (O(1) schedule/pop, exact (time, seq) order); a BinaryHeap quietly \
             reintroduces the O(log n) sift the wheel replaced"
        }
        "H2" => {
            "trace timestamps are simulated cycles read off the cluster; a \
             wall-clock read here would stamp events with host time, making \
             traces irreproducible and useless for cross-run comparison"
        }
        "S1" => {
            "a marker that does not parse silently disables enforcement; fix the \
             directive syntax"
        }
        _ => "unknown rule",
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D1`…`S1`).
    pub rule: &'static str,
    /// What matched, e.g. "`.unwrap()` call".
    pub message: String,
}

impl Finding {
    /// Renders the human-readable single-line report form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {} — {}",
            self.file,
            self.line,
            self.rule,
            self.message,
            rationale(self.rule)
        )
    }
}

/// Result of checking one file: surviving findings plus the number the
/// file's `allow` directives suppressed.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings not covered by a suppression.
    pub findings: Vec<Finding>,
    /// Findings covered by a valid `allow(...)` directive.
    pub suppressed: usize,
}

/// The six crates whose state feeds result checksums (plus the facade).
const RESULT_CRATES: [&str; 6] = ["phys", "mot", "noc", "mem", "sim", "workloads"];

/// Metrics/report-path files subject to D2.
const METRICS_PATHS: [&str; 5] = [
    "crates/sim/src/metrics.rs",
    "crates/bench/src/report.rs",
    "crates/bench/src/sink.rs",
    "crates/bench/src/perf.rs",
    "crates/bench/src/experiments.rs",
];

/// The simulator hot-path crates where H1 bans `BinaryHeap` — their
/// event queues ride `mot3d_phys::wheel::TimingWheel` now.
const H1_CRATES: [&str; 3] = ["sim", "noc", "mem"];

/// The trace crate, where H2 bans wall-clock reads outright: every
/// event timestamp must be a simulated cycle read off the cluster.
const H2_PREFIX: &str = "crates/trace/src/";

/// The bench/serve timing/CLI modules, exempt from D3 — the one place
/// wall-clock and environment reads are part of the job.
const D3_EXEMPT: [&str; 6] = [
    "crates/bench/src/cli.rs",
    "crates/bench/src/perf.rs",
    "crates/bench/src/pool.rs",
    "crates/bench/src/sink.rs",
    "crates/bench/src/experiments.rs",
    "crates/serve/src/cli.rs",
];

/// Iterator-producing methods D2 watches for on hash-named receivers.
const D2_ITER_METHODS: [&str; 9] = [
    "keys",
    "values",
    "values_mut",
    "iter",
    "iter_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Which rules apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default)]
struct Scope {
    d1: bool,
    d2: bool,
    d3: bool,
    p1: bool,
    h1: bool,
    h2: bool,
}

fn scope_of(rel: &str) -> Scope {
    // Integration tests, benches, and examples are free to use whatever
    // they like (A1/S1 still apply — they are marker-driven).
    let in_lib_src =
        rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    if !in_lib_src {
        return Scope::default();
    }
    let result_crate = rel.starts_with("src/")
        || RESULT_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    // The trace observer rides the simulator step path: it must not
    // perturb results (D1), panic out of a sweep (P1), or read the
    // wall clock (H2 — trace timestamps are simulated cycles).
    let trace_crate = rel.starts_with(H2_PREFIX);
    Scope {
        d1: result_crate || trace_crate,
        d2: METRICS_PATHS.contains(&rel),
        d3: !D3_EXEMPT.contains(&rel),
        // The serve crate is a long-running service: a stray panic
        // aborts every in-flight submission, so it gets the same
        // no-panic discipline as the result crates.
        p1: result_crate || trace_crate || rel.starts_with("crates/serve/src/"),
        h1: H1_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/"))),
        h2: trace_crate,
    }
}

/// A half-open token-index range with the source line span it covers.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    end: usize,
}

impl Region {
    fn contains(&self, idx: usize) -> bool {
        (self.start..self.end).contains(&idx)
    }
}

/// Checks one file's source against every applicable rule.
///
/// `rel` is the workspace-relative path (it selects which rules apply);
/// `src` is the file's contents.
pub fn check_file(rel: &str, src: &str) -> FileReport {
    let lexed = lexer::lex(src);
    let scope = scope_of(rel);
    let toks = &lexed.tokens;

    let test_regions = attribute_regions(toks, is_test_attribute);
    let debug_assert_regions = debug_assert_regions(toks);
    let (no_alloc_regions, orphan_markers) = no_alloc_regions(toks, &lexed.directives);

    let in_test = |idx: usize| test_regions.iter().any(|r| r.contains(idx));
    let in_debug_assert = |idx: usize| debug_assert_regions.iter().any(|r| r.contains(idx));

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |line: u32, rule: &'static str, message: String| {
        raw.push(Finding {
            file: rel.to_string(),
            line,
            rule,
            message,
        });
    };

    for idx in 0..toks.len() {
        let t = &toks[idx];
        let Tok::Ident(name) = &t.tok else { continue };

        // D1 — default-hasher collections in result-affecting crates.
        if scope.d1 && matches!(name.as_str(), "HashMap" | "HashSet") {
            push(t.line, "D1", format!("default-hasher `{name}`"));
        }

        // H1 — BinaryHeap in the simulator hot-path crates.
        if scope.h1 && name == "BinaryHeap" {
            push(t.line, "H1", "`BinaryHeap` use".to_string());
        }

        // D2 — iteration in hash order on metrics/report paths.
        if scope.d2
            && !in_test(idx)
            && D2_ITER_METHODS.contains(&name.as_str())
            && prev_is(toks, idx, '.')
            && next_is(toks, idx, '(')
        {
            if let Some(recv) = receiver_ident(toks, idx) {
                let lower = recv.to_ascii_lowercase();
                if lower.contains("map") || lower.contains("set") || lower.contains("hash") {
                    push(
                        t.line,
                        "D2",
                        format!("`{recv}.{name}()` iterates a hash container on a report path"),
                    );
                }
            }
        }

        // D3 — wall-clock / environment reads outside timing modules.
        // In the trace crate a clock read is the sharper H2 instead:
        // event timestamps there must be simulated cycles, never host
        // time. (env reads stay D3 — H2 is specifically about clocks.)
        if scope.d3 && !in_test(idx) {
            match name.as_str() {
                "Instant" | "SystemTime" if scope.h2 => {
                    push(t.line, "H2", format!("`{name}` use in trace code"));
                }
                "Instant" | "SystemTime" => {
                    push(t.line, "D3", format!("`{name}` use"));
                }
                "env"
                    if next_is(toks, idx, ':')
                        && matches!(
                            ident_at(toks, idx + 3),
                            Some("var" | "var_os" | "vars" | "vars_os")
                        ) =>
                {
                    push(
                        t.line,
                        "D3",
                        format!(
                            "`env::{}` read",
                            ident_at(toks, idx + 3).unwrap_or_default()
                        ),
                    );
                }
                _ => {}
            }
        }

        // P1 — panicking calls in library code.
        if scope.p1 && !in_test(idx) && !in_debug_assert(idx) {
            match name.as_str() {
                "unwrap" | "expect" if prev_is(toks, idx, '.') && next_is(toks, idx, '(') => {
                    push(t.line, "P1", format!("`.{name}()` call"));
                }
                "panic" if next_is(toks, idx, '!') => {
                    push(t.line, "P1", "`panic!` invocation".to_string());
                }
                _ => {}
            }
        }

        // A1 — allocation inside a declared no-alloc region.
        if !no_alloc_regions.is_empty()
            && no_alloc_regions.iter().any(|r| r.contains(idx))
            && !in_test(idx)
        {
            if let Some(what) = alloc_pattern(toks, idx) {
                push(t.line, "A1", format!("`{what}` in a no-alloc region"));
            }
        }
    }

    // S1 — markers that exist but cannot take effect.
    for line in orphan_markers {
        push(
            line,
            "S1",
            "`no-alloc` marker is not followed by a `fn`/`impl`/`mod` item".to_string(),
        );
    }
    for d in &lexed.directives {
        match &d.kind {
            DirectiveKind::Malformed { why } => {
                push(d.line, "S1", format!("malformed directive: {why}"));
            }
            DirectiveKind::Allow { rules, .. } => {
                for r in rules {
                    if !RULES.contains(&r.as_str()) || r == "S1" {
                        push(d.line, "S1", format!("cannot suppress unknown rule `{r}`"));
                    }
                }
            }
            DirectiveKind::NoAlloc { .. } => {}
        }
    }

    apply_suppressions(raw, &lexed.directives)
}

fn ident_at(toks: &[Token], idx: usize) -> Option<&str> {
    match toks.get(idx).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], idx: usize) -> Option<char> {
    match toks.get(idx).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn prev_is(toks: &[Token], idx: usize, c: char) -> bool {
    idx > 0 && punct_at(toks, idx - 1) == Some(c)
}

fn next_is(toks: &[Token], idx: usize, c: char) -> bool {
    punct_at(toks, idx + 1) == Some(c)
}

/// For `recv.method(` at `idx` (the method ident), the receiver ident
/// directly before the dot, if there is one.
fn receiver_ident(toks: &[Token], idx: usize) -> Option<&str> {
    if idx < 2 {
        return None;
    }
    ident_at(toks, idx - 2)
}

/// Matches the banned allocation constructs at `idx`; returns a display
/// form on a hit. Only `idx` positions that *start* a pattern match, so
/// each construct is reported once.
fn alloc_pattern(toks: &[Token], idx: usize) -> Option<&'static str> {
    let path_to = |head: &str, tail: &str| {
        ident_at(toks, idx) == Some(head)
            && punct_at(toks, idx + 1) == Some(':')
            && punct_at(toks, idx + 2) == Some(':')
            && ident_at(toks, idx + 3) == Some(tail)
    };
    if path_to("Vec", "new") {
        return Some("Vec::new");
    }
    if path_to("Box", "new") {
        return Some("Box::new");
    }
    if path_to("String", "from") {
        return Some("String::from");
    }
    match ident_at(toks, idx) {
        Some("vec") if next_is(toks, idx, '!') => Some("vec!"),
        Some("format") if next_is(toks, idx, '!') => Some("format!"),
        Some("collect")
            if prev_is(toks, idx, '.') && (next_is(toks, idx, '(') || next_is(toks, idx, ':')) =>
        {
            Some(".collect()")
        }
        _ => None,
    }
}

/// Is the attribute body (tokens strictly between `[` and `]`) a
/// test-only marker: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`?
fn is_test_attribute(body: &[Token]) -> bool {
    match body.first().map(|t| &t.tok) {
        Some(Tok::Ident(s)) if s == "test" => body.len() == 1,
        Some(Tok::Ident(s)) if s == "cfg" => body
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "test")),
        _ => false,
    }
}

/// Regions covered by items carrying an attribute matched by `pred`:
/// from the `#` to the end of the following item (its matched `{…}`
/// block, or the `;` for block-less items like `use`).
fn attribute_regions(toks: &[Token], pred: impl Fn(&[Token]) -> bool) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if punct_at(toks, i) == Some('#') && punct_at(toks, i + 1) == Some('[') {
            let Some(close) = matching(toks, i + 1, '[', ']') else {
                break;
            };
            if pred(&toks[i + 2..close]) {
                if let Some(end) = item_end(toks, close + 1) {
                    regions.push(Region { start: i, end });
                    i = end;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// The end (exclusive token index) of the item starting at `from`:
/// skips further attributes, then runs to the matching `}` of the first
/// `{`, or past the first `;` if that comes sooner.
fn item_end(toks: &[Token], mut from: usize) -> Option<usize> {
    // Skip stacked attributes (`#[…] #[…] fn …`).
    while punct_at(toks, from) == Some('#') && punct_at(toks, from + 1) == Some('[') {
        from = matching(toks, from + 1, '[', ']')? + 1;
    }
    let mut i = from;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('{') => return matching(toks, i, '{', '}').map(|close| close + 1),
            Some(';') => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// Index of the closer matching the opener at `open_idx`.
fn matching(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    debug_assert_eq!(punct_at(toks, open_idx), Some(open));
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open_idx) {
        match &t.tok {
            Tok::Punct(c) if *c == open => depth += 1,
            Tok::Punct(c) if *c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Paren spans of `debug_assert!`/`debug_assert_eq!`/`debug_assert_ne!`
/// invocations — P1 tolerates panicking helpers inside them.
fn debug_assert_regions(toks: &[Token]) -> Vec<Region> {
    let mut regions = Vec::new();
    for i in 0..toks.len() {
        if let Some(name) = ident_at(toks, i) {
            if name.starts_with("debug_assert") && next_is(toks, i, '!') {
                let open = i + 2;
                let close = match punct_at(toks, open) {
                    Some('(') => matching(toks, open, '(', ')'),
                    Some('[') => matching(toks, open, '[', ']'),
                    Some('{') => matching(toks, open, '{', '}'),
                    _ => None,
                };
                if let Some(close) = close {
                    regions.push(Region {
                        start: i,
                        end: close + 1,
                    });
                }
            }
        }
    }
    regions
}

/// Resolves `no-alloc` directives into token regions: the whole file
/// for the inner (`//!`) form, the next `fn`/`impl`/`mod` item's block
/// for the outer form. Markers with no following item are returned as
/// orphan lines (an S1 finding).
fn no_alloc_regions(toks: &[Token], directives: &[Directive]) -> (Vec<Region>, Vec<u32>) {
    let mut regions = Vec::new();
    let mut orphans = Vec::new();
    for d in directives {
        let DirectiveKind::NoAlloc { whole_file } = d.kind else {
            continue;
        };
        if whole_file {
            regions.push(Region {
                start: 0,
                end: toks.len(),
            });
            continue;
        }
        let item = toks.iter().position(|t| {
            t.line > d.line
                && matches!(&t.tok, Tok::Ident(s) if s == "fn" || s == "impl" || s == "mod")
        });
        let region = item.and_then(|i| {
            let open = (i..toks.len()).find(|&j| punct_at(toks, j) == Some('{'))?;
            let close = matching(toks, open, '{', '}')?;
            Some(Region {
                start: i,
                end: close + 1,
            })
        });
        match region {
            Some(r) => regions.push(r),
            None => orphans.push(d.line),
        }
    }
    (regions, orphans)
}

/// Drops findings covered by an `allow` directive on the same line or
/// the line directly above.
fn apply_suppressions(raw: Vec<Finding>, directives: &[Directive]) -> FileReport {
    let allows: Vec<(u32, &Vec<String>)> = directives
        .iter()
        .filter_map(|d| match &d.kind {
            DirectiveKind::Allow { rules, .. } => Some((d.line, rules)),
            _ => None,
        })
        .collect();
    let mut report = FileReport::default();
    for f in raw {
        let suppressed = f.rule != "S1"
            && allows.iter().any(|(line, rules)| {
                (*line == f.line || line + 1 == f.line) && rules.iter().any(|r| r == f.rule)
            });
        if suppressed {
            report.suppressed += 1;
        } else {
            report.findings.push(f);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &str = "crates/sim/src/whatever.rs";

    fn rules_hit(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_file(rel, src)
            .findings
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d1_flags_default_hashers_in_result_crates_only() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashSet<u8> = HashSet::new(); }\n";
        assert_eq!(rules_hit(SIM, src), [("D1", 1), ("D1", 2), ("D1", 2)]);
        assert_eq!(rules_hit("crates/bench/src/plan.rs", src), []);
        assert_eq!(rules_hit("crates/sim/tests/properties.rs", src), []);
    }

    #[test]
    fn d1_ignores_comments_and_strings() {
        let src = "// a HashMap here\nlet s = \"HashSet\";\n";
        assert_eq!(rules_hit(SIM, src), []);
    }

    #[test]
    fn d2_flags_hash_receiver_iteration_on_report_paths() {
        let src = "fn render() { for k in self.port_map.keys() { use_(k); } }\n";
        assert_eq!(rules_hit("crates/bench/src/report.rs", src), [("D2", 1)]);
        // Same code elsewhere: not a report path.
        assert_eq!(rules_hit(SIM, src), []);
        // Non-hash receivers pass.
        let vec_src = "fn render() { for k in self.rows.iter() { use_(k); } }\n";
        assert_eq!(rules_hit("crates/bench/src/report.rs", vec_src), []);
    }

    #[test]
    fn d3_flags_clock_and_env_outside_timing_modules() {
        let src = "fn f() { let t = Instant::now(); let v = std::env::var(\"X\"); }\n";
        assert_eq!(rules_hit(SIM, src), [("D3", 1), ("D3", 1)]);
        assert_eq!(rules_hit("crates/bench/src/perf.rs", src), []);
        // `env::args` is fine — only environment *reads* are banned.
        assert_eq!(rules_hit(SIM, "fn f() { let a = std::env::args(); }"), []);
    }

    #[test]
    fn p1_flags_panics_outside_tests_and_debug_asserts() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\n\
                   fn h() { panic!(\"boom\"); }\n";
        assert_eq!(rules_hit(SIM, src), [("P1", 1), ("P1", 2), ("P1", 3)]);
        // unwrap_or / expect_err style names never match.
        assert_eq!(
            rules_hit(SIM, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }"),
            []
        );
    }

    #[test]
    fn p1_tolerates_cfg_test_modules_and_debug_asserts() {
        let src = "fn f(m: u64) { debug_assert!(m.checked_mul(2).unwrap() > 0); }\n\
                   #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u8>.unwrap(); }\n}\n";
        assert_eq!(rules_hit(SIM, src), []);
    }

    #[test]
    fn a1_fn_marker_covers_exactly_that_item() {
        let src = "// mot3d-lint: no-alloc\n\
                   fn hot(&mut self) { self.buf.push(1); }\n\
                   fn cold(&mut self) -> Vec<u8> { vec![1] }\n";
        assert_eq!(rules_hit(SIM, src), []);
        let bad = "// mot3d-lint: no-alloc\n\
                   fn hot(&mut self) -> String { format!(\"x{}\", self.n) }\n";
        assert_eq!(rules_hit(SIM, bad), [("A1", 2)]);
    }

    #[test]
    fn a1_inner_marker_covers_the_whole_file() {
        let src = "//! mot3d-lint: no-alloc\n\
                   fn a() { let v = Vec::new(); }\n\
                   fn b() { let b = Box::new(1); }\n\
                   fn c() -> Vec<u8> { (0..3).collect() }\n\
                   fn d() { let s = String::from(\"x\"); }\n";
        assert_eq!(
            rules_hit(SIM, src),
            [("A1", 2), ("A1", 3), ("A1", 4), ("A1", 5)]
        );
    }

    #[test]
    fn a1_collect_with_turbofish_is_caught() {
        let src = "// mot3d-lint: no-alloc\n\
                   fn hot() { let v = (0..3).collect::<Vec<u8>>(); }\n";
        // Both the collect() and the Vec::new-free turbofish land on A1
        // once: the pattern matches the `.collect` head.
        assert_eq!(rules_hit(SIM, src), [("A1", 2)]);
    }

    #[test]
    fn a1_orphan_marker_is_an_s1() {
        assert_eq!(
            rules_hit(SIM, "// mot3d-lint: no-alloc\nconst X: u8 = 1;\n"),
            [("S1", 1)]
        );
    }

    #[test]
    fn suppressions_cover_same_line_and_next_line() {
        let same =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // mot3d-lint: allow(P1) -- test fixture\n";
        let r = check_file(SIM, same);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);
        let above =
            "// mot3d-lint: allow(P1) -- test fixture\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(check_file(SIM, above).findings.is_empty());
        // Wrong rule id: the finding survives.
        let wrong = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // mot3d-lint: allow(D1) -- wrong\n";
        assert_eq!(rules_hit(SIM, wrong), [("P1", 1)]);
    }

    #[test]
    fn malformed_and_unknown_suppressions_are_s1() {
        assert_eq!(
            rules_hit(SIM, "fn ok() {} // mot3d-lint: allow(P1)\n"),
            [("S1", 1)]
        );
        assert_eq!(
            rules_hit(SIM, "fn ok() {} // mot3d-lint: allow(Z9) -- nope\n"),
            [("S1", 1)]
        );
        // S1 itself cannot be suppressed.
        assert_eq!(
            rules_hit(SIM, "fn ok() {} // mot3d-lint: allow(S1) -- sneaky\n"),
            [("S1", 1)]
        );
    }

    #[test]
    fn h1_flags_binary_heap_in_hot_path_crates_only() {
        let src = "use std::collections::BinaryHeap;\n\
                   struct Q { events: BinaryHeap<u64> }\n";
        assert_eq!(rules_hit(SIM, src), [("H1", 1), ("H1", 2)]);
        assert_eq!(
            rules_hit("crates/noc/src/network.rs", src),
            [("H1", 1), ("H1", 2)]
        );
        assert_eq!(
            rules_hit("crates/mem/src/bus.rs", src),
            [("H1", 1), ("H1", 2)]
        );
        // phys hosts the wheel itself; bench/tests are out of scope.
        assert_eq!(rules_hit("crates/phys/src/wheel.rs", src), []);
        assert_eq!(rules_hit("crates/bench/src/plan.rs", src), []);
        assert_eq!(rules_hit("crates/sim/tests/properties.rs", src), []);
    }

    #[test]
    fn h1_suppression_requires_a_reason() {
        let ok = "// mot3d-lint: allow(H1) -- differential reference for the wheel\n\
                  use std::collections::BinaryHeap;\n";
        let r = check_file(SIM, ok);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);
        let bare = "use std::collections::BinaryHeap; // mot3d-lint: allow(H1)\n";
        let hit = rules_hit(SIM, bare);
        assert!(hit.contains(&("H1", 1)) && hit.contains(&("S1", 1)));
    }

    #[test]
    fn h2_reclassifies_clock_reads_in_the_trace_crate() {
        let src = "fn f() { let t = Instant::now(); let e = SystemTime::now(); }\n";
        assert_eq!(
            rules_hit("crates/trace/src/chrome.rs", src),
            [("H2", 1), ("H2", 1)]
        );
        // The same code elsewhere stays D3; trace tests are exempt.
        assert_eq!(rules_hit(SIM, src), [("D3", 1), ("D3", 1)]);
        assert_eq!(rules_hit("crates/trace/tests/golden_trace.rs", src), []);
        // env reads in trace code are still D3 — H2 is clocks only.
        assert_eq!(
            rules_hit(
                "crates/trace/src/lib.rs",
                "fn f() { let v = std::env::var(\"X\"); }\n"
            ),
            [("D3", 1)]
        );
    }

    #[test]
    fn scope_table_matches_the_layout() {
        assert!(scope_of("crates/mem/src/dram.rs").d1);
        assert!(scope_of("src/lib.rs").d1);
        assert!(!scope_of("crates/bench/src/plan.rs").d1);
        assert!(!scope_of("crates/mem/tests/properties.rs").p1);
        assert!(!scope_of("examples/quickstart.rs").d3);
        assert!(scope_of("crates/bench/src/plan.rs").d3);
        assert!(!scope_of("crates/bench/src/cli.rs").d3);
        assert!(!scope_of("crates/serve/src/cli.rs").d3);
        assert!(scope_of("crates/serve/src/store.rs").d3);
        assert!(
            !scope_of("crates/serve/src/store.rs").d1,
            "not a result crate"
        );
        assert!(
            scope_of("crates/serve/src/exec.rs").p1,
            "the service must not panic"
        );
        assert!(!scope_of("crates/serve/tests/chaos.rs").p1);
        assert!(!scope_of("crates/bench/src/pool.rs").p1);
        assert!(scope_of("crates/bench/src/report.rs").d2);
        // The trace crate: no-panic, no default hashers, no clocks.
        assert!(scope_of("crates/trace/src/observer.rs").p1);
        assert!(scope_of("crates/trace/src/observer.rs").d1);
        assert!(scope_of("crates/trace/src/chrome.rs").h2);
        assert!(!scope_of("crates/trace/tests/differential.rs").h2);
        assert!(!scope_of("crates/sim/src/cluster.rs").h2);
    }
}
