//@ path: crates/sim/src/fixture.rs
//@ suppressed: 3
//! A fully clean file: every seeded pattern is either out of scope,
//! tolerated, or suppressed with a documented reason. Expects zero
//! findings and exactly three suppressions.

use mot3d_phys::fnv::FnvHashMap;

fn deterministic() -> FnvHashMap<u64, u64> {
    FnvHashMap::default()
}

fn checked(x: Option<u8>) -> u8 {
    // mot3d-lint: allow(P1) -- fixture: caller guarantees Some
    x.unwrap()
}

fn seeded() -> u64 {
    // mot3d-lint: allow(D3) -- fixture: documented deprecated fallback
    std::env::var("MOT3D_SCALE").map_or(0, |s| s.len() as u64)
}

// mot3d-lint: no-alloc
fn hot_with_one_cold_edge(n: u64) -> u64 {
    // mot3d-lint: allow(A1) -- fixture: one-time lazy init, not steady state
    let label = format!("bank{n}");
    label.len() as u64
}
