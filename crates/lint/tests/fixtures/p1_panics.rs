//@ path: crates/mot/src/fixture.rs
//@ suppressed: 1
//! Seeded P1 violations: panicking calls in library code.

fn take(x: Option<u8>) -> u8 {
    x.unwrap() //~ P1
}

fn named(x: Option<u8>) -> u8 {
    x.expect("always set") //~ P1
}

fn explode() {
    panic!("boom"); //~ P1
}

// Non-panicking cousins never match.
fn tolerant(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

// Debug-only assertions may use panicking helpers.
fn guarded(m: u64) {
    debug_assert!(m.checked_mul(2).unwrap() > 0);
}

fn vetted(x: Option<u8>) -> u8 {
    // mot3d-lint: allow(P1) -- fixture: caller guarantees Some
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::take(Some(3)).checked_add(1).unwrap(), 4);
    }
}
