//@ path: crates/trace/src/fixture.rs
//! Seeded H2 violations: wall-clock reads in the trace crate, where
//! every event timestamp must be a simulated cycle — plus proof the
//! trace crate inherits the D1/P1 discipline of the result crates.

fn stamped() {
    let t0 = Instant::now(); //~ H2
    let epoch = SystemTime::now(); //~ H2
    let wall = std::time::Instant::now(); //~ H2
}

// Environment reads in trace code are still the general D3 — H2 is
// specifically about clocks.
fn configured() {
    let dir = std::env::var("MOT3D_TRACE_DIR"); //~ D3
}

// The trace observer rides the simulator step path, so the result-crate
// rules apply: no default hashers, no panicking helpers.
fn tracked() {
    let tracks: HashMap<u32, u64> = HashMap::new(); //~ D1 D1
    let first = tracks.get(&0).unwrap(); //~ P1
}

// A documented suppression still works — e.g. a one-shot wall-clock
// read in a cold reporting path.
fn reported() {
    // mot3d-lint: allow(H2) -- fixture: documented cold-path exception
    let t = Instant::now();
}
//@ suppressed: 1

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let _ = std::time::Instant::now();
    }
}
