//@ path: crates/phys/src/fixture.rs
//! Seeded A1 violations: allocation inside declared no-alloc regions.

// mot3d-lint: no-alloc
fn hot(buf: &mut [u64], n: u64) {
    buf[0] = n;
    let spill = Vec::new(); //~ A1
    let boxed = Box::new(n); //~ A1
    let label = format!("bank{n}"); //~ A1
    let owned = String::from("x"); //~ A1
}

// mot3d-lint: no-alloc
fn also_hot(n: usize) -> usize {
    let v = vec![0u8; n]; //~ A1
    let squares: Vec<usize> = (0..n).map(|i| i * i).collect(); //~ A1
    v.len() + squares.len()
}

// Amortized growth into caller-owned storage is tolerated by design.
// mot3d-lint: no-alloc
fn push_is_amortized(buf: &mut Vec<u64>, v: u64) {
    buf.push(v);
}

// Outside any marked region, construction-time allocation is fine.
fn cold(n: usize) -> Vec<u8> {
    vec![0; n]
}
