//@ path: crates/noc/src/fixture.rs
//! Seeded D3 violations: wall-clock and environment reads in a
//! result-affecting crate.

fn timed() {
    let t0 = Instant::now(); //~ D3
    let epoch = SystemTime::now(); //~ D3
    let scale = std::env::var("MOT3D_SCALE"); //~ D3
    let home = std::env::var_os("HOME"); //~ D3
}

// `env::args` reads argv, not the environment: clean.
fn argv_is_fine() {
    let _args = std::env::args();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_allowed_in_tests() {
        let _ = std::time::Instant::now();
    }
}
