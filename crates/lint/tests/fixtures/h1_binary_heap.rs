//@ path: crates/sim/src/fixture.rs
//@ suppressed: 1
//! Seeded H1 violations: `BinaryHeap` back in a hot-path crate after the
//! timing-wheel migration.

use std::collections::BinaryHeap; //~ H1
use std::cmp::Reverse;

fn rebuild_queue() -> BinaryHeap<Reverse<(u64, u64)>> { //~ H1
    let mut q = BinaryHeap::new(); //~ H1
    q.push(Reverse((3, 0)));
    q
}

// Mentions inside comments are invisible to the scanner: BinaryHeap.
fn doc() -> &'static str {
    "BinaryHeap::new() inside a string is invisible too"
}

// The wheel is the sanctioned queue, so it passes clean.
fn sanctioned() -> mot3d_phys::wheel::TimingWheel<u64> {
    mot3d_phys::wheel::TimingWheel::new()
}

// mot3d-lint: allow(H1) -- fixture: reference heap for a differential test
type ReferenceQueue = BinaryHeap<u8>;
