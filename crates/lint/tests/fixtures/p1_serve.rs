//@ path: crates/serve/src/fixture.rs
//@ suppressed: 1
//! Seeded P1 violations in the serve crate: the sweep service is
//! long-running, so the no-panic discipline extends to it — a stray
//! `unwrap` aborts every in-flight submission.

fn lock_naively(slot: &std::sync::Mutex<u64>) -> u64 {
    *slot.lock().unwrap() //~ P1
}

fn lock_with_a_story(slot: &std::sync::Mutex<u64>) -> u64 {
    *slot.lock().expect("lock not poisoned") //~ P1
}

fn abort_the_service() {
    panic!("connection handler died"); //~ P1
}

// The poison-recovering idiom the serve crate actually uses.
fn lock_recovering(slot: &std::sync::Mutex<u64>) -> u64 {
    *slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn vetted(x: Option<u8>) -> u8 {
    // mot3d-lint: allow(P1) -- fixture: caller guarantees Some
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let m = std::sync::Mutex::new(7);
        assert_eq!(*m.lock().unwrap(), 7);
    }
}
