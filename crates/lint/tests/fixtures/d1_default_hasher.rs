//@ path: crates/sim/src/fixture.rs
//@ suppressed: 1
//! Seeded D1 violations: default-hasher collections in a result crate.

use std::collections::HashMap; //~ D1
use std::collections::HashSet; //~ D1

fn build() -> HashMap<u64, u64> { //~ D1
    let mut m = HashMap::new(); //~ D1
    m.insert(1, 2);
    m
}

// Mentions inside comments are invisible to the scanner: HashMap.
fn doc() -> &'static str {
    "HashSet::new() inside a string is invisible too"
}

// The sanctioned alias never names the std types, so it passes clean.
fn deterministic() -> mot3d_phys::fnv::FnvHashMap<u64, u64> {
    mot3d_phys::fnv::FnvHashMap::default()
}

// mot3d-lint: allow(D1) -- fixture: documented escape hatch
type Legacy = HashSet<u8>;
