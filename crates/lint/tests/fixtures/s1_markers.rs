//@ path: crates/mem/src/fixture.rs
//! Seeded S1 violations: markers that fail to parse or take effect.
//! A malformed directive must never silently suppress — the finding it
//! meant to cover survives alongside the S1.

// mot3d-lint: allow(P1)
//^ S1
fn missing_reason(x: Option<u8>) -> u8 {
    x.unwrap() //~ P1
}

// mot3d-lint: allow(Z9) -- no such rule id
//^ S1
fn unknown_rule() {}

// mot3d-lint: allow(S1) -- the checker cannot be silenced about itself
//^ S1
fn sneaky() {}

// mot3d-lint: no-allok
//^ S1
fn typo() {}

// A `no-alloc` marker with no following fn/impl/mod item is inert.
// mot3d-lint: no-alloc
//^ S1
const ORPHAN: u8 = 1;
