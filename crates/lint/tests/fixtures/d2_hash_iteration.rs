//@ path: crates/bench/src/report.rs
//@ suppressed: 1
//! Seeded D2 violations: hash-order iteration on a report path.

fn render(port_map: &M) {
    for k in port_map.keys() { //~ D2
        sink(k);
    }
    for v in self.lat_map.values() { //~ D2
        sink(v);
    }
    for e in route_hash.iter() { //~ D2
        sink(e);
    }
}

// Non-hash receivers iterate in their own (deterministic) order.
fn rows_are_fine(rows: &[Row]) {
    for r in rows.iter() {
        sink(r);
    }
}

fn sorted_render(id_map: &M) {
    // mot3d-lint: allow(D2) -- fixture: keys are sorted immediately after
    let mut keys: Vec<u64> = id_map.keys().copied().collect();
    keys.sort_unstable();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_iterate_hash_order() {
        for k in fixture_map.keys() {
            sink(k);
        }
    }
}
