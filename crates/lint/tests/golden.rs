//! Golden-fixture tests: every file under `tests/fixtures/` seeds known
//! violations and annotates the exact findings it expects inline.
//!
//! Annotation grammar (ordinary comments, invisible to the scanner):
//!
//! * `//@ path: <rel>` — the synthetic workspace-relative path the
//!   fixture is checked under (rule scoping is path-driven, and the
//!   fixtures directory itself is excluded from workspace scans);
//! * `//~ R1 [R2 …]` trailing a line — findings expected on that line;
//! * `//^ R1 [R2 …]` on its own line — findings expected on the line
//!   above (used for directive lines, where a trailing comment would
//!   change the very text being tested);
//! * `//@ suppressed: N` — the fixture must record exactly N
//!   suppressions.

use mot3d_lint::lexer;
use mot3d_lint::rules::check_file;
use std::fs;
use std::path::{Path, PathBuf};

struct Expectations {
    rel_path: String,
    /// Sorted `(line, rule)` pairs.
    findings: Vec<(u32, String)>,
    suppressed: Option<usize>,
}

fn parse_expectations(fixture: &Path, src: &str) -> Expectations {
    let mut rel_path = None;
    let mut findings = Vec::new();
    let mut suppressed = None;
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let trimmed = line.trim_start();
        if let Some(p) = trimmed.strip_prefix("//@ path:") {
            rel_path = Some(p.trim().to_string());
        } else if let Some(n) = trimmed.strip_prefix("//@ suppressed:") {
            suppressed = Some(n.trim().parse().expect("suppressed count"));
        } else if let Some(rules) = trimmed.strip_prefix("//^") {
            assert!(lineno > 1, "{}: //^ on the first line", fixture.display());
            findings.extend(
                rules
                    .split_whitespace()
                    .map(|r| (lineno - 1, r.to_string())),
            );
        } else if let Some((_, rules)) = line.split_once("//~") {
            findings.extend(rules.split_whitespace().map(|r| (lineno, r.to_string())));
        }
    }
    findings.sort();
    Expectations {
        rel_path: rel_path
            .unwrap_or_else(|| panic!("{}: missing //@ path header", fixture.display())),
        findings,
        suppressed,
    }
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixtures_produce_exactly_the_annotated_findings() {
    let mut checked = 0usize;
    let mut seen_rules: Vec<String> = Vec::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    for fixture in entries {
        let src = fs::read_to_string(&fixture).expect("read fixture");
        let exp = parse_expectations(&fixture, &src);
        let report = check_file(&exp.rel_path, &src);
        let mut got: Vec<(u32, String)> = report
            .findings
            .iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        got.sort();
        assert_eq!(
            got,
            exp.findings,
            "{} (as {})",
            fixture.display(),
            exp.rel_path
        );
        if let Some(n) = exp.suppressed {
            assert_eq!(report.suppressed, n, "{} suppressions", fixture.display());
        }
        seen_rules.extend(got.into_iter().map(|(_, r)| r));
        checked += 1;
    }
    assert!(checked >= 9, "expected the full fixture set, saw {checked}");
    // Every deny-able rule must have at least one seeded violation that
    // the fixture suite detects.
    for rule in ["D1", "D2", "D3", "A1", "P1", "H1", "H2", "S1"] {
        assert!(
            seen_rules.iter().any(|r| r == rule),
            "no fixture exercises {rule}"
        );
    }
}

#[test]
fn workspace_scan_is_clean_and_skips_the_fixtures() {
    let root = mot3d_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = mot3d_lint::scan_workspace(&root).expect("scan");
    // This is the same gate CI enforces with `--deny`: the repo itself
    // must stay finding-free (the fixtures above prove the rules fire).
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "repo has findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files > 50,
        "suspiciously few files: {}",
        report.files
    );
    assert!(
        report.suppressed > 0,
        "the repo's documented suppressions should be counted"
    );
}

/// Splittable xorshift64* — fixed seed, so the "fuzz" corpus is
/// identical on every run (the lint's own determinism rules apply to
/// its tests in spirit).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn lexer_survives_adversarial_character_soup() {
    // Characters chosen to stress every tricky lexer path: comment
    // openers, quote kinds, raw-string sigils, escapes, digits.
    const POOL: &[char] = &[
        '/', '*', '"', '\'', '\\', '#', 'r', 'b', '!', '.', ':', '(', ')', '{', '}', '[', ']', 'e',
        'E', '+', '-', '_', '0', '1', '9', 'x', 'a', 'Z', ' ', '\n', '\t', '~', '@',
    ];
    let mut rng = XorShift(0x0DA7_E201_2016_0318);
    for _ in 0..256 {
        let len = (rng.next() % 240) as usize + 16;
        let soup: String = (0..len)
            .map(|_| POOL[(rng.next() % POOL.len() as u64) as usize])
            .collect();
        let lexed = lexer::lex(&soup);
        let lines = soup.lines().count() as u32 + 1;
        let mut last = 1;
        for t in &lexed.tokens {
            assert!(t.line >= last && t.line <= lines, "line order in {soup:?}");
            last = t.line;
        }
        for d in &lexed.directives {
            assert!(d.line >= 1 && d.line <= lines);
        }
    }
}

#[test]
fn identifiers_hidden_in_strings_and_comments_never_lint() {
    // Property: wrapping any violating snippet in a string literal or
    // comment must erase its findings.
    let snippets = [
        "let m = HashMap::new();",
        "x.unwrap()",
        "Instant::now()",
        "std::env::var(\"X\")",
    ];
    for s in snippets {
        let as_string = format!("fn f() {{ let s = \"{}\"; }}\n", s.replace('"', "\\\""));
        let as_comment = format!("// {s}\nfn f() {{}}\n");
        let as_block = format!("/* {s} */\nfn f() {{}}\n");
        for src in [as_string, as_comment, as_block] {
            let report = check_file("crates/sim/src/fixture.rs", &src);
            assert!(
                report.findings.is_empty(),
                "{src:?} produced {:?}",
                report.findings
            );
        }
    }
}
