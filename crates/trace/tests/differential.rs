//! Differential suite: tracing must never perturb the simulation.
//!
//! For every power state, both interconnect families, every DRAM
//! option, and both page policies, a traced run's [`Metrics`] must be
//! **bit-identical** to the untraced run of the same point. The
//! untraced side goes through the regular pooled [`run_spec`] path —
//! exactly what sweeps, the server, and the committed BENCH checksums
//! use — so this pins both "the observer hook changed nothing" and
//! "a fresh observed cluster equals a pooled one".

use mot3d_mot::PowerState;
use mot3d_sim::{run_spec, InterconnectChoice, SimConfig};
use mot3d_trace::{trace_file_name, trace_spec};
use mot3d_workloads::{SplashBenchmark, WorkloadSpec};
use std::path::{Path, PathBuf};

fn tiny() -> WorkloadSpec {
    SplashBenchmark::Fft.spec().scaled(0.002)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mot3d-trace-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_traced_matches(spec: &WorkloadSpec, config: &SimConfig, dir: &Path, tag: &str) {
    let untraced = run_spec(spec, config).unwrap();
    let path = dir.join(trace_file_name(tag));
    let (traced, summary) = trace_spec(spec, config, &path).unwrap();
    assert_eq!(traced, untraced, "tracing perturbed the run at {tag}");
    assert!(summary.events > 0, "empty trace at {tag}");
    assert_eq!(summary.final_cycle + 1, traced.cycles, "{tag}");
    assert!(path.exists());
}

#[test]
fn metrics_bit_identical_across_all_power_states() {
    let dir = tmp_dir("power");
    let spec = tiny();
    for state in [
        PowerState::full(),
        PowerState::pc16_mb8(),
        PowerState::pc4_mb32(),
        PowerState::pc4_mb8(),
    ] {
        let config = SimConfig::date16().with_power_state(state);
        assert_traced_matches(&spec, &config, &dir, &format!("{state}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metrics_bit_identical_on_every_noc_baseline() {
    let dir = tmp_dir("noc");
    let spec = tiny();
    for kind in mot3d_noc::NocTopologyKind::all() {
        let config = SimConfig::date16().with_interconnect(InterconnectChoice::Noc(kind));
        assert_traced_matches(&spec, &config, &dir, &format!("{kind}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metrics_bit_identical_across_dram_and_page_policy() {
    let dir = tmp_dir("dram");
    let spec = tiny();
    for kind in mot3d_mem::dram::DramKind::all() {
        for open_page in [false, true] {
            let config = SimConfig::date16()
                .with_dram(kind)
                .with_open_page(open_page);
            assert_traced_matches(&spec, &config, &dir, &format!("{kind:?}-{open_page}"));
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn traced_runs_are_deterministic() {
    let dir = tmp_dir("det");
    let spec = tiny();
    let config = SimConfig::date16();
    let a_path = dir.join("a.trace.json");
    let b_path = dir.join("b.trace.json");
    let (ma, _) = trace_spec(&spec, &config, &a_path).unwrap();
    let (mb, _) = trace_spec(&spec, &config, &b_path).unwrap();
    assert_eq!(ma, mb);
    let a = std::fs::read(&a_path).unwrap();
    let b = std::fs::read(&b_path).unwrap();
    assert_eq!(a, b, "trace files must be byte-identical run to run");
    std::fs::remove_dir_all(&dir).unwrap();
}
