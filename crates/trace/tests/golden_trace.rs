//! Golden trace fixture: a tiny fig7 point (the paper's power-state
//! sweep at 200 ns DRAM) must produce a structurally valid Chrome JSON
//! trace with the expected track taxonomy, in a stable event order —
//! pinned by an FNV-1a checksum of the file bytes. An intentional
//! format change updates `GOLDEN_FNV` here; an accidental
//! nondeterminism trips it.

use mot3d_mot::PowerState;
use mot3d_phys::fnv::{fnv1a64_fold, FNV_OFFSET};
use mot3d_sim::SimConfig;
use mot3d_trace::trace_spec;
use mot3d_workloads::SplashBenchmark;

/// Pinned checksum of the fixture's trace bytes (see
/// `print_golden_checksum` below to refresh after an intentional
/// format change).
const GOLDEN_FNV: u64 = 0x5b97_ac36_bc31_8a9f;

fn fixture_trace(tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("mot3d-trace-golden-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig7_tiny.trace.json");
    // A fig7 point: MoT interconnect, gated power state, 200 ns DRAM
    // (the date16 default), tiny scale.
    let spec = SplashBenchmark::Fft.spec().scaled(0.002);
    let config = SimConfig::date16().with_power_state(PowerState::pc16_mb8());
    let (metrics, summary) = trace_spec(&spec, &config, &path).unwrap();
    assert!(metrics.cycles > 0);
    assert!(summary.events > 0);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    bytes
}

#[test]
fn fig7_point_trace_is_structurally_valid_with_expected_tracks() {
    let bytes = fixture_trace("structure");
    let text = std::str::from_utf8(&bytes).unwrap();

    // Valid document shape (the facade e2e suite runs a full JSON
    // parser over this; here we pin the structural invariants).
    assert!(text.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"));
    assert!(text.ends_with("\n]}\n"));
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches('[').count(), text.matches(']').count());

    // Track taxonomy: every process group and representative tracks.
    for needle in [
        "\"process_name\", \"ph\": \"M\", \"pid\": 1, \"args\": {\"name\": \"cores\"}",
        "\"name\": \"l2-banks\"",
        "\"name\": \"interconnect\"",
        "\"name\": \"miss-bus\"",
        "\"name\": \"dram\"",
        "\"name\": \"counters\"",
        "\"name\": \"core 0\"",
        // PC16-MB8 central-folds the banks: 12..=19 stay powered, the
        // rest are labelled as gated.
        "\"name\": \"bank 12\"",
        "\"name\": \"bank 0 (gated)\"",
        "\"name\": \"mot level 1 active switches\"",
        "\"name\": \"transit requests\"",
        "\"name\": \"queued transfers\"",
        "\"name\": \"row buffer\"",
        "\"name\": \"L2 hit rate\"",
        "\"name\": \"in-flight transactions\"",
        "\"name\": \"event-wheel occupancy\"",
        "\"name\": \"Computing\"",
        "\"name\": \"Stalled (mem)\"",
        "\"name\": \"row open\"",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }

    // Events are time-ordered per the single writer: `ts` fields are
    // non-decreasing through the file body (stable event order).
    let mut last_ts = 0u64;
    for line in text.lines() {
        if let Some(pos) = line.find("\"ts\": ") {
            let rest = &line[pos + 6..];
            let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap();
            let ts: u64 = rest[..end].parse().unwrap();
            assert!(ts >= last_ts, "out-of-order ts {ts} after {last_ts}");
            last_ts = ts;
        }
    }
    assert!(last_ts > 0, "no timestamped events");
}

#[test]
fn fig7_point_trace_bytes_match_the_golden_checksum() {
    let bytes = fixture_trace("checksum");
    let got = fnv1a64_fold(FNV_OFFSET, &bytes);
    assert_eq!(
        got, GOLDEN_FNV,
        "trace bytes drifted: got 0x{got:016x}, want 0x{GOLDEN_FNV:016x} \
         (refresh GOLDEN_FNV if the format change is intentional)"
    );
}
