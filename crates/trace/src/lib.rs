//! # mot3d-trace — zero-cost-when-off timeline tracing
//!
//! Turns a cluster run into a Perfetto-loadable Chrome JSON trace file
//! with per-component tracks: core state (Ready/Computing/Barrier/
//! Stalled), per-L2-bank occupancy, MoT per-level switch activity (or
//! NoC port/bus occupancy), Miss-bus queue depth, DRAM row-buffer
//! phases, and counter tracks (L2 hit rate, in-flight transactions,
//! timing-wheel occupancy) sampled at state transitions.
//!
//! The hook is [`mot3d_sim::observe::Observer`]: a generic parameter on
//! the `Cluster` step path whose default `NullObserver` monomorphizes
//! away entirely, so simulations without a tracer attached run the
//! exact machine code they ran before this crate existed. With a
//! [`TraceObserver`] attached, per-step samples diff the cluster's
//! probe surface against shadow state and stage compact events into a
//! pre-sized ring, drained through the buffered [`TraceWriter`] between
//! steps — the simulator's `no-alloc` hot-path invariants hold either
//! way, and the traced run's metrics are bit-identical to the untraced
//! run's (pinned by this crate's differential test suite).
//!
//! Timestamps are simulated cycles (shown as microseconds: one cycle of
//! the 1 GHz cluster displays as 1 µs). Wall-clock reads are banned in
//! this crate by `mot3d-lint` rule H2.
//!
//! Open the emitted file at <https://ui.perfetto.dev> (or
//! `chrome://tracing`).
//!
//! # Quick example
//!
//! ```no_run
//! use mot3d_trace::trace_spec;
//! use mot3d_sim::SimConfig;
//! use mot3d_workloads::{SplashBenchmark, WorkloadSource};
//!
//! let spec = SplashBenchmark::Fft.spec().scaled(0.002);
//! let (metrics, summary) = trace_spec(&spec, &SimConfig::date16(), "fft.trace.json")?;
//! println!("{} cycles, {} events -> {}", metrics.cycles, summary.events, summary.path.display());
//! # Ok::<(), mot3d_trace::TraceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod observer;

pub use chrome::TraceWriter;
pub use observer::{TraceObserver, TraceSummary};

use mot3d_sim::{Metrics, SimConfig, SimError};
use mot3d_workloads::WorkloadSpec;
use std::fmt;
use std::io;
use std::path::Path;

/// Why a traced run failed: the simulation itself, or the trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// The simulation failed (the trace file holds the timeline up to
    /// the failure, which is usually exactly what you want to look at).
    Sim(SimError),
    /// Creating or writing the trace file failed.
    Io(io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Sim(e) => write!(f, "simulation failed: {e}"),
            TraceError::Io(e) => write!(f, "trace I/O failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Sim(e) => Some(e),
            TraceError::Io(e) => Some(e),
        }
    }
}

impl From<SimError> for TraceError {
    fn from(e: SimError) -> Self {
        TraceError::Sim(e)
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Runs `spec` on `config` with a tracer attached, writing the timeline
/// to `path`. Returns the run's [`Metrics`] — bit-identical to an
/// untraced [`mot3d_sim::run_spec`] of the same point — plus the trace
/// summary.
///
/// # Errors
///
/// [`TraceError::Io`] when the trace file cannot be written,
/// [`TraceError::Sim`] when the simulation fails. On a simulation
/// failure the partial trace is still sealed and kept: the timeline up
/// to a deadlock is the natural diagnostic for it.
pub fn trace_spec(
    spec: &WorkloadSpec,
    config: &SimConfig,
    path: impl AsRef<Path>,
) -> Result<(Metrics, TraceSummary), TraceError> {
    let mut obs = TraceObserver::create(path)?;
    match mot3d_sim::run_spec_observed(spec, config, &mut obs) {
        Ok(metrics) => Ok((metrics, obs.finish()?)),
        Err(sim) => {
            // Seal what we have; the sim failure is the primary error.
            let _ = obs.finish();
            Err(TraceError::Sim(sim))
        }
    }
}

/// A filesystem-safe file name for a run point label, e.g.
/// `fft @ 3-D MoT @ PC16-MB32 @ 200ns #2` →
/// `fft_3-D-MoT_PC16-MB32_200ns_2.trace.json`.
pub fn trace_file_name(label: &str) -> String {
    let mut name = String::with_capacity(label.len() + 11);
    let mut last_sep = true;
    for c in label.chars() {
        match c {
            c if c.is_ascii_alphanumeric() || c == '-' || c == '.' => {
                name.push(c);
                last_sep = false;
            }
            '@' | '#' | ' ' | '/' | '\\' | ':' if !last_sep => {
                name.push('_');
                last_sep = true;
            }
            _ => {}
        }
    }
    while name.ends_with('_') {
        name.pop();
    }
    // Collapse the double separators "@ " patterns leave behind.
    while name.contains("__") {
        name = name.replace("__", "_");
    }
    name.push_str(".trace.json");
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_are_filesystem_safe_and_stable() {
        assert_eq!(
            trace_file_name("fft @ 3-D MoT @ Full @ 200ns"),
            "fft_3-D_MoT_Full_200ns.trace.json"
        );
        assert_eq!(
            trace_file_name("lu @ Mesh @ Full @ 63ns @ open-page #3"),
            "lu_Mesh_Full_63ns_open-page_3.trace.json"
        );
        let odd = trace_file_name("a/b\\c:d e");
        assert!(!odd.contains('/') && !odd.contains('\\') && !odd.contains(':'));
    }
}
