//! A hand-rolled Chrome JSON trace writer (the format Perfetto and
//! `chrome://tracing` load).
//!
//! The file is one JSON document: a `traceEvents` array of event
//! objects. Each event is written on its own line (`{…},`), so the file
//! is both a valid JSON document *and* line-scannable — the CI smoke job
//! strips the trailing comma per line and parses each object
//! independently.
//!
//! Events stage into an in-memory buffer; nothing touches the file
//! between [`TraceWriter::flush`] calls, which is what lets the
//! `TraceObserver` emit from inside the simulator's allocation-free hot
//! path and drain outside it.
//!
//! No timestamps here come from the wall clock: `ts` is the simulated
//! cycle (reported as microseconds, so one cycle of the 1 GHz cluster
//! displays as 1 µs — lint rule H2 denies `Instant`/`SystemTime` in this
//! crate).

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// Buffered writer for one Chrome JSON trace file.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    path: PathBuf,
    /// Events staged + written so far (drives comma placement).
    emitted: u64,
    /// Staged event lines, drained by [`TraceWriter::flush`].
    buf: String,
    /// Deferred I/O failure, surfaced by [`TraceWriter::finish`].
    err: Option<io::Error>,
}

/// Escapes `s` into `buf` as JSON string *content* (no quotes).
fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

impl TraceWriter {
    /// Creates `path` (truncating any previous file) and writes the
    /// document preamble.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created or the preamble written.
    pub fn create(path: impl AsRef<Path>) -> io::Result<TraceWriter> {
        let path = path.as_ref().to_path_buf();
        let mut out = BufWriter::new(File::create(&path)?);
        out.write_all(b"{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n")?;
        Ok(TraceWriter {
            out,
            path,
            emitted: 0,
            buf: String::new(),
            err: None,
        })
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events staged or written so far (metadata included).
    pub fn events(&self) -> u64 {
        self.emitted
    }

    /// Opens a new event object line (comma discipline + shared prefix).
    fn open(&mut self) {
        if self.emitted > 0 {
            self.buf.push_str(",\n");
        }
        self.emitted += 1;
    }

    /// Names the process (track group) `pid`.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.open();
        let _ = write!(
            self.buf,
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"args\": {{\"name\": \""
        );
        escape_into(&mut self.buf, name);
        self.buf.push_str("\"}}");
    }

    /// Names thread (track) `tid` inside process `pid`.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.open();
        let _ = write!(
            self.buf,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": \""
        );
        escape_into(&mut self.buf, name);
        self.buf.push_str("\"}}");
    }

    /// Opens a duration span named `name` on track (`pid`, `tid`).
    pub fn span_begin(&mut self, pid: u32, tid: u32, ts: u64, name: &str) {
        self.open();
        self.buf.push_str("{\"name\": \"");
        escape_into(&mut self.buf, name);
        let _ = write!(
            self.buf,
            "\", \"cat\": \"state\", \"ph\": \"B\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}}}"
        );
    }

    /// Opens a span carrying one integer argument (e.g. a DRAM row).
    pub fn span_begin_arg(&mut self, pid: u32, tid: u32, ts: u64, name: &str, key: &str, val: u64) {
        self.open();
        self.buf.push_str("{\"name\": \"");
        escape_into(&mut self.buf, name);
        let _ = write!(
            self.buf,
            "\", \"cat\": \"state\", \"ph\": \"B\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \"args\": {{\""
        );
        escape_into(&mut self.buf, key);
        let _ = write!(self.buf, "\": {val}}}}}");
    }

    /// Closes the innermost open span on track (`pid`, `tid`).
    pub fn span_end(&mut self, pid: u32, tid: u32, ts: u64) {
        self.open();
        let _ = write!(
            self.buf,
            "{{\"ph\": \"E\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}}}"
        );
    }

    /// Samples the integer counter `name` on (`pid`, `tid`).
    pub fn counter_u64(&mut self, pid: u32, tid: u32, ts: u64, name: &str, value: u64) {
        self.open();
        self.buf.push_str("{\"name\": \"");
        escape_into(&mut self.buf, name);
        let _ = write!(
            self.buf,
            "\", \"ph\": \"C\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \"args\": {{\"value\": {value}}}}}"
        );
    }

    /// Samples the float counter `name` on (`pid`, `tid`). Non-finite
    /// values (not representable in JSON) are clamped to 0.
    pub fn counter_f64(&mut self, pid: u32, tid: u32, ts: u64, name: &str, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        self.open();
        self.buf.push_str("{\"name\": \"");
        escape_into(&mut self.buf, name);
        let _ = write!(
            self.buf,
            "\", \"ph\": \"C\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \"args\": {{\"value\": {value}}}}}"
        );
    }

    /// Writes the staged events through to the file. Failures are
    /// remembered and surfaced by [`TraceWriter::finish`]; after the
    /// first failure further staging is silently dropped (the trace is
    /// already lost — the simulation must not be).
    pub fn flush(&mut self) {
        if self.err.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
            self.err = Some(e);
        }
        self.buf.clear();
    }

    /// Flushes, closes the `traceEvents` array, and syncs the file.
    ///
    /// # Errors
    ///
    /// Surfaces the first deferred write failure, or any failure while
    /// closing the document.
    pub fn finish(mut self) -> io::Result<(PathBuf, u64)> {
        self.flush();
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.write_all(b"\n]}\n")?;
        self.out.flush()?;
        Ok((self.path, self.emitted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_a_valid_document_with_comma_discipline() {
        let dir = std::env::temp_dir().join(format!("mot3d-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writer.json");
        let mut w = TraceWriter::create(&path).unwrap();
        w.process_name(1, "cores");
        w.thread_name(1, 0, "core 0");
        w.span_begin(1, 0, 0, "Ready");
        w.span_end(1, 0, 5);
        w.counter_u64(6, 0, 5, "in-flight", 3);
        w.counter_f64(6, 1, 5, "rate", 0.5);
        w.span_begin_arg(5, 0, 7, "row open", "row", 42);
        let (got_path, events) = w.finish().unwrap();
        assert_eq!(got_path, path);
        assert_eq!(events, 7);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.ends_with("\n]}\n"));
        // Balanced braces/brackets — the cheap structural check; the
        // integration suite runs a real JSON parser over the file.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        // One event per line, trailing commas between them.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 7);
        for line in &lines[1..7] {
            assert!(line.ends_with("},"), "{line}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escapes_json_metacharacters_in_names() {
        let mut buf = String::new();
        escape_into(&mut buf, "a\"b\\c\nd");
        assert_eq!(buf, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn non_finite_counters_are_clamped() {
        let dir = std::env::temp_dir().join(format!("mot3d-trace-nan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nan.json");
        let mut w = TraceWriter::create(&path).unwrap();
        w.counter_f64(6, 0, 1, "rate", f64::NAN);
        w.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"value\": 0"));
        assert!(!text.contains("NaN"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
