//! The [`TraceObserver`]: turns cluster step samples into Chrome JSON
//! timeline tracks.
//!
//! One observer traces one run into one file. It plugs into the
//! simulator through [`mot3d_sim::observe::Observer`]; samples diff the
//! cluster's probe surface against shadow state and append compact
//! events to a pre-sized ring (no allocation on the sample path — rule
//! A1 enforces the marked region). The ring drains through the
//! [`TraceWriter`] from [`Observer::maintain`], which the run loop calls
//! *between* steps, outside the `no-alloc` hot path.

use crate::chrome::TraceWriter;
use mot3d_sim::cluster::Cluster;
use mot3d_sim::observe::{CoreActivity, InterconnectProbe, Observer};
use std::io;
use std::path::{Path, PathBuf};

/// Track-group (process) ids — the taxonomy README documents.
const PID_CORES: u32 = 1;
const PID_BANKS: u32 = 2;
const PID_FABRIC: u32 = 3;
const PID_BUS: u32 = 4;
const PID_DRAM: u32 = 5;
const PID_COUNTERS: u32 = 6;

/// Ring capacity in events. At ~24 bytes per event this is ~1.5 MiB of
/// steady-state buffer.
const RING_CAPACITY: usize = 1 << 16;
/// Drain threshold for [`Observer::maintain`]. The gap to
/// `RING_CAPACITY` comfortably exceeds the worst-case events appended by
/// one sample (every core + bank + counter changing at once, ≈ 150), so
/// the guarded pushes in [`TraceObserver::sample`] never actually drop.
const FLUSH_WATERMARK: usize = RING_CAPACITY - 1024;

/// One staged event; `&'static str` names keep the ring `Copy` and
/// allocation-free.
#[derive(Debug, Clone, Copy)]
enum EvKind {
    Begin(&'static str),
    /// `B` carrying the DRAM row as an argument.
    BeginRow(u64),
    End,
    CounterU(u64),
    CounterF(f64),
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    ts: u64,
    track: u32,
    kind: EvKind,
}

/// A registered track: where events on it land in the Chrome JSON.
#[derive(Debug)]
struct Track {
    pid: u32,
    tid: u32,
    /// Counter name (counter events carry the track's name; span events
    /// carry their own).
    name: String,
}

/// What [`TraceObserver::finish`] reports back.
#[derive(Debug)]
pub struct TraceSummary {
    /// The written trace file.
    pub path: PathBuf,
    /// Total Chrome JSON events emitted (metadata included).
    pub events: u64,
    /// The last simulated cycle sampled.
    pub final_cycle: u64,
}

/// Traces one cluster run into one Perfetto-loadable file.
///
/// Create with [`TraceObserver::create`], pass to
/// [`Cluster::run_to_completion_with`] (or
/// [`mot3d_sim::run_spec_observed`]), then call
/// [`TraceObserver::finish`] to close open spans and seal the document.
///
/// [`Cluster::run_to_completion_with`]: mot3d_sim::Cluster::run_to_completion_with
#[derive(Debug)]
pub struct TraceObserver {
    writer: TraceWriter,
    ring: Vec<Ev>,
    /// Events pushed after the ring filled (writer failure kept
    /// `maintain` from draining it); counted, never silently lost.
    dropped: u64,
    tracks: Vec<Track>,
    /// Lazily initialised on the first sample (needs the cluster's
    /// shape); `true` once tracks are registered.
    ready: bool,
    last_ts: u64,
    // --- shadow state, diffed against each sample ---
    /// Open span per active core.
    core_state: Vec<CoreActivity>,
    core_tracks: Vec<u32>,
    /// Bit `b` set while bank `b`'s "busy" span is open.
    bank_open: u64,
    bank_tracks: Vec<u32>,
    /// Last emitted value per counter track (`f64` bits for float
    /// counters), indexed like `tracks`.
    counter_last: Vec<Option<u64>>,
    /// MoT per-level occupancy counter tracks (index = level - 1), or
    /// NoC port/bus counter tracks; resolved at init.
    fabric_tracks: Vec<u32>,
    transit_req_track: u32,
    transit_resp_track: u32,
    bus_track: u32,
    dram_track: u32,
    /// Open DRAM row span.
    dram_row: Option<u64>,
    hit_rate_track: u32,
    inflight_track: u32,
    wheel_track: u32,
}

impl TraceObserver {
    /// Opens `path` for writing and prepares an idle observer; tracks
    /// are registered on the first sample, when the cluster's shape
    /// (active cores, interconnect, gated banks) is known.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<TraceObserver> {
        Ok(TraceObserver {
            writer: TraceWriter::create(path)?,
            ring: Vec::with_capacity(RING_CAPACITY),
            dropped: 0,
            tracks: Vec::new(),
            ready: false,
            last_ts: 0,
            core_state: Vec::new(),
            core_tracks: Vec::new(),
            bank_open: 0,
            bank_tracks: Vec::new(),
            counter_last: Vec::new(),
            fabric_tracks: Vec::new(),
            transit_req_track: 0,
            transit_resp_track: 0,
            bus_track: 0,
            dram_track: 0,
            dram_row: None,
            hit_rate_track: 0,
            inflight_track: 0,
            wheel_track: 0,
        })
    }

    /// Registers a track and returns its ring-event id.
    fn track(&mut self, pid: u32, tid: u32, name: String) -> u32 {
        let id = self.tracks.len() as u32;
        self.writer.thread_name(pid, tid, &name);
        self.tracks.push(Track { pid, tid, name });
        self.counter_last.push(None);
        id
    }

    /// One-time track registration from the first sample's cluster.
    /// Allocates freely — the run loop calls the first sample before
    /// entering the stepping loop.
    fn init(&mut self, c: &Cluster) {
        self.writer.process_name(PID_CORES, "cores");
        self.writer.process_name(PID_BANKS, "l2-banks");
        self.writer.process_name(PID_FABRIC, "interconnect");
        self.writer.process_name(PID_BUS, "miss-bus");
        self.writer.process_name(PID_DRAM, "dram");
        self.writer.process_name(PID_COUNTERS, "counters");

        for idx in 0..c.active_core_count() {
            let phys = c.core_physical_id(idx);
            let id = self.track(PID_CORES, phys as u32, format!("core {phys}"));
            self.core_tracks.push(id);
            self.core_state.push(c.core_activity(idx));
        }
        for b in 0..c.bank_count() {
            let name = if c.bank_powered(b) {
                format!("bank {b}")
            } else {
                format!("bank {b} (gated)")
            };
            let id = self.track(PID_BANKS, b as u32, name);
            self.bank_tracks.push(id);
        }
        match c.interconnect_probe() {
            InterconnectProbe::Mot(probe) => {
                for level in 1..=probe.routing_levels {
                    let id = self.track(
                        PID_FABRIC,
                        level,
                        format!("mot level {level} active switches"),
                    );
                    self.fabric_tracks.push(id);
                }
            }
            InterconnectProbe::Noc(_) => {
                let ports = self.track(PID_FABRIC, 1, "noc busy ports".to_string());
                let buses = self.track(PID_FABRIC, 2, "noc busy buses".to_string());
                self.fabric_tracks.push(ports);
                self.fabric_tracks.push(buses);
            }
        }
        self.transit_req_track = self.track(PID_FABRIC, 20, "transit requests".to_string());
        self.transit_resp_track = self.track(PID_FABRIC, 21, "transit responses".to_string());
        self.bus_track = self.track(PID_BUS, 0, "queued transfers".to_string());
        self.dram_track = self.track(PID_DRAM, 0, "row buffer".to_string());
        self.hit_rate_track = self.track(PID_COUNTERS, 0, "L2 hit rate".to_string());
        self.inflight_track = self.track(PID_COUNTERS, 1, "in-flight transactions".to_string());
        self.wheel_track = self.track(PID_COUNTERS, 2, "event-wheel occupancy".to_string());

        // Open the cycle-zero core spans so every timeline starts at 0.
        let ts = c.now();
        for (slot, state) in self.core_state.iter().enumerate() {
            self.ring.push(Ev {
                ts,
                track: self.core_tracks[slot],
                kind: EvKind::Begin(state.label()),
            });
        }
        self.ready = true;
    }

    /// Appends to the ring; drops (counted) when full — which only
    /// happens once the writer has already failed and `maintain` cannot
    /// drain (see `FLUSH_WATERMARK`).
    #[inline]
    fn push(&mut self, ev: Ev) {
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Emits an integer counter event when the value changed.
    #[inline]
    fn counter_u(&mut self, track: u32, ts: u64, value: u64) {
        if self.counter_last[track as usize] != Some(value) {
            self.counter_last[track as usize] = Some(value);
            self.push(Ev {
                ts,
                track,
                kind: EvKind::CounterU(value),
            });
        }
    }

    /// Emits a float counter event when the value's bits changed.
    #[inline]
    fn counter_f(&mut self, track: u32, ts: u64, value: f64) {
        let bits = value.to_bits();
        if self.counter_last[track as usize] != Some(bits) {
            self.counter_last[track as usize] = Some(bits);
            self.push(Ev {
                ts,
                track,
                kind: EvKind::CounterF(value),
            });
        }
    }

    /// Encodes the staged ring through the writer and flushes the file
    /// buffer. Runs outside the step loop.
    fn drain(&mut self) {
        for i in 0..self.ring.len() {
            let ev = self.ring[i];
            let track = &self.tracks[ev.track as usize];
            let (pid, tid) = (track.pid, track.tid);
            match ev.kind {
                EvKind::Begin(name) => self.writer.span_begin(pid, tid, ev.ts, name),
                EvKind::BeginRow(row) => self
                    .writer
                    .span_begin_arg(pid, tid, ev.ts, "row open", "row", row),
                EvKind::End => self.writer.span_end(pid, tid, ev.ts),
                EvKind::CounterU(v) => self.writer.counter_u64(pid, tid, ev.ts, &track.name, v),
                EvKind::CounterF(v) => self.writer.counter_f64(pid, tid, ev.ts, &track.name, v),
            }
        }
        self.ring.clear();
        self.writer.flush();
    }

    /// Closes every open span at the final cycle, seals the document,
    /// and returns the summary.
    ///
    /// # Errors
    ///
    /// Surfaces any write failure from the whole trace's lifetime.
    pub fn finish(mut self) -> io::Result<TraceSummary> {
        let ts = self.last_ts;
        for slot in 0..self.core_tracks.len() {
            self.push(Ev {
                ts,
                track: self.core_tracks[slot],
                kind: EvKind::End,
            });
        }
        let mut open = self.bank_open;
        while open != 0 {
            let b = open.trailing_zeros() as usize;
            open &= open - 1;
            self.push(Ev {
                ts,
                track: self.bank_tracks[b],
                kind: EvKind::End,
            });
        }
        if self.dram_row.take().is_some() {
            self.push(Ev {
                ts,
                track: self.dram_track,
                kind: EvKind::End,
            });
        }
        self.drain();
        if self.dropped > 0 {
            return Err(io::Error::other(format!(
                "{} trace events dropped after a write failure",
                self.dropped
            )));
        }
        let (path, events) = self.writer.finish()?;
        Ok(TraceSummary {
            path,
            events,
            final_cycle: ts,
        })
    }
}

impl Observer for TraceObserver {
    const ENABLED: bool = true;

    // mot3d-lint: no-alloc
    fn sample(&mut self, c: &Cluster) {
        if !self.ready {
            self.init(c);
        }
        let ts = c.now();
        self.last_ts = ts;

        // Core state spans: close + reopen on every transition.
        for slot in 0..self.core_tracks.len() {
            let state = c.core_activity(slot);
            if state != self.core_state[slot] {
                self.core_state[slot] = state;
                let track = self.core_tracks[slot];
                self.push(Ev {
                    ts,
                    track,
                    kind: EvKind::End,
                });
                self.push(Ev {
                    ts,
                    track,
                    kind: EvKind::Begin(state.label()),
                });
            }
        }

        // Bank occupancy spans.
        for b in 0..self.bank_tracks.len() {
            let bit = 1u64 << b;
            let busy = c.bank_busy(b);
            if busy != (self.bank_open & bit != 0) {
                self.bank_open ^= bit;
                self.push(Ev {
                    ts,
                    track: self.bank_tracks[b],
                    kind: if busy {
                        EvKind::Begin("busy")
                    } else {
                        EvKind::End
                    },
                });
            }
        }

        // Interconnect occupancy counters.
        match c.interconnect_probe() {
            InterconnectProbe::Mot(probe) => {
                for i in 0..self.fabric_tracks.len() {
                    let track = self.fabric_tracks[i];
                    let level = i as u32 + 1;
                    self.counter_u(track, ts, probe.level_occupancy(level) as u64);
                }
                self.counter_u(self.transit_req_track, ts, probe.transit_requests as u64);
                self.counter_u(self.transit_resp_track, ts, probe.transit_responses as u64);
            }
            InterconnectProbe::Noc(probe) => {
                self.counter_u(self.fabric_tracks[0], ts, probe.busy_ports as u64);
                self.counter_u(self.fabric_tracks[1], ts, probe.busy_buses as u64);
                self.counter_u(self.transit_req_track, ts, 0);
                self.counter_u(self.transit_resp_track, ts, 0);
            }
        }

        // Miss-bus queue depth.
        self.counter_u(self.bus_track, ts, c.bus_queue_depth() as u64);

        // DRAM row-buffer phase spans.
        let row = c.dram_open_row();
        if row != self.dram_row {
            if self.dram_row.is_some() {
                self.push(Ev {
                    ts,
                    track: self.dram_track,
                    kind: EvKind::End,
                });
            }
            if let Some(r) = row {
                self.push(Ev {
                    ts,
                    track: self.dram_track,
                    kind: EvKind::BeginRow(r),
                });
            }
            self.dram_row = row;
        }

        // Cluster-wide counters.
        let (hits, misses) = c.l2_hit_counts();
        if hits + misses > 0 {
            let rate = hits as f64 / (hits + misses) as f64;
            self.counter_f(self.hit_rate_track, ts, rate);
        }
        self.counter_u(self.inflight_track, ts, c.in_flight_transactions() as u64);
        self.counter_u(self.wheel_track, ts, c.event_queue_depth() as u64);
    }

    fn maintain(&mut self) {
        if self.ring.len() >= FLUSH_WATERMARK {
            self.drain();
        }
    }
}
