//! Golden equivalence: the declarative `ExperimentPlan` path must
//! reproduce the legacy hand-rolled sweep loops **bit-identically** —
//! same rows, same rendered tables — and be invariant under the worker
//! thread count.
//!
//! The serial references below are verbatim ports of the pre-plan
//! per-figure loops (`fig6`, `fig7_at`, `open_page_at` as they were
//! before the API redesign): a plain `run_benchmark` loop in the same
//! cell order, no pool, no plan. If a plan refactor ever reorders a
//! grid or perturbs a configuration, these tests catch it at
//! `ExperimentScale::tiny()`.

use mot3d_bench::experiments::{
    fig6, fig6_interconnects, fig7_at, fig7_rows, open_page_at, ExperimentScale, Fig6Row, Fig7Row,
    OpenPageRow,
};
use mot3d_bench::plan::ExperimentPlan;
use mot3d_bench::report;
use mot3d_mem::dram::DramKind;
use mot3d_mot::PowerState;
use mot3d_sim::{run_benchmark, Metrics, SimConfig};
use mot3d_workloads::SplashBenchmark;

fn base_config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::date16();
    cfg.seed = seed;
    cfg
}

fn must_run(bench: SplashBenchmark, scale: f64, cfg: &SimConfig) -> Metrics {
    run_benchmark(bench, scale, cfg)
        .unwrap_or_else(|e| panic!("{bench} on {}: {e}", cfg.interconnect))
}

/// The pre-plan `fig6` loop, serial.
fn legacy_fig6(scale: ExperimentScale) -> Vec<Fig6Row> {
    let ics = fig6_interconnects();
    SplashBenchmark::all()
        .iter()
        .map(|bench| {
            let mut l2 = [0.0; 4];
            let mut cycles = [0u64; 4];
            for (i, ic) in ics.into_iter().enumerate() {
                let cfg = base_config(scale.seed).with_interconnect(ic);
                let m = must_run(*bench, scale.scale, &cfg);
                l2[i] = m.l2_latency.mean();
                cycles[i] = m.cycles;
            }
            Fig6Row {
                bench: bench.to_string(),
                l2_latency: l2,
                exec_cycles: cycles,
            }
        })
        .collect()
}

/// The pre-plan `fig7_at` loop, serial.
fn legacy_fig7_at(scale: ExperimentScale, dram: DramKind) -> Vec<Fig7Row> {
    SplashBenchmark::all()
        .iter()
        .map(|bench| {
            let mut edp = [0.0; 4];
            let mut cycles = [0u64; 4];
            for (i, state) in PowerState::date16_states().into_iter().enumerate() {
                let cfg = base_config(scale.seed)
                    .with_power_state(state)
                    .with_dram(dram);
                let m = must_run(*bench, scale.scale, &cfg);
                edp[i] = m.edp().value();
                cycles[i] = m.cycles;
            }
            Fig7Row {
                bench: bench.to_string(),
                edp,
                exec_cycles: cycles,
            }
        })
        .collect()
}

/// The pre-plan `open_page_at` loop, serial.
fn legacy_open_page_at(scale: ExperimentScale, dram: DramKind) -> Vec<OpenPageRow> {
    SplashBenchmark::all()
        .iter()
        .map(|bench| {
            let run = |open: bool| {
                let cfg = base_config(scale.seed).with_dram(dram).with_open_page(open);
                let m = must_run(*bench, scale.scale, &cfg);
                (m.cycles, m.edp().value())
            };
            let (flat_cycles, flat_edp) = run(false);
            let (open_cycles, open_edp) = run(true);
            OpenPageRow {
                bench: bench.to_string(),
                flat_cycles,
                open_cycles,
                flat_edp,
                open_edp,
            }
        })
        .collect()
}

#[test]
fn fig6_plan_reproduces_the_legacy_rows_and_table() {
    let scale = ExperimentScale::tiny();
    let legacy = legacy_fig6(scale);
    let planned = fig6(scale);
    assert_eq!(legacy, planned, "fig6 rows must be bit-identical");
    assert_eq!(
        report::render_fig6(&legacy),
        report::render_fig6(&planned),
        "fig6 rendered table must be byte-identical"
    );
}

#[test]
fn fig7_plan_reproduces_the_legacy_rows_and_table() {
    let scale = ExperimentScale::tiny();
    let legacy = legacy_fig7_at(scale, DramKind::OffChipDdr3);
    let planned = fig7_at(scale, DramKind::OffChipDdr3);
    assert_eq!(legacy, planned, "fig7 rows must be bit-identical");
    assert_eq!(
        report::render_fig7(&legacy, "200 ns"),
        report::render_fig7(&planned, "200 ns"),
        "fig7 rendered table must be byte-identical"
    );
    assert_eq!(
        report::render_fig7_claims(&legacy),
        report::render_fig7_claims(&planned),
        "fig7 claim lines must be byte-identical"
    );
}

#[test]
fn fig8_plans_reproduce_the_legacy_rows_and_tables() {
    let scale = ExperimentScale::tiny();
    for (dram, label) in [
        (DramKind::WideIo, "63 ns (Wide I/O)"),
        (DramKind::Weis3d, "42 ns (Weis 3-D)"),
    ] {
        let legacy = legacy_fig7_at(scale, dram);
        let planned = fig7_at(scale, dram);
        assert_eq!(legacy, planned, "fig8 rows must be bit-identical @ {label}");
        assert_eq!(
            report::render_fig7(&legacy, label),
            report::render_fig7(&planned, label),
            "fig8 rendered table must be byte-identical @ {label}"
        );
    }
}

#[test]
fn open_page_plan_reproduces_the_legacy_rows_and_table() {
    let scale = ExperimentScale::tiny();
    let legacy = legacy_open_page_at(scale, DramKind::OffChipDdr3);
    let planned = open_page_at(scale, DramKind::OffChipDdr3);
    assert_eq!(legacy, planned, "open-page rows must be bit-identical");
    assert_eq!(
        report::render_open_page(&legacy, "200 ns"),
        report::render_open_page(&planned, "200 ns"),
        "open-page rendered table must be byte-identical"
    );
}

#[test]
fn plan_expansion_and_results_are_invariant_under_thread_count() {
    // The property the old suite pinned via MOT3D_THREADS, now provable
    // without env-var races: the plan pins its worker count explicitly.
    let scale = ExperimentScale::tiny();
    let reference_points = ExperimentPlan::fig7(scale).points();
    let reference = ExperimentPlan::fig7(scale).threads(1).run().unwrap();
    for threads in [2, 3, 8] {
        let plan = ExperimentPlan::fig7(scale).threads(threads);
        assert_eq!(
            plan.points(),
            reference_points,
            "expansion order must not depend on threads = {threads}"
        );
        let records = plan.run().unwrap();
        assert_eq!(
            records, reference,
            "records must be bit-identical at threads = {threads}"
        );
    }
    // And the figure-shaped fold sees the same thing.
    assert_eq!(fig7_rows(&reference), fig7_at(scale, DramKind::OffChipDdr3));
}

#[test]
fn ablation_grid_first_cell_is_the_full_connection_baseline() {
    // The ablation presenter normalises every row to records[0]; that
    // cell must be exactly the legacy `SimConfig::date16()` run.
    let plan = ExperimentPlan::ablation_grid(ExperimentScale::tiny(), SplashBenchmark::Fft);
    let points = plan.points();
    assert_eq!(points.len(), 9);
    assert_eq!(points[0].config, SimConfig::date16());
    assert_eq!(points[0].config.power_state, PowerState::full());
}
