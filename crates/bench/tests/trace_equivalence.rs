//! Tracing is observation-only at the plan layer too: a traced sweep
//! (`run_traced_with`, serial, fresh clusters, one trace file per
//! point) must produce record streams **bit-identical** to the pooled
//! untraced sweep — the same `RunRecord`s in the same order, folding to
//! the same FNV checksum over the exact JSON-lines bytes a sink writes.

use mot3d_bench::plan::ExperimentPlan;
use mot3d_bench::sink::record_json_line;
use mot3d_bench::ExperimentScale;
use mot3d_mot::PowerState;
use mot3d_phys::fnv::{fnv1a64_fold, FNV_OFFSET};
use mot3d_workloads::SplashBenchmark;
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mot3d-trace-eq-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// FNV-1a over the JSON line of every record, in order — the same
/// digest shape `mot3d perf --checksum-only` pins for sweeps.
fn stream_checksum(records: &[mot3d_bench::plan::RunRecord]) -> u64 {
    records.iter().fold(FNV_OFFSET, |state, r| {
        fnv1a64_fold(state, record_json_line(r).as_bytes())
    })
}

#[test]
fn traced_sweeps_match_untraced_sweeps_bit_for_bit() {
    let dir = scratch_dir("grid");
    let plan = || {
        ExperimentPlan::new("trace-eq")
            .splash([SplashBenchmark::Fft, SplashBenchmark::Radix])
            .power_states([PowerState::full(), PowerState::pc16_mb8()])
            .scale(ExperimentScale::tiny())
    };

    let untraced = plan().run().unwrap();
    let traced = plan().run_traced_with(&dir, &mut [], |_, _, _| {}).unwrap();

    assert_eq!(untraced.len(), 4, "2 benches × 2 power states");
    assert_eq!(traced.len(), untraced.len());
    for ((record, trace_path), reference) in traced.iter().zip(&untraced) {
        assert_eq!(record, reference, "{}", reference.point.label());
        assert!(trace_path.exists(), "{}", trace_path.display());
    }

    // The serialized streams fold to the same checksum — tracing cannot
    // perturb what `mot3d sweep --json` (or the serve stream) emits.
    let traced_records: Vec<_> = traced.into_iter().map(|(r, _)| r).collect();
    assert_eq!(stream_checksum(&traced_records), stream_checksum(&untraced));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn traced_runs_are_deterministic_across_invocations() {
    let dir_a = scratch_dir("det-a");
    let dir_b = scratch_dir("det-b");
    let plan = || {
        ExperimentPlan::new("trace-det")
            .splash([SplashBenchmark::Fmm])
            .scale(ExperimentScale::tiny())
    };
    let a = plan()
        .run_traced_with(&dir_a, &mut [], |_, _, _| {})
        .unwrap();
    let b = plan()
        .run_traced_with(&dir_b, &mut [], |_, _, _| {})
        .unwrap();
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].0, b[0].0, "records identical run to run");
    // And the trace files themselves are byte-identical: timestamps are
    // simulated cycles, never host time (lint rule H2 enforces this).
    let bytes_a = std::fs::read(&a[0].1).unwrap();
    let bytes_b = std::fs::read(&b[0].1).unwrap();
    assert_eq!(
        fnv1a64_fold(FNV_OFFSET, &bytes_a),
        fnv1a64_fold(FNV_OFFSET, &bytes_b),
        "trace bytes identical run to run"
    );
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}
