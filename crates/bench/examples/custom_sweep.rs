//! An ad-hoc declarative sweep: MoT vs True 3-D Mesh under two DRAM
//! options, rendered as a generic table on stdout with a JSON-lines
//! record stream on stderr progress.
//!
//! ```sh
//! cargo run --release -p mot3d-bench --example custom_sweep
//! ```
//!
//! The same grid from the CLI:
//!
//! ```sh
//! mot3d sweep --bench fft,radix --interconnect mot3d,mesh --dram 200ns,42ns --scale tiny
//! ```

use mot3d_bench::plan::ExperimentPlan;
use mot3d_bench::sink::TableSink;
use mot3d_bench::{report, ExperimentScale};
use mot3d_mem::dram::DramKind;
use mot3d_noc::NocTopologyKind;
use mot3d_sim::InterconnectChoice;
use mot3d_workloads::SplashBenchmark;

fn main() -> std::io::Result<()> {
    let plan = ExperimentPlan::new("custom")
        .splash([SplashBenchmark::Fft, SplashBenchmark::Radix])
        .interconnects([
            InterconnectChoice::Mot,
            InterconnectChoice::Noc(NocTopologyKind::Mesh3d),
        ])
        .drams([DramKind::OffChipDdr3, DramKind::Weis3d])
        .scale(ExperimentScale::tiny());
    let mut table = TableSink::new(std::io::stdout());
    plan.run_with(&mut [&mut table], report::stream_progress)?;
    Ok(())
}
