//! Routing-switch decisions and the power-state bank remap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_mot::power_state::PowerState;
use mot3d_mot::reconfig::MotConfiguration;
use mot3d_mot::switch::{Port, RoutingMode, RoutingSwitch};
use mot3d_mot::topology::MotTopology;

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_switch");
    g.bench_function("route_conventional", |b| {
        let sw = RoutingSwitch::new();
        b.iter(|| black_box(sw.route(black_box(true))))
    });
    g.bench_function("route_user_defined", |b| {
        let mut sw = RoutingSwitch::new();
        sw.set_mode(RoutingMode::UserDefined(Port::Port0));
        b.iter(|| black_box(sw.route(black_box(true))))
    });
    let cfg = MotConfiguration::new(MotTopology::date16(), PowerState::pc16_mb8()).unwrap();
    g.bench_function("remap_bank_32", |b| {
        b.iter(|| {
            for h in 0..32usize {
                black_box(cfg.remap_bank(black_box(h)));
            }
        })
    });
    g.bench_function("build_configuration", |b| {
        b.iter(|| {
            black_box(MotConfiguration::new(MotTopology::date16(), PowerState::pc4_mb8()).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
