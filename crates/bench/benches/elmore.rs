//! Microbenchmarks of the RC/Elmore engine (the paper's delay model).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_phys::rc::{RcTree, RepeatedWire};
use mot3d_phys::units::{Farads, Meters, Ohms};
use mot3d_phys::Technology;

fn chain(n: usize) -> (RcTree, mot3d_phys::rc::NodeId) {
    let mut t = RcTree::new(Farads::ZERO);
    let mut at = t.root();
    for i in 0..n {
        at = t.add_node(at, Ohms::new(50.0 + i as f64), Farads::from_ff(2.0));
    }
    (t, at)
}

fn bench_elmore(c: &mut Criterion) {
    let mut g = c.benchmark_group("elmore");
    for n in [16usize, 128, 1024] {
        let (tree, sink) = chain(n);
        g.bench_function(format!("chain_{n}"), |b| {
            b.iter(|| black_box(tree.elmore_delay(black_box(sink))))
        });
    }
    let (tree, _) = chain(1024);
    g.bench_function("all_sinks_1024", |b| {
        b.iter(|| black_box(tree.elmore_delays()))
    });
    let tech = Technology::lp45();
    g.bench_function("repeated_wire_7_5mm", |b| {
        b.iter(|| black_box(RepeatedWire::new(&tech, Meters::from_mm(7.5))))
    });
    g.finish();
}

criterion_group!(benches, bench_elmore);
criterion_main!(benches);
