//! Whole-cluster simulation throughput (cycles/second of simulated time),
//! including the event-driven-vs-per-cycle pair that quantifies ISSUE 3's
//! headline claim: on a gated low-IPC workload (every core stalled on the
//! 200-cycle DRAM most of the time) the idle-skipping engine must be
//! several times faster than stepping every cycle, at bit-identical
//! metrics (see `crates/sim/tests/event_driven.rs` for the equivalence
//! proof).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_noc::NocTopologyKind;
use mot3d_sim::{run_benchmark, run_spec, Cluster, InterconnectChoice, SimConfig};
use mot3d_workloads::{streams, SplashBenchmark, WorkloadSpec};

/// A gated low-IPC regime: 4 cores, heavy memory traffic, poor locality —
/// most cycles every core waits on DRAM.
fn low_ipc_spec() -> WorkloadSpec {
    let mut s = SplashBenchmark::Radix.spec().scaled(0.01);
    s.serial_fraction = 0.8; // mostly one core: a single blocking miss chain
    s.mem_ratio = 0.5;
    s.locality = 0.2; // near-random: L1 and L2 both thrash
    s.hot_fraction = 0.05;
    s.working_set_bytes = 4 * 1024 * 1024; // far beyond the 2 MB L2
    s
}

fn gated_config() -> SimConfig {
    SimConfig::date16().with_power_state(mot3d_mot::PowerState::pc4_mb8())
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_sim");
    g.sample_size(10);
    g.bench_function("fmm_tiny_mot", |b| {
        b.iter(|| {
            black_box(run_benchmark(SplashBenchmark::Fmm, 0.002, &SimConfig::date16()).unwrap())
        })
    });
    g.bench_function("fmm_tiny_mesh", |b| {
        let cfg =
            SimConfig::date16().with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d));
        b.iter(|| black_box(run_benchmark(SplashBenchmark::Fmm, 0.002, &cfg).unwrap()))
    });
    g.bench_function("radix_tiny_gated", |b| {
        let cfg = SimConfig::date16().with_power_state(mot3d_mot::PowerState::pc4_mb8());
        b.iter(|| black_box(run_benchmark(SplashBenchmark::Radix, 0.002, &cfg).unwrap()))
    });
    g.bench_function("gated_low_ipc_event_driven", |b| {
        let cfg = gated_config();
        let spec = low_ipc_spec();
        b.iter(|| black_box(run_spec(&spec, &cfg).unwrap()))
    });
    g.bench_function("gated_low_ipc_per_cycle", |b| {
        // Same reset-and-rerun amortisation as the pooled event-driven
        // side, so the pair isolates the engine difference rather than
        // charging cluster construction to one arm.
        let cfg = gated_config();
        let spec = low_ipc_spec();
        let ranks = || streams(&spec, cfg.power_state.active_cores(), cfg.seed);
        let mut cluster = Cluster::new(cfg, ranks()).unwrap();
        b.iter(|| {
            cluster.reset(ranks()).unwrap();
            while !cluster.is_done() {
                cluster.step();
            }
            black_box(cluster.metrics("per-cycle"))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
