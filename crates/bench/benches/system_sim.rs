//! Whole-cluster simulation throughput (cycles/second of simulated time).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_noc::NocTopologyKind;
use mot3d_sim::{run_benchmark, InterconnectChoice, SimConfig};
use mot3d_workloads::SplashBenchmark;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_sim");
    g.sample_size(10);
    g.bench_function("fmm_tiny_mot", |b| {
        b.iter(|| {
            black_box(run_benchmark(SplashBenchmark::Fmm, 0.002, &SimConfig::date16()).unwrap())
        })
    });
    g.bench_function("fmm_tiny_mesh", |b| {
        let cfg =
            SimConfig::date16().with_interconnect(InterconnectChoice::Noc(NocTopologyKind::Mesh3d));
        b.iter(|| black_box(run_benchmark(SplashBenchmark::Fmm, 0.002, &cfg).unwrap()))
    });
    g.bench_function("radix_tiny_gated", |b| {
        let cfg = SimConfig::date16().with_power_state(mot3d_mot::PowerState::pc4_mb8());
        b.iter(|| black_box(run_benchmark(SplashBenchmark::Radix, 0.002, &cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
