//! Set-associative cache operation throughput (L1 and L2-bank shapes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_mem::addr::LineAddr;
use mot3d_mem::cache::{CacheConfig, SetAssocCache};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("l1_hit_read", |b| {
        let mut cache: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l1_date16()).unwrap();
        cache.fill(LineAddr(7), 1, false);
        b.iter(|| black_box(cache.read(black_box(LineAddr(7)))))
    });
    g.bench_function("l1_miss_read", |b| {
        let mut cache: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l1_date16()).unwrap();
        b.iter(|| black_box(cache.read(black_box(LineAddr(999)))))
    });
    g.bench_function("l2_fill_evict_stream", |b| {
        let mut cache: SetAssocCache<()> =
            SetAssocCache::new(CacheConfig::l2_bank_date16()).unwrap();
        let mut n = 0u64;
        b.iter(|| {
            n += 32; // march through sets, forcing steady-state evictions
            black_box(cache.fill(LineAddr(n), n, n % 3 == 0))
        })
    });
    g.bench_function("l2_mixed_ops", |b| {
        let mut cache: SetAssocCache<()> =
            SetAssocCache::new(CacheConfig::l2_bank_date16()).unwrap();
        for i in 0..512u64 {
            cache.fill(LineAddr(i * 32), i, false);
        }
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 512;
            let line = LineAddr(n * 32);
            if n % 4 == 0 {
                black_box(cache.write(line, n));
            } else {
                black_box(cache.read(line));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
