//! End-to-end figure regeneration at reduced scale — one bench per paper
//! table/figure, so `cargo bench` exercises every experiment path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_bench::{fig5, fig6, fig7, table1, ExperimentScale};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| black_box(table1())));
    g.bench_function("fig5", |b| b.iter(|| black_box(fig5())));
    g.bench_function("fig6_tiny", |b| {
        b.iter(|| black_box(fig6(ExperimentScale::tiny())))
    });
    g.bench_function("fig7_tiny", |b| {
        b.iter(|| black_box(fig7(ExperimentScale::tiny())))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
