//! Packet-switched baseline throughput (per-topology round trips).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_mot::traits::{Interconnect, MemRequest, MemResponse, ReqKind};
use mot3d_noc::{NocNetwork, NocTopologyKind};

fn round_trip(net: &mut NocNetwork, base: u64) -> u64 {
    for core in 0..16 {
        net.inject_request(
            base,
            MemRequest {
                core,
                home_bank: (core * 2) % 32,
                kind: ReqKind::ReadLine,
                tag: base + core as u64,
            },
        );
    }
    let mut done = 0;
    let mut now = base;
    while done < 16 {
        net.tick(now);
        while let Some(a) = net.pop_arrival() {
            net.inject_response(
                now,
                MemResponse {
                    core: a.request.core,
                    bank: a.bank,
                    kind: a.request.kind,
                    tag: a.request.tag,
                },
            );
        }
        while net.pop_delivery().is_some() {
            done += 1;
        }
        now += 1;
    }
    now
}

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    for kind in NocTopologyKind::all() {
        g.bench_function(format!("round_trip_16_{kind}"), |b| {
            let mut net = NocNetwork::date16(kind);
            let mut base = 0u64;
            b.iter(|| {
                base = round_trip(&mut net, base) + 1;
                black_box(base)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
