//! Round-robin arbitration-tree throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_mot::switch::ArbitrationTree;

fn bench_arbiter(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbitration");
    for n in [4usize, 16, 32] {
        g.bench_function(format!("saturated_{n}"), |b| {
            let mut tree = ArbitrationTree::new(n);
            let reqs = vec![true; n];
            b.iter(|| black_box(tree.grant(black_box(&reqs))))
        });
        g.bench_function(format!("sparse_{n}"), |b| {
            let mut tree = ArbitrationTree::new(n);
            let mut reqs = vec![false; n];
            reqs[n / 2] = true;
            b.iter(|| black_box(tree.grant(black_box(&reqs))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_arbiter);
criterion_main!(benches);
