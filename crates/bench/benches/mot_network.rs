//! Cycle throughput of the MoT network model under load.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_mot::traits::{Interconnect, MemRequest, MemResponse, ReqKind};
use mot3d_mot::{MotNetwork, PowerState};

/// One full saturation round trip: 16 requests, grants, responses.
fn round_trip(net: &mut MotNetwork, base: u64) -> u64 {
    for core in 0..16 {
        net.inject_request(
            base,
            MemRequest {
                core,
                home_bank: (core * 2) % 32,
                kind: ReqKind::ReadLine,
                tag: base + core as u64,
            },
        );
    }
    let mut done = 0;
    let mut now = base;
    while done < 16 {
        net.tick(now);
        while let Some(a) = net.pop_arrival() {
            net.inject_response(
                now,
                MemResponse {
                    core: a.request.core,
                    bank: a.bank,
                    kind: a.request.kind,
                    tag: a.request.tag,
                },
            );
        }
        while net.pop_delivery().is_some() {
            done += 1;
        }
        now += 1;
    }
    now
}

fn bench_mot(c: &mut Criterion) {
    let mut g = c.benchmark_group("mot_network");
    g.bench_function("idle_tick", |b| {
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            net.tick(black_box(now))
        })
    });
    g.bench_function("saturation_round_trip_16", |b| {
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        let mut base = 0u64;
        b.iter(|| {
            base = round_trip(&mut net, base) + 1;
            black_box(base)
        })
    });
    g.bench_function("build_date16", |b| {
        b.iter(|| black_box(MotNetwork::date16(PowerState::full()).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_mot);
criterion_main!(benches);
