//! The unified `mot3d` command-line interface.
//!
//! One binary replaces the seven per-figure executables: every canned
//! artefact is a subcommand (`mot3d fig7 --scale 0.35 --threads 8`),
//! and `mot3d sweep` exposes the full declarative
//! [`ExperimentPlan`] grid for ad-hoc studies
//! (`mot3d sweep --interconnect mot3d,mesh --dram 200ns,42ns`).
//! Canned subcommands render stdout byte-identically to the binaries
//! they replaced (pinned by `tests/plan_equivalence.rs`); machine
//! consumers attach `--json` (JSON-lines) or `--csv` record sinks.
//!
//! The old `MOT3D_SCALE` / `MOT3D_THREADS` / `MOT3D_BENCH_JSON`
//! environment variables keep working as **deprecated fallbacks** for
//! `--scale` / `--threads` / `--bench-json`.

use crate::axes;
use crate::experiments::{self, ExperimentScale};
use crate::perf::Recorder;
use crate::plan::{ExperimentPlan, RunRecord};
use crate::pool;
use crate::report;
use crate::sink::{AtomicFile, CsvSink, JsonLinesSink, PerfSink, RecordSink, TableSink};
use mot3d_mem::dram::DramKind;
use mot3d_mot::PowerState;
use mot3d_sim::InterconnectChoice;
use mot3d_workloads::SplashBenchmark;
use std::io;

/// Entry point for the `mot3d` binary: parses `args` (without the
/// program name), executes the subcommand, and returns the process
/// exit code (0 = success, 1 = runtime/I-O failure, 2 = usage error).
pub fn run(args: impl IntoIterator<Item = String>) -> i32 {
    let args: Vec<String> = args.into_iter().collect();
    // Tool subcommands own their argument grammar (their flags don't
    // all take values), so dispatch before the option parser runs.
    match args.first().map(String::as_str) {
        Some("lint") => return mot3d_lint::run_cli(&args[1..]),
        Some("perf") => return crate::perfcheck::run_cli(&args[1..]),
        _ => {}
    }
    let (cmd, opts) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(UsageError::Help) => {
            print!("{}", usage());
            return 0;
        }
        Err(UsageError::Bad(msg)) => {
            eprintln!("mot3d: {msg}");
            eprintln!();
            eprint!("{}", usage());
            return 2;
        }
    };
    match execute(cmd, &opts) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("mot3d: {e}");
            1
        }
    }
}

/// The CLI's subcommands (one per replaced binary, plus the ad-hoc
/// `sweep`, `open-page`, and the `trace` deep dive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmd {
    Table1,
    Fig5,
    Fig6,
    Fig7,
    Fig8,
    OpenPage,
    Ablation,
    All,
    Sweep,
    Trace,
}

/// Parsed command-line options (common + sweep axes).
#[derive(Debug, Default)]
struct Options {
    scale: Option<ExperimentScale>,
    threads: Option<usize>,
    seed: Option<u64>,
    json: Option<String>,
    csv: Option<String>,
    bench_json: Option<String>,
    benches: Option<Vec<SplashBenchmark>>,
    interconnects: Option<Vec<InterconnectChoice>>,
    power_states: Option<Vec<PowerState>>,
    drams: Option<Vec<DramKind>>,
    pages: Option<Vec<bool>>,
    repeats: u32,
    trace: Option<String>,
}

enum UsageError {
    Help,
    Bad(String),
}

fn bad(msg: impl Into<String>) -> UsageError {
    UsageError::Bad(msg.into())
}

fn usage() -> String {
    "\
mot3d — regenerate the DATE 2016 paper's tables and figures

USAGE: mot3d <command> [options]

COMMANDS:
  table1     Table I — derived L2 cache latencies
  fig5       Fig. 5 — wire lengths per power state
  fig6       Fig. 6 — L2 latency + exec time across the four interconnects
  fig7       Fig. 7 — EDP + exec time across the power states @ 200 ns DRAM
  fig8       Fig. 8 — power-state sweep @ 63/42 ns DRAM + open-page study
  open-page  flat vs open-page DRAM timing (Full connection)
  ablation   sensitivity studies beyond the paper's figures
  all        everything above, EXPERIMENTS.md-ready
  sweep      ad-hoc declarative grid over any combination of axes
  trace      single-point deep dive: run one cell with the timeline
             tracer attached (open the file at ui.perfetto.dev)
  serve      long-running sweep service with a persistent result cache
  submit     send a sweep to a running server (see `mot3d serve --help`)
  lint       run the mot3d-lint static-analysis pass (see `lint --help`)
  perf       `perf check` — compare a fresh run against BENCH_results.json
  help       print this message

OPTIONS (all commands):
  --scale <factor|tiny>  run-length factor, default 0.35
                         (deprecated fallback: MOT3D_SCALE)
  --threads <n>          worker threads, default = available parallelism
                         (deprecated fallback: MOT3D_THREADS)
  --seed <u64>           workload seed override
  --json <path>          stream every simulated run as JSON-lines records
  --csv <path>           stream every simulated run as CSV rows
  --bench-json <path>    write the perf-trajectory document
                         (deprecated fallback: MOT3D_BENCH_JSON)
                         (sink options need a simulating command, i.e.
                         not table1/fig5)

SWEEP OPTIONS (comma-separated lists; `all` expands an axis):
  --bench <list|all>         cholesky,fft,fmm,ocean_contiguous,radix,
                             raytrace,volrend,water-nsquared
  --interconnect <list|all>  mot3d, mesh, bus-mesh, bus-tree
  --power-state <list|all>   full, pc16-mb8, pc4-mb32, pc4-mb8 (any pcX-mbY)
  --dram <list|all>          200ns, 63ns, 42ns
  --page <flat|open|both>    DRAM page-policy axis
  --repeat <n>               runs per grid cell (each repeat reseeds)
  --trace <dir>              write one Perfetto-loadable trace file per run
                             into <dir> (sweep runs serially; also the
                             output directory for `mot3d trace`)

EXAMPLES:
  mot3d fig7 --scale 0.35 --threads 8 --json fig7.jsonl
  mot3d all --scale tiny --json bench.json --bench-json BENCH_results.json
  mot3d sweep --bench fft,radix --interconnect mot3d,mesh --dram all --csv grid.csv
  mot3d trace --bench fft --power-state pc16-mb8 --trace traces/
"
    .to_string()
}

fn parse(args: &[String]) -> Result<(Cmd, Options), UsageError> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Err(UsageError::Help),
        Some("table1") => Cmd::Table1,
        Some("fig5") => Cmd::Fig5,
        Some("fig6") => Cmd::Fig6,
        Some("fig7") => Cmd::Fig7,
        Some("fig8") => Cmd::Fig8,
        Some("open-page") => Cmd::OpenPage,
        Some("ablation") => Cmd::Ablation,
        Some("all") => Cmd::All,
        Some("sweep") => Cmd::Sweep,
        Some("trace") => Cmd::Trace,
        Some(other) => return Err(bad(format!("unknown command {other:?}"))),
    };
    let mut opts = Options {
        repeats: 1,
        ..Options::default()
    };
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            return Err(UsageError::Help);
        }
        let value = it
            .next()
            .ok_or_else(|| bad(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--scale" => {
                opts.scale = Some(ExperimentScale::parse(value).map_err(bad)?);
            }
            "--threads" => {
                let t: usize = value.parse().ok().filter(|&t| t > 0).ok_or_else(|| {
                    bad(format!("--threads needs a positive integer, got {value:?}"))
                })?;
                opts.threads = Some(t);
            }
            "--seed" => {
                let s: u64 = value
                    .parse()
                    .map_err(|_| bad(format!("--seed needs an unsigned integer, got {value:?}")))?;
                opts.seed = Some(s);
            }
            "--json" => opts.json = Some(value.clone()),
            "--csv" => opts.csv = Some(value.clone()),
            "--bench-json" => opts.bench_json = Some(value.clone()),
            "--bench" => opts.benches = Some(axes::parse_benches(value).map_err(bad)?),
            "--interconnect" => {
                opts.interconnects = Some(axes::parse_interconnects(value).map_err(bad)?);
            }
            "--power-state" => {
                opts.power_states = Some(axes::parse_power_states(value).map_err(bad)?);
            }
            "--dram" => opts.drams = Some(axes::parse_drams(value).map_err(bad)?),
            "--page" => opts.pages = Some(axes::parse_pages(value).map_err(bad)?),
            "--repeat" => {
                let r: u32 = value.parse().ok().filter(|&r| r > 0).ok_or_else(|| {
                    bad(format!("--repeat needs a positive integer, got {value:?}"))
                })?;
                opts.repeats = r;
            }
            "--trace" => opts.trace = Some(value.clone()),
            other => return Err(bad(format!("unknown option {other:?}"))),
        }
    }
    let sweep_only = opts.benches.is_some()
        || opts.interconnects.is_some()
        || opts.power_states.is_some()
        || opts.drams.is_some()
        || opts.pages.is_some()
        || opts.repeats != 1;
    if sweep_only && !matches!(cmd, Cmd::Sweep | Cmd::Trace) {
        return Err(bad("axis options (--bench/--interconnect/--power-state/--dram/--page/--repeat) only apply to `mot3d sweep` and `mot3d trace`"));
    }
    if opts.trace.is_some() && !matches!(cmd, Cmd::Sweep | Cmd::Trace) {
        return Err(bad(
            "--trace only applies to `mot3d sweep` and `mot3d trace`",
        ));
    }
    if matches!(cmd, Cmd::Table1 | Cmd::Fig5)
        && (opts.json.is_some() || opts.csv.is_some() || opts.bench_json.is_some())
    {
        return Err(bad(
            "--json/--csv/--bench-json record simulated runs; table1 and fig5 \
             are derived analytically and run none",
        ));
    }
    Ok((cmd, opts))
}

// --------------------------------------------------------- execution

/// The DRAM label strings the legacy renderers used.
fn dram_label(dram: DramKind) -> &'static str {
    match dram {
        DramKind::OffChipDdr3 => "200 ns",
        DramKind::WideIo => "63 ns (Wide I/O)",
        DramKind::Weis3d => "42 ns (Weis 3-D)",
    }
}

/// Everything a subcommand needs to run plans uniformly: the resolved
/// scale, the optional thread pin, the perf recorder, and the file
/// sinks shared by every plan of the invocation.
struct Ctx {
    scale: ExperimentScale,
    seed_overridden: bool,
    threads: Option<usize>,
    banner_threads: usize,
    recorder: Recorder,
    json_sink: Option<JsonLinesSink<AtomicFile>>,
    csv_sink: Option<CsvSink<AtomicFile>>,
    json: Option<String>,
    csv: Option<String>,
    bench_json: Option<String>,
}

/// The largest grid a subcommand executes, so banners and perf records
/// never claim more workers than the pool can use. `sweep` is resolved
/// once its plan is built (see [`Ctx::clamp_threads`]).
fn max_jobs(cmd: Cmd) -> usize {
    let benches = SplashBenchmark::all().len();
    match cmd {
        Cmd::Table1 | Cmd::Fig5 => 1,
        Cmd::Fig6 | Cmd::Fig7 | Cmd::Fig8 | Cmd::All => benches * 4,
        Cmd::OpenPage | Cmd::Ablation => benches * 2,
        Cmd::Sweep => usize::MAX,
        Cmd::Trace => 1,
    }
}

impl Ctx {
    fn new(cmd: Cmd, opts: &Options) -> io::Result<Self> {
        let mut scale = match opts.scale {
            Some(s) => s,
            None => {
                if std::env::var_os("MOT3D_SCALE").is_some() {
                    eprintln!("note: MOT3D_SCALE is deprecated; prefer `mot3d <cmd> --scale <s>`");
                }
                ExperimentScale::from_env()
            }
        };
        if let Some(seed) = opts.seed {
            scale.seed = seed;
        }
        if opts.threads.is_none() && std::env::var_os("MOT3D_THREADS").is_some() {
            eprintln!("note: MOT3D_THREADS is deprecated; prefer `mot3d <cmd> --threads <n>`");
        }
        if opts.bench_json.is_none() && std::env::var_os("MOT3D_BENCH_JSON").is_some() {
            eprintln!(
                "note: MOT3D_BENCH_JSON is deprecated; prefer `mot3d <cmd> --bench-json <path>`"
            );
        }
        let banner_threads = match opts.threads {
            Some(t) => t,
            None => experiments::sweep_threads(),
        }
        .min(max_jobs(cmd))
        .max(1);
        let json_sink = match &opts.json {
            Some(path) => Some(JsonLinesSink::create(path)?),
            None => None,
        };
        let csv_sink = match &opts.csv {
            Some(path) => Some(CsvSink::create(path)?),
            None => None,
        };
        Ok(Ctx {
            scale,
            seed_overridden: opts.seed.is_some(),
            threads: opts.threads,
            banner_threads,
            recorder: Recorder::new(scale.scale, banner_threads),
            json_sink,
            csv_sink,
            json: opts.json.clone(),
            csv: opts.csv.clone(),
            bench_json: opts.bench_json.clone(),
        })
    }

    /// Re-clamps the reported worker count once an ad-hoc grid's job
    /// count is known, keeping the banner and the perf record honest.
    fn clamp_threads(&mut self, jobs: usize) {
        self.banner_threads = match self.threads {
            Some(t) => t.min(jobs.max(1)),
            None => pool::worker_threads(jobs),
        };
        self.recorder.set_threads(self.banner_threads);
    }

    /// Runs one plan through the invocation's sinks (+ a perf record
    /// under `perf_name`, + an optional subcommand-specific sink),
    /// streaming per-run progress lines to stderr when `stream` is set.
    fn run_plan(
        &mut self,
        plan: ExperimentPlan,
        perf_name: Option<&str>,
        stream: bool,
        extra: Option<&mut dyn RecordSink>,
    ) -> io::Result<Vec<RunRecord>> {
        let plan = match self.threads {
            Some(t) => plan.threads(t),
            None => plan,
        };
        let mut perf = perf_name.map(|name| PerfSink::new(&mut self.recorder, name));
        let mut sinks: Vec<&mut dyn RecordSink> = Vec::new();
        if let Some(json) = self.json_sink.as_mut() {
            sinks.push(json);
        }
        if let Some(csv) = self.csv_sink.as_mut() {
            sinks.push(csv);
        }
        if let Some(perf) = perf.as_mut() {
            sinks.push(perf);
        }
        if let Some(extra) = extra {
            sinks.push(extra);
        }
        if stream {
            plan.run_with(&mut sinks, report::stream_progress)
        } else {
            plan.run_with(&mut sinks, |_, _, _| {})
        }
    }

    /// [`Ctx::run_plan`] with the timeline tracer attached: one
    /// Perfetto-loadable file per point into `trace_dir`, runs serial.
    /// Returns each record with its trace file path.
    fn run_plan_traced(
        &mut self,
        plan: ExperimentPlan,
        perf_name: Option<&str>,
        stream: bool,
        extra: Option<&mut dyn RecordSink>,
        trace_dir: &str,
    ) -> io::Result<Vec<(RunRecord, std::path::PathBuf)>> {
        let mut perf = perf_name.map(|name| PerfSink::new(&mut self.recorder, name));
        let mut sinks: Vec<&mut dyn RecordSink> = Vec::new();
        if let Some(json) = self.json_sink.as_mut() {
            sinks.push(json);
        }
        if let Some(csv) = self.csv_sink.as_mut() {
            sinks.push(csv);
        }
        if let Some(perf) = perf.as_mut() {
            sinks.push(perf);
        }
        if let Some(extra) = extra {
            sinks.push(extra);
        }
        let dir = std::path::Path::new(trace_dir);
        if stream {
            plan.run_traced_with(dir, &mut sinks, report::stream_progress)
        } else {
            plan.run_traced_with(dir, &mut sinks, |_, _, _| {})
        }
    }

    /// Persists the record files (atomic rename into their final
    /// names), writes the perf-trajectory document (`--bench-json`, or
    /// the deprecated `MOT3D_BENCH_JSON`), and notes the paths. The
    /// sinks span every plan of the invocation (`mot3d all` runs
    /// several), so this runs once at the very end.
    fn finish(&mut self) -> io::Result<()> {
        if let Some(sink) = self.json_sink.take() {
            sink.persist()?;
        }
        if let Some(sink) = self.csv_sink.take() {
            sink.persist()?;
        }
        if !self.recorder.sweeps().is_empty() {
            if let Some(path) = &self.bench_json {
                std::fs::write(path, self.recorder.to_json())?;
                eprintln!("bench results written to {path}");
            } else {
                self.recorder.write_if_requested();
            }
        }
        if let Some(path) = &self.json {
            eprintln!("run records written to {path}");
        }
        if let Some(path) = &self.csv {
            eprintln!("run records written to {path}");
        }
        Ok(())
    }
}

fn execute(cmd: Cmd, opts: &Options) -> io::Result<()> {
    let mut ctx = Ctx::new(cmd, opts)?;
    let scale = ctx.scale;
    match cmd {
        Cmd::Table1 => {
            print!("{}", report::render_table1(&experiments::table1()));
        }
        Cmd::Fig5 => {
            print!("{}", report::render_fig5(&experiments::fig5()));
        }
        Cmd::Fig6 => {
            eprintln!(
                "running Fig. 6 at scale {} on {} threads (--scale / --threads to change)...",
                scale.scale, ctx.banner_threads,
            );
            let records = ctx.run_plan(ExperimentPlan::fig6(scale), Some("fig6"), true, None)?;
            print!("{}", report::render_fig6(&experiments::fig6_rows(&records)));
        }
        Cmd::Fig7 => {
            eprintln!(
                "running Fig. 7 at scale {} on {} threads (--scale / --threads to change)...",
                scale.scale, ctx.banner_threads,
            );
            let records =
                ctx.run_plan(ExperimentPlan::fig7(scale), Some("fig7@200ns"), true, None)?;
            let rows = experiments::fig7_rows(&records);
            print!("{}", report::render_fig7(&rows, "200 ns"));
            println!();
            print!("{}", report::render_fig7_claims(&rows));
        }
        Cmd::Fig8 => {
            eprintln!(
                "running Fig. 8 at scale {} on {} threads (--scale / --threads to change)...",
                scale.scale, ctx.banner_threads,
            );
            let at_63 = ctx.run_plan(
                ExperimentPlan::fig8_at(scale, DramKind::WideIo),
                Some("fig8@63ns"),
                true,
                None,
            )?;
            let at_42 = ctx.run_plan(
                ExperimentPlan::fig8_at(scale, DramKind::Weis3d),
                Some("fig8@42ns"),
                true,
                None,
            )?;
            print!(
                "{}",
                report::render_fig7(
                    &experiments::fig7_rows(&at_63),
                    dram_label(DramKind::WideIo)
                )
            );
            println!();
            print!(
                "{}",
                report::render_fig7(
                    &experiments::fig7_rows(&at_42),
                    dram_label(DramKind::Weis3d)
                )
            );
            println!();
            let open = ctx.run_plan(
                ExperimentPlan::open_page_at(scale, DramKind::OffChipDdr3),
                Some("open_page@200ns"),
                false,
                None,
            )?;
            print!(
                "{}",
                report::render_open_page(&experiments::open_page_rows(&open), "200 ns")
            );
        }
        Cmd::OpenPage => {
            eprintln!(
                "running the open-page sweep at scale {} on {} threads (--scale / --threads to change)...",
                scale.scale, ctx.banner_threads,
            );
            let open = ctx.run_plan(
                ExperimentPlan::open_page_at(scale, DramKind::OffChipDdr3),
                Some("open_page@200ns"),
                true,
                None,
            )?;
            print!(
                "{}",
                report::render_open_page(&experiments::open_page_rows(&open), "200 ns")
            );
        }
        Cmd::Ablation => ablation(&mut ctx)?,
        Cmd::All => all(&mut ctx)?,
        Cmd::Sweep => sweep(&mut ctx, opts)?,
        Cmd::Trace => trace_point(&mut ctx, opts)?,
    }
    ctx.finish()
}

/// `mot3d all`: every experiment, EXPERIMENTS.md-ready (byte-identical
/// to the legacy `all` binary).
fn all(ctx: &mut Ctx) -> io::Result<()> {
    let scale = ctx.scale;
    eprintln!(
        "running all experiments at scale {} on {} threads ...",
        scale.scale, ctx.banner_threads,
    );

    println!("== Table I ==");
    print!("{}", report::render_table1(&experiments::table1()));
    println!("\n== Fig. 5 ==");
    print!("{}", report::render_fig5(&experiments::fig5()));

    println!("\n== Fig. 6 ==");
    let f6 = ctx.run_plan(ExperimentPlan::fig6(scale), Some("fig6"), false, None)?;
    print!("{}", report::render_fig6(&experiments::fig6_rows(&f6)));

    println!("\n== Fig. 7 (200 ns DRAM) ==");
    let f7 = ctx.run_plan(ExperimentPlan::fig7(scale), Some("fig7@200ns"), false, None)?;
    let rows7 = experiments::fig7_rows(&f7);
    print!("{}", report::render_fig7(&rows7, "200 ns"));
    println!();
    print!("{}", report::render_fig7_claims(&rows7));

    println!("\n== Fig. 8 ==");
    let at_63 = ctx.run_plan(
        ExperimentPlan::fig8_at(scale, DramKind::WideIo),
        Some("fig8@63ns"),
        false,
        None,
    )?;
    let at_42 = ctx.run_plan(
        ExperimentPlan::fig8_at(scale, DramKind::Weis3d),
        Some("fig8@42ns"),
        false,
        None,
    )?;
    let rows63 = experiments::fig7_rows(&at_63);
    print!(
        "{}",
        report::render_fig7(&rows63, dram_label(DramKind::WideIo))
    );
    println!();
    print!(
        "{}",
        report::render_fig7(
            &experiments::fig7_rows(&at_42),
            dram_label(DramKind::Weis3d)
        )
    );
    println!();
    print!("{}", report::render_fig7_claims(&rows63));

    println!("\n== Open-page DRAM ==");
    let open = ctx.run_plan(
        ExperimentPlan::open_page_at(scale, DramKind::OffChipDdr3),
        Some("open_page@200ns"),
        false,
        None,
    )?;
    print!(
        "{}",
        report::render_open_page(&experiments::open_page_rows(&open), "200 ns")
    );
    Ok(())
}

/// `mot3d ablation`: the sensitivity studies beyond the paper's four
/// figures (byte-identical to the legacy `ablation` binary).
fn ablation(ctx: &mut Ctx) -> io::Result<()> {
    use mot3d_mot::latency::{MotLatency, MotTimingParams};
    use mot3d_mot::topology::MotTopology;
    use mot3d_phys::geometry::Floorplan;
    use mot3d_phys::Technology;

    let scale = ctx.scale;
    println!("== Ablation 1: full power-state grid (EDP normalised to Full) ==");
    for bench in [SplashBenchmark::Fft, SplashBenchmark::OceanContiguous] {
        println!("\n{bench}:");
        println!(
            "{:<12} {:>10} {:>12} {:>12}",
            "state", "cycles", "EDP ratio", "time ratio"
        );
        let grid = if ctx.seed_overridden {
            ExperimentPlan::ablation_grid_seeded(scale, bench)
        } else {
            ExperimentPlan::ablation_grid(scale, bench)
        };
        let perf_name = format!("ablation@{bench}");
        let records = ctx.run_plan(grid, Some(&perf_name), false, None)?;
        let full = records[0].clone();
        for rec in &records {
            let state = rec.point.config.power_state;
            println!(
                "{:<12} {:>10} {:>12.3} {:>12.3}",
                format!("PC{}-MB{}", state.active_cores(), state.active_banks()),
                rec.metrics.cycles,
                rec.derived.edp_js / full.derived.edp_js,
                rec.metrics.cycles as f64 / full.metrics.cycles as f64,
            );
        }
    }

    println!("\n== Ablation 2: flat vs open-page DRAM (Full connection) ==");
    let open = ctx.run_plan(
        ExperimentPlan::open_page_at(scale, DramKind::OffChipDdr3),
        Some("open_page@200ns"),
        false,
        None,
    )?;
    print!(
        "{}",
        report::render_open_page(&experiments::open_page_rows(&open), "200 ns")
    );

    println!("\n== Ablation 3: derived MoT latency by technology node ==");
    println!("{:<16} {:>10} {:>10}", "state", "45nm-LP", "65nm-LP");
    let fp = Floorplan::date16();
    let topo = MotTopology::date16();
    let params = MotTimingParams::default();
    for state in PowerState::date16_states() {
        let a = MotLatency::derive(&Technology::lp45(), &fp, topo, &params, state).unwrap();
        let b = MotLatency::derive(&Technology::lp65(), &fp, topo, &params, state).unwrap();
        println!(
            "{:<16} {:>10} {:>10}",
            state.to_string(),
            a.round_trip(),
            b.round_trip()
        );
    }
    Ok(())
}

/// Assembles the ad-hoc grid `sweep` and `trace` share from the parsed
/// axis options.
fn grid_plan(name: &str, ctx: &Ctx, opts: &Options) -> io::Result<ExperimentPlan> {
    let mut plan = ExperimentPlan::new(name)
        .scale(ctx.scale)
        .repeats(opts.repeats);
    if let Some(benches) = &opts.benches {
        plan = plan.splash(benches.iter().copied());
    }
    if let Some(ics) = &opts.interconnects {
        plan = plan.interconnects(ics.iter().copied());
    }
    if let Some(states) = &opts.power_states {
        plan = plan.power_states(states.iter().copied());
    }
    if let Some(drams) = &opts.drams {
        plan = plan.drams(drams.iter().copied());
    }
    if let Some(pages) = &opts.pages {
        plan = plan.page_policies(pages.iter().copied());
    }
    if let Err(msg) = plan.check() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
    }
    Ok(plan)
}

/// `mot3d sweep`: an ad-hoc declarative grid rendered through the
/// generic table sink. With `--trace <dir>` the grid runs serially with
/// the timeline tracer attached, one file per point.
fn sweep(ctx: &mut Ctx, opts: &Options) -> io::Result<()> {
    let plan = grid_plan("sweep", ctx, opts)?;
    let jobs = plan.len();
    let mut table = TableSink::new(io::stdout());
    if let Some(dir) = opts.trace.clone() {
        ctx.clamp_threads(1);
        eprintln!(
            "running sweep: {} runs at scale {} serially with tracing ...",
            jobs, ctx.scale.scale,
        );
        ctx.run_plan_traced(plan, Some("sweep"), true, Some(&mut table), &dir)?;
        eprintln!("trace files written to {dir}");
    } else {
        ctx.clamp_threads(jobs);
        eprintln!(
            "running sweep: {} runs at scale {} on {} threads ...",
            jobs, ctx.scale.scale, ctx.banner_threads,
        );
        ctx.run_plan(plan, Some("sweep"), true, Some(&mut table))?;
    }
    Ok(())
}

/// `mot3d trace`: a single-point deep dive — run one grid cell with the
/// timeline tracer attached and print where the trace landed.
fn trace_point(ctx: &mut Ctx, opts: &Options) -> io::Result<()> {
    let plan = grid_plan("trace", ctx, opts)?;
    if plan.len() != 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "`mot3d trace` is a single-point deep dive but these axes expand \
                 to {} runs; give one value per axis, or use \
                 `mot3d sweep --trace <dir>` to trace a grid",
                plan.len()
            ),
        ));
    }
    let dir = opts.trace.clone().unwrap_or_else(|| ".".to_string());
    ctx.clamp_threads(1);
    let records = ctx.run_plan_traced(plan, Some("trace"), false, None, &dir)?;
    let (record, path) = &records[0];
    eprintln!(
        "{}: {} cycles, {:.3} IPC",
        record.point.label(),
        record.metrics.cycles,
        record.derived.ipc,
    );
    println!("{}", path.display());
    eprintln!("open it at https://ui.perfetto.dev (or chrome://tracing)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot3d_noc::NocTopologyKind;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_canned_subcommands_with_common_flags() {
        let (cmd, opts) = parse(&argv("fig7 --scale 0.35 --threads 8 --json out.jsonl"))
            .ok()
            .unwrap();
        assert_eq!(cmd, Cmd::Fig7);
        assert_eq!(opts.scale.unwrap().scale, 0.35);
        assert_eq!(opts.threads, Some(8));
        assert_eq!(opts.json.as_deref(), Some("out.jsonl"));
    }

    #[test]
    fn parses_tiny_scale_keyword() {
        let (_, opts) = parse(&argv("all --scale tiny")).ok().unwrap();
        assert_eq!(opts.scale.unwrap(), ExperimentScale::tiny());
    }

    #[test]
    fn parses_sweep_axes() {
        let (cmd, opts) = parse(&argv(
            "sweep --bench fft,radix --interconnect mot3d,mesh --power-state full \
             --dram 200ns,42ns --page both --repeat 2",
        ))
        .ok()
        .unwrap();
        assert_eq!(cmd, Cmd::Sweep);
        assert_eq!(
            opts.benches.unwrap(),
            vec![SplashBenchmark::Fft, SplashBenchmark::Radix]
        );
        assert_eq!(
            opts.interconnects.unwrap(),
            vec![
                InterconnectChoice::Mot,
                InterconnectChoice::Noc(NocTopologyKind::Mesh3d)
            ]
        );
        assert_eq!(opts.power_states.unwrap(), vec![PowerState::full()]);
        assert_eq!(
            opts.drams.unwrap(),
            vec![DramKind::OffChipDdr3, DramKind::Weis3d]
        );
        assert_eq!(opts.pages.unwrap(), vec![false, true]);
        assert_eq!(opts.repeats, 2);
    }

    #[test]
    fn rejects_axis_flags_outside_sweep() {
        assert!(matches!(
            parse(&argv("fig7 --bench fft")),
            Err(UsageError::Bad(_))
        ));
    }

    #[test]
    fn parses_trace_deep_dive_and_traced_sweeps() {
        let (cmd, opts) = parse(&argv(
            "trace --bench fft --power-state pc16-mb8 --trace out/",
        ))
        .ok()
        .unwrap();
        assert_eq!(cmd, Cmd::Trace);
        assert_eq!(opts.benches.unwrap(), vec![SplashBenchmark::Fft]);
        assert_eq!(opts.trace.as_deref(), Some("out/"));

        let (cmd, opts) = parse(&argv("sweep --bench fft --trace traces"))
            .ok()
            .unwrap();
        assert_eq!(cmd, Cmd::Sweep);
        assert_eq!(opts.trace.as_deref(), Some("traces"));
        assert_eq!(max_jobs(Cmd::Trace), 1);
    }

    #[test]
    fn rejects_trace_dir_outside_sweep_and_trace() {
        assert!(matches!(
            parse(&argv("fig7 --trace out/")),
            Err(UsageError::Bad(_))
        ));
        assert!(matches!(
            parse(&argv("all --trace out/")),
            Err(UsageError::Bad(_))
        ));
    }

    #[test]
    fn rejects_record_sinks_on_analytic_commands() {
        for args in [
            "table1 --json out.jsonl",
            "fig5 --csv out.csv",
            "table1 --bench-json perf.json",
        ] {
            assert!(
                matches!(parse(&argv(args)), Err(UsageError::Bad(_))),
                "{args}"
            );
        }
        // …but simulating commands take them.
        assert!(parse(&argv("open-page --json out.jsonl")).is_ok());
    }

    #[test]
    fn banner_thread_clamp_tracks_each_commands_grid() {
        assert_eq!(max_jobs(Cmd::Fig6), 32);
        assert_eq!(max_jobs(Cmd::OpenPage), 16);
        assert_eq!(max_jobs(Cmd::Ablation), 16);
        assert_eq!(max_jobs(Cmd::Table1), 1);
    }

    #[test]
    fn rejects_unknown_commands_flags_and_values() {
        assert!(matches!(parse(&argv("fig9")), Err(UsageError::Bad(_))));
        assert!(matches!(
            parse(&argv("fig7 --wat 3")),
            Err(UsageError::Bad(_))
        ));
        assert!(matches!(
            parse(&argv("fig7 --scale nope")),
            Err(UsageError::Bad(_))
        ));
        assert!(matches!(
            parse(&argv("fig7 --threads 0")),
            Err(UsageError::Bad(_))
        ));
        assert!(matches!(
            parse(&argv("fig7 --scale")),
            Err(UsageError::Bad(_))
        ));
    }

    #[test]
    fn help_takes_priority() {
        assert!(matches!(parse(&argv("")), Err(UsageError::Help)));
        assert!(matches!(parse(&argv("help")), Err(UsageError::Help)));
        assert!(matches!(parse(&argv("fig7 --help")), Err(UsageError::Help)));
    }

    #[test]
    fn power_state_parser_accepts_generic_grid_points() {
        let states = axes::parse_power_states("full,pc8-mb16,PC4-MB8").unwrap();
        assert_eq!(states[0], PowerState::full());
        assert_eq!(states[1], PowerState::new(8, 16).unwrap());
        assert_eq!(states[2], PowerState::pc4_mb8());
    }

    #[test]
    fn dram_labels_match_the_legacy_renderer_strings() {
        assert_eq!(dram_label(DramKind::OffChipDdr3), "200 ns");
        assert_eq!(dram_label(DramKind::WideIo), "63 ns (Wide I/O)");
        assert_eq!(dram_label(DramKind::Weis3d), "42 ns (Weis 3-D)");
    }
}
