//! # mot3d-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§IV):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — architecture configuration incl. derived L2 latencies |
//! | `fig5`   | Fig. 5 — wire lengths per power state |
//! | `fig6`   | Fig. 6 — L2 access latency + execution time across the four interconnects |
//! | `fig7`   | Fig. 7 — EDP + execution time across the four power states @ 200 ns DRAM |
//! | `fig8`   | Fig. 8 — EDP across power states @ 63 ns and 42 ns DRAM |
//! | `all`    | everything above, in EXPERIMENTS.md-ready form |
//!
//! Run lengths scale with the `MOT3D_SCALE` environment variable
//! (fraction of the default instruction budget; default 0.35 ≈ 560 k
//! instructions per program — enough to pressure the L2 capacity axis).
//! Absolute numbers are not expected to match the paper (different
//! substrate); orderings, winners, and rough factors are (see
//! `EXPERIMENTS.md`).
//!
//! The simulation sweeps shard their independent runs across worker
//! threads ([`pool`]); set `MOT3D_THREADS` to bound the worker count
//! (default: available parallelism). Results are bit-identical for every
//! thread count.
//!
//! Set `MOT3D_BENCH_JSON=<path>` to have the `fig6`/`fig7`/`fig8`/`all`
//! binaries also write machine-readable per-sweep timings (wall-clock,
//! scale, thread count, table checksums — see [`perf`]) for the
//! perf-trajectory tracking described in the README.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod perf;
pub mod pool;
pub mod report;

pub use experiments::{
    fig5, fig6, fig7, fig7_at, open_page_at, table1, ExperimentScale, Fig5Row, Fig6Row, Fig7Row,
    OpenPageRow, Table1Row,
};
