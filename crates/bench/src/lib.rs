//! # mot3d-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§IV)
//! through one declarative pipeline: an [`plan::ExperimentPlan`] names
//! the sweep grid (workload × interconnect × power state × DRAM × page
//! policy × repeat), expands it to typed [`plan::RunPoint`]s, executes
//! them on the worker pool, and streams typed [`plan::RunRecord`]s
//! through any set of [`sink::RecordSink`]s (pretty table, JSON-lines,
//! CSV, perf tracker). The single `mot3d` binary ([`cli`]) fronts it
//! all:
//!
//! | subcommand | reproduces |
//! |------------|------------|
//! | `mot3d table1` | Table I — architecture configuration incl. derived L2 latencies |
//! | `mot3d fig5`   | Fig. 5 — wire lengths per power state |
//! | `mot3d fig6`   | Fig. 6 — L2 access latency + execution time across the four interconnects |
//! | `mot3d fig7`   | Fig. 7 — EDP + execution time across the four power states @ 200 ns DRAM |
//! | `mot3d fig8`   | Fig. 8 — EDP across power states @ 63 ns and 42 ns DRAM + open-page study |
//! | `mot3d open-page` | flat vs open-page DRAM timing (Full connection) |
//! | `mot3d ablation`  | sensitivity studies beyond the paper's figures |
//! | `mot3d all`    | everything above, in EXPERIMENTS.md-ready form |
//! | `mot3d sweep`  | any ad-hoc grid over the same axes |
//!
//! Run lengths scale with `--scale` (fraction of the default
//! instruction budget; default 0.35 ≈ 560 k instructions per program —
//! enough to pressure the L2 capacity axis; `--scale tiny` for smoke
//! runs). Absolute numbers are not expected to match the paper
//! (different substrate); orderings, winners, and rough factors are
//! (see `EXPERIMENTS.md`).
//!
//! The sweeps shard their independent runs across worker threads
//! ([`pool`]); `--threads` bounds the worker count (default: available
//! parallelism). Results are bit-identical for every thread count.
//!
//! `--json <path>` / `--csv <path>` attach machine-readable record
//! sinks; `--bench-json <path>` writes per-sweep perf timings
//! ([`perf`]) for the trajectory tracking described in the README. The
//! pre-CLI environment variables (`MOT3D_SCALE`, `MOT3D_THREADS`,
//! `MOT3D_BENCH_JSON`) remain supported as deprecated fallbacks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod axes;
pub mod cli;
pub mod experiments;
pub mod perf;
pub mod perfcheck;
pub mod plan;
pub mod pool;
pub mod report;
pub mod sink;

pub use experiments::{
    fig5, fig6, fig7, fig7_at, open_page_at, table1, ExperimentScale, Fig5Row, Fig6Row, Fig7Row,
    OpenPageRow, Table1Row,
};
pub use plan::{ExperimentPlan, RunPoint, RunRecord};
pub use sink::{CsvSink, JsonLinesSink, PerfSink, RecordSink, TableSink};
