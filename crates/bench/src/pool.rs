//! A minimal scoped-thread work-sharing pool for the experiment sweeps.
//!
//! The sweeps behind Fig. 6–8 are grids of completely independent
//! (interconnect × power state × workload) simulations — embarrassingly
//! parallel. This module shards such a grid across worker threads with a
//! shared atomic job counter (work stealing by construction: fast workers
//! simply take more cells), collects results in deterministic index
//! order, and streams per-job completions to an observer as they finish.
//!
//! Each worker thread keeps its own thread-local
//! [`mot3d_sim::runner::ClusterPool`] (via [`mot3d_sim::run_spec`]), so
//! repeated configurations within a worker reset a cached cluster
//! instead of rebuilding it.
//!
//! Worker count comes from the `MOT3D_THREADS` environment variable,
//! defaulting to the machine's available parallelism. Results are
//! bit-identical for every thread count, including 1.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Resolves the worker-thread count for `jobs` independent jobs:
/// `MOT3D_THREADS` if set (minimum 1), otherwise the machine's available
/// parallelism, never more than the number of jobs.
pub fn worker_threads(jobs: usize) -> usize {
    let configured = std::env::var("MOT3D_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t > 0);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    configured.unwrap_or(hw).min(jobs.max(1))
}

/// Runs `jobs` independent jobs `f(0..jobs)` across [`worker_threads`]
/// scoped threads and returns the results in index order (bit-identical
/// to `(0..jobs).map(f).collect()` for deterministic `f`).
///
/// # Panics
///
/// Propagates a panic from any job once all workers have stopped.
pub fn parallel_map<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_streamed(jobs, f, |_, _| {})
}

/// [`parallel_map`] that additionally calls `on_done(index, &result)` as
/// each job completes (in completion order, possibly concurrently from
/// several workers) — the streaming hook the experiment binaries use for
/// progress reporting.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have stopped.
pub fn parallel_map_streamed<T, F, C>(jobs: usize, f: F, on_done: C) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: Fn(usize, &T) + Sync,
{
    parallel_map_streamed_on(worker_threads(jobs), jobs, f, on_done)
}

/// [`parallel_map_streamed`] with an **explicit** worker count instead of
/// the `MOT3D_THREADS`/parallelism default — the hook that lets an
/// [`crate::plan::ExperimentPlan`] pin its thread count without touching
/// global state (and lets tests prove thread-count invariance without
/// racing on environment variables). `threads` is clamped to at least 1
/// and at most `jobs`.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have stopped.
pub fn parallel_map_streamed_on<T, F, C>(threads: usize, jobs: usize, f: F, on_done: C) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: Fn(usize, &T) + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    if threads <= 1 || jobs <= 1 {
        return (0..jobs)
            .map(|i| {
                let r = f(i);
                on_done(i, &r);
                r
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let r = f(i);
                on_done(i, &r);
                // Recover a poisoned slot vector: a panicking sibling
                // job never leaves a slot half-written (the assignment
                // below is the only mutation), and a long-running
                // caller wants the surviving jobs' results, not a
                // second panic.
                slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every job filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn handles_zero_and_one_job() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn streams_every_completion_exactly_once() {
        let seen = Mutex::new(vec![0u32; 32]);
        let out = parallel_map_streamed(
            32,
            |i| i,
            |i, r| {
                assert_eq!(i, *r);
                seen.lock().unwrap()[i] += 1;
            },
        );
        assert_eq!(out.len(), 32);
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn worker_threads_never_exceeds_jobs() {
        assert_eq!(worker_threads(1), 1);
        assert!(worker_threads(1000) >= 1);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let want: Vec<usize> = (0..48).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 7, 48, 500] {
            let got = parallel_map_streamed_on(threads, 48, |i| i * 3 + 1, |_, _| {});
            assert_eq!(got, want, "threads = {threads}");
        }
    }
}
