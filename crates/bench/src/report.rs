//! Table formatting for the experiment binaries.

use crate::experiments::{Fig5Row, Fig6Row, Fig7Row, OpenPageRow, Table1Row};
use std::fmt::Write as _;

/// Streams one sweep-progress line to stderr (the experiment binaries'
/// `progress` callback: rows appear as worker threads finish them).
pub fn stream_progress(done: usize, total: usize, label: &str) {
    eprintln!("  [{done:>2}/{total}] {label}");
}

/// Renders Table I.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I — derived L2 cache latencies (cycles @ 1 GHz)");
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>10} {:>8}",
        "state", "banks", "derived", "paper"
    );
    for r in rows {
        let mark = if r.latency_cycles == r.paper_cycles {
            "="
        } else {
            "!"
        };
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>10} {:>7}{}",
            r.state, r.banks, r.latency_cycles, r.paper_cycles, mark
        );
    }
    out
}

/// Renders Fig. 5.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 5 — wire lengths per power state");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>8} {:>12} {:>15}",
        "state", "longest(mm)", "z hops", "z span(µm)", "live wire(mm)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>12.2} {:>8} {:>12.1} {:>15.0}",
            r.state, r.horizontal_mm, r.vertical_hops, r.vertical_um, r.active_wire_mm
        );
    }
    out
}

/// Renders Fig. 6 (a) and (b).
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let names = ["3-D Mesh", "Bus-Mesh", "Bus-Tree", "3-D MoT"];
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 6(a) — mean L2 access latency (cycles)");
    let _ = write!(out, "{:<18}", "benchmark");
    for n in names {
        let _ = write!(out, "{n:>10}");
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<18}", r.bench);
        for v in r.l2_latency {
            let _ = write!(out, "{v:>10.1}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Fig. 6(b) — execution time (kcycles), DRAM 200 ns");
    let _ = write!(out, "{:<18}", "benchmark");
    for n in names {
        let _ = write!(out, "{n:>10}");
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<18}", r.bench);
        for v in r.exec_cycles {
            let _ = write!(out, "{:>10.0}", v as f64 / 1e3);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    let n = rows.len() as f64;
    for (i, base) in [
        "True 3-D Mesh",
        "3-D Hybrid Bus-Mesh",
        "3-D Hybrid Bus-Tree",
    ]
    .iter()
    .enumerate()
    {
        let mean: f64 = rows.iter().map(|r| r.mot_reduction_vs(i)).sum::<f64>() / n;
        let paper = [13.01, 11.16, 13.34][i];
        let _ = writeln!(
            out,
            "MoT mean execution-time reduction vs {base}: {mean:.2}% (paper: {paper}%)"
        );
    }
    out
}

/// Renders a Fig. 7-style power-state sweep (also used for Fig. 8).
pub fn render_fig7(rows: &[Fig7Row], dram: &str) -> String {
    let states = ["Full", "PC16-MB8", "PC4-MB32", "PC4-MB8"];
    let mut out = String::new();
    let _ = writeln!(out, "EDP normalised to Full connection, DRAM {dram}");
    let _ = write!(out, "{:<18}", "benchmark");
    for s in states {
        let _ = write!(out, "{s:>10}");
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<18}", r.bench);
        for i in 0..4 {
            let _ = write!(out, "{:>10.3}", r.edp[i] / r.edp[0]);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Execution time normalised to Full connection");
    let _ = write!(out, "{:<18}", "benchmark");
    for s in states {
        let _ = write!(out, "{s:>10}");
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<18}", r.bench);
        for i in 0..4 {
            let _ = write!(
                out,
                "{:>10.3}",
                r.exec_cycles[i] as f64 / r.exec_cycles[0] as f64
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the open-page DRAM sweep.
pub fn render_open_page(rows: &[OpenPageRow], dram: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Open-page DRAM vs flat latency (Full connection, DRAM {dram})"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>8} {:>11}",
        "benchmark", "flat", "open-page", "delta", "EDP ratio"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>7.1}% {:>11.3}",
            r.bench,
            r.flat_cycles,
            r.open_cycles,
            r.cycle_delta_percent(),
            r.open_edp / r.flat_edp,
        );
    }
    out
}

/// Renders the paper-claim summary lines for Fig. 7.
pub fn render_fig7_claims(rows: &[Fig7Row]) -> String {
    use crate::experiments::{group_max, group_mean};
    use mot3d_workloads::SplashBenchmark;
    let limited = SplashBenchmark::limited_scalability();
    let small = SplashBenchmark::small_l2_demand();
    let scalable = SplashBenchmark::scalable();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PC4-MB32 EDP reduction on limited-scalability group: mean {:.0}% / max {:.0}%  (paper: 44% / 66%)",
        group_mean(rows, &limited, |r| r.edp_reduction(2)),
        group_max(rows, &limited, |r| r.edp_reduction(2)),
    );
    let _ = writeln!(
        out,
        "PC16-MB8 EDP reduction on small-L2-demand group:     mean {:.0}% / max {:.0}%  (paper: 13% / 18%)",
        group_mean(rows, &small, |r| r.edp_reduction(1)),
        group_max(rows, &small, |r| r.edp_reduction(1)),
    );
    let _ = writeln!(
        out,
        "PC4-MB8 EDP reduction on limited-scalability group:  mean {:.0}% / max {:.0}%  (paper: 52% / 77%)",
        group_mean(rows, &limited, |r| r.edp_reduction(3)),
        group_max(rows, &limited, |r| r.edp_reduction(3)),
    );
    let _ = writeln!(
        out,
        "4→16-core execution-time reduction, limited group:   mean {:.0}% / max {:.0}%  (paper: 19% / 33%)",
        group_mean(rows, &limited, |r| r.scaling_reduction_4_to_16()),
        group_max(rows, &limited, |r| r.scaling_reduction_4_to_16()),
    );
    let _ = writeln!(
        out,
        "4→16-core execution-time reduction, scalable group:  mean {:.0}% / max {:.0}%  (paper: 64% / 69%)",
        group_mean(rows, &scalable, |r| r.scaling_reduction_4_to_16()),
        group_max(rows, &scalable, |r| r.scaling_reduction_4_to_16()),
    );
    let _ = writeln!(
        out,
        "PC16-MB8 execution-time increase, small-demand group: mean {:.1}% (paper: 4.7%, ≤8.6%)",
        group_mean(rows, &small, |r| r.time_increase(1)),
    );
    let large = [
        SplashBenchmark::Cholesky,
        SplashBenchmark::Radix,
        SplashBenchmark::OceanContiguous,
    ];
    let _ = writeln!(
        out,
        "PC16-MB8 execution-time increase, large-demand group: mean {:.0}% (paper: 24%, ≤31%)",
        group_mean(rows, &large, |r| r.time_increase(1)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rendering_marks_matches() {
        let rows = vec![Table1Row {
            state: "Full connection".into(),
            banks: 32,
            latency_cycles: 12,
            paper_cycles: 12,
        }];
        let s = render_table1(&rows);
        assert!(s.contains("Full connection"));
        assert!(s.contains("12="));
    }

    #[test]
    fn fig7_rendering_normalises_to_full() {
        let rows = vec![Fig7Row {
            bench: "fft".into(),
            edp: [2.0, 1.0, 1.0, 0.5],
            exec_cycles: [100, 110, 130, 140],
        }];
        let s = render_fig7(&rows, "200 ns");
        assert!(s.contains("fft"));
        assert!(s.contains("0.500")); // PC4-MB8 EDP ratio
        assert!(s.contains("1.400")); // PC4-MB8 time ratio
    }
}
