//! Regenerates Fig. 8: the power-state sweep at 63 ns and 42 ns DRAM,
//! plus the open-page DRAM refinement sweep (ROADMAP item).

use mot3d_bench::experiments::fig7_at_streamed;
use mot3d_bench::{open_page_at, report, ExperimentScale};
use mot3d_mem::dram::DramKind;

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "running Fig. 8 at scale {} on {} threads (MOT3D_SCALE / MOT3D_THREADS to change)...",
        scale.scale,
        mot3d_bench::experiments::sweep_threads(),
    );
    let at_63ns = fig7_at_streamed(scale, DramKind::WideIo, report::stream_progress);
    let at_42ns = fig7_at_streamed(scale, DramKind::Weis3d, report::stream_progress);
    print!("{}", report::render_fig7(&at_63ns, "63 ns (Wide I/O)"));
    println!();
    print!("{}", report::render_fig7(&at_42ns, "42 ns (Weis 3-D)"));
    println!();
    let open = open_page_at(scale, DramKind::OffChipDdr3);
    print!("{}", report::render_open_page(&open, "200 ns"));
}
