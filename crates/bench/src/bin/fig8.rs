//! Regenerates Fig. 8: the power-state sweep at 63 ns and 42 ns DRAM,
//! plus the open-page DRAM refinement sweep (ROADMAP item).

use std::time::Instant;

use mot3d_bench::experiments::fig7_at_streamed;
use mot3d_bench::perf::Recorder;
use mot3d_bench::{open_page_at, report, ExperimentScale};
use mot3d_mem::dram::DramKind;

fn main() {
    let scale = ExperimentScale::from_env();
    let threads = mot3d_bench::experiments::sweep_threads();
    eprintln!(
        "running Fig. 8 at scale {} on {} threads (MOT3D_SCALE / MOT3D_THREADS to change)...",
        scale.scale, threads,
    );
    let mut perf = Recorder::new(scale.scale, threads);

    let t0 = Instant::now();
    let at_63ns = fig7_at_streamed(scale, DramKind::WideIo, report::stream_progress);
    let wall_63 = t0.elapsed();
    let t0 = Instant::now();
    let at_42ns = fig7_at_streamed(scale, DramKind::Weis3d, report::stream_progress);
    let wall_42 = t0.elapsed();

    let table_63 = report::render_fig7(&at_63ns, "63 ns (Wide I/O)");
    print!("{table_63}");
    println!();
    let table_42 = report::render_fig7(&at_42ns, "42 ns (Weis 3-D)");
    print!("{table_42}");
    println!();

    let t0 = Instant::now();
    let open = open_page_at(scale, DramKind::OffChipDdr3);
    let wall_open = t0.elapsed();
    let table_open = report::render_open_page(&open, "200 ns");
    print!("{table_open}");

    perf.add("fig8@63ns", wall_63, at_63ns.len(), &table_63);
    perf.add("fig8@42ns", wall_42, at_42ns.len(), &table_42);
    perf.add("open_page@200ns", wall_open, open.len(), &table_open);
    perf.write_if_requested();
}
