//! Regenerates Fig. 8: the power-state sweep at 63 ns and 42 ns DRAM.

use mot3d_bench::{fig8, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "running Fig. 8 at scale {} (set MOT3D_SCALE to change)...",
        scale.scale
    );
    let r = fig8(scale);
    print!(
        "{}",
        mot3d_bench::report::render_fig7(&r.at_63ns, "63 ns (Wide I/O)")
    );
    println!();
    print!(
        "{}",
        mot3d_bench::report::render_fig7(&r.at_42ns, "42 ns (Weis 3-D)")
    );
}
