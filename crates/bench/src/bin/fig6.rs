//! Regenerates Fig. 6: the four-interconnect comparison.

use std::time::Instant;

use mot3d_bench::experiments::fig6_streamed;
use mot3d_bench::perf::Recorder;
use mot3d_bench::{report, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let threads = mot3d_bench::experiments::sweep_threads();
    eprintln!(
        "running Fig. 6 at scale {} on {} threads (MOT3D_SCALE / MOT3D_THREADS to change)...",
        scale.scale, threads,
    );
    let t0 = Instant::now();
    let rows = fig6_streamed(scale, report::stream_progress);
    let wall = t0.elapsed();
    let table = report::render_fig6(&rows);
    print!("{table}");

    let mut perf = Recorder::new(scale.scale, threads);
    perf.add("fig6", wall, rows.len(), &table);
    perf.write_if_requested();
}
