//! Regenerates Fig. 6: the four-interconnect comparison.

use mot3d_bench::{fig6, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "running Fig. 6 at scale {} (set MOT3D_SCALE to change)...",
        scale.scale
    );
    let rows = fig6(scale);
    print!("{}", mot3d_bench::report::render_fig6(&rows));
}
