//! Regenerates Fig. 6: the four-interconnect comparison.

use mot3d_bench::experiments::fig6_streamed;
use mot3d_bench::{report, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "running Fig. 6 at scale {} on {} threads (MOT3D_SCALE / MOT3D_THREADS to change)...",
        scale.scale,
        mot3d_bench::experiments::sweep_threads(),
    );
    let rows = fig6_streamed(scale, report::stream_progress);
    print!("{}", report::render_fig6(&rows));
}
