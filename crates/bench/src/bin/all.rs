//! Runs every experiment and prints an EXPERIMENTS.md-ready report.

use std::time::Instant;

use mot3d_bench::perf::Recorder;
use mot3d_bench::report;
use mot3d_bench::{fig5, fig6, fig7, fig7_at, open_page_at, table1, ExperimentScale};
use mot3d_mem::dram::DramKind;

fn main() {
    let scale = ExperimentScale::from_env();
    let threads = mot3d_bench::experiments::sweep_threads();
    eprintln!(
        "running all experiments at scale {} on {} threads ...",
        scale.scale, threads,
    );
    let mut perf = Recorder::new(scale.scale, threads);

    println!("== Table I ==");
    print!("{}", report::render_table1(&table1()));
    println!("\n== Fig. 5 ==");
    print!("{}", report::render_fig5(&fig5()));

    println!("\n== Fig. 6 ==");
    let t0 = Instant::now();
    let f6 = fig6(scale);
    let wall = t0.elapsed();
    let table = report::render_fig6(&f6);
    print!("{table}");
    perf.add("fig6", wall, f6.len(), &table);

    println!("\n== Fig. 7 (200 ns DRAM) ==");
    let t0 = Instant::now();
    let f7 = fig7(scale);
    let wall = t0.elapsed();
    let table = report::render_fig7(&f7, "200 ns");
    print!("{table}");
    println!();
    print!("{}", report::render_fig7_claims(&f7));
    perf.add("fig7@200ns", wall, f7.len(), &table);

    println!("\n== Fig. 8 ==");
    let t0 = Instant::now();
    let at_63ns = fig7_at(scale, DramKind::WideIo);
    let wall_63 = t0.elapsed();
    let t0 = Instant::now();
    let at_42ns = fig7_at(scale, DramKind::Weis3d);
    let wall_42 = t0.elapsed();
    let table_63 = report::render_fig7(&at_63ns, "63 ns (Wide I/O)");
    print!("{table_63}");
    println!();
    let table_42 = report::render_fig7(&at_42ns, "42 ns (Weis 3-D)");
    print!("{table_42}");
    println!();
    print!("{}", report::render_fig7_claims(&at_63ns));
    perf.add("fig8@63ns", wall_63, at_63ns.len(), &table_63);
    perf.add("fig8@42ns", wall_42, at_42ns.len(), &table_42);

    println!("\n== Open-page DRAM ==");
    let t0 = Instant::now();
    let open = open_page_at(scale, DramKind::OffChipDdr3);
    let wall = t0.elapsed();
    let table = report::render_open_page(&open, "200 ns");
    print!("{table}");
    perf.add("open_page@200ns", wall, open.len(), &table);

    perf.write_if_requested();
}
