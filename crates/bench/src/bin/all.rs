//! Runs every experiment and prints an EXPERIMENTS.md-ready report.

use mot3d_bench::report;
use mot3d_bench::{fig5, fig6, fig7, fig8, open_page_at, table1, ExperimentScale};
use mot3d_mem::dram::DramKind;

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "running all experiments at scale {} on {} threads ...",
        scale.scale,
        mot3d_bench::experiments::sweep_threads(),
    );
    println!("== Table I ==");
    print!("{}", report::render_table1(&table1()));
    println!("\n== Fig. 5 ==");
    print!("{}", report::render_fig5(&fig5()));
    println!("\n== Fig. 6 ==");
    print!("{}", report::render_fig6(&fig6(scale)));
    println!("\n== Fig. 7 (200 ns DRAM) ==");
    let f7 = fig7(scale);
    print!("{}", report::render_fig7(&f7, "200 ns"));
    println!();
    print!("{}", report::render_fig7_claims(&f7));
    println!("\n== Fig. 8 ==");
    let f8 = fig8(scale);
    print!("{}", report::render_fig7(&f8.at_63ns, "63 ns (Wide I/O)"));
    println!();
    print!("{}", report::render_fig7(&f8.at_42ns, "42 ns (Weis 3-D)"));
    println!();
    print!("{}", report::render_fig7_claims(&f8.at_63ns));
    println!("\n== Open-page DRAM ==");
    print!(
        "{}",
        report::render_open_page(&open_page_at(scale, DramKind::OffChipDdr3), "200 ns")
    );
}
