//! The unified `mot3d` experiment CLI — see [`mot3d_bench::cli`].
//!
//! ```sh
//! mot3d all --scale tiny --json bench.json
//! mot3d fig7 --scale 0.35 --threads 8
//! mot3d sweep --interconnect mot3d,mesh --dram all --csv grid.csv
//! ```

fn main() {
    std::process::exit(mot3d_bench::cli::run(std::env::args().skip(1)));
}
