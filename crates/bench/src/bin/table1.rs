//! Regenerates Table I's derived L2 latencies.

fn main() {
    let rows = mot3d_bench::table1();
    print!("{}", mot3d_bench::report::render_table1(&rows));
}
