//! Ablation studies beyond the paper's four figures (DESIGN.md §4):
//!
//! 1. **Power-state sweep** — the paper evaluates 4 of the many
//!    reachable (PCx, MBy) combinations; sweep the full power-of-two
//!    grid for one limited-scalability and one scalable program.
//! 2. **Open-page DRAM** — the paper assumes flat DRAM latency; how much
//!    does a 4 KB open-page policy change the picture?
//! 3. **Technology sensitivity** — derived MoT latencies on a slower
//!    65 nm-class node.

use mot3d_bench::ExperimentScale;
use mot3d_mot::latency::{MotLatency, MotTimingParams};
use mot3d_mot::topology::MotTopology;
use mot3d_mot::PowerState;
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::Technology;
use mot3d_sim::{run_benchmark, SimConfig};
use mot3d_workloads::SplashBenchmark;

fn main() {
    let scale = ExperimentScale::from_env();

    println!("== Ablation 1: full power-state grid (EDP normalised to Full) ==");
    for bench in [SplashBenchmark::Fft, SplashBenchmark::OceanContiguous] {
        println!("\n{bench}:");
        println!(
            "{:<12} {:>10} {:>12} {:>12}",
            "state", "cycles", "EDP ratio", "time ratio"
        );
        let full = run_benchmark(bench, scale.scale, &SimConfig::date16()).unwrap();
        for cores in [16usize, 8, 4] {
            for banks in [32usize, 16, 8] {
                let state = PowerState::new(cores, banks).unwrap();
                let cfg = SimConfig::date16().with_power_state(state);
                let m = run_benchmark(bench, scale.scale, &cfg).unwrap();
                println!(
                    "{:<12} {:>10} {:>12.3} {:>12.3}",
                    format!("PC{cores}-MB{banks}"),
                    m.cycles,
                    m.edp().value() / full.edp().value(),
                    m.cycles as f64 / full.cycles as f64,
                );
            }
        }
    }

    println!("\n== Ablation 2: flat vs open-page DRAM (Full connection) ==");
    print!(
        "{}",
        mot3d_bench::report::render_open_page(
            &mot3d_bench::open_page_at(scale, mot3d_mem::dram::DramKind::OffChipDdr3),
            "200 ns"
        )
    );

    println!("\n== Ablation 3: derived MoT latency by technology node ==");
    println!("{:<16} {:>10} {:>10}", "state", "45nm-LP", "65nm-LP");
    let fp = Floorplan::date16();
    let topo = MotTopology::date16();
    let params = MotTimingParams::default();
    for state in PowerState::date16_states() {
        let a = MotLatency::derive(&Technology::lp45(), &fp, topo, &params, state).unwrap();
        let b = MotLatency::derive(&Technology::lp65(), &fp, topo, &params, state).unwrap();
        println!(
            "{:<16} {:>10} {:>10}",
            state.to_string(),
            a.round_trip(),
            b.round_trip()
        );
    }
}
