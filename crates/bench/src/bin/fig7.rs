//! Regenerates Fig. 7: EDP and execution time across power states @ 200 ns.

use mot3d_bench::experiments::fig7_at_streamed;
use mot3d_bench::{report, ExperimentScale};
use mot3d_mem::dram::DramKind;

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "running Fig. 7 at scale {} on {} threads (MOT3D_SCALE / MOT3D_THREADS to change)...",
        scale.scale,
        mot3d_bench::experiments::sweep_threads(),
    );
    let rows = fig7_at_streamed(scale, DramKind::OffChipDdr3, report::stream_progress);
    print!("{}", report::render_fig7(&rows, "200 ns"));
    println!();
    print!("{}", report::render_fig7_claims(&rows));
}
