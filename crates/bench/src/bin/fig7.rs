//! Regenerates Fig. 7: EDP and execution time across power states @ 200 ns.

use mot3d_bench::{fig7, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "running Fig. 7 at scale {} (set MOT3D_SCALE to change)...",
        scale.scale
    );
    let rows = fig7(scale);
    print!("{}", mot3d_bench::report::render_fig7(&rows, "200 ns"));
    println!();
    print!("{}", mot3d_bench::report::render_fig7_claims(&rows));
}
