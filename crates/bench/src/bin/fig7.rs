//! Regenerates Fig. 7: EDP and execution time across power states @ 200 ns.

use std::time::Instant;

use mot3d_bench::experiments::fig7_at_streamed;
use mot3d_bench::perf::Recorder;
use mot3d_bench::{report, ExperimentScale};
use mot3d_mem::dram::DramKind;

fn main() {
    let scale = ExperimentScale::from_env();
    let threads = mot3d_bench::experiments::sweep_threads();
    eprintln!(
        "running Fig. 7 at scale {} on {} threads (MOT3D_SCALE / MOT3D_THREADS to change)...",
        scale.scale, threads,
    );
    let t0 = Instant::now();
    let rows = fig7_at_streamed(scale, DramKind::OffChipDdr3, report::stream_progress);
    let wall = t0.elapsed();
    let table = report::render_fig7(&rows, "200 ns");
    print!("{table}");
    println!();
    print!("{}", report::render_fig7_claims(&rows));

    let mut perf = Recorder::new(scale.scale, threads);
    perf.add("fig7@200ns", wall, rows.len(), &table);
    perf.write_if_requested();
}
