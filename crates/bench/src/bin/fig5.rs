//! Regenerates Fig. 5's wire-length comparison.

fn main() {
    let rows = mot3d_bench::fig5();
    print!("{}", mot3d_bench::report::render_fig5(&rows));
}
