//! `mot3d perf check` — regression gate against a committed perf
//! baseline.
//!
//! [`crate::perf::Recorder`] documents (`BENCH_results.json`) pin two
//! things per sweep: an FNV-1a checksum of the record stream (*what*
//! was computed) and the wall-clock time (*how fast*). This module
//! closes the loop: it re-runs every sweep named in a committed
//! baseline at the baseline's scale and compares both.
//!
//! * A **checksum or row-count mismatch always fails** — the code now
//!   computes different results than the commit that wrote the
//!   baseline, which is either an unrefreshed baseline or a silent
//!   determinism break.
//! * A **wall-clock regression** beyond the tolerance (default 25 %)
//!   fails unless `--checksum-only` is set. CI's smoke job runs
//!   checksum-only at tiny scale — wall time on shared runners is
//!   noise, but bit-identical reruns are not negotiable.
//!
//! The baseline parser is deliberately minimal: it reads the flat
//! schema-1 documents [`crate::perf::Recorder::to_json`] writes (and
//! nothing more general), keeping the build offline and free of a JSON
//! dependency.

use crate::experiments::ExperimentScale;
use crate::perf::{Recorder, SweepRecord};
use crate::plan::ExperimentPlan;
use crate::sink::{PerfSink, RecordSink};
use mot3d_mem::dram::DramKind;

/// A parsed `BENCH_results.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Run-length factor the baseline was recorded at.
    pub scale: f64,
    /// Worker threads the baseline was recorded with.
    pub threads: usize,
    /// The recorded sweeps.
    pub sweeps: Vec<SweepRecord>,
}

/// Parses a schema-1 perf document (as written by
/// [`Recorder::to_json`]).
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let schema = extract_num(text, "schema").ok_or("missing \"schema\"")?;
    if schema != 1.0 {
        return Err(format!("unsupported schema {schema} (expected 1)"));
    }
    let scale = extract_num(text, "scale").ok_or("missing \"scale\"")?;
    let threads = extract_num(text, "threads").ok_or("missing \"threads\"")? as usize;
    let array = text
        .find("\"sweeps\"")
        .and_then(|i| {
            let open = text[i..].find('[')? + i;
            let close = text[open..].find(']')? + open;
            Some(&text[open + 1..close])
        })
        .ok_or("missing \"sweeps\" array")?;
    let mut sweeps = Vec::new();
    for obj in split_objects(array) {
        sweeps.push(SweepRecord {
            name: extract_str(obj, "name").ok_or("sweep without \"name\"")?,
            wall_s: extract_num(obj, "wall_s").ok_or("sweep without \"wall_s\"")?,
            rows: extract_num(obj, "rows").ok_or("sweep without \"rows\"")? as usize,
            checksum: extract_str(obj, "checksum").ok_or("sweep without \"checksum\"")?,
        });
    }
    if sweeps.is_empty() {
        return Err("baseline records no sweeps".to_string());
    }
    Ok(Baseline {
        scale,
        threads,
        sweeps,
    })
}

/// Top-level `{…}` object slices inside an array body (no nested
/// objects or braces-in-strings in this schema, so depth counting is
/// exact).
fn split_objects(array: &str) -> Vec<&str> {
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in array.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    objects.push(&array[start..=i]);
                }
            }
            _ => {}
        }
    }
    objects
}

fn extract_num(text: &str, key: &str) -> Option<f64> {
    let rest = after_key(text, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_str(text: &str, key: &str) -> Option<String> {
    let rest = after_key(text, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn after_key<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let pat = format!("\"{key}\":");
    let idx = text.find(&pat)? + pat.len();
    Some(text[idx..].trim_start())
}

/// The canned plan a baseline sweep name corresponds to, or `None` for
/// names `perf check` cannot regenerate (ad-hoc sweeps).
pub fn plan_for(name: &str, scale: ExperimentScale) -> Option<ExperimentPlan> {
    match name {
        "fig6" => Some(ExperimentPlan::fig6(scale)),
        "fig7@200ns" => Some(ExperimentPlan::fig7(scale)),
        "fig8@63ns" => Some(ExperimentPlan::fig8_at(scale, DramKind::WideIo)),
        "fig8@42ns" => Some(ExperimentPlan::fig8_at(scale, DramKind::Weis3d)),
        "open_page@200ns" => Some(ExperimentPlan::open_page_at(scale, DramKind::OffChipDdr3)),
        _ => None,
    }
}

/// Options for `mot3d perf check`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOptions {
    /// Baseline document path (default `BENCH_results.json`).
    pub against: String,
    /// Compare only checksums/rows, never wall-clock (the CI smoke
    /// setting — runner timing is noise, determinism is not).
    pub checksum_only: bool,
    /// Allowed wall-clock growth in percent (default 25).
    pub max_regress_pct: f64,
    /// Worker-thread override; defaults to the baseline's count so
    /// wall times stay comparable.
    pub threads: Option<usize>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            against: "BENCH_results.json".to_string(),
            checksum_only: false,
            max_regress_pct: 25.0,
            threads: None,
        }
    }
}

/// The outcome of one sweep comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Sweep name.
    pub name: String,
    /// Baseline record.
    pub baseline: SweepRecord,
    /// Fresh re-run record, or `None` when the name maps to no plan.
    pub fresh: Option<SweepRecord>,
    /// Failure description, or `None` when the sweep passed.
    pub failure: Option<String>,
}

/// Re-runs every baseline sweep and compares. Pure in-memory variant
/// of the CLI (shared with tests); emits nothing.
///
/// # Errors
///
/// Propagates sink I/O errors from plan execution (none occur with the
/// in-memory perf sink in practice).
pub fn check(baseline: &Baseline, opts: &CheckOptions) -> std::io::Result<Vec<SweepOutcome>> {
    let scale = ExperimentScale {
        scale: baseline.scale,
        ..ExperimentScale::default()
    };
    let threads = opts.threads.unwrap_or(baseline.threads).max(1);
    let mut outcomes = Vec::new();
    for base in &baseline.sweeps {
        let Some(plan) = plan_for(&base.name, scale) else {
            outcomes.push(SweepOutcome {
                name: base.name.clone(),
                baseline: base.clone(),
                fresh: None,
                failure: Some(format!(
                    "no canned plan regenerates sweep {:?}; refresh the baseline \
                     from `mot3d all --bench-json`",
                    base.name
                )),
            });
            continue;
        };
        let mut recorder = Recorder::new(baseline.scale, threads);
        {
            let mut perf = PerfSink::new(&mut recorder, base.name.clone());
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut perf];
            plan.threads(threads).run_with(&mut sinks, |_, _, _| {})?;
        }
        let fresh = recorder.sweeps().last().cloned();
        let failure = fresh.as_ref().and_then(|f| judge(base, f, opts));
        outcomes.push(SweepOutcome {
            name: base.name.clone(),
            baseline: base.clone(),
            fresh,
            failure,
        });
    }
    Ok(outcomes)
}

/// Compares one fresh record against its baseline.
fn judge(base: &SweepRecord, fresh: &SweepRecord, opts: &CheckOptions) -> Option<String> {
    if fresh.checksum != base.checksum {
        return Some(format!(
            "checksum {} != baseline {} (results changed — refresh the baseline \
             if intentional)",
            fresh.checksum, base.checksum
        ));
    }
    if fresh.rows != base.rows {
        return Some(format!("rows {} != baseline {}", fresh.rows, base.rows));
    }
    if !opts.checksum_only {
        let limit = base.wall_s * (1.0 + opts.max_regress_pct / 100.0);
        if fresh.wall_s > limit {
            return Some(format!(
                "wall {:.3}s exceeds baseline {:.3}s + {:.0}% tolerance",
                fresh.wall_s, base.wall_s, opts.max_regress_pct
            ));
        }
    }
    None
}

fn usage() -> String {
    "\
mot3d perf check — compare a fresh run against a committed perf baseline

USAGE: mot3d perf check [--against <path>] [--checksum-only]
                        [--max-regress <pct>] [--threads <n>]

  --against <path>    baseline document (default BENCH_results.json)
  --checksum-only     ignore wall-clock; fail only on result changes
                      (the CI setting — runner timing is noise)
  --max-regress <pct> allowed wall-clock growth, default 25
  --threads <n>       worker threads (default: the baseline's count,
                      so wall times stay comparable)

Re-runs every sweep the baseline names at the baseline's scale. Exits 1
on any checksum/row mismatch or (unless --checksum-only) wall-clock
regression; 2 on usage or I/O errors."
        .to_string()
}

/// How `perf …` argument parsing can decline to produce options.
#[derive(Debug, PartialEq, Eq)]
pub enum PerfUsage {
    /// Help was requested explicitly (exit 0).
    Help,
    /// The arguments were wrong (exit 2).
    Bad(String),
}

impl<S: Into<String>> From<S> for PerfUsage {
    fn from(msg: S) -> Self {
        PerfUsage::Bad(msg.into())
    }
}

/// Parses `perf …` arguments (everything after the `perf` word).
///
/// # Errors
///
/// [`PerfUsage::Help`] when help was asked for, [`PerfUsage::Bad`] with
/// a message on unknown subcommands/flags or bad values.
pub fn parse_args(args: &[String]) -> Result<CheckOptions, PerfUsage> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") | Some("help") => return Err(PerfUsage::Help),
        None => return Err(PerfUsage::Bad(usage())),
        Some(other) => {
            return Err(PerfUsage::Bad(format!(
                "unknown perf subcommand {other:?}\n\n{}",
                usage()
            )));
        }
    }
    let mut opts = CheckOptions::default();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--checksum-only" => opts.checksum_only = true,
            "--against" => {
                opts.against = it.next().ok_or("--against needs a path")?.clone();
            }
            "--max-regress" => {
                let v = it.next().ok_or("--max-regress needs a percentage")?;
                opts.max_regress_pct = v
                    .parse()
                    .ok()
                    .filter(|p: &f64| p.is_finite() && *p >= 0.0)
                    .ok_or_else(|| {
                        format!("--max-regress needs a non-negative percent, got {v:?}")
                    })?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                let t: usize = v
                    .parse()
                    .ok()
                    .filter(|&t| t > 0)
                    .ok_or_else(|| format!("--threads needs a positive integer, got {v:?}"))?;
                opts.threads = Some(t);
            }
            "--help" | "-h" => return Err(PerfUsage::Help),
            other => {
                return Err(PerfUsage::Bad(format!(
                    "unknown option {other:?}\n\n{}",
                    usage()
                )));
            }
        }
    }
    Ok(opts)
}

/// Entry point for `mot3d perf …`. Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(PerfUsage::Help) => {
            println!("{}", usage());
            return 0;
        }
        Err(PerfUsage::Bad(msg)) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let text = match std::fs::read_to_string(&opts.against) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mot3d perf check: cannot read {}: {e}", opts.against);
            return 2;
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("mot3d perf check: {}: {msg}", opts.against);
            return 2;
        }
    };
    eprintln!(
        "perf check: re-running {} sweep{} at scale {} against {} ...",
        baseline.sweeps.len(),
        if baseline.sweeps.len() == 1 { "" } else { "s" },
        baseline.scale,
        opts.against
    );
    let outcomes = match check(&baseline, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mot3d perf check: {e}");
            return 2;
        }
    };
    let mut failed = 0usize;
    for o in &outcomes {
        match (&o.failure, &o.fresh) {
            (None, Some(f)) => {
                let wall = if opts.checksum_only || f.wall_s <= 0.0 {
                    String::new()
                } else {
                    format!(
                        " {:.2}s -> {:.2}s ({:.2}x)",
                        o.baseline.wall_s,
                        f.wall_s,
                        o.baseline.wall_s / f.wall_s
                    )
                };
                println!("ok   {}: checksum {}{wall}", o.name, f.checksum);
            }
            (Some(why), _) => {
                failed += 1;
                println!("FAIL {}: {why}", o.name);
            }
            (None, None) => unreachable!("no failure recorded without a fresh run"),
        }
    }
    println!(
        "perf check: {} of {} sweeps match {}",
        outcomes.len() - failed,
        outcomes.len(),
        opts.against
    );
    if failed > 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn doc() -> String {
        let mut rec = Recorder::new(0.004, 2);
        rec.add_raw("fig6", Duration::from_millis(250), 32, 0xdead_beef);
        rec.add_raw("open_page@200ns", Duration::from_millis(90), 16, 0x1234);
        rec.to_json()
    }

    #[test]
    fn parses_recorder_documents_round_trip() {
        let b = parse_baseline(&doc()).unwrap();
        assert_eq!(b.scale, 0.004);
        assert_eq!(b.threads, 2);
        assert_eq!(b.sweeps.len(), 2);
        assert_eq!(b.sweeps[0].name, "fig6");
        assert_eq!(b.sweeps[0].rows, 32);
        assert_eq!(b.sweeps[0].checksum, format!("{:016x}", 0xdead_beefu64));
        assert_eq!(b.sweeps[1].name, "open_page@200ns");
        assert!((b.sweeps[0].wall_s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": 2, \"scale\": 1, \"threads\": 1}").is_err());
        let empty = "{\"schema\": 1, \"scale\": 1, \"threads\": 1, \"sweeps\": []}";
        assert!(parse_baseline(empty).is_err());
    }

    #[test]
    fn judge_flags_each_failure_mode() {
        let base = SweepRecord {
            name: "fig6".into(),
            wall_s: 1.0,
            rows: 32,
            checksum: "aa".into(),
        };
        let opts = CheckOptions::default();
        let ok = SweepRecord {
            wall_s: 1.2,
            ..base.clone()
        };
        assert_eq!(judge(&base, &ok, &opts), None);
        let wrong_sum = SweepRecord {
            checksum: "bb".into(),
            ..base.clone()
        };
        assert!(judge(&base, &wrong_sum, &opts)
            .unwrap()
            .contains("checksum"));
        let wrong_rows = SweepRecord {
            rows: 8,
            ..base.clone()
        };
        assert!(judge(&base, &wrong_rows, &opts).unwrap().contains("rows"));
        let slow = SweepRecord {
            wall_s: 1.3,
            ..base.clone()
        };
        assert!(judge(&base, &slow, &opts).unwrap().contains("wall"));
        let lenient = CheckOptions {
            checksum_only: true,
            ..CheckOptions::default()
        };
        assert_eq!(judge(&base, &slow, &lenient), None);
    }

    #[test]
    fn canned_names_map_to_plans_and_unknown_names_fail() {
        let scale = ExperimentScale::tiny();
        for name in [
            "fig6",
            "fig7@200ns",
            "fig8@63ns",
            "fig8@42ns",
            "open_page@200ns",
        ] {
            assert!(plan_for(name, scale).is_some(), "{name}");
        }
        assert!(plan_for("sweep", scale).is_none());
    }

    #[test]
    fn args_parse_all_forms() {
        let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        let o = parse_args(&argv(
            "check --against b.json --checksum-only --max-regress 10 --threads 2",
        ))
        .unwrap();
        assert_eq!(o.against, "b.json");
        assert!(o.checksum_only);
        assert_eq!(o.max_regress_pct, 10.0);
        assert_eq!(o.threads, Some(2));
        assert_eq!(parse_args(&argv("check")).unwrap(), CheckOptions::default());
        assert!(parse_args(&argv("chekc")).is_err());
        assert!(parse_args(&argv("check --max-regress -3")).is_err());
        assert!(parse_args(&argv("check --threads 0")).is_err());
    }

    #[test]
    fn tiny_check_detects_matches_and_mismatches_end_to_end() {
        // Record a genuine tiny baseline in memory, then check against
        // it: everything must match. Corrupt a checksum: must fail.
        let scale = ExperimentScale::tiny();
        let mut rec = Recorder::new(scale.scale, 1);
        {
            let mut perf = PerfSink::new(&mut rec, "open_page@200ns");
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut perf];
            plan_for("open_page@200ns", scale)
                .unwrap()
                .threads(1)
                .run_with(&mut sinks, |_, _, _| {})
                .unwrap();
        }
        let baseline = Baseline {
            scale: scale.scale,
            threads: 1,
            sweeps: rec.sweeps().to_vec(),
        };
        let opts = CheckOptions {
            checksum_only: true,
            ..CheckOptions::default()
        };
        let outcomes = check(&baseline, &opts).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].failure, None, "{:?}", outcomes[0]);

        let mut corrupted = baseline;
        corrupted.sweeps[0].checksum = "0000000000000000".into();
        let outcomes = check(&corrupted, &opts).unwrap();
        assert!(outcomes[0].failure.as_ref().unwrap().contains("checksum"));
    }
}
