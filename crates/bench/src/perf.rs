//! Machine-readable performance tracking (`MOT3D_BENCH_JSON`).
//!
//! The experiment binaries time every sweep they run; when the
//! `MOT3D_BENCH_JSON` environment variable names a path, they write a
//! small JSON document there — per-sweep wall-clock, run scale, worker
//! thread count, and an FNV-1a checksum of each rendered table. The
//! checksum pins *what* was computed (bit-identical tables hash equal),
//! so a perf trajectory assembled from these files can tell a genuine
//! regression apart from a workload change. CI uploads the file as an
//! artifact; see README "Performance".
//!
//! No external dependencies: the JSON is assembled by hand (the schema
//! is flat), keeping the offline build self-contained.

use std::fmt::Write as _;
use std::time::Duration;

/// One timed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Sweep name, e.g. `fig7@200ns`.
    pub name: String,
    /// Wall-clock seconds the sweep took.
    pub wall_s: f64,
    /// Result rows produced.
    pub rows: usize,
    /// FNV-1a 64-bit hex checksum of the rendered table.
    pub checksum: String,
}

/// Collects [`SweepRecord`]s and writes the `BENCH_results.json`
/// document on request.
///
/// # Examples
///
/// ```
/// use mot3d_bench::perf::Recorder;
/// use std::time::Duration;
///
/// let mut rec = Recorder::new(0.35, 4);
/// rec.add("fig7@200ns", Duration::from_millis(1860), 8, "table text");
/// let json = rec.to_json();
/// assert!(json.contains("\"fig7@200ns\""));
/// assert!(json.contains("\"threads\": 4"));
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    scale: f64,
    threads: usize,
    sweeps: Vec<SweepRecord>,
}

impl Recorder {
    /// A recorder for a run at `scale` on `threads` workers.
    pub fn new(scale: f64, threads: usize) -> Self {
        Recorder {
            scale,
            threads,
            sweeps: Vec::new(),
        }
    }

    /// Corrects the recorded worker count once the actual job count is
    /// known (an ad-hoc sweep's parallelism depends on its grid size,
    /// which is only resolved after the recorder is created).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Records one finished sweep: its wall-clock time, row count, and
    /// the rendered table it produced (checksummed, not stored).
    pub fn add(&mut self, name: &str, wall: Duration, rows: usize, rendered_table: &str) {
        self.add_raw(name, wall, rows, fnv1a64(rendered_table.as_bytes()));
    }

    /// [`Recorder::add`] with a precomputed FNV-1a checksum — used by
    /// [`crate::sink::PerfSink`], which folds the checksum incrementally
    /// over the record stream instead of a rendered table.
    pub fn add_raw(&mut self, name: &str, wall: Duration, rows: usize, checksum: u64) {
        self.sweeps.push(SweepRecord {
            name: name.to_string(),
            wall_s: wall.as_secs_f64(),
            rows,
            checksum: format!("{checksum:016x}"),
        });
    }

    /// The sweeps recorded so far.
    pub fn sweeps(&self) -> &[SweepRecord] {
        &self.sweeps
    }

    /// Renders the JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"sweeps\": [");
        for (i, s) in self.sweeps.iter().enumerate() {
            let comma = if i + 1 < self.sweeps.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"wall_s\": {:.6}, \"rows\": {}, \"checksum\": \"{}\"}}{}",
                json_string(&s.name),
                s.wall_s,
                s.rows,
                s.checksum,
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes the JSON to the path named by `MOT3D_BENCH_JSON`, if set.
    /// Returns the path written, or `None` when the variable is unset.
    /// I/O errors are reported to stderr but never fail the run — perf
    /// tracking must not break result generation.
    pub fn write_if_requested(&self) -> Option<String> {
        let path = std::env::var("MOT3D_BENCH_JSON").ok()?;
        if path.is_empty() {
            return None;
        }
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                eprintln!("bench results written to {path}");
                Some(path)
            }
            Err(e) => {
                eprintln!("could not write MOT3D_BENCH_JSON={path}: {e}");
                None
            }
        }
    }
}

/// The FNV-1a 64-bit offset basis (re-exported from the workspace's
/// single FNV implementation in `mot3d_phys::fnv`, which the
/// deterministic hash collections also use).
pub(crate) use mot3d_phys::fnv::{fnv1a64_fold, FNV_OFFSET};

/// FNV-1a over bytes: tiny, dependency-free, stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(FNV_OFFSET, bytes)
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn identical_tables_hash_equal_different_tables_do_not() {
        let mut a = Recorder::new(0.35, 1);
        a.add("x", Duration::from_secs(1), 8, "table");
        let mut b = Recorder::new(0.35, 1);
        b.add("x", Duration::from_secs(2), 8, "table"); // time differs
        assert_eq!(a.sweeps()[0].checksum, b.sweeps()[0].checksum);
        let mut c = Recorder::new(0.35, 1);
        c.add("x", Duration::from_secs(1), 8, "other table");
        assert_ne!(a.sweeps()[0].checksum, c.sweeps()[0].checksum);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut rec = Recorder::new(0.004, 4);
        rec.add("fig6", Duration::from_millis(120), 8, "t1");
        rec.add("fig7@200ns", Duration::from_millis(340), 8, "t2");
        let json = rec.to_json();
        // Flat schema: balanced braces/brackets, all fields present.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"schema\": 1",
            "\"scale\": 0.004",
            "\"threads\": 4",
            "\"fig6\"",
            "\"fig7@200ns\"",
            "\"rows\": 8",
            "\"checksum\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Exactly one trailing comma between the two sweep objects.
        assert_eq!(
            json.matches("}},").count() + json.matches("\"}},").count(),
            0
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn unset_env_writes_nothing() {
        // (Cannot set the var here without racing parallel tests; the
        // unset path must simply return None.)
        let rec = Recorder::new(1.0, 1);
        if std::env::var("MOT3D_BENCH_JSON").is_err() {
            assert_eq!(rec.write_if_requested(), None);
        }
    }
}
