//! Declarative experiment plans.
//!
//! The paper's evaluation is one family of sweeps over the same axes —
//! interconnect × power state × DRAM option × page policy × workload —
//! and this module makes that grid first-class data instead of a set of
//! hardcoded per-figure functions. An [`ExperimentPlan`] names a value
//! list per axis plus a length scale and repeat count; [`points`]
//! expands it to an ordered list of typed [`RunPoint`]s;
//! [`ExperimentPlan::run_with`] executes the points on the existing
//! worker-thread pool (each worker reusing clusters through
//! [`mot3d_sim::runner::ClusterPool`]) and streams one typed
//! [`RunRecord`] per finished point — in deterministic expansion order,
//! whatever the thread count — through any number of
//! [`RecordSink`](crate::sink::RecordSink)s.
//!
//! The canned constructors ([`ExperimentPlan::fig6`],
//! [`ExperimentPlan::fig7`], …) reproduce the paper's figures: their
//! expansion order matches the legacy per-figure sweep loops cell for
//! cell, so the assembled tables are byte-identical (enforced by
//! `tests/plan_equivalence.rs`).
//!
//! [`points`]: ExperimentPlan::points
//!
//! # Examples
//!
//! ```
//! use mot3d_bench::plan::ExperimentPlan;
//! use mot3d_bench::ExperimentScale;
//! use mot3d_workloads::SplashBenchmark;
//!
//! // fft under both DRAM page policies, two tiny runs in total.
//! let records = ExperimentPlan::new("demo")
//!     .splash([SplashBenchmark::Fft])
//!     .page_policies([false, true])
//!     .scale(ExperimentScale::tiny())
//!     .threads(1)
//!     .run()?;
//! assert_eq!(records.len(), 2);
//! assert!(records[0].metrics.cycles > 0);
//! assert!(records[1].point.config.dram_open_page);
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::experiments::ExperimentScale;
use crate::pool;
use crate::sink::{PlanMeta, RecordSink};
use mot3d_mem::dram::DramKind;
use mot3d_mot::PowerState;
use mot3d_sim::{run_spec, InterconnectChoice, Metrics, SimConfig};
use mot3d_workloads::{SplashBenchmark, WorkloadSource, WorkloadSpec};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One fully-resolved cell of a plan's sweep grid: the concrete workload
/// spec and simulator configuration of a single run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPoint {
    /// Position in the plan's expansion order (also the record order
    /// every sink observes).
    pub index: usize,
    /// Workload display name (from [`WorkloadSource::source_name`]).
    pub workload: String,
    /// The resolved, already-scaled workload spec.
    pub spec: WorkloadSpec,
    /// The full simulator configuration of this run.
    pub config: SimConfig,
    /// Repeat number, `0..repeats` (each repeat reseeds the streams).
    pub repeat: u32,
}

impl RunPoint {
    /// Human-readable cell label for progress lines.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{} @ {} @ {} @ {}",
            self.workload, self.config.interconnect, self.config.power_state, self.config.dram
        );
        if self.config.dram_open_page {
            s.push_str(" @ open-page");
        }
        if self.repeat > 0 {
            s.push_str(&format!(" #{}", self.repeat));
        }
        s
    }
}

/// Metrics-derived scalars every sink row carries, precomputed so sinks
/// stay formatting-only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Derived {
    /// Energy-delay product in J·s (the paper's Fig. 7/8 metric).
    pub edp_js: f64,
    /// Mean round-trip L2 access latency in cycles (Fig. 6(a)).
    pub l2_latency_mean: f64,
    /// Instructions per cycle over the run.
    pub ipc: f64,
    /// Total cluster energy in J.
    pub energy_j: f64,
}

/// One finished run: the point that was executed, the full metrics, and
/// the derived scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The grid cell this record answers.
    pub point: RunPoint,
    /// The simulator's full metrics for the run.
    pub metrics: Metrics,
    /// Precomputed derived scalars (EDP, mean L2 latency, IPC, energy).
    pub derived: Derived,
}

impl RunRecord {
    /// Builds a record from a finished run, computing the derived
    /// scalars.
    pub fn new(point: RunPoint, metrics: Metrics) -> Self {
        let derived = Derived {
            edp_js: metrics.edp().value(),
            l2_latency_mean: metrics.l2_latency.mean(),
            ipc: metrics.ipc(),
            energy_j: metrics.energy.cluster().value(),
        };
        RunRecord {
            point,
            metrics,
            derived,
        }
    }
}

/// A declarative sweep: value lists for every experiment axis, expanded
/// to [`RunPoint`]s and executed on the worker pool. See the
/// [module docs](self) for the full picture and an example.
///
/// Expansion order nests the axes workload-outermost:
/// `workload → interconnect → power state → DRAM → page policy → repeat`.
/// The canned figure constructors rely on this order matching the legacy
/// sweep loops.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    name: String,
    workloads: Vec<Arc<dyn WorkloadSource>>,
    interconnects: Vec<InterconnectChoice>,
    power_states: Vec<PowerState>,
    drams: Vec<DramKind>,
    page_policies: Vec<bool>,
    scale: ExperimentScale,
    repeats: u32,
    threads: Option<usize>,
}

impl ExperimentPlan {
    /// A plan named `name` with the paper's defaults on every axis: all
    /// eight SPLASH workloads, the 3-D MoT, Full connection, 200 ns
    /// DRAM, flat page policy, default scale, one repeat.
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentPlan {
            name: name.into(),
            workloads: SplashBenchmark::all()
                .into_iter()
                .map(|b| Arc::new(b) as Arc<dyn WorkloadSource>)
                .collect(),
            interconnects: vec![InterconnectChoice::Mot],
            power_states: vec![PowerState::full()],
            drams: vec![DramKind::OffChipDdr3],
            page_policies: vec![false],
            scale: ExperimentScale::default(),
            repeats: 1,
            threads: None,
        }
    }

    /// The plan's name (used by sinks and perf records).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the workload axis with arbitrary [`WorkloadSource`]s
    /// (synthetic specs today, trace-driven backends tomorrow).
    pub fn workloads(mut self, sources: impl IntoIterator<Item = Arc<dyn WorkloadSource>>) -> Self {
        self.workloads = sources.into_iter().collect();
        self
    }

    /// Replaces the workload axis with SPLASH presets.
    pub fn splash(mut self, benches: impl IntoIterator<Item = SplashBenchmark>) -> Self {
        self.workloads = benches
            .into_iter()
            .map(|b| Arc::new(b) as Arc<dyn WorkloadSource>)
            .collect();
        self
    }

    /// Replaces the interconnect axis.
    pub fn interconnects(mut self, ics: impl IntoIterator<Item = InterconnectChoice>) -> Self {
        self.interconnects = ics.into_iter().collect();
        self
    }

    /// Replaces the power-state axis.
    pub fn power_states(mut self, states: impl IntoIterator<Item = PowerState>) -> Self {
        self.power_states = states.into_iter().collect();
        self
    }

    /// Replaces the DRAM-option axis.
    pub fn drams(mut self, drams: impl IntoIterator<Item = DramKind>) -> Self {
        self.drams = drams.into_iter().collect();
        self
    }

    /// Replaces the page-policy axis (`false` = the paper's flat
    /// latency, `true` = the 4 KB open-page refinement).
    pub fn page_policies(mut self, policies: impl IntoIterator<Item = bool>) -> Self {
        self.page_policies = policies.into_iter().collect();
        self
    }

    /// Sets the run-length scale and base seed.
    pub fn scale(mut self, scale: ExperimentScale) -> Self {
        self.scale = scale;
        self
    }

    /// Runs every grid cell `repeats` times; repeat `r` offsets the
    /// workload seed by `r`, so repeats sample genuinely different
    /// streams (repeat 0 is always the canonical seed).
    pub fn repeats(mut self, repeats: u32) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Pins the worker-thread count (default: the `MOT3D_THREADS` /
    /// available-parallelism resolution of [`pool::worker_threads`]).
    /// Results are bit-identical for every choice.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Number of runs the plan expands to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.interconnects.len()
            * self.power_states.len()
            * self.drams.len()
            * self.page_policies.len()
            * self.repeats as usize
    }

    /// Whether the plan expands to no runs (an axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the plan for combinations the simulator rejects: the
    /// packet-switched NoC baselines only model the Full power state.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid
    /// combination.
    pub fn check(&self) -> Result<(), String> {
        let gated = self.power_states.iter().find(|s| **s != PowerState::full());
        let noc = self
            .interconnects
            .iter()
            .find(|ic| matches!(ic, InterconnectChoice::Noc(_)));
        if let (Some(state), Some(ic)) = (gated, noc) {
            return Err(format!(
                "{ic} only models the Full power state (plan also sweeps {state}); \
                 sweep gated states on the 3-D MoT only"
            ));
        }
        if self.is_empty() {
            return Err("plan expands to zero runs (an axis list is empty)".to_string());
        }
        Ok(())
    }

    /// Expands the plan to its ordered run points (workload-outermost
    /// axis nesting; see the type docs).
    pub fn points(&self) -> Vec<RunPoint> {
        let mut points = Vec::with_capacity(self.len());
        for source in &self.workloads {
            let workload = source.source_name();
            let spec = source.resolve(self.scale.scale);
            for &interconnect in &self.interconnects {
                for &power_state in &self.power_states {
                    for &dram in &self.drams {
                        for &open_page in &self.page_policies {
                            for repeat in 0..self.repeats {
                                let mut config = SimConfig::date16()
                                    .with_interconnect(interconnect)
                                    .with_power_state(power_state)
                                    .with_dram(dram)
                                    .with_open_page(open_page);
                                config.seed = self.scale.seed.wrapping_add(u64::from(repeat));
                                points.push(RunPoint {
                                    index: points.len(),
                                    workload: workload.clone(),
                                    spec,
                                    config,
                                    repeat,
                                });
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// [`ExperimentPlan::run_with`] without sinks or progress reporting.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the plan fails
    /// [`ExperimentPlan::check`]; there are no sinks to fail.
    pub fn run(&self) -> std::io::Result<Vec<RunRecord>> {
        self.run_with(&mut [], |_, _, _| {})
    }

    /// Executes the plan: shards the points across worker threads,
    /// calls `progress(done, total, label)` as each run finishes (in
    /// completion order, possibly concurrently), and streams the
    /// [`RunRecord`]s through every sink **in expansion order** — record
    /// `i` is emitted as soon as all records `≤ i` have completed, so
    /// sinks observe a deterministic stream at any thread count.
    ///
    /// Returns all records in expansion order. After a long ad-hoc
    /// sweep, the calling thread's cluster cache is shrunk back to a
    /// handful of configurations (see
    /// [`mot3d_sim::shrink_local_pool`]); worker threads are scoped to
    /// the call, so their caches are freed with them.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the plan fails
    /// [`ExperimentPlan::check`] (caught before spending any simulation
    /// time), or the first sink I/O error (remaining runs still
    /// complete, but no further records are written).
    ///
    /// # Panics
    ///
    /// Panics if the simulator rejects a point for a reason
    /// [`ExperimentPlan::check`] cannot see (none are known today).
    pub fn run_with(
        &self,
        sinks: &mut [&mut dyn RecordSink],
        progress: impl Fn(usize, usize, &str) + Sync,
    ) -> std::io::Result<Vec<RunRecord>> {
        if let Err(msg) = self.check() {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg));
        }
        let points = self.points();
        let total = points.len();
        let meta = PlanMeta {
            plan: &self.name,
            points: total,
            scale: self.scale.scale,
            seed: self.scale.seed,
        };
        for sink in sinks.iter_mut() {
            sink.begin(&meta)?;
        }
        let threads = self.threads.unwrap_or_else(|| pool::worker_threads(total));
        let done = AtomicUsize::new(0);
        let emitter = Mutex::new(Emitter {
            next: 0,
            pending: BTreeMap::new(),
            sinks,
            err: None,
        });
        let records = pool::parallel_map_streamed_on(
            threads,
            total,
            |i| {
                let p = &points[i];
                let metrics =
                    run_spec(&p.spec, &p.config).unwrap_or_else(|e| panic!("{}: {e}", p.label()));
                RunRecord::new(p.clone(), metrics)
            },
            |i, record| {
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(k, total, &points[i].label());
                emitter
                    .lock()
                    .expect("emitter lock not poisoned")
                    .push(i, record.clone());
            },
        );
        let mut emitter = emitter.into_inner().expect("emitter lock not poisoned");
        if let Some(err) = emitter.err.take() {
            return Err(err);
        }
        for sink in emitter.sinks.iter_mut() {
            sink.finish()?;
        }
        // Ad-hoc grids can visit many distinct configurations; don't let
        // the calling thread's cluster cache keep them all alive.
        mot3d_sim::shrink_local_pool(8);
        Ok(records)
    }

    /// [`ExperimentPlan::run_with`] with a tracer attached to every
    /// point: writes one Perfetto-loadable trace file per [`RunPoint`]
    /// into `trace_dir` (created if needed), named by
    /// [`mot3d_trace::trace_file_name`] of the point's label. Records
    /// stream through the sinks in expansion order exactly as the
    /// untraced path does — and because tracing is observation-only,
    /// they are bit-identical to the untraced run's (pinned by
    /// `tests/trace_equivalence.rs`). Points run serially: a deep dive
    /// trades throughput for one coherent timeline per file.
    ///
    /// Returns the records plus the trace file path of each point, in
    /// expansion order.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the plan fails
    /// [`ExperimentPlan::check`], or the first trace/sink I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the simulator rejects a point (as
    /// [`ExperimentPlan::run_with`] does); the partial trace of the
    /// failing point is sealed and kept for diagnosis.
    pub fn run_traced_with(
        &self,
        trace_dir: &std::path::Path,
        sinks: &mut [&mut dyn RecordSink],
        progress: impl Fn(usize, usize, &str),
    ) -> std::io::Result<Vec<(RunRecord, std::path::PathBuf)>> {
        if let Err(msg) = self.check() {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg));
        }
        std::fs::create_dir_all(trace_dir)?;
        let points = self.points();
        let total = points.len();
        let meta = PlanMeta {
            plan: &self.name,
            points: total,
            scale: self.scale.scale,
            seed: self.scale.seed,
        };
        for sink in sinks.iter_mut() {
            sink.begin(&meta)?;
        }
        let mut records = Vec::with_capacity(total);
        for (i, p) in points.iter().enumerate() {
            let path = trace_dir.join(mot3d_trace::trace_file_name(&p.label()));
            let metrics = match mot3d_trace::trace_spec(&p.spec, &p.config, &path) {
                Ok((metrics, _summary)) => metrics,
                Err(mot3d_trace::TraceError::Io(e)) => return Err(e),
                Err(mot3d_trace::TraceError::Sim(e)) => panic!("{}: {e}", p.label()),
            };
            let record = RunRecord::new(p.clone(), metrics);
            progress(i + 1, total, &p.label());
            for sink in sinks.iter_mut() {
                sink.record(&record)?;
            }
            records.push((record, path));
        }
        for sink in sinks.iter_mut() {
            sink.finish()?;
        }
        // Traced runs use fresh clusters (observer state is per-run),
        // so there is no pool growth to shrink back here.
        Ok(records)
    }
}

/// Reorders completion-order records back into expansion order and
/// feeds the contiguous prefix to the sinks as it grows.
struct Emitter<'a, 'b> {
    next: usize,
    pending: BTreeMap<usize, RunRecord>,
    sinks: &'a mut [&'b mut dyn RecordSink],
    err: Option<std::io::Error>,
}

impl Emitter<'_, '_> {
    fn push(&mut self, index: usize, record: RunRecord) {
        self.pending.insert(index, record);
        while let Some(record) = self.pending.remove(&self.next) {
            self.next += 1;
            if self.err.is_some() {
                continue; // keep draining, stop writing
            }
            for sink in self.sinks.iter_mut() {
                if let Err(e) = sink.record(&record) {
                    self.err = Some(e);
                    break;
                }
            }
        }
    }
}

// ------------------------------------------------- canned constructors

/// Short DRAM tag used in canned plan / perf sweep names.
pub fn dram_tag(dram: DramKind) -> &'static str {
    match dram {
        DramKind::OffChipDdr3 => "200ns",
        DramKind::WideIo => "63ns",
        DramKind::Weis3d => "42ns",
    }
}

impl ExperimentPlan {
    /// Fig. 6: all benchmarks × the four interconnects (Full state,
    /// 200 ns DRAM).
    pub fn fig6(scale: ExperimentScale) -> Self {
        ExperimentPlan::new("fig6")
            .interconnects(crate::experiments::fig6_interconnects())
            .scale(scale)
    }

    /// Fig. 7-shape sweep: all benchmarks × the four power states at
    /// one DRAM option (Fig. 7 proper uses 200 ns; Fig. 8 reuses the
    /// shape at 63/42 ns — see [`ExperimentPlan::fig8_at`]).
    pub fn fig7_at(scale: ExperimentScale, dram: DramKind) -> Self {
        ExperimentPlan::new(format!("fig7@{}", dram_tag(dram)))
            .power_states(PowerState::date16_states())
            .drams([dram])
            .scale(scale)
    }

    /// Fig. 7 proper (200 ns DRAM).
    pub fn fig7(scale: ExperimentScale) -> Self {
        ExperimentPlan::fig7_at(scale, DramKind::OffChipDdr3)
    }

    /// One half of Fig. 8: the power-state sweep at an on-chip DRAM
    /// latency (63 ns Wide I/O or 42 ns Weis 3-D).
    pub fn fig8_at(scale: ExperimentScale, dram: DramKind) -> Self {
        ExperimentPlan::fig7_at(scale, dram).named(format!("fig8@{}", dram_tag(dram)))
    }

    /// Open-page DRAM study: all benchmarks under flat vs open-page
    /// timing at one DRAM option (Full connection).
    pub fn open_page_at(scale: ExperimentScale, dram: DramKind) -> Self {
        ExperimentPlan::new(format!("open_page@{}", dram_tag(dram)))
            .drams([dram])
            .page_policies([false, true])
            .scale(scale)
    }

    /// Ablation 1's full power-of-two power-state grid for one program
    /// (PC{16,8,4} × MB{32,16,8}, 200 ns DRAM). Uses the simulator's
    /// default seed, like the legacy `ablation` binary; use
    /// [`ExperimentPlan::ablation_grid_seeded`] to sweep another seed.
    pub fn ablation_grid(scale: ExperimentScale, bench: SplashBenchmark) -> Self {
        Self::ablation_grid_seeded(
            ExperimentScale {
                seed: SimConfig::date16().seed,
                ..scale
            },
            bench,
        )
    }

    /// [`ExperimentPlan::ablation_grid`] honouring `scale.seed` (the
    /// `mot3d ablation --seed` path).
    pub fn ablation_grid_seeded(scale: ExperimentScale, bench: SplashBenchmark) -> Self {
        let states = [16usize, 8, 4].iter().flat_map(|&cores| {
            [32usize, 16, 8].map(|banks| {
                PowerState::new(cores, banks).expect("powers of two within the cluster")
            })
        });
        ExperimentPlan::new(format!("ablation@{bench}"))
            .splash([bench])
            .power_states(states)
            .scale(scale)
    }

    /// Renames the plan (canned variants reuse a base constructor).
    fn named(mut self, name: String) -> Self {
        self.name = name;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot3d_noc::NocTopologyKind;

    #[test]
    fn expansion_is_workload_outermost_and_indexed() {
        let plan = ExperimentPlan::new("t")
            .splash([SplashBenchmark::Fft, SplashBenchmark::Radix])
            .page_policies([false, true])
            .scale(ExperimentScale::tiny());
        let pts = plan.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(plan.len(), 4);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        assert_eq!(pts[0].workload, "fft");
        assert!(!pts[0].config.dram_open_page);
        assert!(pts[1].config.dram_open_page);
        assert_eq!(pts[2].workload, "radix");
    }

    #[test]
    fn fig6_plan_matches_legacy_cell_order() {
        let plan = ExperimentPlan::fig6(ExperimentScale::tiny());
        let pts = plan.points();
        let ics = crate::experiments::fig6_interconnects();
        let benches = SplashBenchmark::all();
        assert_eq!(pts.len(), benches.len() * ics.len());
        for (j, p) in pts.iter().enumerate() {
            assert_eq!(p.workload, benches[j / ics.len()].to_string());
            assert_eq!(p.config.interconnect, ics[j % ics.len()]);
            assert_eq!(p.config.seed, ExperimentScale::tiny().seed);
            assert_eq!(
                p.spec,
                benches[j / ics.len()]
                    .spec()
                    .scaled(ExperimentScale::tiny().scale)
            );
        }
    }

    #[test]
    fn fig7_plan_matches_legacy_cell_order() {
        let plan = ExperimentPlan::fig7_at(ExperimentScale::tiny(), DramKind::Weis3d);
        assert_eq!(plan.name(), "fig7@42ns");
        let pts = plan.points();
        let states = PowerState::date16_states();
        for (j, p) in pts.iter().enumerate() {
            assert_eq!(p.config.power_state, states[j % states.len()]);
            assert_eq!(p.config.dram, DramKind::Weis3d);
            assert_eq!(p.config.interconnect, InterconnectChoice::Mot);
        }
    }

    #[test]
    fn repeats_reseed_the_streams() {
        let plan = ExperimentPlan::new("t")
            .splash([SplashBenchmark::Fmm])
            .repeats(3)
            .scale(ExperimentScale::tiny());
        let pts = plan.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].config.seed, ExperimentScale::tiny().seed);
        assert_eq!(pts[2].config.seed, ExperimentScale::tiny().seed + 2);
        assert_eq!(pts[2].repeat, 2);
    }

    #[test]
    fn check_rejects_noc_under_gated_states_and_empty_axes() {
        let bad = ExperimentPlan::new("t")
            .interconnects([InterconnectChoice::Noc(NocTopologyKind::Mesh3d)])
            .power_states([PowerState::full(), PowerState::pc4_mb8()]);
        assert!(bad.check().is_err());
        let run_err = bad.run().expect_err("run must fail check() up front");
        assert_eq!(run_err.kind(), std::io::ErrorKind::InvalidInput);
        let empty = ExperimentPlan::new("t").splash([]);
        assert!(empty.check().is_err());
        assert!(empty.run().is_err());
        assert!(empty.is_empty());
        assert!(ExperimentPlan::fig6(ExperimentScale::tiny())
            .check()
            .is_ok());
        assert!(ExperimentPlan::fig7(ExperimentScale::tiny())
            .check()
            .is_ok());
    }

    #[test]
    fn ablation_grid_pins_the_legacy_seed_unless_seeded() {
        let tiny = ExperimentScale::tiny();
        let legacy = ExperimentPlan::ablation_grid(tiny, SplashBenchmark::Fft).points();
        assert_eq!(legacy[0].config.seed, SimConfig::date16().seed);
        let seeded = ExperimentPlan::ablation_grid_seeded(tiny, SplashBenchmark::Fft).points();
        assert_eq!(seeded[0].config.seed, tiny.seed);
        assert_eq!(seeded.len(), legacy.len());
    }

    #[test]
    fn labels_name_every_varying_axis() {
        let p = ExperimentPlan::open_page_at(ExperimentScale::tiny(), DramKind::OffChipDdr3)
            .points()
            .remove(1);
        let label = p.label();
        assert!(label.contains("cholesky"), "{label}");
        assert!(label.contains("open-page"), "{label}");
    }

    #[test]
    fn run_returns_records_in_expansion_order() {
        let plan = ExperimentPlan::new("t")
            .splash([SplashBenchmark::Fft, SplashBenchmark::Volrend])
            .scale(ExperimentScale::tiny())
            .threads(2);
        let records = plan.run().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].point.workload, "fft");
        assert_eq!(records[1].point.workload, "volrend");
        for r in &records {
            assert!(r.metrics.cycles > 0);
            assert!(r.derived.edp_js > 0.0);
            assert!(r.derived.ipc > 0.0);
        }
    }
}
