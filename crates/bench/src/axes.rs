//! Textual grammar for the experiment-plan axes.
//!
//! Every way a plan crosses a process boundary — `mot3d sweep` command
//! lines, `mot3d submit` wire requests, and the result cache's
//! content-addressed keys — spells axis values in the same compact
//! tokens. This module is the single source of truth for that grammar:
//! a parser and a canonical formatter per axis, with
//! `parse(format(v)) == v` for every value (pinned by tests).
//!
//! | axis | tokens |
//! |------|--------|
//! | benchmark | `cholesky`, `fft`, …, `water-nsquared`, or `all` |
//! | interconnect | `mot3d`, `mesh`, `bus-mesh`, `bus-tree`, or `all` |
//! | power state | `full`, `pcX-mbY`, or `all` (the paper's four) |
//! | DRAM | `200ns`, `63ns`, `42ns`, or `all` |
//! | page policy | `flat`, `open`, `both` |
//!
//! Parsers accept comma-separated lists, surrounding whitespace, any
//! letter case, and a few historical aliases (`mot`, `ddr3`,
//! `wide-io`, …); formatters always emit the canonical token.

use crate::experiments;
use mot3d_mem::dram::DramKind;
use mot3d_mot::PowerState;
use mot3d_noc::NocTopologyKind;
use mot3d_sim::InterconnectChoice;
use mot3d_workloads::SplashBenchmark;

fn split_list(raw: &str) -> impl Iterator<Item = &str> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty())
}

/// Parses a benchmark list (`fft,radix` or `all`).
///
/// # Errors
///
/// Returns a human-readable description of the first unknown name.
pub fn parse_benches(raw: &str) -> Result<Vec<SplashBenchmark>, String> {
    if raw.trim().eq_ignore_ascii_case("all") {
        return Ok(SplashBenchmark::all().to_vec());
    }
    split_list(raw)
        .map(|name| {
            SplashBenchmark::all()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| format!("unknown benchmark {name:?} (try --bench all)"))
        })
        .collect()
}

/// Parses an interconnect list (`mot3d,mesh` or `all` = Fig. 6's four).
///
/// # Errors
///
/// Returns a human-readable description of the first unknown name.
pub fn parse_interconnects(raw: &str) -> Result<Vec<InterconnectChoice>, String> {
    if raw.trim().eq_ignore_ascii_case("all") {
        return Ok(experiments::fig6_interconnects().to_vec());
    }
    split_list(raw)
        .map(|name| match name.to_ascii_lowercase().as_str() {
            "mot" | "mot3d" | "3d-mot" => Ok(InterconnectChoice::Mot),
            "mesh" | "mesh3d" | "3d-mesh" => Ok(InterconnectChoice::Noc(NocTopologyKind::Mesh3d)),
            "bus-mesh" | "busmesh" => Ok(InterconnectChoice::Noc(NocTopologyKind::HybridBusMesh)),
            "bus-tree" | "bustree" => Ok(InterconnectChoice::Noc(NocTopologyKind::HybridBusTree)),
            _ => Err(format!(
                "unknown interconnect {name:?} (mot3d, mesh, bus-mesh, bus-tree)"
            )),
        })
        .collect()
}

/// Parses a power-state list (`full,pc4-mb8` or `all` = the paper's
/// four states; any power-of-two `pcX-mbY` is accepted).
///
/// # Errors
///
/// Returns a human-readable description of the first invalid state.
pub fn parse_power_states(raw: &str) -> Result<Vec<PowerState>, String> {
    if raw.trim().eq_ignore_ascii_case("all") {
        return Ok(PowerState::date16_states().to_vec());
    }
    split_list(raw)
        .map(|name| {
            let lower = name.to_ascii_lowercase();
            if lower == "full" {
                return Ok(PowerState::full());
            }
            let parts = lower
                .strip_prefix("pc")
                .and_then(|rest| rest.split_once("-mb"));
            let (cores, banks) = parts.ok_or_else(|| {
                format!("unknown power state {name:?} (full or pcX-mbY, e.g. pc4-mb8)")
            })?;
            let cores: usize = cores
                .parse()
                .map_err(|_| format!("bad core count in power state {name:?}"))?;
            let banks: usize = banks
                .parse()
                .map_err(|_| format!("bad bank count in power state {name:?}"))?;
            PowerState::new(cores, banks).map_err(|e| format!("power state {name:?}: {e}"))
        })
        .collect()
}

/// Parses a DRAM-option list (`200ns,42ns` or `all`).
///
/// # Errors
///
/// Returns a human-readable description of the first unknown option.
pub fn parse_drams(raw: &str) -> Result<Vec<DramKind>, String> {
    if raw.trim().eq_ignore_ascii_case("all") {
        return Ok(vec![
            DramKind::OffChipDdr3,
            DramKind::WideIo,
            DramKind::Weis3d,
        ]);
    }
    split_list(raw)
        .map(|name| match name.to_ascii_lowercase().as_str() {
            "200ns" | "ddr3" | "off-chip" => Ok(DramKind::OffChipDdr3),
            "63ns" | "wide-io" | "wideio" => Ok(DramKind::WideIo),
            "42ns" | "weis" | "weis3d" => Ok(DramKind::Weis3d),
            _ => Err(format!("unknown DRAM option {name:?} (200ns, 63ns, 42ns)")),
        })
        .collect()
}

/// Parses the page-policy axis (`flat`, `open`, `both`).
///
/// # Errors
///
/// Returns a human-readable description of an unknown policy.
pub fn parse_pages(raw: &str) -> Result<Vec<bool>, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "flat" => Ok(vec![false]),
        "open" | "open-page" => Ok(vec![true]),
        "both" | "all" => Ok(vec![false, true]),
        other => Err(format!("unknown page policy {other:?} (flat, open, both)")),
    }
}

/// Canonical token for an interconnect (`parse_interconnects` inverse).
pub fn interconnect_token(ic: InterconnectChoice) -> &'static str {
    match ic {
        InterconnectChoice::Mot => "mot3d",
        InterconnectChoice::Noc(NocTopologyKind::Mesh3d) => "mesh",
        InterconnectChoice::Noc(NocTopologyKind::HybridBusMesh) => "bus-mesh",
        InterconnectChoice::Noc(NocTopologyKind::HybridBusTree) => "bus-tree",
    }
}

/// Canonical token for a power state (`parse_power_states` inverse).
pub fn power_state_token(state: PowerState) -> String {
    if state == PowerState::full() {
        "full".to_string()
    } else {
        format!("pc{}-mb{}", state.active_cores(), state.active_banks())
    }
}

/// Canonical token for a DRAM option (`parse_drams` inverse).
pub fn dram_token(dram: DramKind) -> &'static str {
    match dram {
        DramKind::OffChipDdr3 => "200ns",
        DramKind::WideIo => "63ns",
        DramKind::Weis3d => "42ns",
    }
}

/// Canonical token for a page policy (`parse_pages` inverse, one value).
pub fn page_token(open_page: bool) -> &'static str {
    if open_page {
        "open"
    } else {
        "flat"
    }
}

/// Joins canonical tokens into the list form every parser accepts.
pub fn join_tokens<'a>(tokens: impl IntoIterator<Item = &'a str>) -> String {
    tokens.into_iter().collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benches_parse_lists_and_all() {
        assert_eq!(
            parse_benches("fft, radix").unwrap(),
            vec![SplashBenchmark::Fft, SplashBenchmark::Radix]
        );
        assert_eq!(parse_benches("all").unwrap().len(), 8);
        assert!(parse_benches("nope").is_err());
    }

    #[test]
    fn interconnect_tokens_round_trip() {
        for ic in experiments::fig6_interconnects() {
            let token = interconnect_token(ic);
            assert_eq!(parse_interconnects(token).unwrap(), vec![ic], "{token}");
        }
        assert_eq!(
            parse_interconnects("all").unwrap(),
            experiments::fig6_interconnects().to_vec()
        );
    }

    #[test]
    fn power_state_tokens_round_trip() {
        let mut states = PowerState::date16_states().to_vec();
        states.push(PowerState::new(8, 16).unwrap());
        for state in states {
            let token = power_state_token(state);
            assert_eq!(parse_power_states(&token).unwrap(), vec![state], "{token}");
        }
        assert!(parse_power_states("pc3-mb8").is_err(), "not a power of two");
        assert!(parse_power_states("turbo").is_err());
    }

    #[test]
    fn dram_tokens_round_trip() {
        for dram in [DramKind::OffChipDdr3, DramKind::WideIo, DramKind::Weis3d] {
            assert_eq!(parse_drams(dram_token(dram)).unwrap(), vec![dram]);
        }
        assert_eq!(parse_drams("all").unwrap().len(), 3);
    }

    #[test]
    fn page_tokens_round_trip() {
        for page in [false, true] {
            assert_eq!(parse_pages(page_token(page)).unwrap(), vec![page]);
        }
        assert_eq!(parse_pages("both").unwrap(), vec![false, true]);
    }

    #[test]
    fn join_tokens_builds_parser_input() {
        let list = join_tokens(["fft", "radix"]);
        assert_eq!(list, "fft,radix");
        assert_eq!(parse_benches(&list).unwrap().len(), 2);
        assert_eq!(join_tokens([]), "");
    }
}
