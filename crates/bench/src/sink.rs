//! Typed record sinks for [`crate::plan::ExperimentPlan`] runs.
//!
//! A plan streams one [`RunRecord`] per finished run — in deterministic
//! expansion order — through every attached [`RecordSink`]. Sinks are
//! formatting-only: all simulation and derivation happens upstream.
//!
//! * [`TableSink`] — generic pretty table (one row per run), for ad-hoc
//!   sweeps that have no figure-shaped renderer;
//! * [`JsonLinesSink`] — one JSON object per line (a plan-header line,
//!   then one line per record), the machine-readable export behind
//!   `mot3d … --json`;
//! * [`CsvSink`] — spreadsheet-ready rows behind `mot3d … --csv`;
//! * [`PerfSink`] — adapter turning the [`crate::perf::Recorder`]
//!   trajectory tracker into a sink: times the sweep begin→finish and
//!   checksums the canonical record serialisation.
//!
//! A sink may be attached to several consecutive plan runs (the `all`
//! subcommand does); [`RecordSink::begin`]/[`RecordSink::finish`]
//! bracket each plan.
//!
//! File-backed sinks write through an [`AtomicFile`] (temp file +
//! atomic rename on [`AtomicFile::persist`]), so an interrupted run can
//! never leave a truncated `--json`/`--csv` output behind.

use crate::perf::{fnv1a64_fold, json_string, Recorder, FNV_OFFSET};
use crate::plan::RunRecord;
use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Plan-level metadata handed to [`RecordSink::begin`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanMeta<'a> {
    /// The plan's name.
    pub plan: &'a str,
    /// Number of points the plan expands to.
    pub points: usize,
    /// Run-length scale factor.
    pub scale: f64,
    /// Base workload seed.
    pub seed: u64,
}

/// Receives the typed record stream of a plan run.
///
/// `Send` because records are emitted from the worker that completes
/// the contiguous prefix (under a lock — implementations never see
/// concurrent calls).
pub trait RecordSink: Send {
    /// Called once before a plan's first record.
    ///
    /// # Errors
    ///
    /// I/O errors abort record emission for the run.
    fn begin(&mut self, _meta: &PlanMeta<'_>) -> io::Result<()> {
        Ok(())
    }

    /// Called once per finished run, in plan expansion order.
    ///
    /// # Errors
    ///
    /// I/O errors abort record emission for the run.
    fn record(&mut self, record: &RunRecord) -> io::Result<()>;

    /// Called once after a plan's last record.
    ///
    /// # Errors
    ///
    /// I/O errors abort record emission for the run.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The canonical one-line JSON serialisation of a record (no trailing
/// newline). [`JsonLinesSink`] writes it; [`PerfSink`] checksums it.
pub fn record_json_line(r: &RunRecord) -> String {
    let p = &r.point;
    let m = &r.metrics;
    let d = &r.derived;
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"index\": {}, \"workload\": {}, \"interconnect\": {}, \"power_state\": {}, \
         \"dram\": {}, \"open_page\": {}, \"seed\": {}, \"repeat\": {}, \"total_ops\": {}, \
         \"cycles\": {}, \"instructions\": {}, \"ipc\": {}, \"l1_hits\": {}, \"l1_misses\": {}, \
         \"l2_hits\": {}, \"l2_misses\": {}, \"dram_accesses\": {}, \"l2_latency_mean\": {}, \
         \"energy_j\": {}, \"edp_js\": {}}}",
        p.index,
        json_string(&p.workload),
        json_string(&p.config.interconnect.to_string()),
        json_string(&p.config.power_state.to_string()),
        json_string(&p.config.dram.to_string()),
        p.config.dram_open_page,
        p.config.seed,
        p.repeat,
        p.spec.total_ops,
        m.cycles,
        m.instructions,
        d.ipc,
        m.l1_hits,
        m.l1_misses,
        m.l2_hits,
        m.l2_misses,
        m.dram_accesses,
        d.l2_latency_mean,
        d.energy_j,
        d.edp_js,
    );
    s
}

/// A buffered file writer that only takes the destination name once
/// the caller declares the content complete: bytes go to a sibling
/// `*.tmp.<pid>` file, and [`AtomicFile::persist`] flushes, syncs, and
/// renames it into place in one step. If the process is interrupted —
/// or the writer is dropped after an error — the destination either
/// keeps its previous content or does not exist; it is never a
/// truncated half-write. Unpersisted temp files are removed on drop.
#[derive(Debug)]
pub struct AtomicFile {
    out: Option<BufWriter<File>>,
    tmp: PathBuf,
    dest: PathBuf,
    persisted: bool,
}

impl AtomicFile {
    /// Opens a temp file next to `path` (same filesystem, so the final
    /// rename is atomic).
    ///
    /// # Errors
    ///
    /// Fails when the temp file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<AtomicFile> {
        let dest = path.as_ref().to_path_buf();
        let mut name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .ok_or_else(|| io::Error::other(format!("{}: not a file path", dest.display())))?;
        name.push(format!(".tmp.{}", std::process::id()));
        let tmp = dest.with_file_name(name);
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            out: Some(BufWriter::new(file)),
            tmp,
            dest,
            persisted: false,
        })
    }

    /// The destination path the file will take on persist.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Flushes, syncs, and atomically renames the temp file onto the
    /// destination. Consumes the writer: a persisted file is complete.
    ///
    /// # Errors
    ///
    /// Fails when flushing, syncing, or renaming fails; the temp file
    /// is then cleaned up by drop and the destination is untouched.
    pub fn persist(mut self) -> io::Result<()> {
        let out = self
            .out
            .take()
            .ok_or_else(|| io::Error::other("file already persisted"))?;
        let file = out.into_inner().map_err(io::IntoInnerError::into_error)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&self.tmp, &self.dest)?;
        self.persisted = true;
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.out.as_mut() {
            Some(w) => w.write(buf),
            None => Err(io::Error::other("file already persisted")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.out.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if !self.persisted {
            drop(self.out.take());
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// JSON-lines sink: a plan-header object, then one object per record.
///
/// Every line is a complete JSON document, so consumers can stream the
/// file line by line (the CI smoke job parses each line back).
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }

    /// Writes one preformatted line (plus the newline) into the stream
    /// — the seam the serve crate uses to interleave its own protocol
    /// lines (per-point failure records) with the record stream without
    /// duplicating the writer.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn raw_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.out, "{line}")
    }
}

impl JsonLinesSink<AtomicFile> {
    /// A sink writing to `path` through an [`AtomicFile`]: the file
    /// appears under its final name only after [`Self::persist`].
    ///
    /// # Errors
    ///
    /// Fails when the sibling temp file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonLinesSink::new(AtomicFile::create(path)?))
    }

    /// Completes the file: flush + sync + atomic rename into place.
    ///
    /// # Errors
    ///
    /// Propagates [`AtomicFile::persist`] failures.
    pub fn persist(mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.persist()
    }
}

impl<W: Write + Send> RecordSink for JsonLinesSink<W> {
    fn begin(&mut self, meta: &PlanMeta<'_>) -> io::Result<()> {
        writeln!(
            self.out,
            "{{\"plan\": {}, \"points\": {}, \"scale\": {}, \"seed\": {}, \"schema\": 1}}",
            json_string(meta.plan),
            meta.points,
            meta.scale,
            meta.seed,
        )
    }

    fn record(&mut self, record: &RunRecord) -> io::Result<()> {
        writeln!(self.out, "{}", record_json_line(record))
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Quotes a CSV field if it contains a separator, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV sink: a header row (once, even across several plans), then one
/// row per record.
#[derive(Debug)]
pub struct CsvSink<W: Write + Send> {
    out: W,
    plan: String,
    wrote_header: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            plan: String::new(),
            wrote_header: false,
        }
    }
}

impl CsvSink<AtomicFile> {
    /// A sink writing to `path` through an [`AtomicFile`]: the file
    /// appears under its final name only after [`Self::persist`].
    ///
    /// # Errors
    ///
    /// Fails when the sibling temp file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CsvSink::new(AtomicFile::create(path)?))
    }

    /// Completes the file: flush + sync + atomic rename into place.
    ///
    /// # Errors
    ///
    /// Propagates [`AtomicFile::persist`] failures.
    pub fn persist(mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.persist()
    }
}

impl<W: Write + Send> RecordSink for CsvSink<W> {
    fn begin(&mut self, meta: &PlanMeta<'_>) -> io::Result<()> {
        self.plan = meta.plan.to_string();
        if !self.wrote_header {
            self.wrote_header = true;
            writeln!(
                self.out,
                "plan,index,workload,interconnect,power_state,dram,open_page,seed,repeat,\
                 total_ops,cycles,instructions,ipc,l1_hits,l1_misses,l2_hits,l2_misses,\
                 dram_accesses,l2_latency_mean,energy_j,edp_js"
            )?;
        }
        Ok(())
    }

    fn record(&mut self, record: &RunRecord) -> io::Result<()> {
        let p = &record.point;
        let m = &record.metrics;
        let d = &record.derived;
        writeln!(
            self.out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(&self.plan),
            p.index,
            csv_field(&p.workload),
            csv_field(&p.config.interconnect.to_string()),
            csv_field(&p.config.power_state.to_string()),
            csv_field(&p.config.dram.to_string()),
            p.config.dram_open_page,
            p.config.seed,
            p.repeat,
            p.spec.total_ops,
            m.cycles,
            m.instructions,
            d.ipc,
            m.l1_hits,
            m.l1_misses,
            m.l2_hits,
            m.l2_misses,
            m.dram_accesses,
            d.l2_latency_mean,
            d.energy_j,
            d.edp_js,
        )
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Generic pretty table: one row per record, covering every axis plus
/// the headline metrics — the stdout presenter for ad-hoc `mot3d sweep`
/// grids that have no figure-shaped renderer.
#[derive(Debug)]
pub struct TableSink<W: Write + Send> {
    out: W,
    plan: String,
    records: Vec<RunRecord>,
}

impl<W: Write + Send> TableSink<W> {
    /// A sink rendering to `out` when the plan finishes.
    pub fn new(out: W) -> Self {
        TableSink {
            out,
            plan: String::new(),
            records: Vec::new(),
        }
    }
}

/// Renders the generic sweep table (used by [`TableSink`] and tests).
pub fn render_sweep_table(plan: &str, records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{plan} — {} runs", records.len());
    let _ = writeln!(
        out,
        "{:<18} {:<20} {:<15} {:<22} {:>5} {:>3} {:>12} {:>6} {:>8} {:>12}",
        "workload",
        "interconnect",
        "state",
        "dram",
        "page",
        "rep",
        "cycles",
        "IPC",
        "L2 mean",
        "EDP(J·s)"
    );
    for r in records {
        let p = &r.point;
        let _ = writeln!(
            out,
            "{:<18} {:<20} {:<15} {:<22} {:>5} {:>3} {:>12} {:>6.2} {:>8.1} {:>12.3e}",
            p.workload,
            p.config.interconnect.to_string(),
            p.config.power_state.to_string(),
            p.config.dram.to_string(),
            if p.config.dram_open_page {
                "open"
            } else {
                "flat"
            },
            p.repeat,
            r.metrics.cycles,
            r.derived.ipc,
            r.derived.l2_latency_mean,
            r.derived.edp_js,
        );
    }
    out
}

impl<W: Write + Send> RecordSink for TableSink<W> {
    fn begin(&mut self, meta: &PlanMeta<'_>) -> io::Result<()> {
        self.plan = meta.plan.to_string();
        self.records.clear();
        Ok(())
    }

    fn record(&mut self, record: &RunRecord) -> io::Result<()> {
        self.records.push(record.clone());
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        let table = render_sweep_table(&self.plan, &self.records);
        self.records.clear();
        write!(self.out, "{table}")?;
        self.out.flush()
    }
}

/// Adapter that lets the existing perf-trajectory [`Recorder`] consume
/// a plan's record stream: the sweep's wall-clock is measured
/// begin→finish, the row count is the number of records, and the
/// checksum is an FNV-1a fold over the canonical
/// [`record_json_line`] serialisation — bit-identical sweeps hash
/// equal, so the trajectory still tells regressions from workload
/// changes.
#[derive(Debug)]
pub struct PerfSink<'a> {
    recorder: &'a mut Recorder,
    name: String,
    started: Option<Instant>,
    hash: u64,
    rows: usize,
}

impl<'a> PerfSink<'a> {
    /// A sink recording the sweep under `name` into `recorder`.
    pub fn new(recorder: &'a mut Recorder, name: impl Into<String>) -> Self {
        PerfSink {
            recorder,
            name: name.into(),
            started: None,
            hash: FNV_OFFSET,
            rows: 0,
        }
    }
}

impl RecordSink for PerfSink<'_> {
    fn begin(&mut self, _meta: &PlanMeta<'_>) -> io::Result<()> {
        self.started = Some(Instant::now());
        self.hash = FNV_OFFSET;
        self.rows = 0;
        Ok(())
    }

    fn record(&mut self, record: &RunRecord) -> io::Result<()> {
        self.hash = fnv1a64_fold(self.hash, record_json_line(record).as_bytes());
        self.hash = fnv1a64_fold(self.hash, b"\n");
        self.rows += 1;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        let wall = self.started.take().map(|t| t.elapsed()).unwrap_or_default();
        self.recorder
            .add_raw(&self.name, wall, self.rows, self.hash);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentScale;
    use crate::plan::ExperimentPlan;
    use mot3d_workloads::SplashBenchmark;

    fn two_records() -> Vec<RunRecord> {
        ExperimentPlan::new("unit")
            .splash([SplashBenchmark::Fft])
            .page_policies([false, true])
            .scale(ExperimentScale::tiny())
            .threads(1)
            .run()
            .unwrap()
    }

    #[test]
    fn json_lines_are_balanced_and_complete() {
        let records = two_records();
        let mut sink = JsonLinesSink::new(Vec::new());
        let meta = PlanMeta {
            plan: "unit",
            points: records.len(),
            scale: 0.004,
            seed: 1,
        };
        sink.begin(&meta).unwrap();
        for r in &records {
            sink.record(r).unwrap();
        }
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), records.len() + 1, "header + one per record");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('"').count() % 2, 0);
        }
        assert!(lines[0].contains("\"plan\": \"unit\""));
        assert!(lines[1].contains("\"workload\": \"fft\""));
        assert!(lines[1].contains("\"open_page\": false"));
        assert!(lines[2].contains("\"open_page\": true"));
    }

    #[test]
    fn csv_writes_one_header_across_plans() {
        let records = two_records();
        let mut sink = CsvSink::new(Vec::new());
        for plan in ["a", "b"] {
            let meta = PlanMeta {
                plan,
                points: records.len(),
                scale: 0.004,
                seed: 1,
            };
            sink.begin(&meta).unwrap();
            for r in &records {
                sink.record(r).unwrap();
            }
            sink.finish().unwrap();
        }
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * records.len());
        assert!(lines[0].starts_with("plan,index,workload"));
        let columns = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "{line}");
        }
        assert!(lines[1].starts_with("a,0,fft,3-D MoT,Full connection"));
        assert!(lines[3].starts_with("b,0,fft"));
    }

    #[test]
    fn csv_field_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn table_sink_renders_one_row_per_record() {
        let records = two_records();
        let mut sink = TableSink::new(Vec::new());
        let meta = PlanMeta {
            plan: "unit",
            points: records.len(),
            scale: 0.004,
            seed: 1,
        };
        sink.begin(&meta).unwrap();
        for r in &records {
            sink.record(r).unwrap();
        }
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        assert_eq!(text.lines().count(), 2 + records.len());
        assert!(text.contains("fft"));
        assert!(text.contains("open"));
        assert!(text.contains("flat"));
    }

    #[test]
    fn perf_sink_checksums_pin_the_records() {
        let records = two_records();
        let meta = PlanMeta {
            plan: "unit",
            points: records.len(),
            scale: 0.004,
            seed: 1,
        };
        let run = |records: &[RunRecord]| {
            let mut rec = Recorder::new(0.004, 1);
            let mut sink = PerfSink::new(&mut rec, "unit");
            sink.begin(&meta).unwrap();
            for r in records {
                sink.record(r).unwrap();
            }
            sink.finish().unwrap();
            (rec.sweeps()[0].rows, rec.sweeps()[0].checksum.clone())
        };
        let (rows_a, sum_a) = run(&records);
        let (rows_b, sum_b) = run(&records);
        assert_eq!(rows_a, records.len());
        assert_eq!(rows_b, rows_a);
        assert_eq!(sum_a, sum_b, "identical streams hash equal");
        let (_, sum_c) = run(&records[..1]);
        assert_ne!(sum_a, sum_c, "different streams must not collide");
    }

    /// A unique scratch path under the system temp directory.
    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mot3d-sink-{}-{name}", std::process::id()))
    }

    #[test]
    fn atomic_file_appears_only_on_persist() {
        let dest = scratch("atomic_persist.txt");
        let mut file = AtomicFile::create(&dest).unwrap();
        file.write_all(b"complete\n").unwrap();
        assert!(!dest.exists(), "destination must not exist mid-write");
        assert_eq!(file.dest(), dest);
        file.persist().unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "complete\n");
        std::fs::remove_file(&dest).unwrap();
    }

    #[test]
    fn atomic_file_drop_without_persist_cleans_up() {
        let dest = scratch("atomic_abandon.txt");
        let tmp = {
            let mut file = AtomicFile::create(&dest).unwrap();
            file.write_all(b"partial").unwrap();
            file.flush().unwrap();
            let tmp = dest.with_file_name(format!(
                "{}.tmp.{}",
                dest.file_name().unwrap().to_string_lossy(),
                std::process::id()
            ));
            assert!(tmp.exists(), "temp file holds the bytes mid-write");
            tmp
        };
        assert!(!dest.exists(), "abandoned write must not surface");
        assert!(!tmp.exists(), "abandoned temp file must be removed");
    }

    #[test]
    fn atomic_file_persist_preserves_previous_content_until_rename() {
        let dest = scratch("atomic_replace.txt");
        std::fs::write(&dest, "old").unwrap();
        let mut file = AtomicFile::create(&dest).unwrap();
        file.write_all(b"new").unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "old");
        file.persist().unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "new");
        std::fs::remove_file(&dest).unwrap();
    }

    #[test]
    fn file_backed_sinks_persist_complete_documents() {
        let records = two_records();
        let meta = PlanMeta {
            plan: "unit",
            points: records.len(),
            scale: 0.004,
            seed: 1,
        };
        let json_path = scratch("sink_persist.jsonl");
        let mut json = JsonLinesSink::create(&json_path).unwrap();
        let csv_path = scratch("sink_persist.csv");
        let mut csv = CsvSink::create(&csv_path).unwrap();
        json.begin(&meta).unwrap();
        csv.begin(&meta).unwrap();
        for r in &records {
            json.record(r).unwrap();
            csv.record(r).unwrap();
        }
        json.finish().unwrap();
        csv.finish().unwrap();
        assert!(!json_path.exists() && !csv_path.exists());
        json.persist().unwrap();
        csv.persist().unwrap();
        let json_text = std::fs::read_to_string(&json_path).unwrap();
        assert_eq!(json_text.lines().count(), records.len() + 1);
        let csv_text = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(csv_text.lines().count(), records.len() + 1);
        std::fs::remove_file(&json_path).unwrap();
        std::fs::remove_file(&csv_path).unwrap();
    }
}
