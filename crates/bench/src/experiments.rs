//! Experiment runners, one per paper table/figure.
//!
//! The simulation sweeps (Fig. 6–8, open-page) are canned
//! [`crate::plan::ExperimentPlan`]s: each figure builds its declarative
//! grid, executes it on the worker pool (thread count: `MOT3D_THREADS`,
//! default = available parallelism), and folds the typed
//! [`RunRecord`](crate::plan::RunRecord) stream back into the
//! figure-shaped row structs the renderers consume. Every thread count,
//! including 1, produces bit-identical rows; the `*_streamed` variants
//! additionally report each finished cell to a progress callback.
//!
//! The golden-equivalence suite (`tests/plan_equivalence.rs`) pins each
//! canned plan to the legacy hand-rolled sweep loops row for row and
//! rendered byte for byte.

use crate::plan::{ExperimentPlan, RunRecord};
use mot3d_mem::dram::DramKind;
use mot3d_mot::latency::{MotLatency, MotTimingParams};
use mot3d_mot::topology::MotTopology;
use mot3d_mot::PowerState;
use mot3d_noc::NocTopologyKind;
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::Technology;
use mot3d_sim::InterconnectChoice;
use mot3d_workloads::SplashBenchmark;

/// Run-length and seed for an experiment batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Fraction of the default per-program instruction budget.
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    /// The default experiment length: 0.35 ≈ 560 k instructions per
    /// program — enough to pressure the L2 capacity axis.
    fn default() -> Self {
        ExperimentScale {
            scale: 0.35,
            seed: 0x0DA7_E201,
        }
    }
}

impl ExperimentScale {
    /// Parses a scale value as accepted by `mot3d … --scale` and the
    /// deprecated `MOT3D_SCALE` variable: a positive finite factor, or
    /// the keyword `tiny` for [`ExperimentScale::tiny`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of why the value was
    /// rejected.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let trimmed = raw.trim();
        if trimmed.eq_ignore_ascii_case("tiny") {
            return Ok(ExperimentScale::tiny());
        }
        match trimmed.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => Ok(ExperimentScale {
                scale: s,
                ..ExperimentScale::default()
            }),
            Ok(s) => Err(format!("scale must be positive and finite, got {s}")),
            Err(_) => Err(format!(
                "not a number: {trimmed:?} (expected a positive factor or \"tiny\")"
            )),
        }
    }

    /// Reads the deprecated `MOT3D_SCALE` variable (default 0.35; see
    /// [`ExperimentScale::default`]). A malformed value warns to stderr
    /// **once** and falls back to the default — it is never silently
    /// ignored. New code should pass `--scale` to the `mot3d` CLI
    /// instead.
    pub fn from_env() -> Self {
        match std::env::var("MOT3D_SCALE") {
            Err(_) => ExperimentScale::default(),
            Ok(raw) => match ExperimentScale::parse(&raw) {
                Ok(scale) => scale,
                Err(why) => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "warning: ignoring malformed MOT3D_SCALE={raw:?} ({why}); \
                             using the default scale {}",
                            ExperimentScale::default().scale
                        );
                    });
                    ExperimentScale::default()
                }
            },
        }
    }

    /// A fixed tiny scale for tests/benches.
    pub fn tiny() -> Self {
        ExperimentScale {
            scale: 0.004,
            seed: 0x0DA7_E201,
        }
    }
}

// ---------------------------------------------------------------- Table I

/// One derived row of Table I's L2-latency block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Power-state name.
    pub state: String,
    /// Active banks.
    pub banks: usize,
    /// Derived round-trip latency in cycles.
    pub latency_cycles: u64,
    /// The paper's Table I value.
    pub paper_cycles: u64,
}

/// Derives Table I's four L2 latencies from the physical models.
pub fn table1() -> Vec<Table1Row> {
    let tech = Technology::lp45();
    let fp = Floorplan::date16();
    let topo = MotTopology::date16();
    let params = MotTimingParams::default();
    let paper = [12u64, 9, 9, 7];
    PowerState::date16_states()
        .iter()
        .zip(paper)
        .map(|(state, paper_cycles)| {
            let lat = MotLatency::derive(&tech, &fp, topo, &params, *state)
                .expect("Table I states fit the cluster");
            Table1Row {
                state: state.to_string(),
                banks: state.active_banks(),
                latency_cycles: lat.round_trip(),
                paper_cycles,
            }
        })
        .collect()
}

// ----------------------------------------------------------------- Fig. 5

/// Wire-length comparison of the power states (Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Power-state name.
    pub state: String,
    /// Longest in-plane run (mm).
    pub horizontal_mm: f64,
    /// Vertical crossings to the farthest active bank.
    pub vertical_hops: usize,
    /// Vertical span (µm).
    pub vertical_um: f64,
    /// Total live interconnect wire estimate (mm), the leakage proxy.
    pub active_wire_mm: f64,
}

/// Computes Fig. 5's geometry for the four power states.
pub fn fig5() -> Vec<Fig5Row> {
    let fp = Floorplan::date16();
    PowerState::date16_states()
        .iter()
        .map(|s| {
            let p = fp
                .longest_path(s.active_cores(), s.active_banks())
                .expect("states fit the floorplan");
            let wire = fp
                .active_wire_estimate(s.active_cores(), s.active_banks())
                .expect("states fit the floorplan");
            Fig5Row {
                state: s.to_string(),
                horizontal_mm: p.horizontal.mm(),
                vertical_hops: p.vertical_hops,
                vertical_um: p.vertical.um(),
                active_wire_mm: wire.mm(),
            }
        })
        .collect()
}

// ----------------------------------------------------------------- Fig. 6

/// Per-benchmark comparison of the four interconnects (Fig. 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Program name.
    pub bench: String,
    /// Mean L2 access latency (cycles) per interconnect, in the paper's
    /// order: True 3-D Mesh, Hybrid Bus-Mesh, Hybrid Bus-Tree, 3-D MoT.
    pub l2_latency: [f64; 4],
    /// Execution cycles per interconnect, same order.
    pub exec_cycles: [u64; 4],
}

impl Fig6Row {
    /// MoT execution-time reduction vs baseline `i` (0 = mesh, 1 =
    /// bus-mesh, 2 = bus-tree), in percent.
    pub fn mot_reduction_vs(&self, i: usize) -> f64 {
        100.0 * (1.0 - self.exec_cycles[3] as f64 / self.exec_cycles[i] as f64)
    }
}

/// Worker threads a fig6/fig7-style 8 × 4 sweep grid will use (for the
/// CLI's banner lines; derived from the actual job count so it can't
/// drift from the grids).
pub fn sweep_threads() -> usize {
    crate::pool::worker_threads(SplashBenchmark::all().len() * 4)
}

/// The interconnect order of Fig. 6.
pub fn fig6_interconnects() -> [InterconnectChoice; 4] {
    [
        InterconnectChoice::Noc(NocTopologyKind::Mesh3d),
        InterconnectChoice::Noc(NocTopologyKind::HybridBusMesh),
        InterconnectChoice::Noc(NocTopologyKind::HybridBusTree),
        InterconnectChoice::Mot,
    ]
}

/// Folds a [`ExperimentPlan::fig6`] record stream (bench-major, one
/// record per interconnect) into Fig. 6 rows.
pub fn fig6_rows(records: &[RunRecord]) -> Vec<Fig6Row> {
    let per_bench = fig6_interconnects().len();
    assert_eq!(records.len() % per_bench, 0, "fig6 grid must be complete");
    records
        .chunks(per_bench)
        .map(|chunk| {
            let mut l2 = [0.0; 4];
            let mut cycles = [0u64; 4];
            for (i, rec) in chunk.iter().enumerate() {
                l2[i] = rec.derived.l2_latency_mean;
                cycles[i] = rec.metrics.cycles;
            }
            Fig6Row {
                bench: chunk[0].point.workload.clone(),
                l2_latency: l2,
                exec_cycles: cycles,
            }
        })
        .collect()
}

/// Runs Fig. 6: all benchmarks over all four interconnects (Full state,
/// 200 ns DRAM), sharded across worker threads.
pub fn fig6(scale: ExperimentScale) -> Vec<Fig6Row> {
    fig6_streamed(scale, |_, _, _| {})
}

/// [`fig6`] with a streaming progress callback: `progress(done, total,
/// label)` fires as each of the 8 × 4 independent runs completes
/// (possibly concurrently from several worker threads).
pub fn fig6_streamed(
    scale: ExperimentScale,
    progress: impl Fn(usize, usize, &str) + Sync,
) -> Vec<Fig6Row> {
    let records = ExperimentPlan::fig6(scale)
        .run_with(&mut [], progress)
        .expect("no sinks attached: no I/O to fail");
    fig6_rows(&records)
}

// ----------------------------------------------------------------- Fig. 7/8

/// Per-benchmark results across the four power states at one DRAM option.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Program name.
    pub bench: String,
    /// EDP (J·s) per state, in Fig. 7 order: Full, PC16-MB8, PC4-MB32,
    /// PC4-MB8.
    pub edp: [f64; 4],
    /// Execution cycles per state, same order.
    pub exec_cycles: [u64; 4],
}

impl Fig7Row {
    /// EDP reduction of state `i` vs Full connection, percent (positive =
    /// better).
    pub fn edp_reduction(&self, i: usize) -> f64 {
        100.0 * (1.0 - self.edp[i] / self.edp[0])
    }

    /// Execution-time change of state `i` vs Full, percent (positive =
    /// slower).
    pub fn time_increase(&self, i: usize) -> f64 {
        100.0 * (self.exec_cycles[i] as f64 / self.exec_cycles[0] as f64 - 1.0)
    }

    /// Fig. 7(b)'s scaling view: execution-time reduction going from 4
    /// cores (PC4-MB32) to 16 cores (Full), percent.
    pub fn scaling_reduction_4_to_16(&self) -> f64 {
        100.0 * (1.0 - self.exec_cycles[0] as f64 / self.exec_cycles[2] as f64)
    }
}

/// Folds a [`ExperimentPlan::fig7_at`] record stream (bench-major, one
/// record per power state) into Fig. 7 rows.
pub fn fig7_rows(records: &[RunRecord]) -> Vec<Fig7Row> {
    let per_bench = PowerState::date16_states().len();
    assert_eq!(records.len() % per_bench, 0, "fig7 grid must be complete");
    records
        .chunks(per_bench)
        .map(|chunk| {
            let mut edp = [0.0; 4];
            let mut cycles = [0u64; 4];
            for (i, rec) in chunk.iter().enumerate() {
                edp[i] = rec.derived.edp_js;
                cycles[i] = rec.metrics.cycles;
            }
            Fig7Row {
                bench: chunk[0].point.workload.clone(),
                edp,
                exec_cycles: cycles,
            }
        })
        .collect()
}

/// Runs Fig. 7: all benchmarks over the four power states at the given
/// DRAM option (Fig. 7 uses 200 ns; Fig. 8 reuses this at 63/42 ns),
/// sharded across worker threads.
pub fn fig7_at(scale: ExperimentScale, dram: DramKind) -> Vec<Fig7Row> {
    fig7_at_streamed(scale, dram, |_, _, _| {})
}

/// [`fig7_at`] with a streaming progress callback: `progress(done,
/// total, label)` fires as each of the 8 × 4 independent runs completes.
pub fn fig7_at_streamed(
    scale: ExperimentScale,
    dram: DramKind,
    progress: impl Fn(usize, usize, &str) + Sync,
) -> Vec<Fig7Row> {
    let records = ExperimentPlan::fig7_at(scale, dram)
        .run_with(&mut [], progress)
        .expect("no sinks attached: no I/O to fail");
    fig7_rows(&records)
}

/// Fig. 7 proper (200 ns DRAM).
pub fn fig7(scale: ExperimentScale) -> Vec<Fig7Row> {
    fig7_at(scale, DramKind::OffChipDdr3)
}

// Fig. 8 is the same power-state sweep at the two on-chip DRAM
// latencies: the `fig8` and `all` subcommands run
// [`ExperimentPlan::fig8_at`] with [`DramKind::WideIo`] and
// [`DramKind::Weis3d`] so each half can be timed separately.

// ------------------------------------------------------------- Open page

/// One row of the open-page DRAM sweep: the same benchmark under the
/// paper's flat-latency controller and under the 4 KB open-page
/// refinement (`dram_open_page`), at one Table I DRAM option.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenPageRow {
    /// Program name.
    pub bench: String,
    /// Execution cycles with the paper's flat latency.
    pub flat_cycles: u64,
    /// Execution cycles with the open-page controller.
    pub open_cycles: u64,
    /// EDP (J·s) with the flat latency.
    pub flat_edp: f64,
    /// EDP (J·s) with the open-page controller.
    pub open_edp: f64,
}

impl OpenPageRow {
    /// Execution-time change of open-page vs flat, percent (negative =
    /// open-page faster).
    pub fn cycle_delta_percent(&self) -> f64 {
        100.0 * (self.open_cycles as f64 / self.flat_cycles as f64 - 1.0)
    }
}

/// Folds a [`ExperimentPlan::open_page_at`] record stream (bench-major,
/// flat then open-page) into open-page rows.
pub fn open_page_rows(records: &[RunRecord]) -> Vec<OpenPageRow> {
    assert_eq!(records.len() % 2, 0, "open-page grid must be complete");
    records
        .chunks(2)
        .map(|chunk| OpenPageRow {
            bench: chunk[0].point.workload.clone(),
            flat_cycles: chunk[0].metrics.cycles,
            open_cycles: chunk[1].metrics.cycles,
            flat_edp: chunk[0].derived.edp_js,
            open_edp: chunk[1].derived.edp_js,
        })
        .collect()
}

/// Fig. 8-style open-page sweep (ROADMAP item): all benchmarks under
/// flat vs open-page DRAM timing at the given DRAM option (Full
/// connection), sharded across worker threads. Row-locality-heavy
/// programs gain from the open row; row-thrashing ones pay the conflict
/// penalty — the regression test pins the winning case.
pub fn open_page_at(scale: ExperimentScale, dram: DramKind) -> Vec<OpenPageRow> {
    let records = ExperimentPlan::open_page_at(scale, dram)
        .run()
        .expect("no sinks attached: no I/O to fail");
    open_page_rows(&records)
}

/// Mean of a per-benchmark statistic over a named group.
pub fn group_mean(rows: &[Fig7Row], group: &[SplashBenchmark], f: impl Fn(&Fig7Row) -> f64) -> f64 {
    let names: Vec<String> = group.iter().map(|b| b.to_string()).collect();
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| names.contains(&r.bench))
        .map(f)
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// Max of a per-benchmark statistic over a named group.
pub fn group_max(rows: &[Fig7Row], group: &[SplashBenchmark], f: impl Fn(&Fig7Row) -> f64) -> f64 {
    let names: Vec<String> = group.iter().map(|b| b.to_string()).collect();
    rows.iter()
        .filter(|r| names.contains(&r.bench))
        .map(f)
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot3d_sim::{run_benchmark, Metrics, SimConfig};

    fn base_config(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::date16();
        cfg.seed = seed;
        cfg
    }

    fn must_run(bench: SplashBenchmark, scale: f64, cfg: &SimConfig) -> Metrics {
        run_benchmark(bench, scale, cfg)
            .unwrap_or_else(|e| panic!("{bench} on {}: {e}", cfg.interconnect))
    }

    #[test]
    fn table1_matches_the_paper_exactly() {
        for row in table1() {
            assert_eq!(
                row.latency_cycles, row.paper_cycles,
                "{}: derived {} vs paper {}",
                row.state, row.latency_cycles, row.paper_cycles
            );
        }
    }

    #[test]
    fn fig5_lengths_contract_toward_pc4_mb8() {
        let rows = fig5();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].horizontal_mm - 7.5).abs() < 1e-9);
        assert!((rows[3].horizontal_mm - 2.5).abs() < 1e-9);
        assert!(rows[3].active_wire_mm < rows[0].active_wire_mm / 4.0);
    }

    #[test]
    fn scale_parse_accepts_factors_and_tiny() {
        assert_eq!(ExperimentScale::parse("0.5").unwrap().scale, 0.5);
        assert_eq!(ExperimentScale::parse(" 2 ").unwrap().scale, 2.0);
        assert_eq!(
            ExperimentScale::parse("tiny").unwrap(),
            ExperimentScale::tiny()
        );
        assert_eq!(
            ExperimentScale::parse("TINY").unwrap(),
            ExperimentScale::tiny()
        );
    }

    #[test]
    fn scale_parse_rejects_malformed_values() {
        // The malformed-MOT3D_SCALE path: every one of these must be
        // reported (from_env warns once and falls back to the default),
        // never silently clamped or ignored.
        for bad in ["", "huge", "0", "-1", "0x10", "nan", "inf", "-inf"] {
            let err = ExperimentScale::parse(bad);
            assert!(err.is_err(), "{bad:?} must be rejected, got {err:?}");
        }
        assert!(
            ExperimentScale::parse("nope").unwrap_err().contains("nope"),
            "error must quote the offending value"
        );
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit() {
        // The sharded harness must be invisible in the results: the
        // threaded sweep must reproduce a plain serial loop bit-for-bit.
        // (The serial reference is computed inline — no env-var games,
        // which would race with concurrent tests reading MOT3D_THREADS.)
        let scale = ExperimentScale::tiny();
        let dram = DramKind::Weis3d;
        let parallel = fig7_at(scale, dram);
        let serial: Vec<Fig7Row> = SplashBenchmark::all()
            .iter()
            .map(|bench| {
                let mut edp = [0.0; 4];
                let mut cycles = [0u64; 4];
                for (i, state) in PowerState::date16_states().into_iter().enumerate() {
                    let cfg = base_config(scale.seed)
                        .with_power_state(state)
                        .with_dram(dram);
                    let m = must_run(*bench, scale.scale, &cfg);
                    edp[i] = m.edp().value();
                    cycles[i] = m.cycles;
                }
                Fig7Row {
                    bench: bench.to_string(),
                    edp,
                    exec_cycles: cycles,
                }
            })
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn open_page_beats_flat_on_row_locality_heavy_streaming() {
        // A rank-0-dominated sequential streaming workload: during the
        // serial sections only one core issues, so its cold L2 misses
        // reach DRAM as consecutive lines of the same 4 KB row — the
        // open-page controller's best case (row hits at 0.7× latency)
        // and the regression the ROADMAP asked to pin down.
        use mot3d_sim::run_spec;
        use mot3d_workloads::WorkloadSpec;
        let spec = WorkloadSpec {
            serial_fraction: 0.9,
            mem_ratio: 0.5,
            write_fraction: 0.3,
            working_set_bytes: 8 * 1024 * 1024, // never wraps: all cold misses
            shared_fraction: 0.0,
            locality: 0.95, // sequential walk
            hot_fraction: 0.0,
            imbalance: 0.0,
            phases: 1,
            total_ops: 30_000,
            ifetch_miss_rate: 0.0, // keep the Miss bus free of code refills
            ..SplashBenchmark::OceanContiguous.spec()
        };
        let flat = run_spec(&spec, &SimConfig::date16()).unwrap();
        let open = run_spec(&spec, &SimConfig::date16().with_open_page(true)).unwrap();
        assert_eq!(
            flat.dram_accesses, open.dram_accesses,
            "page policy is timing-only"
        );
        assert!(
            open.cycles < flat.cycles,
            "open-page must win on row locality: open {} vs flat {}",
            open.cycles,
            flat.cycles
        );
    }

    #[test]
    fn open_page_sweep_covers_all_benchmarks() {
        let rows = open_page_at(ExperimentScale::tiny(), DramKind::OffChipDdr3);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.flat_cycles > 0 && r.open_cycles > 0, "{}", r.bench);
            assert!(r.flat_edp > 0.0 && r.open_edp > 0.0, "{}", r.bench);
        }
    }

    #[test]
    fn fig6_tiny_run_has_mot_winning() {
        let rows = fig6(ExperimentScale::tiny());
        assert_eq!(rows.len(), 8);
        let mean_reduction: f64 =
            rows.iter().map(|r| r.mot_reduction_vs(0)).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_reduction > 0.0,
            "MoT must beat the mesh on average: {mean_reduction:.1}%"
        );
        for r in &rows {
            assert!(
                r.l2_latency[3] < r.l2_latency[0],
                "{}: MoT L2 latency must beat the mesh",
                r.bench
            );
        }
    }
}
