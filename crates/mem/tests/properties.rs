//! Property-based tests for the memory substrate (DESIGN.md §5).
//!
//! The central invariant: a write-back cache in front of a backing store
//! never loses or reorders architectural stores — any load and the final
//! flushed state must agree with the flat golden memory.

use mot3d_mem::addr::LineAddr;
use mot3d_mem::bus::{MissBus, Transfer};
use mot3d_mem::cache::{CacheConfig, ReplacementPolicy, SetAssocCache};
use mot3d_mem::golden::GoldenMemory;
use proptest::prelude::*;

/// One architectural operation on a small address space.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64, u64),
}

fn op_strategy(lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..lines).prop_map(Op::Read),
        (0..lines, 1..u64::MAX).prop_map(|(l, v)| Op::Write(l, v)),
    ]
}

/// Runs a write-back, write-allocate cache over a backing store, checking
/// every load against the golden memory, then flushes and checks the final
/// backing state.
fn check_cache_against_golden(policy: ReplacementPolicy, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut cache: SetAssocCache<()> = SetAssocCache::new(CacheConfig {
        policy,
        ..CacheConfig::l1_date16()
    })
    .unwrap();
    let mut backing = GoldenMemory::new(); // plays the next level
    let mut golden = GoldenMemory::new(); // plays the oracle

    for &op in ops {
        match op {
            Op::Read(l) => {
                let line = LineAddr(l);
                let got = match cache.read(line) {
                    Some(v) => v,
                    None => {
                        let v = backing.read(line);
                        if let Some(ev) = cache.fill(line, v, false) {
                            if ev.dirty {
                                backing.write(ev.addr, ev.data);
                            }
                        }
                        v
                    }
                };
                prop_assert_eq!(got, golden.read(line), "load mismatch at line {}", l);
            }
            Op::Write(l, v) => {
                let line = LineAddr(l);
                golden.write(line, v);
                if !cache.write(line, v) {
                    // Write-allocate: fetch, then write.
                    let old = backing.read(line);
                    if let Some(ev) = cache.fill(line, old, false) {
                        if ev.dirty {
                            backing.write(ev.addr, ev.data);
                        }
                    }
                    prop_assert!(cache.write(line, v));
                }
            }
        }
    }

    for ev in cache.flush_invalidate_all() {
        if ev.dirty {
            backing.write(ev.addr, ev.data);
        }
    }
    for (line, want) in golden.iter() {
        prop_assert_eq!(
            backing.read(line),
            want,
            "final state mismatch at {:?}",
            line
        );
    }
    Ok(())
}

proptest! {
    /// LRU write-back cache is transparent wrt the golden memory.
    #[test]
    fn lru_cache_matches_golden(ops in prop::collection::vec(op_strategy(512), 1..400)) {
        check_cache_against_golden(ReplacementPolicy::Lru, &ops)?;
    }

    /// Tree-PLRU is equally transparent (policy changes performance, never
    /// correctness).
    #[test]
    fn plru_cache_matches_golden(ops in prop::collection::vec(op_strategy(512), 1..400)) {
        check_cache_against_golden(ReplacementPolicy::TreePlru, &ops)?;
    }

    /// FIFO too.
    #[test]
    fn fifo_cache_matches_golden(ops in prop::collection::vec(op_strategy(512), 1..400)) {
        check_cache_against_golden(ReplacementPolicy::Fifo, &ops)?;
    }

    /// Residency never exceeds capacity, and every resident address is
    /// unique.
    #[test]
    fn residency_bounded_and_unique(ops in prop::collection::vec(op_strategy(4096), 1..500)) {
        let cfg = CacheConfig::l1_date16();
        let capacity_lines = cfg.capacity_bytes / cfg.line_bytes;
        let mut cache: SetAssocCache<()> = SetAssocCache::new(cfg).unwrap();
        for &op in &ops {
            let line = match op { Op::Read(l) | Op::Write(l, _) => LineAddr(l) };
            if cache.read(line).is_none() {
                cache.fill(line, 0, false);
            }
            prop_assert!(cache.resident_lines() <= capacity_lines);
        }
        let mut addrs: Vec<_> = cache.resident_addrs().collect();
        let n = addrs.len();
        addrs.sort();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), n, "duplicate resident lines");
    }

    /// The miss bus delivers every enqueued transfer exactly once, in
    /// round-robin order across requesters, with no starvation: any
    /// transfer completes within (queued-ahead-in-own-queue + other
    /// requesters' backlog at one-each-per-round) grants.
    #[test]
    fn miss_bus_delivers_everything_fairly(
        counts in prop::collection::vec(0usize..8, 2..6),
        occupancy in 1u64..6,
    ) {
        let n = counts.len();
        let mut bus = MissBus::new(n, occupancy);
        let mut expected = 0u64;
        for (r, &c) in counts.iter().enumerate() {
            for k in 0..c {
                bus.enqueue(Transfer { requester: r, tag: (r * 100 + k) as u64 });
                expected += 1;
            }
        }
        let mut seen = Vec::new();
        let horizon = (expected + 2) * occupancy + 2;
        for now in 0..horizon {
            if let Some(t) = bus.tick(now) {
                seen.push(t);
            }
        }
        prop_assert_eq!(seen.len() as u64, expected, "lost or duplicated transfers");
        prop_assert!(bus.is_idle());
        // Per-requester FIFO order.
        for r in 0..n {
            let tags: Vec<u64> = seen.iter().filter(|t| t.requester == r).map(|t| t.tag).collect();
            let mut sorted = tags.clone();
            sorted.sort();
            prop_assert_eq!(tags, sorted, "requester {} reordered", r);
        }
    }
}
