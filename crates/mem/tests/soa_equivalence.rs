//! Differential tests for the structure-of-arrays cache layout.
//!
//! `SetAssocCache` stores tags/flags/data/payloads in flat boxed slices
//! with replacement state in a flat table. These tests pin its observable
//! behaviour — hit/miss results, victim choice, eviction contents, and
//! every `CacheStats` counter — against an independently-written
//! array-of-structs reference model, over random operation sequences and
//! all three replacement policies. Any layout change that alters a single
//! decision shows up as a counter or victim mismatch.

use mot3d_mem::addr::LineAddr;
use mot3d_mem::cache::{CacheConfig, EvictedLine, ReplacementPolicy, SetAssocCache};
use proptest::prelude::*;

/// Reference model: one struct per line, recency/insertion kept as
/// explicit per-set order lists (LRU/FIFO) or a plain node tree (PLRU).
struct RefCache {
    config: CacheConfig,
    sets: Vec<RefSet>,
    stats: RefStats,
}

#[derive(Default, Clone, Copy, PartialEq, Eq, Debug)]
struct RefStats {
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
    fills: u64,
    writebacks: u64,
}

struct RefSet {
    lines: Vec<Option<RefLine>>, // per way
    /// Way indices, least-recently-used first (LRU) or oldest-fill first
    /// (FIFO). Unused for PLRU.
    order: Vec<usize>,
    /// PLRU decision bits, root-first (one per internal node).
    plru: Vec<bool>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct RefLine {
    addr: u64,
    dirty: bool,
    data: u64,
    payload: u32,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        let ways = config.associativity;
        RefCache {
            config,
            sets: (0..config.sets())
                .map(|_| RefSet {
                    lines: vec![None; ways],
                    order: Vec::new(),
                    plru: vec![false; ways.saturating_sub(1)],
                })
                .collect(),
            stats: RefStats::default(),
        }
    }

    fn set_of(&self, line: u64) -> usize {
        ((line >> self.config.index_shift) % self.sets.len() as u64) as usize
    }

    fn way_of(&self, set: usize, line: u64) -> Option<usize> {
        self.sets[set]
            .lines
            .iter()
            .position(|l| l.is_some_and(|l| l.addr == line))
    }

    fn touch(&mut self, set: usize, way: usize) {
        let ways = self.config.associativity;
        match self.config.policy {
            ReplacementPolicy::Lru => {
                let s = &mut self.sets[set];
                s.order.retain(|&w| w != way);
                s.order.push(way); // most recent last
            }
            ReplacementPolicy::Fifo => {} // hits do not reorder FIFO
            ReplacementPolicy::TreePlru => {
                // Point every node on the root→leaf path away from `way`.
                let (mut node, mut lo, mut hi) = (0usize, 0usize, ways);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = way >= mid;
                    self.sets[set].plru[node] = !right;
                    node = 2 * node + if right { 2 } else { 1 };
                    if right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
        }
    }

    fn note_fill(&mut self, set: usize, way: usize) {
        match self.config.policy {
            ReplacementPolicy::Fifo => {
                let s = &mut self.sets[set];
                s.order.retain(|&w| w != way);
                s.order.push(way); // newest fill last
            }
            _ => self.touch(set, way),
        }
    }

    fn victim(&self, set: usize) -> usize {
        let ways = self.config.associativity;
        if let Some(free) = self.sets[set].lines.iter().position(|l| l.is_none()) {
            return free;
        }
        match self.config.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.sets[set].order[0],
            ReplacementPolicy::TreePlru => {
                let (mut node, mut lo, mut hi) = (0usize, 0usize, ways);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = self.sets[set].plru[node];
                    node = 2 * node + if right { 2 } else { 1 };
                    if right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
    }

    fn read(&mut self, line: u64) -> Option<u64> {
        let set = self.set_of(line);
        match self.way_of(set, line) {
            Some(way) => {
                self.touch(set, way);
                self.stats.read_hits += 1;
                Some(self.sets[set].lines[way].unwrap().data)
            }
            None => {
                self.stats.read_misses += 1;
                None
            }
        }
    }

    fn write(&mut self, line: u64, data: u64) -> bool {
        let set = self.set_of(line);
        match self.way_of(set, line) {
            Some(way) => {
                self.touch(set, way);
                self.stats.write_hits += 1;
                let l = self.sets[set].lines[way].as_mut().unwrap();
                l.data = data;
                l.dirty = true;
                true
            }
            None => {
                self.stats.write_misses += 1;
                false
            }
        }
    }

    fn fill(&mut self, line: u64, data: u64, dirty: bool) -> Option<(u64, u64, bool)> {
        let set = self.set_of(line);
        self.stats.fills += 1;
        if let Some(way) = self.way_of(set, line) {
            let l = self.sets[set].lines[way].as_mut().unwrap();
            l.data = data;
            l.dirty |= dirty;
            self.note_fill(set, way);
            return None;
        }
        let way = self.victim(set);
        let evicted = self.sets[set].lines[way].map(|l| (l.addr, l.data, l.dirty));
        if evicted.is_some_and(|(_, _, d)| d) {
            self.stats.writebacks += 1;
        }
        self.sets[set].lines[way] = Some(RefLine {
            addr: line,
            dirty,
            data,
            payload: 0,
        });
        self.note_fill(set, way);
        evicted
    }

    fn invalidate(&mut self, line: u64) -> Option<(u64, u64, bool)> {
        let set = self.set_of(line);
        let way = self.way_of(set, line)?;
        let l = self.sets[set].lines[way].take().unwrap();
        if l.dirty {
            self.stats.writebacks += 1;
        }
        // Dropping a way does not rewind LRU/FIFO order in the real cache
        // either: victim selection prefers free ways first.
        Some((l.addr, l.data, l.dirty))
    }
}

/// One driver operation.
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Read(u64),
    Write(u64, u64),
    Fill(u64, u64, bool),
    Invalidate(u64),
}

fn op_strategy(lines: u64) -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0..lines).prop_map(CacheOp::Read),
        (0..lines, 1..u64::MAX).prop_map(|(l, v)| CacheOp::Write(l, v)),
        (0..lines, 1..u64::MAX, any::<bool>()).prop_map(|(l, v, d)| CacheOp::Fill(l, v, d)),
        (0..lines).prop_map(CacheOp::Invalidate),
    ]
}

fn ev_tuple(ev: &EvictedLine<u32>) -> (u64, u64, bool) {
    (ev.addr.0, ev.data, ev.dirty)
}

fn check_against_reference(
    policy: ReplacementPolicy,
    ops: &[CacheOp],
) -> Result<(), TestCaseError> {
    let config = CacheConfig {
        policy,
        ..CacheConfig::l1_date16()
    };
    let mut soa: SetAssocCache<u32> = SetAssocCache::new(config).unwrap();
    let mut reference = RefCache::new(config);

    for &op in ops {
        match op {
            CacheOp::Read(l) => {
                prop_assert_eq!(soa.read(LineAddr(l)), reference.read(l), "read {}", l);
            }
            CacheOp::Write(l, v) => {
                prop_assert_eq!(soa.write(LineAddr(l), v), reference.write(l, v));
            }
            CacheOp::Fill(l, v, d) => {
                let got = soa.fill(LineAddr(l), v, d).map(|ev| ev_tuple(&ev));
                prop_assert_eq!(got, reference.fill(l, v, d), "fill {} victim", l);
            }
            CacheOp::Invalidate(l) => {
                let got = soa.invalidate(LineAddr(l)).map(|ev| ev_tuple(&ev));
                prop_assert_eq!(got, reference.invalidate(l));
            }
        }
    }

    let s = *soa.stats();
    let r = reference.stats;
    prop_assert_eq!(s.read_hits, r.read_hits);
    prop_assert_eq!(s.read_misses, r.read_misses);
    prop_assert_eq!(s.write_hits, r.write_hits);
    prop_assert_eq!(s.write_misses, r.write_misses);
    prop_assert_eq!(s.fills, r.fills);
    prop_assert_eq!(s.writebacks, r.writebacks);

    // Final resident population agrees line for line.
    let mut resident: Vec<u64> = soa.resident_addrs().map(|l| l.0).collect();
    resident.sort_unstable();
    let mut expect: Vec<u64> = reference
        .sets
        .iter()
        .flat_map(|s| s.lines.iter().flatten().map(|l| l.addr))
        .collect();
    expect.sort_unstable();
    prop_assert_eq!(resident, expect);
    Ok(())
}

proptest! {
    /// LRU: flat layout decisions match the ordered-list reference.
    #[test]
    fn lru_layout_matches_reference(ops in prop::collection::vec(op_strategy(256), 1..500)) {
        check_against_reference(ReplacementPolicy::Lru, &ops)?;
    }

    /// Tree-PLRU: flat bit table matches the per-node reference tree.
    #[test]
    fn plru_layout_matches_reference(ops in prop::collection::vec(op_strategy(256), 1..500)) {
        check_against_reference(ReplacementPolicy::TreePlru, &ops)?;
    }

    /// FIFO: flat stamps match the insertion-order reference.
    #[test]
    fn fifo_layout_matches_reference(ops in prop::collection::vec(op_strategy(256), 1..500)) {
        check_against_reference(ReplacementPolicy::Fifo, &ops)?;
    }

    /// `clear()` is indistinguishable from a fresh cache: the same op
    /// sequence replays to the same stats and the same residents.
    #[test]
    fn cleared_cache_replays_identically(ops in prop::collection::vec(op_strategy(128), 1..200)) {
        let config = CacheConfig::l1_date16();
        let mut fresh: SetAssocCache<u32> = SetAssocCache::new(config).unwrap();
        let mut reused: SetAssocCache<u32> = SetAssocCache::new(config).unwrap();
        // Dirty the reused cache with the ops, then clear.
        for &op in &ops {
            match op {
                CacheOp::Read(l) => { reused.read(LineAddr(l)); }
                CacheOp::Write(l, v) => { reused.write(LineAddr(l), v); }
                CacheOp::Fill(l, v, d) => { reused.fill(LineAddr(l), v, d); }
                CacheOp::Invalidate(l) => { reused.invalidate(LineAddr(l)); }
            }
        }
        reused.clear();
        for &op in &ops {
            match op {
                CacheOp::Read(l) => {
                    prop_assert_eq!(fresh.read(LineAddr(l)), reused.read(LineAddr(l)));
                }
                CacheOp::Write(l, v) => {
                    prop_assert_eq!(fresh.write(LineAddr(l), v), reused.write(LineAddr(l), v));
                }
                CacheOp::Fill(l, v, d) => {
                    let a = fresh.fill(LineAddr(l), v, d).map(|ev| ev_tuple(&ev));
                    let b = reused.fill(LineAddr(l), v, d).map(|ev| ev_tuple(&ev));
                    prop_assert_eq!(a, b);
                }
                CacheOp::Invalidate(l) => {
                    let a = fresh.invalidate(LineAddr(l)).map(|ev| ev_tuple(&ev));
                    let b = reused.invalidate(LineAddr(l)).map(|ev| ev_tuple(&ev));
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(fresh.stats(), reused.stats());
    }
}
