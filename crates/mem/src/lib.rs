//! # mot3d-mem — memory substrate
//!
//! The cache/DRAM substrate of the DATE 2016 3-D MoT reproduction. The
//! paper's cluster (Fig. 1, Table I) stacks a shared, multi-banked L2
//! cache over cores with private L1s, refilled from off-cluster DRAM over
//! a round-robin *Miss bus*. This crate provides every storage component:
//!
//! * [`addr`] — line/bank address decomposition (32 B lines interleaved
//!   over 32 banks);
//! * [`cache`] — a generic set-associative cache (LRU/PLRU/FIFO) used for
//!   both the 4 KB 4-way L1s and the 64 KB 8-way L2 banks, with full-tag
//!   storage so the power-gating fold needs no cache changes;
//! * [`coherence`] — per-L2-line MSI directory state for the private L1s;
//! * [`bus`] — the round-robin refill bus;
//! * [`dram`] — Table I's three DRAM options (200/63/42 ns) with an
//!   optional open-page refinement;
//! * [`golden`] — a flat oracle memory for end-to-end correctness checks;
//! * [`linemap`] — the flat open-addressed line→token map backing the
//!   DRAM store and the golden oracle.
//!
//! Data is modelled as one `u64` token per line, which is sufficient to
//! verify that no store is ever lost — including across the dirty-flush
//! sequence of a runtime power-state transition (§III).
//!
//! # Quick example
//!
//! ```
//! use mot3d_mem::addr::{AddressMap, LineAddr};
//! use mot3d_mem::cache::{CacheConfig, SetAssocCache};
//!
//! let map = AddressMap::date16();
//! let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l1_date16())?;
//! let line = map.line_of(0x8000);
//! assert_eq!(l1.read(line), None);       // cold miss
//! l1.fill(line, 7, false);               // refill from L2
//! assert_eq!(l1.read(line), Some(7));    // hit
//! # Ok::<(), mot3d_mem::cache::CacheConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod bus;
pub mod cache;
pub mod coherence;
pub mod dram;
pub mod golden;
pub mod linemap;
