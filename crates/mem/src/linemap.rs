//! A flat open-addressed map from [`LineAddr`] to data token.
//!
//! The DRAM backing store and the golden-memory oracle sit on the refill
//! path: every L2 miss reads a token and every writeback stores one. With
//! `std::collections::HashMap` each of those pays SipHash plus a bucket
//! indirection; this map replaces both with Fibonacci multiplicative
//! hashing and linear probing over two parallel flat arrays — one probe
//! usually lands in a single cache line, and lookups never allocate.
//! Entries are never removed (a memory only accretes written lines), which
//! keeps probing tombstone-free.

use crate::addr::LineAddr;

/// Fibonacci hashing constant: ⌊2⁶⁴/φ⌋, odd.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Insert-only `LineAddr → u64` map (see module docs).
///
/// # Examples
///
/// ```
/// use mot3d_mem::addr::LineAddr;
/// use mot3d_mem::linemap::LineMap;
///
/// let mut m = LineMap::new();
/// assert_eq!(m.get(LineAddr(9)), None);
/// m.insert(LineAddr(9), 77);
/// m.insert(LineAddr(9), 78); // last write wins
/// assert_eq!(m.get(LineAddr(9)), Some(78));
/// ```
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Slot keys; meaningful only where `live` is set.
    keys: Box<[u64]>,
    values: Box<[u64]>,
    live: Box<[bool]>,
    len: usize,
    /// `capacity - 1` (capacity is a power of two).
    mask: usize,
}

impl LineMap {
    const INITIAL_CAPACITY: usize = 1024;

    /// An empty map.
    pub fn new() -> Self {
        LineMap::with_capacity(Self::INITIAL_CAPACITY)
    }

    fn with_capacity(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        LineMap {
            keys: vec![0; capacity].into_boxed_slice(),
            values: vec![0; capacity].into_boxed_slice(),
            live: vec![false; capacity].into_boxed_slice(),
            len: 0,
            mask: capacity - 1,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing spreads the low-entropy line addresses; the
        // shift keeps the high (well-mixed) product bits.
        (key.wrapping_mul(PHI) >> 32) as usize & self.mask
    }

    /// The token stored for `line`, if any.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<u64> {
        let mut slot = self.slot_of(line.0);
        while self.live[slot] {
            if self.keys[slot] == line.0 {
                return Some(self.values[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
        None
    }

    /// Stores `value` for `line` (overwrites a previous token).
    pub fn insert(&mut self, line: LineAddr, value: u64) {
        if self.len * 2 >= self.keys.len() {
            self.grow();
        }
        let mut slot = self.slot_of(line.0);
        while self.live[slot] {
            if self.keys[slot] == line.0 {
                self.values[slot] = value;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
        self.keys[slot] = line.0;
        self.values[slot] = value;
        self.live[slot] = true;
        self.len += 1;
    }

    fn grow(&mut self) {
        let mut bigger = LineMap::with_capacity(self.keys.len() * 2);
        for slot in 0..self.keys.len() {
            if self.live[slot] {
                bigger.insert(LineAddr(self.keys[slot]), self.values[slot]);
            }
        }
        *self = bigger;
    }

    /// Number of distinct lines stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no line has been stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the map, keeping its capacity for reuse.
    pub fn clear(&mut self) {
        self.live.fill(false);
        self.len = 0;
    }

    /// Iterates over all stored `(line, token)` pairs (slot order).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, u64)> + '_ {
        (0..self.keys.len())
            .filter(|&s| self.live[s])
            .map(|s| (LineAddr(self.keys[s]), self.values[s]))
    }
}

impl Default for LineMap {
    fn default() -> Self {
        LineMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_lines_are_none() {
        let m = LineMap::new();
        assert_eq!(m.get(LineAddr(0)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn line_zero_is_a_real_key() {
        let mut m = LineMap::new();
        m.insert(LineAddr(0), 5);
        assert_eq!(m.get(LineAddr(0)), Some(5));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut m = LineMap::new();
        m.insert(LineAddr(7), 1);
        m.insert(LineAddr(7), 2);
        assert_eq!(m.get(LineAddr(7)), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn survives_growth_and_collisions() {
        let mut m = LineMap::new();
        // Dense sequential line addresses (the common cache pattern) well
        // past the initial capacity.
        for i in 0..10_000u64 {
            m.insert(LineAddr(i * 3), i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(LineAddr(i * 3)), Some(i), "line {}", i * 3);
        }
        assert_eq!(m.get(LineAddr(1)), None);
    }

    #[test]
    fn clear_retains_capacity_and_empties() {
        let mut m = LineMap::new();
        for i in 0..100u64 {
            m.insert(LineAddr(i), i);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(LineAddr(4)), None);
        m.insert(LineAddr(4), 9);
        assert_eq!(m.get(LineAddr(4)), Some(9));
    }

    #[test]
    fn iter_yields_every_entry_once() {
        let mut m = LineMap::new();
        for i in 0..50u64 {
            m.insert(LineAddr(i * 17), i);
        }
        let mut seen: Vec<_> = m.iter().collect();
        seen.sort();
        assert_eq!(seen.len(), 50);
        for (i, (line, v)) in seen.iter().enumerate() {
            assert_eq!(line.0, i as u64 * 17);
            assert_eq!(*v, i as u64);
        }
    }
}
