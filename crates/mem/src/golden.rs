//! Golden functional-memory oracle.
//!
//! A flat map from line address to data token, updated instantly on every
//! architectural store. Tests compare the cache hierarchy's observable
//! state (loads, final flushed contents) against this oracle — in
//! particular across the paper's runtime bank power-gating, whose dirty
//! writeback sequence must never lose a store.

use crate::addr::LineAddr;
use crate::linemap::LineMap;

/// The oracle memory.
///
/// # Examples
///
/// ```
/// use mot3d_mem::addr::LineAddr;
/// use mot3d_mem::golden::GoldenMemory;
///
/// let mut golden = GoldenMemory::new();
/// golden.write(LineAddr(3), 99);
/// assert_eq!(golden.read(LineAddr(3)), 99);
/// assert_eq!(golden.read(LineAddr(4)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GoldenMemory {
    store: LineMap,
}

impl GoldenMemory {
    /// Creates an empty oracle (every line reads 0).
    pub fn new() -> Self {
        GoldenMemory::default()
    }

    /// The architecturally-correct token of a line.
    pub fn read(&self, line: LineAddr) -> u64 {
        self.store.get(line).unwrap_or(0)
    }

    /// Records an architectural store.
    pub fn write(&mut self, line: LineAddr, data: u64) {
        self.store.insert(line, data);
    }

    /// Number of lines ever written.
    pub fn written_lines(&self) -> usize {
        self.store.len()
    }

    /// Iterates over all written lines and their tokens.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, u64)> + '_ {
        self.store.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_lines_read_zero() {
        let g = GoldenMemory::new();
        assert_eq!(g.read(LineAddr(123)), 0);
        assert_eq!(g.written_lines(), 0);
    }

    #[test]
    fn last_write_wins() {
        let mut g = GoldenMemory::new();
        g.write(LineAddr(1), 10);
        g.write(LineAddr(1), 20);
        assert_eq!(g.read(LineAddr(1)), 20);
        assert_eq!(g.written_lines(), 1);
    }

    #[test]
    fn iter_covers_all_writes() {
        let mut g = GoldenMemory::new();
        g.write(LineAddr(1), 10);
        g.write(LineAddr(2), 20);
        let mut seen: Vec<_> = g.iter().collect();
        seen.sort();
        assert_eq!(seen, vec![(LineAddr(1), 10), (LineAddr(2), 20)]);
    }
}
