//! Set-associative cache core.
//!
//! One generic implementation serves both levels of the paper's hierarchy:
//! the private L1 I/D caches (4 KB, 32 B lines, 4-way, LRU — Table I) and
//! each 64 KB, 8-way L2 bank. The cache is generic over a per-line payload
//! `P`, which the L2 uses to attach MSI directory state.
//!
//! Tags store the full line address, so lines folded onto a bank by the
//! power-gating remap (whose *home* bank index differs in the ignored
//! bits, Fig. 4) coexist without aliasing — exactly the paper's "cache
//! data ... will evenly be distributed \[to\] the rest of cache banks" with
//! no change to the cache architecture.
//!
//! Data is modelled as one `u64` token per line (a version stamp written
//! by stores), which is what the golden-memory oracle checks end to end —
//! including across the dirty-flush sequence of a runtime power-state
//! switch.

mod replacement;

pub use replacement::ReplacementPolicy;
use replacement::ReplacerTable;

use crate::addr::LineAddr;
use std::error::Error;
use std::fmt;

/// Cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
    /// How many low line-address bits to skip when forming the set index
    /// (L2 banks skip their bank-index bits; L1 uses 0).
    pub index_shift: u32,
}

impl CacheConfig {
    /// Table I private L1: 4 KB, 32 B lines, 4-way, LRU.
    pub fn l1_date16() -> Self {
        CacheConfig {
            capacity_bytes: 4 * 1024,
            line_bytes: 32,
            associativity: 4,
            policy: ReplacementPolicy::Lru,
            index_shift: 0,
        }
    }

    /// Table I L2 bank: 64 KB, 32 B lines, 8-way; set index skips the five
    /// bank-interleaving bits.
    pub fn l2_bank_date16() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            line_bytes: 32,
            associativity: 8,
            policy: ReplacementPolicy::Lru,
            index_shift: 5,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.associativity)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] when fields are zero, non-power-of-two
    /// where required, or inconsistent.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(CacheConfigError::NotPowerOfTwo(
                "line_bytes",
                self.line_bytes,
            ));
        }
        if self.associativity == 0 {
            return Err(CacheConfigError::Zero("associativity"));
        }
        let set_bytes = self.line_bytes * self.associativity;
        if self.capacity_bytes == 0 || self.capacity_bytes % set_bytes != 0 {
            return Err(CacheConfigError::CapacityNotDivisible {
                capacity: self.capacity_bytes,
                set_bytes,
            });
        }
        if !self.sets().is_power_of_two() {
            return Err(CacheConfigError::NotPowerOfTwo("sets", self.sets()));
        }
        Ok(())
    }
}

/// Errors from invalid [`CacheConfig`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheConfigError {
    /// A field that must be a power of two is not.
    NotPowerOfTwo(&'static str, usize),
    /// A field that must be positive is zero.
    Zero(&'static str),
    /// Capacity does not divide into whole sets.
    CapacityNotDivisible {
        /// The requested capacity.
        capacity: usize,
        /// Bytes per set.
        set_bytes: usize,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::NotPowerOfTwo(field, v) => {
                write!(f, "{field} must be a power of two, got {v}")
            }
            CacheConfigError::Zero(field) => write!(f, "{field} must be non-zero"),
            CacheConfigError::CapacityNotDivisible {
                capacity,
                set_bytes,
            } => write!(
                f,
                "capacity {capacity} B does not divide into {set_bytes} B sets"
            ),
        }
    }
}

impl Error for CacheConfigError {}

/// A line evicted, invalidated, or flushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine<P> {
    /// The line's address.
    pub addr: LineAddr,
    /// The line's data token.
    pub data: u64,
    /// Whether it was dirty (needs writing to the next level).
    pub dirty: bool,
    /// The per-line payload (directory state for L2).
    pub payload: P,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Dirty lines pushed out (evictions + invalidations + flushes).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Miss ratio over all accesses (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            return 0.0;
        }
        (self.read_misses + self.write_misses) as f64 / acc as f64
    }
}

/// Way-slot flag bit: the slot holds a line.
const FLAG_VALID: u8 = 1 << 0;
/// Way-slot flag bit: the line has been written since fill.
const FLAG_DIRTY: u8 = 1 << 1;

/// A resolved `(set, way)` slot of a resident line.
///
/// The hot transaction paths resolve a line's slot once with
/// [`SetAssocCache::find`] (or get it back from
/// [`SetAssocCache::fill_slot`]) and then use the `*_at` accessors,
/// instead of paying the associative tag scan again for every
/// `peek`/`payload`/`read`/`write` on the same line.
///
/// A handle is a plain coordinate, not a lock: it stays valid only while
/// the line stays resident. Any intervening `fill`/`invalidate`/`clear`
/// on the same cache may repurpose the slot, after which the handle must
/// be re-resolved (the `*_at` accessors `debug_assert` validity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHandle {
    set: u32,
    way: u32,
}

/// A set-associative cache with per-line payloads.
///
/// ## Layout
///
/// Structure-of-arrays: tags, flags (valid/dirty bits), data tokens, and
/// payloads each live in one flat boxed slice indexed by
/// `set * ways + way`, with replacement state in a matching flat
/// [`ReplacerTable`]. A lookup therefore scans `ways` adjacent tag words
/// of a single allocation (one or two cache lines) instead of chasing
/// per-set `Vec`s, and no operation on the access path — including
/// victim selection — allocates.
///
/// # Examples
///
/// ```
/// use mot3d_mem::addr::LineAddr;
/// use mot3d_mem::cache::{CacheConfig, SetAssocCache};
///
/// let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l1_date16())?;
/// assert_eq!(l1.read(LineAddr(7)), None); // cold miss
/// l1.fill(LineAddr(7), 42, false);
/// assert_eq!(l1.read(LineAddr(7)), Some(42));
/// # Ok::<(), mot3d_mem::cache::CacheConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<P> {
    config: CacheConfig,
    /// `sets() - 1`; sets are a power of two, so this masks the index.
    set_mask: u64,
    ways: usize,
    /// Tag (full line address) per way slot, set-major.
    tags: Box<[u64]>,
    /// Valid/dirty bits per way slot, set-major.
    flags: Box<[u8]>,
    /// Data token per way slot, set-major.
    data: Box<[u64]>,
    /// Per-line payload (directory state for L2), set-major.
    payloads: Box<[P]>,
    replacer: ReplacerTable,
    stats: CacheStats,
}

impl<P: Default + Clone> SetAssocCache<P> {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the configuration is invalid.
    pub fn new(config: CacheConfig) -> Result<Self, CacheConfigError> {
        config.validate()?;
        let sets = config.sets();
        let ways = config.associativity;
        let slots = sets * ways;
        Ok(SetAssocCache {
            config,
            set_mask: sets as u64 - 1,
            ways,
            tags: vec![0; slots].into_boxed_slice(),
            flags: vec![0; slots].into_boxed_slice(),
            data: vec![0; slots].into_boxed_slice(),
            payloads: (0..slots)
                .map(|_| P::default())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            replacer: ReplacerTable::new(config.policy, sets, ways),
            stats: CacheStats::default(),
        })
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        ((line.0 >> self.config.index_shift) & self.set_mask) as usize
    }

    /// Index of `set`'s first way slot in the flat arrays.
    #[inline]
    fn base(&self, set: usize) -> usize {
        set * self.ways
    }

    /// The flat slot holding `line` in `set`, if resident.
    #[inline]
    fn find_slot(&self, set: usize, line: LineAddr) -> Option<usize> {
        let base = self.base(set);
        (base..base + self.ways)
            .find(|&s| self.flags[s] & FLAG_VALID != 0 && self.tags[s] == line.0)
    }

    /// Reads a line: on hit, touches LRU state and returns the data token.
    // mot3d-lint: no-alloc
    pub fn read(&mut self, line: LineAddr) -> Option<u64> {
        let set = self.set_index(line);
        match self.find_slot(set, line) {
            Some(slot) => {
                self.replacer.touch(set, slot - self.base(set));
                self.stats.read_hits += 1;
                Some(self.data[slot])
            }
            None => {
                self.stats.read_misses += 1;
                None
            }
        }
    }

    /// Writes a line in place: on hit, stores the token, sets dirty, and
    /// returns `true`. On miss returns `false` (write-allocate is the
    /// caller's job via [`SetAssocCache::fill`]).
    // mot3d-lint: no-alloc
    pub fn write(&mut self, line: LineAddr, data: u64) -> bool {
        let set = self.set_index(line);
        match self.find_slot(set, line) {
            Some(slot) => {
                self.replacer.touch(set, slot - self.base(set));
                self.stats.write_hits += 1;
                self.data[slot] = data;
                self.flags[slot] |= FLAG_DIRTY;
                true
            }
            None => {
                self.stats.write_misses += 1;
                false
            }
        }
    }

    /// Inserts a line (after a miss was serviced below), evicting a victim
    /// if the set is full. Returns the evicted line, if any.
    ///
    /// If the line is already present it is overwritten in place (no
    /// eviction).
    // mot3d-lint: no-alloc
    pub fn fill(&mut self, line: LineAddr, data: u64, dirty: bool) -> Option<EvictedLine<P>> {
        self.fill_slot(line, data, dirty).1
    }

    /// [`SetAssocCache::fill`] that also hands back the filled line's
    /// [`SlotHandle`], so refill paths can keep accessing the line
    /// without re-probing the tags.
    // mot3d-lint: no-alloc
    pub fn fill_slot(
        &mut self,
        line: LineAddr,
        data: u64,
        dirty: bool,
    ) -> (SlotHandle, Option<EvictedLine<P>>) {
        let set = self.set_index(line);
        self.stats.fills += 1;
        if let Some(slot) = self.find_slot(set, line) {
            self.data[slot] = data;
            if dirty {
                self.flags[slot] |= FLAG_DIRTY;
            }
            let way = slot - self.base(set);
            self.replacer.fill(set, way);
            return (
                SlotHandle {
                    set: set as u32,
                    way: way as u32,
                },
                None,
            );
        }
        let base = self.base(set);
        let valid = &self.flags[base..base + self.ways];
        let way = self.replacer.victim(set, |w| valid[w] & FLAG_VALID != 0);
        let slot = base + way;
        let evicted = (self.flags[slot] & FLAG_VALID != 0).then(|| EvictedLine {
            addr: LineAddr(self.tags[slot]),
            data: self.data[slot],
            dirty: self.flags[slot] & FLAG_DIRTY != 0,
            payload: std::mem::take(&mut self.payloads[slot]),
        });
        if evicted.as_ref().is_some_and(|e| e.dirty) {
            self.stats.writebacks += 1;
        }
        self.tags[slot] = line.0;
        self.flags[slot] = FLAG_VALID | if dirty { FLAG_DIRTY } else { 0 };
        self.data[slot] = data;
        self.payloads[slot] = P::default();
        self.replacer.fill(set, way);
        (
            SlotHandle {
                set: set as u32,
                way: way as u32,
            },
            evicted,
        )
    }

    /// Resolves a resident line to its [`SlotHandle`] without touching
    /// replacement state or counters (like [`SetAssocCache::peek`], this
    /// is not an access — the handle-taking accessors do the per-access
    /// bookkeeping).
    // mot3d-lint: no-alloc
    #[inline]
    pub fn find(&self, line: LineAddr) -> Option<SlotHandle> {
        let set = self.set_index(line);
        self.find_slot(set, line).map(|slot| SlotHandle {
            set: set as u32,
            way: (slot - self.base(set)) as u32,
        })
    }

    /// Flat array index of a handle's slot.
    #[inline]
    fn slot_of(&self, h: SlotHandle) -> usize {
        debug_assert!(
            self.flags[h.set as usize * self.ways + h.way as usize] & FLAG_VALID != 0,
            "stale SlotHandle: slot no longer holds a valid line"
        );
        h.set as usize * self.ways + h.way as usize
    }

    /// Reads through a resolved handle: touches LRU state, counts a read
    /// hit, returns the data token — identical side effects to a hitting
    /// [`SetAssocCache::read`].
    // mot3d-lint: no-alloc
    #[inline]
    pub fn read_at(&mut self, h: SlotHandle) -> u64 {
        let slot = self.slot_of(h);
        self.replacer.touch(h.set as usize, h.way as usize);
        self.stats.read_hits += 1;
        self.data[slot]
    }

    /// Writes through a resolved handle: touches LRU state, counts a
    /// write hit, stores the token, sets dirty — identical side effects
    /// to a hitting [`SetAssocCache::write`].
    // mot3d-lint: no-alloc
    #[inline]
    pub fn write_at(&mut self, h: SlotHandle, data: u64) {
        let slot = self.slot_of(h);
        self.replacer.touch(h.set as usize, h.way as usize);
        self.stats.write_hits += 1;
        self.data[slot] = data;
        self.flags[slot] |= FLAG_DIRTY;
    }

    /// Data token and dirty bit through a resolved handle, without
    /// touching replacement state or counters (the handle analogue of
    /// [`SetAssocCache::peek`]).
    // mot3d-lint: no-alloc
    #[inline]
    pub fn peek_at(&self, h: SlotHandle) -> (u64, bool) {
        let slot = self.slot_of(h);
        (self.data[slot], self.flags[slot] & FLAG_DIRTY != 0)
    }

    /// Shared payload access through a resolved handle.
    // mot3d-lint: no-alloc
    #[inline]
    pub fn payload_at(&self, h: SlotHandle) -> &P {
        let slot = self.slot_of(h);
        &self.payloads[slot]
    }

    /// Mutable payload access through a resolved handle.
    // mot3d-lint: no-alloc
    #[inline]
    pub fn payload_at_mut(&mut self, h: SlotHandle) -> &mut P {
        let slot = self.slot_of(h);
        &mut self.payloads[slot]
    }

    /// Looks at a line without touching replacement state or counters.
    // mot3d-lint: no-alloc
    pub fn peek(&self, line: LineAddr) -> Option<(u64, bool)> {
        let set = self.set_index(line);
        self.find_slot(set, line)
            .map(|slot| (self.data[slot], self.flags[slot] & FLAG_DIRTY != 0))
    }

    /// Mutable access to a resident line's payload (directory state).
    pub fn payload_mut(&mut self, line: LineAddr) -> Option<&mut P> {
        let set = self.set_index(line);
        let slot = self.find_slot(set, line)?;
        Some(&mut self.payloads[slot])
    }

    /// Shared access to a resident line's payload.
    pub fn payload(&self, line: LineAddr) -> Option<&P> {
        let set = self.set_index(line);
        let slot = self.find_slot(set, line)?;
        Some(&self.payloads[slot])
    }

    /// Removes a line if present, returning it (dirty lines must be
    /// written back by the caller).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine<P>> {
        let set = self.set_index(line);
        let slot = self.find_slot(set, line)?;
        let dirty = self.flags[slot] & FLAG_DIRTY != 0;
        self.flags[slot] = 0;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(EvictedLine {
            addr: LineAddr(self.tags[slot]),
            data: self.data[slot],
            dirty,
            payload: std::mem::take(&mut self.payloads[slot]),
        })
    }

    /// Empties the whole cache, returning every resident line. This is the
    /// paper's bank power-off sequence: "dirty cache blocks in the
    /// power-off banks must be written back ... for data coherency".
    pub fn flush_invalidate_all(&mut self) -> Vec<EvictedLine<P>> {
        let mut out = Vec::new();
        for slot in 0..self.flags.len() {
            if self.flags[slot] & FLAG_VALID != 0 {
                let dirty = self.flags[slot] & FLAG_DIRTY != 0;
                if dirty {
                    self.stats.writebacks += 1;
                }
                out.push(EvictedLine {
                    addr: LineAddr(self.tags[slot]),
                    data: self.data[slot],
                    dirty,
                    payload: std::mem::take(&mut self.payloads[slot]),
                });
                self.flags[slot] = 0;
            }
        }
        out
    }

    /// Empties the cache and resets replacement state and statistics to
    /// construction time, without reallocating the line arrays. A cleared
    /// cache behaves bit-identically to a freshly built one.
    pub fn clear(&mut self) {
        self.tags.fill(0);
        self.flags.fill(0);
        self.data.fill(0);
        for p in self.payloads.iter_mut() {
            *p = P::default();
        }
        self.replacer.reset();
        self.stats = CacheStats::default();
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.flags.iter().filter(|f| **f & FLAG_VALID != 0).count()
    }

    /// Iterates over resident line addresses.
    pub fn resident_addrs(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.flags
            .iter()
            .zip(self.tags.iter())
            .filter(|(f, _)| **f & FLAG_VALID != 0)
            .map(|(_, t)| LineAddr(*t))
    }
}

// `P: Default` is required by `std::mem::take`; payloads are plain data.

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> SetAssocCache<()> {
        SetAssocCache::new(CacheConfig::l1_date16()).unwrap()
    }

    #[test]
    fn table1_geometries() {
        assert_eq!(CacheConfig::l1_date16().sets(), 32);
        assert_eq!(CacheConfig::l2_bank_date16().sets(), 256);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = l1();
        assert_eq!(c.read(LineAddr(100)), None);
        c.fill(LineAddr(100), 5, false);
        assert_eq!(c.read(LineAddr(100)), Some(5));
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = l1();
        c.fill(LineAddr(3), 1, false);
        assert!(c.write(LineAddr(3), 9));
        assert_eq!(c.peek(LineAddr(3)), Some((9, true)));
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut c = l1();
        assert!(!c.write(LineAddr(3), 9));
        assert_eq!(c.peek(LineAddr(3)), None);
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn conflict_eviction_is_lru() {
        let mut c = l1();
        let sets = c.config().sets() as u64;
        // 5 lines in the same set of a 4-way cache: the first fill is
        // evicted.
        let lines: Vec<LineAddr> = (0..5).map(|i| LineAddr(7 + i * sets)).collect();
        for (i, &line) in lines.iter().take(4).enumerate() {
            c.fill(line, i as u64, false);
        }
        let evicted = c.fill(lines[4], 99, false).expect("set overflow evicts");
        assert_eq!(evicted.addr, lines[0]);
        assert!(!evicted.dirty);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = l1();
        let sets = c.config().sets() as u64;
        let lines: Vec<LineAddr> = (0..5).map(|i| LineAddr(2 + i * sets)).collect();
        c.fill(lines[0], 0, false);
        c.write(lines[0], 42);
        for (i, &line) in lines.iter().enumerate().skip(1).take(3) {
            c.fill(line, i as u64, false);
        }
        let evicted = c.fill(lines[4], 99, false).unwrap();
        assert_eq!(evicted.addr, lines[0]);
        assert!(evicted.dirty);
        assert_eq!(evicted.data, 42);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn touch_on_read_protects_from_eviction() {
        let mut c = l1();
        let sets = c.config().sets() as u64;
        let lines: Vec<LineAddr> = (0..5).map(|i| LineAddr(1 + i * sets)).collect();
        for &line in lines.iter().take(4) {
            c.fill(line, 0, false);
        }
        c.read(lines[0]); // most recently used now
        let evicted = c.fill(lines[4], 0, false).unwrap();
        assert_eq!(evicted.addr, lines[1]);
    }

    #[test]
    fn refill_existing_line_updates_in_place() {
        let mut c = l1();
        c.fill(LineAddr(8), 1, false);
        assert!(c.fill(LineAddr(8), 2, true).is_none());
        assert_eq!(c.peek(LineAddr(8)), Some((2, true)));
    }

    #[test]
    fn invalidate_returns_line_once() {
        let mut c = l1();
        c.fill(LineAddr(5), 3, false);
        c.write(LineAddr(5), 4);
        let inv = c.invalidate(LineAddr(5)).unwrap();
        assert!(inv.dirty);
        assert_eq!(inv.data, 4);
        assert!(c.invalidate(LineAddr(5)).is_none());
        assert_eq!(c.read(LineAddr(5)), None);
    }

    #[test]
    fn flush_empties_and_reports_dirty() {
        let mut c = l1();
        c.fill(LineAddr(1), 10, false);
        c.fill(LineAddr(2), 20, false);
        c.write(LineAddr(2), 21);
        let flushed = c.flush_invalidate_all();
        assert_eq!(flushed.len(), 2);
        let dirty: Vec<_> = flushed.iter().filter(|e| e.dirty).collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].addr, LineAddr(2));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn index_shift_separates_l2_sets() {
        // Two lines differing only in bank bits map to the same set of an
        // L2 bank (they'd live in different banks normally; under the
        // power-gating fold they coexist via distinct full tags).
        let mut c: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l2_bank_date16()).unwrap();
        let a = LineAddr(0b00000); // home bank 0
        let b = LineAddr(0b00010); // home bank 2
        c.fill(a, 1, false);
        c.fill(b, 2, false);
        assert_eq!(c.read(a), Some(1));
        assert_eq!(c.read(b), Some(2));
    }

    #[test]
    fn rejects_bad_configs() {
        let mut bad = CacheConfig::l1_date16();
        bad.capacity_bytes = 5000;
        assert!(SetAssocCache::<()>::new(bad).is_err());
        let mut bad2 = CacheConfig::l1_date16();
        bad2.line_bytes = 24;
        assert!(matches!(
            SetAssocCache::<()>::new(bad2),
            Err(CacheConfigError::NotPowerOfTwo("line_bytes", 24))
        ));
    }

    #[test]
    fn handle_ops_match_line_ops_side_effects() {
        // Drive one cache through line ops and a twin through handle
        // ops: stats, dirty bits, and LRU victim choice must agree.
        let mut by_line = l1();
        let mut by_handle = l1();
        let sets = by_line.config().sets() as u64;
        let lines: Vec<LineAddr> = (0..4).map(|i| LineAddr(9 + i * sets)).collect();
        for (i, &line) in lines.iter().enumerate() {
            by_line.fill(line, i as u64, false);
            let (h, ev) = by_handle.fill_slot(line, i as u64, false);
            assert!(ev.is_none());
            assert_eq!(by_handle.find(line), Some(h));
        }
        assert_eq!(by_line.read(lines[0]), Some(0));
        let h0 = by_handle.find(lines[0]).unwrap();
        assert_eq!(by_handle.read_at(h0), 0);
        assert!(by_line.write(lines[1], 77));
        let h1 = by_handle.find(lines[1]).unwrap();
        by_handle.write_at(h1, 77);
        assert_eq!(by_handle.peek_at(h1), (77, true));
        assert_eq!(by_line.stats(), by_handle.stats());
        // Same victim on the next conflict fill.
        let newcomer = LineAddr(9 + 4 * sets);
        let ev_line = by_line.fill(newcomer, 5, false).unwrap();
        let (_, ev_handle) = by_handle.fill_slot(newcomer, 5, false);
        let ev_handle = ev_handle.unwrap();
        assert_eq!(ev_line.addr, ev_handle.addr);
        assert_eq!(ev_line.dirty, ev_handle.dirty);
    }

    #[test]
    fn fill_slot_handle_points_at_the_line() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(CacheConfig::l2_bank_date16()).unwrap();
        let line = LineAddr(0x1234);
        let (h, _) = c.fill_slot(line, 11, false);
        assert_eq!(c.find(line), Some(h));
        assert_eq!(c.peek_at(h), (11, false));
        *c.payload_at_mut(h) = 42;
        assert_eq!(c.payload(line), Some(&42));
        assert_eq!(c.payload_at(h), &42);
        // Refilling an already-resident line returns the same slot.
        let (h2, ev) = c.fill_slot(line, 12, true);
        assert_eq!(h2, h);
        assert!(ev.is_none());
        assert_eq!(c.peek_at(h), (12, true));
    }

    #[test]
    fn find_does_not_touch_stats_or_lru() {
        let mut c = l1();
        let sets = c.config().sets() as u64;
        let lines: Vec<LineAddr> = (0..5).map(|i| LineAddr(3 + i * sets)).collect();
        for &line in lines.iter().take(4) {
            c.fill(line, 0, false);
        }
        let stats_before = *c.stats();
        assert!(c.find(lines[0]).is_some());
        assert!(c.find(LineAddr(0xdead_0000)).is_none());
        assert_eq!(*c.stats(), stats_before);
        // lines[0] was only `find`-ed, not touched: still the LRU victim.
        let ev = c.fill(lines[4], 0, false).unwrap();
        assert_eq!(ev.addr, lines[0]);
    }

    #[test]
    fn miss_ratio_counts_reads_and_writes() {
        let mut c = l1();
        c.read(LineAddr(1)); // miss
        c.fill(LineAddr(1), 0, false);
        c.read(LineAddr(1)); // hit
        c.write(LineAddr(1), 1); // hit
        c.write(LineAddr(2), 1); // miss
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
