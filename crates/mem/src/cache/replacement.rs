//! Replacement policies for set-associative caches.
//!
//! Table I specifies LRU for the private L1s; the L2 banks use LRU too
//! (8-way). Tree-PLRU and FIFO are provided for ablation studies of the
//! replacement choice (see the `replacement` bench in `mot3d-bench`).

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used via access timestamps (Table I).
    #[default]
    Lru,
    /// Tree pseudo-LRU: one decision bit per binary-tree node.
    TreePlru,
    /// First-in first-out by fill time.
    Fifo,
}

/// Per-set replacement state, sized for the set's associativity.
#[derive(Debug, Clone)]
pub(crate) enum SetReplacer {
    Lru { stamps: Vec<u64>, clock: u64 },
    TreePlru { bits: Vec<bool>, ways: usize },
    Fifo { filled: Vec<u64>, clock: u64 },
}

impl SetReplacer {
    pub(crate) fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        match policy {
            ReplacementPolicy::Lru => SetReplacer::Lru {
                stamps: vec![0; ways],
                clock: 0,
            },
            ReplacementPolicy::TreePlru => SetReplacer::TreePlru {
                // A complete binary tree over `ways` leaves has `ways - 1`
                // internal nodes (ways is a power of two for PLRU).
                bits: vec![false; ways.saturating_sub(1)],
                ways,
            },
            ReplacementPolicy::Fifo => SetReplacer::Fifo {
                filled: vec![0; ways],
                clock: 0,
            },
        }
    }

    /// Records a hit/use of `way`.
    pub(crate) fn touch(&mut self, way: usize) {
        match self {
            SetReplacer::Lru { stamps, clock } => {
                *clock += 1;
                stamps[way] = *clock;
            }
            SetReplacer::TreePlru { bits, ways } => {
                // Walk from the root to the leaf, pointing every node away
                // from the path just used.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = way >= mid;
                    bits[node] = !go_right; // next victim search goes the other way
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            SetReplacer::Fifo { .. } => {} // FIFO ignores hits
        }
    }

    /// Records that `way` was (re)filled.
    pub(crate) fn fill(&mut self, way: usize) {
        match self {
            SetReplacer::Fifo { filled, clock } => {
                *clock += 1;
                filled[way] = *clock;
            }
            _ => self.touch(way),
        }
    }

    /// Chooses the victim way among `valid` ways (invalid ways win
    /// immediately).
    pub(crate) fn victim(&self, valid: &[bool]) -> usize {
        if let Some(free) = valid.iter().position(|v| !v) {
            return free;
        }
        match self {
            SetReplacer::Lru { stamps, .. } => index_of_min(stamps),
            SetReplacer::Fifo { filled, .. } => index_of_min(filled),
            SetReplacer::TreePlru { bits, ways } => {
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = bits[node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
    }
}

fn index_of_min(values: &[u64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by_key(|(_, v)| **v)
        .map(|(i, _)| i)
        .expect("sets have at least one way")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = SetReplacer::new(ReplacementPolicy::Lru, 4);
        for way in 0..4 {
            r.fill(way);
        }
        r.touch(0); // order now: 1 oldest, then 2, 3, 0
        assert_eq!(r.victim(&[true; 4]), 1);
        r.touch(1);
        assert_eq!(r.victim(&[true; 4]), 2);
    }

    #[test]
    fn invalid_way_wins_over_policy() {
        let mut r = SetReplacer::new(ReplacementPolicy::Lru, 4);
        for way in 0..4 {
            r.fill(way);
        }
        assert_eq!(r.victim(&[true, true, false, true]), 2);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut r = SetReplacer::new(ReplacementPolicy::Fifo, 2);
        r.fill(0);
        r.fill(1);
        r.touch(0); // should not save way 0
        assert_eq!(r.victim(&[true, true]), 0);
    }

    #[test]
    fn plru_victim_avoids_recent_path() {
        let mut r = SetReplacer::new(ReplacementPolicy::TreePlru, 4);
        for way in 0..4 {
            r.fill(way);
        }
        r.touch(3);
        let v = r.victim(&[true; 4]);
        assert_ne!(v, 3, "just-touched way must not be the victim");
    }

    #[test]
    fn plru_single_way_degenerates() {
        let r = SetReplacer::new(ReplacementPolicy::TreePlru, 1);
        assert_eq!(r.victim(&[true]), 0);
    }

    #[test]
    fn all_policies_cover_all_ways_eventually() {
        // Filling W distinct new lines into a W-way set must evict every
        // way exactly once under any policy.
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
        ] {
            let ways = 4;
            let mut r = SetReplacer::new(policy, ways);
            let mut valid = vec![false; ways];
            let mut seen = vec![false; ways];
            for _ in 0..ways {
                let v = r.victim(&valid);
                assert!(!seen[v], "{policy:?} repeated victim {v}");
                seen[v] = true;
                valid[v] = true;
                r.fill(v);
            }
            assert!(seen.iter().all(|s| *s));
        }
    }
}
