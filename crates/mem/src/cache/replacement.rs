//! Replacement policies for set-associative caches.
//!
//! Table I specifies LRU for the private L1s; the L2 banks use LRU too
//! (8-way). Tree-PLRU and FIFO are provided for ablation studies of the
//! replacement choice (see the `replacement` bench in `mot3d-bench`).
//!
//! State for *all* sets lives in one flat table ([`ReplacerTable`]) —
//! per-set stamps/bits are contiguous slices of shared arrays rather than
//! one heap object per set, so a cache access touches at most two cache
//! lines of replacer state and victim selection never allocates.

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used via access timestamps (Table I).
    #[default]
    Lru,
    /// Tree pseudo-LRU: one decision bit per binary-tree node.
    TreePlru,
    /// First-in first-out by fill time.
    Fifo,
}

/// Flat replacement state for every set of one cache.
///
/// Layout: LRU and FIFO keep one `u64` stamp per (set, way) plus one
/// logical clock per set; Tree-PLRU keeps `ways − 1` decision bits per
/// set. Each policy allocates only the arrays it uses, once, at
/// construction.
#[derive(Debug, Clone)]
pub(crate) struct ReplacerTable {
    policy: ReplacementPolicy,
    ways: usize,
    /// Per-(set, way) access/fill stamps (LRU, FIFO), set-major.
    stamps: Box<[u64]>,
    /// Per-set logical clocks (LRU, FIFO).
    clocks: Box<[u64]>,
    /// Per-set PLRU decision bits, `ways − 1` each, set-major.
    bits: Box<[bool]>,
}

impl ReplacerTable {
    pub(crate) fn new(policy: ReplacementPolicy, sets: usize, ways: usize) -> Self {
        let (stamp_len, bit_len) = match policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (sets * ways, 0),
            // A complete binary tree over `ways` leaves has `ways - 1`
            // internal nodes (ways is a power of two for PLRU).
            ReplacementPolicy::TreePlru => (0, sets * ways.saturating_sub(1)),
        };
        ReplacerTable {
            policy,
            ways,
            stamps: vec![0; stamp_len].into_boxed_slice(),
            clocks: vec![0; if bit_len == 0 { sets } else { 0 }].into_boxed_slice(),
            bits: vec![false; bit_len].into_boxed_slice(),
        }
    }

    /// Restores construction-time state without reallocating.
    pub(crate) fn reset(&mut self) {
        self.stamps.fill(0);
        self.clocks.fill(0);
        self.bits.fill(false);
    }

    /// Walks the PLRU tree from the root to `way`'s leaf, pointing every
    /// node away from the path just used.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let bits = &mut self.bits[set * (self.ways - 1)..(set + 1) * (self.ways - 1)];
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            bits[node] = !go_right; // next victim search goes the other way
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    /// Records a hit/use of `way` in `set`.
    pub(crate) fn touch(&mut self, set: usize, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clocks[set] += 1;
                self.stamps[set * self.ways + way] = self.clocks[set];
            }
            ReplacementPolicy::TreePlru => {
                if self.ways > 1 {
                    self.plru_touch(set, way);
                }
            }
            ReplacementPolicy::Fifo => {} // FIFO ignores hits
        }
    }

    /// Records that `way` in `set` was (re)filled.
    pub(crate) fn fill(&mut self, set: usize, way: usize) {
        match self.policy {
            ReplacementPolicy::Fifo => {
                self.clocks[set] += 1;
                self.stamps[set * self.ways + way] = self.clocks[set];
            }
            _ => self.touch(set, way),
        }
    }

    /// Chooses the victim way of `set`. `is_valid(way)` reports way
    /// occupancy straight off the caller's metadata — invalid ways win
    /// immediately, and no temporary is built.
    pub(crate) fn victim(&self, set: usize, mut is_valid: impl FnMut(usize) -> bool) -> usize {
        if let Some(free) = (0..self.ways).find(|&w| !is_valid(w)) {
            return free;
        }
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                index_of_min(&self.stamps[set * self.ways..(set + 1) * self.ways])
            }
            ReplacementPolicy::TreePlru => {
                if self.ways == 1 {
                    return 0;
                }
                let bits = &self.bits[set * (self.ways - 1)..(set + 1) * (self.ways - 1)];
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = self.ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = bits[node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
    }
}

fn index_of_min(values: &[u64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by_key(|(_, v)| **v)
        .map(|(i, _)| i)
        // mot3d-lint: allow(P1) -- CacheConfig rejects zero associativity, so the slice is non-empty
        .expect("sets have at least one way")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_set(policy: ReplacementPolicy, ways: usize) -> ReplacerTable {
        ReplacerTable::new(policy, 1, ways)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = one_set(ReplacementPolicy::Lru, 4);
        for way in 0..4 {
            r.fill(0, way);
        }
        r.touch(0, 0); // order now: 1 oldest, then 2, 3, 0
        assert_eq!(r.victim(0, |_| true), 1);
        r.touch(0, 1);
        assert_eq!(r.victim(0, |_| true), 2);
    }

    #[test]
    fn invalid_way_wins_over_policy() {
        let mut r = one_set(ReplacementPolicy::Lru, 4);
        for way in 0..4 {
            r.fill(0, way);
        }
        assert_eq!(r.victim(0, |w| w != 2), 2);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut r = one_set(ReplacementPolicy::Fifo, 2);
        r.fill(0, 0);
        r.fill(0, 1);
        r.touch(0, 0); // should not save way 0
        assert_eq!(r.victim(0, |_| true), 0);
    }

    #[test]
    fn plru_victim_avoids_recent_path() {
        let mut r = one_set(ReplacementPolicy::TreePlru, 4);
        for way in 0..4 {
            r.fill(0, way);
        }
        r.touch(0, 3);
        let v = r.victim(0, |_| true);
        assert_ne!(v, 3, "just-touched way must not be the victim");
    }

    #[test]
    fn plru_single_way_degenerates() {
        let r = one_set(ReplacementPolicy::TreePlru, 1);
        assert_eq!(r.victim(0, |_| true), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut r = ReplacerTable::new(ReplacementPolicy::Lru, 2, 2);
        r.fill(0, 0);
        r.fill(0, 1);
        r.fill(1, 1);
        r.fill(1, 0);
        r.touch(0, 0);
        // Set 0's LRU is way 1; set 1's is way 1 (filled first there).
        assert_eq!(r.victim(0, |_| true), 1);
        assert_eq!(r.victim(1, |_| true), 1);
    }

    #[test]
    fn reset_restores_fresh_grant_order() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
        ] {
            let mut r = one_set(policy, 4);
            let fresh: Vec<usize> = (0..4)
                .map(|_| {
                    let v = r.victim(0, |_| true);
                    r.fill(0, v);
                    v
                })
                .collect();
            r.reset();
            let replayed: Vec<usize> = (0..4)
                .map(|_| {
                    let v = r.victim(0, |_| true);
                    r.fill(0, v);
                    v
                })
                .collect();
            assert_eq!(fresh, replayed, "{policy:?}");
        }
    }

    #[test]
    fn all_policies_cover_all_ways_eventually() {
        // Filling W distinct new lines into a W-way set must evict every
        // way exactly once under any policy.
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
        ] {
            let ways = 4;
            let mut r = one_set(policy, ways);
            let mut valid = vec![false; ways];
            let mut seen = vec![false; ways];
            for _ in 0..ways {
                let v = r.victim(0, |w| valid[w]);
                assert!(!seen[v], "{policy:?} repeated victim {v}");
                seen[v] = true;
                valid[v] = true;
                r.fill(0, v);
            }
            assert!(seen.iter().all(|s| *s));
        }
    }
}
