//! The round-robin miss bus.
//!
//! "In case of instruction miss, Miss bus handles line refills in a
//! round-robin manner towards the off-cluster DRAM" (§II). We use the same
//! bus for all L2↔DRAM refill traffic: one line transfer occupies the bus
//! for a fixed number of cycles, and when several requesters queue, grants
//! rotate round-robin so no bank starves.
//!
//! The bus is cycle-stepped: the cluster calls [`MissBus::tick`] once per
//! cycle and receives at most one completed transfer.
//!
//! Waiting transfers live in one contiguous [`FifoSlab`] (one FIFO list
//! per requester over a shared node arena) rather than a `VecDeque` per
//! requester, so enqueueing never allocates in steady state and
//! [`MissBus::is_idle`] / [`MissBus::queued`] — polled by the simulator's
//! completion check every event step — are O(1) counter reads instead of
//! scans over every queue.

use mot3d_phys::slab::FifoSlab;

/// A transfer waiting on / travelling over the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Which requester (L2 bank or fetch unit) issued it.
    pub requester: usize,
    /// Caller-defined tag to match completions to transactions.
    pub tag: u64,
}

/// The shared refill bus.
///
/// # Examples
///
/// ```
/// use mot3d_mem::bus::{MissBus, Transfer};
///
/// let mut bus = MissBus::new(4, 4); // 4 requesters, 4-cycle transfers
/// bus.enqueue(Transfer { requester: 0, tag: 10 });
/// bus.enqueue(Transfer { requester: 1, tag: 11 });
/// let mut done = Vec::new();
/// for cycle in 0..10 {
///     if let Some(t) = bus.tick(cycle) {
///         done.push((cycle, t.tag));
///     }
/// }
/// assert_eq!(done, vec![(4, 10), (8, 11)]);
/// ```
#[derive(Debug, Clone)]
pub struct MissBus {
    occupancy: u64,
    queues: FifoSlab<Transfer>,
    rr: usize,
    current: Option<(Transfer, u64)>,
    granted: u64,
}

impl MissBus {
    /// Creates a bus for `requesters` endpoints with `occupancy` cycles
    /// per line transfer.
    ///
    /// # Panics
    ///
    /// Panics if `requesters == 0` or `occupancy == 0`.
    pub fn new(requesters: usize, occupancy: u64) -> Self {
        assert!(requesters > 0, "bus needs at least one requester");
        assert!(occupancy > 0, "transfers must take at least one cycle");
        MissBus {
            occupancy,
            queues: FifoSlab::new(requesters),
            rr: 0,
            current: None,
            granted: 0,
        }
    }

    /// Queues a transfer for its requester.
    ///
    /// # Panics
    ///
    /// Panics if the requester index is out of range.
    pub fn enqueue(&mut self, t: Transfer) {
        assert!(
            t.requester < self.queues.lists(),
            "requester {} out of range ({})",
            t.requester,
            self.queues.lists()
        );
        self.queues.push_back(t.requester, t);
    }

    /// Advances one cycle; returns a transfer that completed this cycle,
    /// if any, and starts the next granted transfer.
    pub fn tick(&mut self, now: u64) -> Option<Transfer> {
        let mut finished = None;
        if let Some((t, done_at)) = self.current {
            if now >= done_at {
                finished = Some(t);
                self.current = None;
            }
        }
        if self.current.is_none() {
            if let Some(t) = self.next_round_robin() {
                self.current = Some((t, now + self.occupancy));
                self.granted += 1;
            }
        }
        finished
    }

    /// Round-robin scan starting after the last granted requester.
    fn next_round_robin(&mut self) -> Option<Transfer> {
        if self.queues.is_all_empty() {
            return None;
        }
        let n = self.queues.lists();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            if let Some(t) = self.queues.pop_front(idx) {
                self.rr = (idx + 1) % n;
                return Some(t);
            }
        }
        None
    }

    /// Wake hint for event-driven callers: the earliest cycle `>= now` at
    /// which ticking the bus could complete or grant a transfer, assuming
    /// [`MissBus::tick`] is then called at every cycle from that point.
    /// `None` when the bus is idle. A waiting transfer with no grant in
    /// flight is granted on the very next tick, so it reports `now`.
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        match self.current {
            Some((_, done_at)) => Some(done_at.max(now)),
            None if !self.queues.is_all_empty() => Some(now),
            None => None,
        }
    }

    /// Clears all queues, the in-flight transfer, and the round-robin
    /// position back to construction time.
    pub fn reset(&mut self) {
        self.queues.clear();
        self.rr = 0;
        self.current = None;
        self.granted = 0;
    }

    /// Whether the bus and all queues are empty (O(1)).
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.queues.is_all_empty()
    }

    /// Transfers waiting (not including the one in flight); O(1).
    pub fn queued(&self) -> usize {
        self.queues.total_len()
    }

    /// Total transfers granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(bus: &mut MissBus, cycles: u64) -> Vec<(u64, Transfer)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            if let Some(t) = bus.tick(now) {
                out.push((now, t));
            }
        }
        out
    }

    #[test]
    fn single_transfer_takes_occupancy_cycles() {
        let mut bus = MissBus::new(2, 4);
        bus.enqueue(Transfer {
            requester: 0,
            tag: 1,
        });
        let done = drain(&mut bus, 10);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 4); // granted at 0, completes at 4
        assert!(bus.is_idle());
    }

    #[test]
    fn round_robin_alternates_under_contention() {
        let mut bus = MissBus::new(2, 2);
        for tag in 0..3 {
            bus.enqueue(Transfer { requester: 0, tag });
            bus.enqueue(Transfer {
                requester: 1,
                tag: 100 + tag,
            });
        }
        let done = drain(&mut bus, 20);
        let order: Vec<usize> = done.iter().map(|(_, t)| t.requester).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn no_starvation_with_greedy_requester() {
        // Requester 0 floods; requester 1's single transfer still completes
        // within two grants.
        let mut bus = MissBus::new(2, 1);
        for tag in 0..10 {
            bus.enqueue(Transfer { requester: 0, tag });
        }
        bus.enqueue(Transfer {
            requester: 1,
            tag: 999,
        });
        let done = drain(&mut bus, 30);
        let pos = done
            .iter()
            .position(|(_, t)| t.tag == 999)
            .expect("flooded-out transfer must still complete");
        assert!(pos <= 1, "tag 999 completed at grant position {pos}");
    }

    #[test]
    fn fifo_within_one_requester() {
        let mut bus = MissBus::new(1, 1);
        for tag in 0..5 {
            bus.enqueue(Transfer { requester: 0, tag });
        }
        let done = drain(&mut bus, 10);
        let tags: Vec<u64> = done.iter().map(|(_, t)| t.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bus_is_work_conserving() {
        // No idle gap while work is queued: completions are exactly
        // `occupancy` apart.
        let mut bus = MissBus::new(3, 3);
        for r in 0..3 {
            for tag in 0..2 {
                bus.enqueue(Transfer { requester: r, tag });
            }
        }
        let done = drain(&mut bus, 40);
        assert_eq!(done.len(), 6);
        for pair in done.windows(2) {
            assert_eq!(pair[1].0 - pair[0].0, 3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_requester() {
        let mut bus = MissBus::new(2, 1);
        bus.enqueue(Transfer {
            requester: 5,
            tag: 0,
        });
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn rejects_zero_occupancy() {
        MissBus::new(1, 0);
    }
}
