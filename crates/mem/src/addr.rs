//! Physical-address decomposition.
//!
//! The cluster uses byte addresses (`u64`). Caches operate on 32 B lines
//! (Table I); the shared L2 interleaves *lines* across banks, so
//! consecutive lines hit consecutive banks — the layout that makes the
//! paper's bank-index-bit folding work (Fig. 4: ignoring an index bit
//! merges two banks' address streams).

/// A cache-line address: the byte address with the offset bits stripped.
///
/// Newtype so line and byte addresses cannot be mixed up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte covered by this line under the given mapping.
    pub fn byte_addr(self, map: &AddressMap) -> u64 {
        self.0 << map.offset_bits()
    }
}

/// Address-to-structure mapping parameters shared by the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Cache-line size in bytes (power of two).
    pub line_bytes: usize,
    /// Number of L2 banks lines are interleaved over (power of two).
    pub banks: usize,
}

impl AddressMap {
    /// The paper's mapping: 32 B lines interleaved over 32 banks.
    pub fn date16() -> Self {
        AddressMap {
            line_bytes: 32,
            banks: 32,
        }
    }

    /// Creates a mapping, validating the power-of-two requirements.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` or `banks` is not a power of two, or zero.
    pub fn new(line_bytes: usize, banks: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        assert!(
            banks.is_power_of_two(),
            "bank count must be a power of two, got {banks}"
        );
        AddressMap { line_bytes, banks }
    }

    /// Number of byte-offset bits inside a line.
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Number of bank-index bits.
    #[inline]
    pub fn bank_bits(&self) -> u32 {
        self.banks.trailing_zeros()
    }

    /// The line containing a byte address.
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> LineAddr {
        LineAddr(byte_addr >> self.offset_bits())
    }

    /// The *home* bank index of a line (before any power-gating remap —
    /// the remap is the interconnect's job, per the paper's design).
    #[inline]
    pub fn home_bank(&self, line: LineAddr) -> usize {
        (line.0 & (self.banks as u64 - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date16_layout() {
        let m = AddressMap::date16();
        assert_eq!(m.offset_bits(), 5);
        assert_eq!(m.bank_bits(), 5);
    }

    #[test]
    fn line_of_strips_offset() {
        let m = AddressMap::date16();
        assert_eq!(m.line_of(0), LineAddr(0));
        assert_eq!(m.line_of(31), LineAddr(0));
        assert_eq!(m.line_of(32), LineAddr(1));
        assert_eq!(m.line_of(0x1000), LineAddr(0x80));
    }

    #[test]
    fn consecutive_lines_interleave_over_banks() {
        let m = AddressMap::date16();
        for i in 0..64u64 {
            assert_eq!(m.home_bank(LineAddr(i)), (i % 32) as usize);
        }
    }

    #[test]
    fn byte_addr_round_trip() {
        let m = AddressMap::date16();
        let line = m.line_of(0xdead_bee0);
        assert_eq!(m.line_of(line.byte_addr(&m)), line);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_lines() {
        AddressMap::new(24, 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_banks() {
        AddressMap::new(32, 12);
    }
}
