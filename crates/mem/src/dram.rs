//! The off-cluster DRAM model.
//!
//! Table I: one controller, 2 Gb, 4 KB pages, and three latency options —
//! 200 ns off-chip DDR3 \[18\], 63 ns on-chip Wide I/O \[17\], 42 ns optimised
//! 3-D DRAM \[16\]. At the paper's 1 GHz clock those are 200/63/42 cycles.
//!
//! Beyond the paper's fixed latency we model the 4 KB open page: hits to
//! the open row are cheaper, row conflicts slightly dearer, and the single
//! controller imposes a minimum command gap. A `fixed` constructor
//! disables both refinements to match the paper's flat-latency setup
//! exactly.
//!
//! The DRAM also stores the functional data tokens, making it the root of
//! the value hierarchy checked against the golden memory.

use crate::addr::{AddressMap, LineAddr};
use crate::linemap::LineMap;

/// Which of Table I's DRAM options is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramKind {
    /// Off-chip 2-D DDR3, 200 ns.
    OffChipDdr3,
    /// On-chip 3-D Wide I/O (JEDEC JESD229), 63 ns.
    WideIo,
    /// On-chip 3-D DRAM after Weis et al., 42 ns.
    Weis3d,
}

impl DramKind {
    /// Access latency in cycles at the paper's 1 GHz clock.
    pub fn latency_cycles(self) -> u64 {
        match self {
            DramKind::OffChipDdr3 => 200,
            DramKind::WideIo => 63,
            DramKind::Weis3d => 42,
        }
    }

    /// All three options, in Table I order.
    pub fn all() -> [DramKind; 3] {
        [DramKind::OffChipDdr3, DramKind::WideIo, DramKind::Weis3d]
    }
}

impl std::fmt::Display for DramKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramKind::OffChipDdr3 => write!(f, "off-chip DDR3 (200 ns)"),
            DramKind::WideIo => write!(f, "Wide I/O (63 ns)"),
            DramKind::Weis3d => write!(f, "3-D DRAM (42 ns)"),
        }
    }
}

/// Timing parameters of the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Baseline access latency in cycles.
    pub base_cycles: u64,
    /// Page (row) size in bytes; Table I: 4 KB.
    pub page_bytes: u64,
    /// Latency multiplier when the open row is hit.
    pub row_hit_factor: f64,
    /// Latency multiplier on a row conflict.
    pub row_miss_factor: f64,
    /// Minimum cycles between two command issues (controller occupancy).
    pub min_gap: u64,
}

impl DramTiming {
    /// The paper's flat-latency model: every access costs exactly
    /// `base_cycles`, back-to-back issue allowed.
    pub fn fixed(base_cycles: u64) -> Self {
        DramTiming {
            base_cycles,
            page_bytes: 4096,
            row_hit_factor: 1.0,
            row_miss_factor: 1.0,
            min_gap: 0,
        }
    }

    /// Open-page refinement used by the ablation benches.
    pub fn open_page(base_cycles: u64) -> Self {
        DramTiming {
            base_cycles,
            page_bytes: 4096,
            row_hit_factor: 0.7,
            row_miss_factor: 1.15,
            min_gap: 4,
        }
    }
}

/// The DRAM controller plus functional backing store.
///
/// # Examples
///
/// ```
/// use mot3d_mem::addr::{AddressMap, LineAddr};
/// use mot3d_mem::dram::{Dram, DramKind, DramTiming};
///
/// let map = AddressMap::date16();
/// let mut dram = Dram::new(DramTiming::fixed(DramKind::OffChipDdr3.latency_cycles()), map);
/// let done = dram.access(/*now=*/ 0, LineAddr(42), /*write=*/ false);
/// assert_eq!(done, 200);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    timing: DramTiming,
    map: AddressMap,
    /// Functional backing store; flat open-addressed map keeps refill-path
    /// token reads off `HashMap`'s SipHash + bucket indirection.
    store: LineMap,
    open_row: Option<u64>,
    next_issue: u64,
    accesses: u64,
    row_hits: u64,
}

impl Dram {
    /// Creates an empty DRAM (all lines read as 0 until written).
    pub fn new(timing: DramTiming, map: AddressMap) -> Self {
        Dram {
            timing,
            map,
            store: LineMap::new(),
            open_row: None,
            next_issue: 0,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Issues an access at cycle `now`; returns the completion cycle.
    /// Timing only — use [`Dram::read_line`] / [`Dram::write_line`] for the
    /// functional side.
    pub fn access(&mut self, now: u64, line: LineAddr, _write: bool) -> u64 {
        let issue = now.max(self.next_issue);
        let row = line.byte_addr(&self.map) / self.timing.page_bytes;
        let factor = match self.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                self.timing.row_hit_factor
            }
            Some(_) => self.timing.row_miss_factor,
            None => 1.0,
        };
        self.open_row = Some(row);
        self.next_issue = issue + self.timing.min_gap;
        self.accesses += 1;
        if factor == 1.0 {
            // Flat latency (the paper's model, and every first access):
            // `round(base × 1.0)` is exactly `base` — skip the libm call.
            issue + self.timing.base_cycles
        } else {
            issue + (self.timing.base_cycles as f64 * factor).round() as u64
        }
    }

    /// Reads the functional token of a line (0 if never written).
    pub fn read_line(&self, line: LineAddr) -> u64 {
        self.store.get(line).unwrap_or(0)
    }

    /// Writes the functional token of a line.
    pub fn write_line(&mut self, line: LineAddr, data: u64) {
        self.store.insert(line, data);
    }

    /// Wake hint for event-driven callers: the controller's next free
    /// command-issue slot while it is still occupied (`min_gap` back
    /// pressure), or `None` when a command could issue immediately. The
    /// DRAM holds no self-scheduled work — completions are events the
    /// caller schedules from [`Dram::access`]'s return value — so this only
    /// matters to callers that poll for issue opportunities.
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        (self.next_issue > now).then_some(self.next_issue)
    }

    /// Clears the functional store, the open row, the controller occupancy,
    /// and all counters back to construction time.
    pub fn reset(&mut self) {
        self.store.clear();
        self.open_row = None;
        self.next_issue = 0;
        self.accesses = 0;
        self.row_hits = 0;
    }

    /// Total accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hits observed (0 in fixed mode only if accesses never
    /// repeat a row).
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// The configured timing.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// The row left open in the row buffer by the last access (`None`
    /// before any access). Under fixed (closed-page) timing the value
    /// still tracks the last-touched row but carries no latency benefit.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::date16()
    }

    #[test]
    fn kinds_match_table1() {
        assert_eq!(DramKind::OffChipDdr3.latency_cycles(), 200);
        assert_eq!(DramKind::WideIo.latency_cycles(), 63);
        assert_eq!(DramKind::Weis3d.latency_cycles(), 42);
    }

    #[test]
    fn fixed_timing_is_flat() {
        let mut d = Dram::new(DramTiming::fixed(63), map());
        // Alternate rows to provoke row misses: latency must stay flat.
        assert_eq!(d.access(0, LineAddr(0), false), 63);
        assert_eq!(d.access(10, LineAddr(4096 / 32), false), 73);
        assert_eq!(d.access(20, LineAddr(0), false), 83);
    }

    #[test]
    fn open_page_rewards_row_hits() {
        let mut d = Dram::new(DramTiming::open_page(200), map());
        let first = d.access(0, LineAddr(0), false); // row open: base
        let hit = d.access(300, LineAddr(1), false) - 300; // same 4 KB row
        let miss = d.access(600, LineAddr(4096 / 32), false) - 600; // new row
        assert_eq!(first, 200);
        assert!(hit < 200, "row hit {hit}");
        assert!(miss > 200, "row conflict {miss}");
        assert_eq!(d.row_hits(), 1);
    }

    #[test]
    fn controller_gap_serialises_bursts() {
        let mut d = Dram::new(DramTiming::open_page(100), map());
        let a = d.access(0, LineAddr(0), false);
        let b = d.access(0, LineAddr(1), false); // same cycle: must queue
        assert!(b > a - 100 + 4 - 1, "second issue respects min_gap");
        assert!(b >= a - 100 + 4);
    }

    #[test]
    fn functional_store_round_trips() {
        let mut d = Dram::new(DramTiming::fixed(42), map());
        assert_eq!(d.read_line(LineAddr(9)), 0);
        d.write_line(LineAddr(9), 77);
        assert_eq!(d.read_line(LineAddr(9)), 77);
    }

    #[test]
    fn display_names_the_option() {
        assert!(DramKind::WideIo.to_string().contains("63"));
    }
}
