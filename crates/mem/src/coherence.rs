//! MSI directory state kept per L2 line.
//!
//! The paper's cluster has private L1 caches over a shared banked L2;
//! Graphite (the reference simulator) keeps them coherent with a directory
//! protocol. Each L2 line carries a [`Directory`] payload: a sharer bitmap
//! plus an optional exclusive owner. The protocol *logic* (who to
//! invalidate, when to recall dirty data) is driven by the cluster
//! simulator; this type only encapsulates the state transitions so their
//! invariants are testable in isolation.

/// Directory entry for one L2 line: which cores' L1s hold it and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Directory {
    sharers: u32,
    owner: Option<u8>,
}

impl Directory {
    /// No L1 holds the line.
    pub fn is_uncached(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }

    /// The core holding the line in Modified state, if any.
    pub fn owner(&self) -> Option<usize> {
        self.owner.map(|o| o as usize)
    }

    /// Cores holding the line in Shared state.
    pub fn sharers(&self) -> impl Iterator<Item = usize> + '_ {
        (0..32).filter(|i| self.sharers & (1 << i) != 0)
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> usize {
        self.sharers.count_ones() as usize
    }

    /// Whether `core` holds the line (shared or owned).
    pub fn holds(&self, core: usize) -> bool {
        self.sharers & (1 << core) != 0 || self.owner == Some(core as u8)
    }

    /// Records a read by `core`: the line becomes shared by it.
    ///
    /// # Panics
    ///
    /// Panics if the line currently has a different exclusive owner — the
    /// caller must recall the owner's dirty copy first (protocol bug
    /// otherwise).
    pub fn add_sharer(&mut self, core: usize) {
        assert!(
            self.owner.is_none() || self.owner == Some(core as u8),
            "add_sharer({core}) while owned by {:?}: recall first",
            self.owner
        );
        if self.owner == Some(core as u8) {
            self.owner = None;
        }
        self.sharers |= 1 << core;
    }

    /// Records an exclusive (write) grant to `core`, returning the cores
    /// whose copies must be invalidated.
    ///
    /// # Panics
    ///
    /// Panics if the line has a different exclusive owner — recall first.
    pub fn grant_exclusive(&mut self, core: usize) -> Vec<usize> {
        let mut victims = Vec::new();
        self.grant_exclusive_into(core, &mut victims);
        victims
    }

    /// [`Directory::grant_exclusive`] that appends the victims to a
    /// caller-provided buffer instead of allocating one — the simulator's
    /// store path calls this with a reused scratch vector.
    ///
    /// # Panics
    ///
    /// Panics if the line has a different exclusive owner — recall first.
    pub fn grant_exclusive_into(&mut self, core: usize, victims: &mut Vec<usize>) {
        assert!(
            self.owner.is_none() || self.owner == Some(core as u8),
            "grant_exclusive({core}) while owned by {:?}: recall first",
            self.owner
        );
        victims.extend(self.sharers().filter(|&c| c != core));
        self.sharers = 0;
        self.owner = Some(core as u8);
    }

    /// Records that the exclusive owner wrote its copy back (downgrade to
    /// shared if `keep_shared`, else drop entirely).
    pub fn owner_writeback(&mut self, keep_shared: bool) {
        if let Some(owner) = self.owner.take() {
            if keep_shared {
                self.sharers |= 1 << owner;
            }
        }
    }

    /// Removes `core` from the entry (L1 eviction or invalidation ack).
    pub fn drop_core(&mut self, core: usize) {
        self.sharers &= !(1 << core);
        if self.owner == Some(core as u8) {
            self.owner = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncached() {
        let d = Directory::default();
        assert!(d.is_uncached());
        assert_eq!(d.sharer_count(), 0);
        assert_eq!(d.owner(), None);
    }

    #[test]
    fn readers_accumulate() {
        let mut d = Directory::default();
        d.add_sharer(0);
        d.add_sharer(5);
        d.add_sharer(15);
        assert_eq!(d.sharer_count(), 3);
        assert!(d.holds(5));
        assert!(!d.holds(1));
        assert_eq!(d.sharers().collect::<Vec<_>>(), vec![0, 5, 15]);
    }

    #[test]
    fn exclusive_grant_lists_victims() {
        let mut d = Directory::default();
        d.add_sharer(1);
        d.add_sharer(2);
        d.add_sharer(3);
        let victims = d.grant_exclusive(2);
        assert_eq!(victims, vec![1, 3]);
        assert_eq!(d.owner(), Some(2));
        assert_eq!(d.sharer_count(), 0);
    }

    #[test]
    fn owner_writeback_can_keep_shared_copy() {
        let mut d = Directory::default();
        d.grant_exclusive(4);
        d.owner_writeback(true);
        assert_eq!(d.owner(), None);
        assert!(d.holds(4));
        let mut d2 = Directory::default();
        d2.grant_exclusive(4);
        d2.owner_writeback(false);
        assert!(d2.is_uncached());
    }

    #[test]
    fn owner_rereading_keeps_single_copy() {
        let mut d = Directory::default();
        d.grant_exclusive(7);
        d.add_sharer(7); // owner downgrades itself via a read
        assert_eq!(d.owner(), None);
        assert!(d.holds(7));
        assert_eq!(d.sharer_count(), 1);
    }

    #[test]
    #[should_panic(expected = "recall first")]
    fn reading_an_owned_line_without_recall_is_a_protocol_bug() {
        let mut d = Directory::default();
        d.grant_exclusive(1);
        d.add_sharer(2);
    }

    #[test]
    fn drop_core_clears_both_roles() {
        let mut d = Directory::default();
        d.add_sharer(3);
        d.drop_core(3);
        assert!(d.is_uncached());
        d.grant_exclusive(6);
        d.drop_core(6);
        assert!(d.is_uncached());
    }
}
