//! Property-based tests for the physical models (DESIGN.md §5).

use mot3d_phys::geometry::Floorplan;
use mot3d_phys::rc::{RcTree, RepeatedWire};
use mot3d_phys::units::{Farads, Meters, Ohms, Seconds};
use mot3d_phys::Technology;
use proptest::prelude::*;

/// A small positive resistance in ohms.
fn r_ohms() -> impl Strategy<Value = f64> {
    1.0..50_000.0f64
}

/// A small positive capacitance in femtofarads.
fn c_ff() -> impl Strategy<Value = f64> {
    0.1..5_000.0f64
}

proptest! {
    /// Elmore delay of a pure chain equals the closed-form double sum
    /// Σ_i R_i · (Σ_{j ≥ i} C_j).
    #[test]
    fn chain_elmore_matches_closed_form(
        rs in prop::collection::vec(r_ohms(), 1..12),
        cs_seed in prop::collection::vec(c_ff(), 1..12),
    ) {
        let n = rs.len().min(cs_seed.len());
        let rs = &rs[..n];
        let cs = &cs_seed[..n];

        let mut tree = RcTree::new(Farads::ZERO);
        let mut at = tree.root();
        for (&r, &c) in rs.iter().zip(cs) {
            at = tree.add_node(at, Ohms::new(r), Farads::from_ff(c));
        }
        let got = tree.elmore_delay(at);

        let mut expected = 0.0;
        for i in 0..n {
            let downstream: f64 = cs[i..].iter().sum();
            expected += rs[i] * downstream * 1e-15;
        }
        let rel = (got.value() - expected).abs() / expected.max(1e-30);
        prop_assert!(rel < 1e-9, "got {} expected {}", got.value(), expected);
    }

    /// Adding capacitance anywhere never decreases the delay to any sink.
    #[test]
    fn elmore_monotone_in_cap(
        rs in prop::collection::vec(r_ohms(), 2..8),
        cs in prop::collection::vec(c_ff(), 2..8),
        extra_ff in 1.0..1_000.0f64,
        node_pick in 0usize..8,
    ) {
        let n = rs.len().min(cs.len());
        let mut tree = RcTree::new(Farads::ZERO);
        let mut nodes = vec![tree.root()];
        let mut at = tree.root();
        for (&r, &c) in rs[..n].iter().zip(&cs[..n]) {
            at = tree.add_node(at, Ohms::new(r), Farads::from_ff(c));
            nodes.push(at);
        }
        let sink = *nodes.last().unwrap();
        let before = tree.elmore_delay(sink);
        let bump = nodes[node_pick % nodes.len()];
        tree.add_cap(bump, Farads::from_ff(extra_ff));
        let after = tree.elmore_delay(sink);
        prop_assert!(after >= before);
    }

    /// Repeated-wire delay is strictly monotone in length and roughly
    /// linear (the per-mm cost of the second half never exceeds 2× the
    /// first half's).
    #[test]
    fn repeated_wire_monotone_and_subquadratic(len_mm in 0.2..12.0f64) {
        let tech = Technology::lp45();
        let half = RepeatedWire::new(&tech, Meters::from_mm(len_mm / 2.0)).delay();
        let full = RepeatedWire::new(&tech, Meters::from_mm(len_mm)).delay();
        prop_assert!(full > half);
        // Quadratic growth would give full ≈ 4 × half.
        prop_assert!(full.value() < 3.0 * half.value(),
            "len {len_mm} mm: full {} ps vs half {} ps", full.ps(), half.ps());
    }

    /// Energy per transition and leakage are monotone in wire length.
    #[test]
    fn repeated_wire_energy_monotone(a_mm in 0.1..6.0f64, b_extra in 0.1..6.0f64) {
        let tech = Technology::lp45();
        let short = RepeatedWire::new(&tech, Meters::from_mm(a_mm));
        let long = RepeatedWire::new(&tech, Meters::from_mm(a_mm + b_extra));
        prop_assert!(long.energy_per_transition() > short.energy_per_transition());
        prop_assert!(long.leakage() >= short.leakage());
    }

    /// Gating cores/banks never lengthens the worst-case path, and the
    /// full configuration is always the longest.
    #[test]
    fn floorplan_paths_shrink_with_gating(
        cores_pick in 0usize..3,
        banks_pick in 0usize..4,
    ) {
        let fp = Floorplan::date16();
        let cores = [1usize, 4, 16][cores_pick];
        let banks = [2usize, 4, 8, 32][banks_pick];
        let gated = fp.longest_path(cores, banks).unwrap();
        let full = fp.longest_path(16, 32).unwrap();
        prop_assert!(gated.horizontal <= full.horizontal);
        prop_assert!(gated.vertical_hops <= full.vertical_hops);
    }

    /// The active-wire estimate is monotone in both active counts.
    #[test]
    fn active_wire_monotone(
        c1 in 0usize..3, b1 in 0usize..4,
    ) {
        let fp = Floorplan::date16();
        let cores = [1usize, 4, 16];
        let banks = [2usize, 4, 8, 32];
        let w = fp.active_wire_estimate(cores[c1], banks[b1]).unwrap();
        // Growing either dimension grows the estimate.
        if c1 + 1 < cores.len() {
            let w2 = fp.active_wire_estimate(cores[c1 + 1], banks[b1]).unwrap();
            prop_assert!(w2 >= w);
        }
        if b1 + 1 < banks.len() {
            let w3 = fp.active_wire_estimate(cores[c1], banks[b1 + 1]).unwrap();
            prop_assert!(w3 >= w);
        }
    }

    /// Cycle quantisation: never less than the exact ratio, never more
    /// than one cycle above it.
    #[test]
    fn cycles_for_is_tight_ceiling(delay_ps in 1.0..20_000.0f64) {
        let tech = Technology::lp45();
        let cycles = tech.cycles_for(Seconds::from_ps(delay_ps));
        let exact = delay_ps / tech.period().ps();
        prop_assert!((cycles as f64) >= exact - 1e-9);
        prop_assert!((cycles as f64) < exact + 1.0 + 1e-9);
    }
}
