//! Differential equivalence: [`TimingWheel`] vs the `BinaryHeap` it
//! replaced.
//!
//! The simulator crates swapped their `BinaryHeap<Reverse<(time, seq,
//! item)>>` event queues for `mot3d_phys::wheel::TimingWheel` on the
//! promise that pop order — and therefore every metric — is
//! bit-identical. This suite pins that promise: a reference heap with
//! the exact former semantics runs in lockstep with the wheel under
//! randomized schedules, and every pop, peek, and length must agree.
//! Covered shapes mirror what the cluster generates: near-future bursts
//! (interconnect hops), same-cycle ties (bank fan-out), far-future DRAM
//! refills, events beyond the wheel's top-level span (overflow list),
//! and schedule-while-draining interleavings (handlers scheduling
//! follow-ups at the cycle being drained).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mot3d_phys::wheel::TimingWheel;
use proptest::prelude::*;

/// The pre-wheel event queue, verbatim: `(time, seq)`-ordered min-heap
/// with a caller-side monotonic sequence number.
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
}

impl RefHeap {
    fn schedule(&mut self, time: u64, id: u32) {
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, id)));
    }

    /// The peek-compare-pop idiom every former call site used.
    fn pop_due(&mut self, now: u64) -> Option<(u64, u32)> {
        match self.heap.peek() {
            Some(Reverse((t, _, _))) if *t <= now => {
                self.heap.pop().map(|Reverse((t, _, id))| (t, id))
            }
            _ => None,
        }
    }

    fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

/// One step of the lockstep interpreter.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delta`.
    Schedule { delta: u64 },
    /// Pop everything due at the current `now`, checking each pop.
    DrainDue,
    /// Advance `now` by `by`, popping due events as the runner would.
    Advance { by: u64 },
}

/// Delta distribution matching the simulator: mostly near-future, some
/// mid-range (DRAM), rare beyond-top-level (overflow), occasional zero
/// (same-cycle bursts).
fn delta_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..8,
        1u64..64,
        64u64..4096,
        4096u64..300_000,
        300_000u64..20_000_000,
        // Beyond the wheel's 64^4 span: exercises the overflow list.
        20_000_000u64..(1u64 << 34),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is unweighted; duplicate arms to bias
    // toward scheduling.
    prop_oneof![
        delta_strategy().prop_map(|delta| Op::Schedule { delta }),
        delta_strategy().prop_map(|delta| Op::Schedule { delta }),
        delta_strategy().prop_map(|delta| Op::Schedule { delta }),
        delta_strategy().prop_map(|delta| Op::Schedule { delta }),
        Just(Op::DrainDue),
        (1u64..200).prop_map(|by| Op::Advance { by }),
        (1u64..200).prop_map(|by| Op::Advance { by }),
        (200u64..100_000).prop_map(|by| Op::Advance { by }),
    ]
}

/// Runs wheel and heap in lockstep over `ops`, checking every
/// observable after every step. `reschedule_on_pop`, when set, schedules
/// a follow-up event from inside the drain loop (sometimes at the very
/// cycle being drained) — the schedule-while-draining shape.
fn run_lockstep(ops: &[Op], reschedule_on_pop: bool) -> Result<(), TestCaseError> {
    let mut wheel: TimingWheel<u32> = TimingWheel::new();
    let mut heap = RefHeap::default();
    let mut now = 0u64;
    let mut next_id = 0u32;

    let drain = |wheel: &mut TimingWheel<u32>,
                 heap: &mut RefHeap,
                 now: u64,
                 next_id: &mut u32|
     -> Result<(), TestCaseError> {
        loop {
            let got = wheel.pop_due(now);
            let want = heap.pop_due(now);
            prop_assert_eq!(got, want, "pop_due({}) diverged", now);
            let Some((t, id)) = got else { break };
            if reschedule_on_pop {
                // Follow-up work: same cycle for every third pop (the
                // bus-grant → bank-enqueue shape), short hop otherwise.
                let delta = u64::from(id % 3);
                wheel.schedule(t + delta, *next_id);
                heap.schedule(t + delta, *next_id);
                *next_id += 1;
            }
        }
        Ok(())
    };

    for op in ops {
        match *op {
            Op::Schedule { delta } => {
                wheel.schedule(now + delta, next_id);
                heap.schedule(now + delta, next_id);
                next_id += 1;
            }
            Op::DrainDue => drain(&mut wheel, &mut heap, now, &mut next_id)?,
            Op::Advance { by } => {
                now += by;
                drain(&mut wheel, &mut heap, now, &mut next_id)?;
            }
        }
        prop_assert_eq!(wheel.next_time(), heap.next_time());
        prop_assert_eq!(wheel.len(), heap.heap.len());
        prop_assert_eq!(wheel.is_empty(), heap.heap.is_empty());
    }

    // Final total drain: both must empty in the same order.
    loop {
        let got = wheel.pop_due(u64::MAX);
        let want = heap.pop_due(u64::MAX);
        prop_assert_eq!(got, want, "final drain diverged");
        if got.is_none() {
            break;
        }
    }
    prop_assert!(wheel.is_empty());
    Ok(())
}

proptest! {
    /// Random schedules + drains pop identically to the heap.
    #[test]
    fn wheel_matches_heap(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_lockstep(&ops, false)?;
    }

    /// Scheduling from inside the drain loop (including at the cycle
    /// being drained) preserves equivalence.
    #[test]
    fn wheel_matches_heap_while_draining(
        ops in prop::collection::vec(op_strategy(), 1..100),
    ) {
        run_lockstep(&ops, true)?;
    }

    /// Dense same-cycle bursts: many ties at few distinct times, where
    /// only the `seq` tiebreak determines order.
    #[test]
    fn same_cycle_bursts_pop_in_seq_order(
        times in prop::collection::vec(0u64..4, 1..200),
        now_step in 1u64..6,
    ) {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut heap = RefHeap::default();
        let mut now = 0u64;
        for (id, &t) in times.iter().enumerate() {
            let at = now + t;
            wheel.schedule(at, id as u32);
            heap.schedule(at, id as u32);
            if id % 16 == 15 {
                now += now_step;
                loop {
                    let got = wheel.pop_due(now);
                    prop_assert_eq!(got, heap.pop_due(now));
                    if got.is_none() {
                        break;
                    }
                }
            }
        }
        loop {
            let got = wheel.pop_due(u64::MAX);
            prop_assert_eq!(got, heap.pop_due(u64::MAX));
            if got.is_none() {
                break;
            }
        }
    }

    /// Far-future events (beyond the top wheel level from the schedule
    /// point) cascade back in at exactly the right time and order.
    #[test]
    fn far_future_overflow_matches(
        far_deltas in prop::collection::vec((1u64 << 24)..(1u64 << 40), 1..20),
        near_deltas in prop::collection::vec(0u64..512, 1..40),
    ) {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut heap = RefHeap::default();
        let mut id = 0u32;
        for &d in &far_deltas {
            wheel.schedule(d, id);
            heap.schedule(d, id);
            id += 1;
        }
        for &d in &near_deltas {
            wheel.schedule(d, id);
            heap.schedule(d, id);
            id += 1;
        }
        prop_assert_eq!(wheel.next_time(), heap.next_time());
        loop {
            let got = wheel.pop_due(u64::MAX);
            prop_assert_eq!(got, heap.pop_due(u64::MAX));
            prop_assert_eq!(wheel.next_time(), heap.next_time());
            if got.is_none() {
                break;
            }
        }
    }
}

/// Deterministic regression: `clear()` + replay matches a fresh wheel
/// (the `Cluster::reset` contract).
#[test]
fn cleared_wheel_replays_like_fresh() {
    let script: Vec<(u64, u32)> = (0..500u32).map(|i| (u64::from(i * 37 % 801), i)).collect();
    let run = |w: &mut TimingWheel<u32>| -> Vec<(u64, u32)> {
        for &(t, id) in &script {
            w.schedule(t, id);
        }
        let mut out = Vec::new();
        while let Some(p) = w.pop_due(u64::MAX) {
            out.push(p);
        }
        out
    };
    let mut wheel = TimingWheel::new();
    let fresh = run(&mut wheel);
    wheel.clear();
    let replayed = run(&mut wheel);
    assert_eq!(fresh, replayed);

    let mut heap = RefHeap::default();
    for &(t, id) in &script {
        heap.schedule(t, id);
    }
    let mut want = Vec::new();
    while let Some(p) = heap.pop_due(u64::MAX) {
        want.push(p);
    }
    assert_eq!(fresh, want);
}
