//! Timing-wheel schedule/pop throughput vs the `BinaryHeap` it
//! replaced, over the event-horizon mixes the simulator generates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mot3d_phys::wheel::TimingWheel;

/// Deterministic xorshift for horizon mixes (no `rand` in the tree).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// ~90% near-future hops (1–16 cycles), ~9% DRAM-range (100–400),
/// ~1% far-future (beyond one level-0 window) — the wake-hint shape.
fn mixed_delta(rng: &mut XorShift) -> u64 {
    let r = rng.next();
    match r % 100 {
        0 => 4_000 + (r >> 8) % 60_000,
        1..=9 => 100 + (r >> 8) % 300,
        _ => 1 + (r >> 8) % 16,
    }
}

fn bench_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("wheel");

    // Steady-state churn at a fixed queue depth: each iteration pops
    // the earliest event and schedules a replacement — the simulator's
    // inner loop.
    const DEPTH: usize = 64;

    g.bench_function("churn_near_wheel", |b| {
        let mut w: TimingWheel<u64> = TimingWheel::new();
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        let mut now = 0u64;
        for i in 0..DEPTH as u64 {
            w.schedule(1 + i % 16, i);
        }
        b.iter(|| {
            let (t, item) = w.pop_due(u64::MAX).unwrap();
            now = t;
            w.schedule(now + 1 + (rng.next() >> 8) % 16, item);
            black_box(item)
        })
    });

    g.bench_function("churn_near_heap", |b| {
        let mut h: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        let mut seq = 0u64;
        for i in 0..DEPTH as u64 {
            seq += 1;
            h.push(Reverse((1 + i % 16, seq, i)));
        }
        b.iter(|| {
            let Reverse((t, _, item)) = h.pop().unwrap();
            seq += 1;
            h.push(Reverse((t + 1 + (rng.next() >> 8) % 16, seq, item)));
            black_box(item)
        })
    });

    g.bench_function("churn_mixed_wheel", |b| {
        let mut w: TimingWheel<u64> = TimingWheel::new();
        let mut rng = XorShift(0x2545_f491_4f6c_dd1d);
        for i in 0..DEPTH as u64 {
            w.schedule(mixed_delta(&mut rng), i);
        }
        let mut now = 0u64;
        b.iter(|| {
            let (t, item) = w.pop_due(u64::MAX).unwrap();
            now = t;
            w.schedule(now + mixed_delta(&mut rng), item);
            black_box(item)
        })
    });

    g.bench_function("churn_mixed_heap", |b| {
        let mut h: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut rng = XorShift(0x2545_f491_4f6c_dd1d);
        let mut seq = 0u64;
        for i in 0..DEPTH as u64 {
            seq += 1;
            h.push(Reverse((mixed_delta(&mut rng), seq, i)));
        }
        b.iter(|| {
            let Reverse((t, _, item)) = h.pop().unwrap();
            seq += 1;
            h.push(Reverse((t + mixed_delta(&mut rng), seq, item)));
            black_box(item)
        })
    });

    // Pure scheduling throughput: fill-then-clear batches.
    g.bench_function("schedule_burst_wheel", |b| {
        let mut w: TimingWheel<u64> = TimingWheel::new();
        let mut rng = XorShift(0xdead_beef_cafe_f00d);
        b.iter(|| {
            for i in 0..256u64 {
                w.schedule(mixed_delta(&mut rng), i);
            }
            w.clear();
        })
    });

    g.bench_function("schedule_burst_heap", |b| {
        let mut h: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut rng = XorShift(0xdead_beef_cafe_f00d);
        let mut seq = 0u64;
        b.iter(|| {
            for i in 0..256u64 {
                seq += 1;
                h.push(Reverse((mixed_delta(&mut rng), seq, i)));
            }
            h.clear();
        })
    });

    // Exact-peek cost (the `next_activity` hint path).
    g.bench_function("peek_next_time", |b| {
        let mut w: TimingWheel<u64> = TimingWheel::new();
        let mut rng = XorShift(0x0123_4567_89ab_cdef);
        for i in 0..DEPTH as u64 {
            w.schedule(mixed_delta(&mut rng), i);
        }
        b.iter(|| black_box(w.next_time()))
    });

    g.finish();
}

criterion_group!(benches, bench_wheel);
criterion_main!(benches);
