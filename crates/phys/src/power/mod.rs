//! Energy bookkeeping and the paper's EDP metric.
//!
//! The paper evaluates power efficiency as the **energy-delay product**
//! (EDP) of the cluster: cores (McPAT \[19\]), L2 cache (CACTI \[13\]) and
//! interconnect (Liao–He \[20\]). [`EnergyBreakdown`] accumulates those
//! components over a simulated run; [`EnergyBreakdown::edp`] combines them
//! with the execution time.

mod core_model;

pub use core_model::{CorePowerModel, DramEnergyModel};

use crate::units::{JouleSeconds, Joules, Seconds};

/// Per-component energy of a simulated run.
///
/// # Examples
///
/// ```
/// use mot3d_phys::power::EnergyBreakdown;
/// use mot3d_phys::units::{Joules, Seconds};
///
/// let mut e = EnergyBreakdown::default();
/// e.cores += Joules::from_mj(1.0);
/// e.interconnect += Joules::from_mj(0.2);
/// let edp = e.edp(Seconds::from_us(800.0));
/// assert!(edp.value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Processing cores (dynamic + leakage).
    pub cores: Joules,
    /// Private L1 instruction/data caches.
    pub l1: Joules,
    /// Stacked L2 banks (dynamic + leakage of powered banks).
    pub l2: Joules,
    /// Interconnect: wires, repeaters, routing/arbitration switches (or
    /// packet routers and buses for the baselines).
    pub interconnect: Joules,
    /// DRAM (kept separate; the paper's cluster EDP excludes it).
    pub dram: Joules,
}

impl EnergyBreakdown {
    /// Cluster energy: everything the paper's EDP covers (cores, caches,
    /// interconnect; not DRAM).
    pub fn cluster(&self) -> Joules {
        self.cores + self.l1 + self.l2 + self.interconnect
    }

    /// Total including DRAM.
    pub fn total(&self) -> Joules {
        self.cluster() + self.dram
    }

    /// Cluster energy-delay product for a run of the given duration
    /// (Fig. 7(a), Fig. 8).
    pub fn edp(&self, exec_time: Seconds) -> JouleSeconds {
        self.cluster() * exec_time
    }

    /// EDP including DRAM energy, for sensitivity studies.
    pub fn edp_with_dram(&self, exec_time: Seconds) -> JouleSeconds {
        self.total() * exec_time
    }

    /// Component-wise sum of two breakdowns.
    pub fn merged(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            cores: self.cores + other.cores,
            l1: self.l1 + other.l1,
            l2: self.l2 + other.l2,
            interconnect: self.interconnect + other.interconnect,
            dram: self.dram + other.dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Joules;

    fn sample() -> EnergyBreakdown {
        EnergyBreakdown {
            cores: Joules::from_mj(4.0),
            l1: Joules::from_mj(0.5),
            l2: Joules::from_mj(1.5),
            interconnect: Joules::from_mj(1.0),
            dram: Joules::from_mj(2.0),
        }
    }

    #[test]
    fn cluster_excludes_dram() {
        let e = sample();
        assert!((e.cluster().mj() - 7.0).abs() < 1e-9);
        assert!((e.total().mj() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let e = sample();
        let t = Seconds::from_us(100.0);
        assert!((e.edp(t).value() - 7e-3 * 100e-6).abs() < 1e-15);
        assert!(e.edp_with_dram(t) > e.edp(t));
    }

    #[test]
    fn merged_adds_componentwise() {
        let e = sample().merged(&sample());
        assert!((e.cores.mj() - 8.0).abs() < 1e-9);
        assert!((e.dram.mj() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_zero() {
        let e = EnergyBreakdown::default();
        assert_eq!(e.total(), Joules::ZERO);
    }
}
