//! McPAT-style core power model.
//!
//! The paper estimates core power with McPAT \[19\]. For an in-order
//! Cortex-A5-class core at 1 GHz in a 45 nm-class LP node, the aggregate
//! numbers that matter to cluster-level EDP are: dynamic energy per busy
//! cycle, residual (clock-gated) energy per stalled cycle, and leakage
//! power while the core is powered. Power-gated cores (the paper's `PC4`
//! states) contribute nothing.

use crate::units::{Joules, Seconds, Watts};

/// Per-core energy/power coefficients.
///
/// # Examples
///
/// ```
/// use mot3d_phys::power::CorePowerModel;
/// use mot3d_phys::units::Seconds;
///
/// let core = CorePowerModel::cortex_a5_like();
/// let e = core.energy(1_000, 500, Seconds::from_us(1.5), true);
/// assert!(e.pj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerModel {
    /// Dynamic energy of one busy (instruction-retiring) cycle.
    pub busy_energy_per_cycle: Joules,
    /// Residual dynamic energy of one stalled/idle cycle (clock tree,
    /// un-gated flops).
    pub stall_energy_per_cycle: Joules,
    /// Leakage power while the core is powered on.
    pub leakage: Watts,
}

impl CorePowerModel {
    /// Cortex-A5-class in-order core at 1 GHz, 45 nm LP: ≈ 80 mW dynamic
    /// at full activity, ≈ 8 mW leakage (McPAT-era numbers).
    ///
    /// Stalled cycles burn close to busy power: the paper's setup (and
    /// Graphite-era power models generally) applies no idle clock gating,
    /// so cores spinning at barriers or waiting on memory keep their
    /// clock trees and pipelines toggling. This is what makes core
    /// power-gating (`PC4`) worthwhile for poorly-scaling programs —
    /// Fig. 7's central result.
    pub fn cortex_a5_like() -> Self {
        CorePowerModel {
            busy_energy_per_cycle: Joules::from_pj(80.0),
            stall_energy_per_cycle: Joules::from_pj(74.0),
            leakage: Watts::from_mw(8.0),
        }
    }

    /// Total energy of one core over a run.
    ///
    /// `busy_cycles` retire work, `stall_cycles` wait on memory or
    /// barriers, `wall_time` spans the whole run for leakage integration.
    /// A power-gated core (`powered == false`) consumes nothing.
    pub fn energy(
        &self,
        busy_cycles: u64,
        stall_cycles: u64,
        wall_time: Seconds,
        powered: bool,
    ) -> Joules {
        if !powered {
            return Joules::ZERO;
        }
        self.busy_energy_per_cycle * busy_cycles as f64
            + self.stall_energy_per_cycle * stall_cycles as f64
            + self.leakage * wall_time
    }
}

impl Default for CorePowerModel {
    /// Defaults to [`CorePowerModel::cortex_a5_like`].
    fn default() -> Self {
        CorePowerModel::cortex_a5_like()
    }
}

/// DRAM access-energy coefficients for the three DRAM options of Table I.
///
/// The paper's EDP covers the cluster (cores, caches, interconnect); DRAM
/// energy is provided separately so experiments can optionally include it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergyModel {
    /// Energy per 32 B line transfer.
    pub energy_per_access: Joules,
    /// Background (refresh + standby) power.
    pub background: Watts,
}

impl DramEnergyModel {
    /// Off-chip DDR3 at 200 ns (Table I / Micron datasheet \[18\]).
    pub fn off_chip_ddr3() -> Self {
        DramEnergyModel {
            energy_per_access: Joules::from_nj(8.0),
            background: Watts::from_mw(60.0),
        }
    }

    /// On-chip 3-D Wide I/O SDR at 63 ns (JEDEC JESD229 \[17\]).
    pub fn wide_io() -> Self {
        DramEnergyModel {
            energy_per_access: Joules::from_nj(2.0),
            background: Watts::from_mw(25.0),
        }
    }

    /// Optimised on-chip 3-D DRAM at 42 ns (Weis et al. \[16\]).
    pub fn weis_3d() -> Self {
        DramEnergyModel {
            energy_per_access: Joules::from_nj(1.2),
            background: Watts::from_mw(18.0),
        }
    }

    /// Energy over a run with the given access count and duration.
    pub fn energy(&self, accesses: u64, wall_time: Seconds) -> Joules {
        self.energy_per_access * accesses as f64 + self.background * wall_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_core_consumes_nothing() {
        let m = CorePowerModel::cortex_a5_like();
        assert_eq!(
            m.energy(1000, 1000, Seconds::from_us(1.0), false),
            Joules::ZERO
        );
    }

    #[test]
    fn busy_cycles_cost_more_than_stalls() {
        let m = CorePowerModel::cortex_a5_like();
        let t = Seconds::from_us(1.0);
        let busy = m.energy(1000, 0, t, true);
        let stalled = m.energy(0, 1000, t, true);
        assert!(busy > stalled);
    }

    #[test]
    fn leakage_accrues_with_wall_time() {
        let m = CorePowerModel::cortex_a5_like();
        let short = m.energy(0, 0, Seconds::from_us(1.0), true);
        let long = m.energy(0, 0, Seconds::from_us(2.0), true);
        assert!((long / short - 2.0).abs() < 1e-9);
    }

    #[test]
    fn full_activity_is_about_88mw() {
        // 1 GHz × 80 pJ busy + 8 mW leakage ⇒ ~88 mW.
        let m = CorePowerModel::cortex_a5_like();
        let t = Seconds::from_us(1.0); // 1000 cycles at 1 GHz
        let e = m.energy(1000, 0, t, true);
        let p = e / t;
        assert!((p.mw() - 88.0).abs() < 1.0, "{} mW", p.mw());
    }

    #[test]
    fn dram_options_are_ordered_by_efficiency() {
        let off = DramEnergyModel::off_chip_ddr3();
        let wio = DramEnergyModel::wide_io();
        let weis = DramEnergyModel::weis_3d();
        assert!(off.energy_per_access > wio.energy_per_access);
        assert!(wio.energy_per_access > weis.energy_per_access);
    }

    #[test]
    fn dram_energy_scales_with_accesses() {
        let m = DramEnergyModel::wide_io();
        let t = Seconds::from_us(1.0);
        let e1 = m.energy(100, t);
        let e2 = m.energy(200, t);
        assert!(e2 > e1);
        let delta = e2 - e1;
        assert!((delta.nj() - 200.0).abs() < 1e-9);
    }
}
