//! 3-D cluster floorplan and wire-length model (Fig. 1(b) / Fig. 5).
//!
//! The paper's cluster is a 5 mm × 5 mm processor die with the MoT
//! interconnect "placed in the middle of the core tier", and two cache
//! tiers stacked on top (~40 µm per die-to-die crossing). Cores sit on a
//! 4 × 4 grid; each cache tier carries a 4 × 4 grid of bank sites whose TSV
//! buses land at the matching (x, y) position of the core tier.
//!
//! Power-gating keeps a *centered* sub-grid of cores and of bank pillars
//! alive (Fig. 4 folds traffic toward the inner banks, Fig. 5 shows the
//! active region contracting around the die center). The longest possible
//! core→bank link of a power state is therefore
//!
//! ```text
//! L(state) = manhattan(farthest active core → center)
//!          + manhattan(center → farthest active pillar)        [horizontal]
//!          + tiers × 40 µm                                     [vertical]
//! ```
//!
//! which yields the paper's wide disparity between the `Full` state
//! (≈ 7.5 mm horizontal) and `PC4-MB8` (≈ 2.5 mm) on the 5 mm die. These
//! lengths feed the Elmore/repeated-wire models to produce Table I's
//! 12/9/9/7-cycle L2 latencies.

use std::error::Error;
use std::fmt;

use crate::tsv::Tsv;
use crate::units::Meters;

/// Errors from inconsistent floorplan queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorplanError {
    /// A core/bank count is not a positive perfect-square grid (cores) or
    /// does not divide evenly over the tiers (banks).
    BadCount {
        /// What was being placed.
        what: &'static str,
        /// The offending count.
        count: usize,
    },
    /// More active elements requested than physically present.
    TooManyActive {
        /// What was being activated.
        what: &'static str,
        /// Requested active count.
        active: usize,
        /// Physical total.
        total: usize,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::BadCount { what, count } => {
                write!(f, "cannot place {count} {what} on a square grid")
            }
            FloorplanError::TooManyActive {
                what,
                active,
                total,
            } => {
                write!(f, "{active} active {what} exceed the {total} present")
            }
        }
    }
}

impl Error for FloorplanError {}

/// Worst-case physical route of one power state, split into the components
/// that the latency model prices separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathGeometry {
    /// Longest in-plane (horizontal) wire from an active core to an active
    /// bank's TSV pillar, Manhattan-routed through the die-center spine.
    pub horizontal: Meters,
    /// Number of die-to-die crossings to the farthest active bank tier.
    pub vertical_hops: usize,
    /// Physical vertical span of those crossings.
    pub vertical: Meters,
}

impl PathGeometry {
    /// Total routed length (horizontal + vertical).
    pub fn total(&self) -> Meters {
        self.horizontal + self.vertical
    }
}

/// The 3-D cluster floorplan.
///
/// # Examples
///
/// ```
/// use mot3d_phys::geometry::Floorplan;
///
/// let fp = Floorplan::date16();
/// let full = fp.longest_path(16, 32)?;
/// let gated = fp.longest_path(4, 8)?;
/// // Fig. 5: the gated state's wires are ~3× shorter.
/// assert!(full.horizontal.mm() / gated.horizontal.mm() > 2.5);
/// # Ok::<(), mot3d_phys::geometry::FloorplanError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Die width (x, Fig. 5: ~5 mm).
    pub die_width: Meters,
    /// Die height (y, Fig. 5: ~5 mm).
    pub die_height: Meters,
    /// Cores on the processor tier (must form a square grid).
    pub total_cores: usize,
    /// L2 banks over all cache tiers (must divide evenly per tier into a
    /// square grid).
    pub total_banks: usize,
    /// Number of stacked cache tiers.
    pub bank_tiers: usize,
    /// TSV / micro-bump stack used for vertical crossings.
    pub tsv: Tsv,
}

impl Floorplan {
    /// The paper's cluster: 5 mm × 5 mm die, 16 cores, 32 banks on two
    /// cache tiers, 40 µm TSV crossings (Fig. 1, Fig. 5, Table I).
    pub fn date16() -> Self {
        Floorplan {
            die_width: Meters::from_mm(5.0),
            die_height: Meters::from_mm(5.0),
            total_cores: 16,
            total_banks: 32,
            bank_tiers: 2,
            tsv: Tsv::date16(),
        }
    }

    /// Side length of the square core grid.
    ///
    /// # Errors
    ///
    /// [`FloorplanError::BadCount`] if `total_cores` is not a perfect
    /// square.
    pub fn core_grid_side(&self) -> Result<usize, FloorplanError> {
        square_side(self.total_cores).ok_or(FloorplanError::BadCount {
            what: "cores",
            count: self.total_cores,
        })
    }

    /// Side length of the square per-tier bank grid.
    ///
    /// # Errors
    ///
    /// [`FloorplanError::BadCount`] if the banks do not divide evenly into
    /// square per-tier grids.
    pub fn bank_grid_side(&self) -> Result<usize, FloorplanError> {
        let err = FloorplanError::BadCount {
            what: "banks",
            count: self.total_banks,
        };
        if self.bank_tiers == 0 || self.total_banks % self.bank_tiers != 0 {
            return Err(err);
        }
        square_side(self.total_banks / self.bank_tiers).ok_or(err)
    }

    /// Manhattan distance from the die center to the farthest cell of a
    /// centered `active`-cell sub-block of an `n × n` grid over the die.
    fn worst_manhattan(&self, grid_side: usize, active: usize) -> Meters {
        // Active cells form a centered a × a block (a = √active); the grid
        // pitch is die/side and cell centers sit at (i + ½)·pitch.
        let a = square_side(active).unwrap_or(1).max(1);
        let pitch_x = self.die_width / grid_side as f64;
        let pitch_y = self.die_height / grid_side as f64;
        // Offset of the outermost active cell center from the die center,
        // per axis, in units of pitch: (a - 1) / 2.
        let k = (a as f64 - 1.0) / 2.0;
        pitch_x * k + pitch_y * k
    }

    /// Worst-case Manhattan run from an active core to the die-center MoT
    /// spine, with `active_cores` kept alive as a centered block.
    ///
    /// # Errors
    ///
    /// [`FloorplanError`] if the counts are invalid.
    pub fn worst_core_run(&self, active_cores: usize) -> Result<Meters, FloorplanError> {
        let side = self.core_grid_side()?;
        validate_active("cores", active_cores, self.total_cores)?;
        Ok(self.worst_manhattan(side, active_cores))
    }

    /// Worst-case Manhattan run from the die-center spine to an active
    /// bank's TSV pillar, with `active_banks` kept alive as centered
    /// per-tier blocks.
    ///
    /// # Errors
    ///
    /// [`FloorplanError`] if the counts are invalid.
    pub fn worst_pillar_run(&self, active_banks: usize) -> Result<Meters, FloorplanError> {
        let side = self.bank_grid_side()?;
        validate_active("banks", active_banks, self.total_banks)?;
        let per_tier = divide_up(active_banks, self.bank_tiers);
        Ok(self.worst_manhattan(side, per_tier))
    }

    /// Longest possible core→bank route for a power state with the given
    /// active counts (the quantity the paper feeds to the Elmore model).
    ///
    /// # Errors
    ///
    /// [`FloorplanError`] if the counts are invalid.
    pub fn longest_path(
        &self,
        active_cores: usize,
        active_banks: usize,
    ) -> Result<PathGeometry, FloorplanError> {
        let horizontal =
            self.worst_core_run(active_cores)? + self.worst_pillar_run(active_banks)?;
        // Banks fill tiers bottom-up; the farthest active bank determines
        // the hop count.
        let per_tier = self.total_banks / self.bank_tiers;
        let tiers_used = divide_up(active_banks, per_tier).max(1);
        let vertical_hops = tiers_used.min(self.bank_tiers);
        Ok(PathGeometry {
            horizontal,
            vertical_hops,
            vertical: self.tsv.span(vertical_hops),
        })
    }

    /// Rough total active wire length of a power state, used for leakage
    /// accounting (sum over all live MoT links, not just the longest path).
    ///
    /// Approximation (documented in `DESIGN.md`): each active core owns a
    /// routing tree reaching the active pillar region (approach run plus
    /// twice the active-bank span, the geometric sum of binary-tree level
    /// spans), and each active bank owns an arbitration tree spanning the
    /// active cores along the spine.
    ///
    /// # Errors
    ///
    /// [`FloorplanError`] if the counts are invalid.
    pub fn active_wire_estimate(
        &self,
        active_cores: usize,
        active_banks: usize,
    ) -> Result<Meters, FloorplanError> {
        let core_run = self.worst_core_run(active_cores)?;
        let bank_span = self.worst_pillar_run(active_banks)? * 2.0;
        let core_span = core_run * 2.0;
        let per_core = core_run + bank_span;
        let per_bank = core_span;
        Ok(per_core * active_cores as f64 + per_bank * active_banks as f64)
    }
}

impl Default for Floorplan {
    /// Defaults to the paper's floorplan ([`Floorplan::date16`]).
    fn default() -> Self {
        Floorplan::date16()
    }
}

fn validate_active(what: &'static str, active: usize, total: usize) -> Result<(), FloorplanError> {
    if active == 0 || active > total {
        return Err(FloorplanError::TooManyActive {
            what,
            active,
            total,
        });
    }
    Ok(())
}

/// `√n` if `n` is a perfect square, else `None`.
fn square_side(n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let side = (n as f64).sqrt().round() as usize;
    (side * side == n).then_some(side)
}

/// Ceiling division.
fn divide_up(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date16_grids() {
        let fp = Floorplan::date16();
        assert_eq!(fp.core_grid_side().unwrap(), 4);
        assert_eq!(fp.bank_grid_side().unwrap(), 4);
    }

    #[test]
    fn full_state_spans_7_5_mm() {
        let fp = Floorplan::date16();
        let p = fp.longest_path(16, 32).unwrap();
        assert!(
            (p.horizontal.mm() - 7.5).abs() < 1e-9,
            "{} mm",
            p.horizontal.mm()
        );
        assert_eq!(p.vertical_hops, 2);
        assert!((p.vertical.um() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn fig5_power_state_lengths() {
        // The four Table I states: 7.5 / 5.0 / 5.0 / 2.5 mm horizontal.
        let fp = Floorplan::date16();
        let cases = [
            ((16, 32), 7.5),
            ((16, 8), 5.0),
            ((4, 32), 5.0),
            ((4, 8), 2.5),
        ];
        for ((cores, banks), mm) in cases {
            let p = fp.longest_path(cores, banks).unwrap();
            assert!(
                (p.horizontal.mm() - mm).abs() < 1e-9,
                "({cores},{banks}) expected {mm} mm got {} mm",
                p.horizontal.mm()
            );
        }
    }

    #[test]
    fn vertical_is_negligible_next_to_horizontal() {
        // Fig. 5's point: z ≈ 40 µm per hop vs ~mm of horizontal wire.
        let fp = Floorplan::date16();
        let p = fp.longest_path(4, 8).unwrap();
        assert!(p.vertical.value() * 10.0 < p.horizontal.value());
    }

    #[test]
    fn single_tier_occupancy_reduces_hops() {
        // 8 active banks fit on the first tier (16 sites): 1 hop.
        let fp = Floorplan::date16();
        assert_eq!(fp.longest_path(16, 8).unwrap().vertical_hops, 1);
        assert_eq!(fp.longest_path(16, 17).unwrap().vertical_hops, 2);
    }

    #[test]
    fn active_wire_shrinks_with_gating() {
        let fp = Floorplan::date16();
        let full = fp.active_wire_estimate(16, 32).unwrap();
        let gated = fp.active_wire_estimate(4, 8).unwrap();
        assert!(
            full.value() / gated.value() > 4.0,
            "full {} mm vs gated {} mm",
            full.mm(),
            gated.mm()
        );
    }

    #[test]
    fn rejects_zero_or_excess_active() {
        let fp = Floorplan::date16();
        assert!(matches!(
            fp.longest_path(0, 32),
            Err(FloorplanError::TooManyActive { what: "cores", .. })
        ));
        assert!(matches!(
            fp.longest_path(16, 64),
            Err(FloorplanError::TooManyActive { what: "banks", .. })
        ));
    }

    #[test]
    fn rejects_non_square_grids() {
        let mut fp = Floorplan::date16();
        fp.total_cores = 12;
        assert!(matches!(
            fp.core_grid_side(),
            Err(FloorplanError::BadCount { what: "cores", .. })
        ));
        let mut fp2 = Floorplan::date16();
        fp2.total_banks = 24; // 12 per tier: not square
        assert!(matches!(
            fp2.bank_grid_side(),
            Err(FloorplanError::BadCount { what: "banks", .. })
        ));
    }

    #[test]
    fn error_messages_name_the_offender() {
        let err = FloorplanError::TooManyActive {
            what: "banks",
            active: 64,
            total: 32,
        };
        assert_eq!(err.to_string(), "64 active banks exceed the 32 present");
    }
}
