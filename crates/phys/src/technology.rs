//! Process-technology parameters.
//!
//! The paper evaluates a 1 GHz multi-core cluster in a low-power bulk CMOS
//! node (the exact node is not named; the latency/energy constants in
//! Table I are consistent with a 45 nm-class LP process). [`Technology`]
//! gathers every process-dependent constant used by the physical models:
//! wire parasitics, repeater (the paper's "inverters placed along the
//! on-chip wires") characteristics, logic-stage delays for the MoT switch
//! cells, and leakage densities.
//!
//! The [`Technology::lp45`] preset is *calibrated*, not measured: its
//! constants are chosen so that the derived end-to-end MoT latencies land on
//! the paper's Table I values (12/9/9/7 cycles at 1 GHz) given the Fig. 5
//! geometry (5 mm × 5 mm die, ~40 µm vertical hop). See `DESIGN.md` §7.

use crate::units::{Farads, FaradsPerMeter, Hertz, Ohms, OhmsPerMeter, Seconds, Volts, Watts};

/// Electrical characteristics of the repeater/inverter cell used along long
/// on-chip wires.
///
/// These are the "inverters placed along the on-chip wires" that the
/// paper's reconfigurable switch design allows to be power-gated together
/// with their wire segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeaterParams {
    /// Equivalent output (drive) resistance of the inverter.
    pub drive_resistance: Ohms,
    /// Gate input capacitance.
    pub input_cap: Farads,
    /// Drain/parasitic output capacitance.
    pub output_cap: Farads,
    /// Intrinsic (unloaded) propagation delay.
    pub intrinsic_delay: Seconds,
    /// Subthreshold + gate leakage power of one repeater when powered.
    pub leakage: Watts,
}

impl RepeaterParams {
    /// Total self-capacitance (input + output) of the cell.
    #[inline]
    pub fn self_cap(&self) -> Farads {
        self.input_cap + self.output_cap
    }
}

/// Delay and leakage of the logic inside MoT switch cells.
///
/// A routing switch is a MUX + DEMUX + control ([Fig. 2(b)]); the modified
/// reconfigurable switch adds one more 2:1 multiplexer on the control path
/// ([Fig. 3(a)]). An arbitration switch is a 2:1 arbiter with round-robin
/// state ([Fig. 2(c)]).
///
/// [Fig. 2(b)]: https://doi.org/10.3850/9783981537079_0286
/// [Fig. 3(a)]: https://doi.org/10.3850/9783981537079_0286
/// [Fig. 2(c)]: https://doi.org/10.3850/9783981537079_0286
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchTimings {
    /// Combinational delay through a routing switch in conventional mode
    /// (address-decode + MUX + DEMUX).
    pub routing_switch_delay: Seconds,
    /// Extra delay contributed by the reconfiguration multiplexer of the
    /// modified routing switch (Fig. 3a, gray MUX).
    pub reconfig_mux_delay: Seconds,
    /// Combinational delay through an arbitration switch (request merge +
    /// grant logic), excluding the registered round-robin state update.
    pub arbitration_switch_delay: Seconds,
    /// Leakage power of one routing switch when powered.
    pub routing_switch_leakage: Watts,
    /// Leakage power of one arbitration switch when powered.
    pub arbitration_switch_leakage: Watts,
    /// Dynamic energy dissipated in one switch traversal (logic only,
    /// excluding the attached wire).
    pub switch_traversal_energy_per_bit: Farads,
}

/// A complete set of process parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable node name (e.g. `"45nm-LP"`).
    pub name: &'static str,
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// Cluster clock (the paper assumes 1 GHz cores).
    pub clock: Hertz,
    /// Wire resistance per unit length (intermediate/global metal).
    pub wire_resistance: OhmsPerMeter,
    /// Wire capacitance per unit length (including coupling).
    pub wire_capacitance: FaradsPerMeter,
    /// Repeater cell characteristics.
    pub repeater: RepeaterParams,
    /// MoT switch-cell timings.
    pub switch: SwitchTimings,
    /// Leakage power per kilobyte of SRAM.
    pub sram_leakage_per_kb: Watts,
    /// SRAM cell area (for bank-area estimates).
    pub sram_cell_area_um2: f64,
}

impl Technology {
    /// Calibrated 45 nm-class low-power node at 1 GHz.
    ///
    /// Calibration targets (see `DESIGN.md` §7):
    /// * optimally-repeated wire delay ≈ 0.42 ns/mm, so the ~7.5 mm
    ///   worst-case MoT path of the full configuration takes ≈ 4–4.5 ns one
    ///   way and Table I's 12-cycle round trip is reproduced;
    /// * repeater spacing ≈ 0.75 mm, giving the handful of "inverters along
    ///   the wires" per tree level that the paper power-gates;
    /// * wire energy ≈ 0.12 pJ/mm per transition at 1.1 V.
    ///
    /// # Examples
    ///
    /// ```
    /// use mot3d_phys::Technology;
    /// let tech = Technology::lp45();
    /// assert_eq!(tech.clock.ghz(), 1.0);
    /// ```
    pub fn lp45() -> Self {
        Technology {
            name: "45nm-LP",
            vdd: Volts::new(1.1),
            clock: Hertz::from_ghz(1.0),
            wire_resistance: OhmsPerMeter(150e3), // 150 Ω/mm
            wire_capacitance: FaradsPerMeter(200e-12), // 200 fF/mm
            repeater: RepeaterParams {
                drive_resistance: Ohms::from_kohms(2.8),
                input_cap: Farads::from_ff(1.5),
                output_cap: Farads::from_ff(1.5),
                intrinsic_delay: Seconds::from_ps(15.0),
                leakage: Watts::from_uw(0.05),
            },
            switch: SwitchTimings {
                routing_switch_delay: Seconds::from_ps(118.0),
                reconfig_mux_delay: Seconds::from_ps(12.0),
                arbitration_switch_delay: Seconds::from_ps(50.0),
                routing_switch_leakage: Watts::from_uw(0.8),
                arbitration_switch_leakage: Watts::from_uw(1.0),
                switch_traversal_energy_per_bit: Farads::from_ff(3.0),
            },
            // High enough that the 2 MB stacked L2 is a first-order term
            // of cluster power (~190 mW over 32 banks) — the premise of
            // the paper's MB8 bank-gating states. LP cells would leak
            // less; the calibration follows the paper's energy balance
            // rather than a specific foundry corner (DESIGN.md §7).
            sram_leakage_per_kb: Watts::from_uw(75.0),
            sram_cell_area_um2: 0.35,
        }
    }

    /// A slower 65 nm-class LP node, used by ablation benches to explore the
    /// technology sensitivity of the interconnect comparison.
    pub fn lp65() -> Self {
        Technology {
            name: "65nm-LP",
            vdd: Volts::new(1.2),
            wire_resistance: OhmsPerMeter(110e3),
            wire_capacitance: FaradsPerMeter(230e-12),
            repeater: RepeaterParams {
                drive_resistance: Ohms::from_kohms(6.5),
                input_cap: Farads::from_ff(1.4),
                output_cap: Farads::from_ff(1.4),
                intrinsic_delay: Seconds::from_ps(28.0),
                leakage: Watts::from_uw(0.04),
            },
            switch: SwitchTimings {
                routing_switch_delay: Seconds::from_ps(160.0),
                reconfig_mux_delay: Seconds::from_ps(16.0),
                arbitration_switch_delay: Seconds::from_ps(70.0),
                routing_switch_leakage: Watts::from_uw(0.6),
                arbitration_switch_leakage: Watts::from_uw(0.75),
                switch_traversal_energy_per_bit: Farads::from_ff(4.2),
            },
            sram_leakage_per_kb: Watts::from_uw(12.0),
            sram_cell_area_um2: 0.52,
            ..Technology::lp45()
        }
    }

    /// The clock period.
    #[inline]
    pub fn period(&self) -> Seconds {
        self.clock.period()
    }

    /// Rounds a combinational delay up to whole clock cycles (at least 1).
    ///
    /// This is the quantisation the paper applies when mapping Elmore path
    /// delays onto the pipelined interconnect: a path that fits within `n`
    /// periods costs `n` cycles.
    #[inline]
    pub fn cycles_for(&self, delay: Seconds) -> u64 {
        let period = self.period().value();
        let cycles = (delay.value() / period).ceil() as u64;
        cycles.max(1)
    }
}

impl Default for Technology {
    /// Defaults to the calibrated [`Technology::lp45`] node.
    fn default() -> Self {
        Technology::lp45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp45_clock_is_1ghz() {
        let t = Technology::lp45();
        assert!((t.period().ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_for_rounds_up() {
        let t = Technology::lp45();
        assert_eq!(t.cycles_for(Seconds::from_ns(0.1)), 1);
        assert_eq!(t.cycles_for(Seconds::from_ns(1.0)), 1);
        assert_eq!(t.cycles_for(Seconds::from_ns(1.001)), 2);
        assert_eq!(t.cycles_for(Seconds::from_ns(4.2)), 5);
    }

    #[test]
    fn cycles_for_zero_delay_is_one() {
        let t = Technology::lp45();
        assert_eq!(t.cycles_for(Seconds::ZERO), 1);
    }

    #[test]
    fn default_is_lp45() {
        assert_eq!(Technology::default(), Technology::lp45());
    }

    #[test]
    fn lp65_is_slower_than_lp45() {
        let a = Technology::lp45();
        let b = Technology::lp65();
        assert!(b.switch.routing_switch_delay > a.switch.routing_switch_delay);
        assert!(b.repeater.intrinsic_delay > a.repeater.intrinsic_delay);
    }

    #[test]
    fn repeater_self_cap_sums_in_and_out() {
        let t = Technology::lp45();
        assert!((t.repeater.self_cap().ff() - 3.0).abs() < 1e-9);
    }
}
