//! Allocation-free hot-path containers shared across the workspace.
//!
//! The simulator's steady state must not touch the heap: every
//! per-simulated-cycle structure lives in flat, reusable storage. This
//! module provides the two building blocks the hot paths share:
//!
//! * [`FifoSlab`] — many FIFO queues multiplexed over one contiguous
//!   node slab with an intrusive freelist. Replaces `Vec<VecDeque<T>>`
//!   fan-outs (one queue per bank×core, per bus requester, …) whose
//!   hundreds of separate ring buffers defeat the cache; here every
//!   node lives in a single growable arena and `is_empty`/`len` are
//!   O(1) counters.
//! * [`GenSlab`] — a slab with *generational handles*: `insert` returns
//!   a `u64` that encodes `(generation << 32) | slot`, so a stale
//!   handle from a previous occupant of the slot can never alias the
//!   current one. Replaces `HashMap<u64, T>` transaction tables — the
//!   handle **is** the key, so lookups are an index plus a generation
//!   compare instead of SipHash.
//!
//! Both containers only allocate when they grow past their high-water
//! mark; a sweep that reuses its simulator reaches a steady state where
//! no call allocates. `mot3d-phys` hosts them because it is the
//! workspace's root crate — `mot`, `noc`, `mem`, and `sim` all sit above
//! it.

/// Sentinel index for "no node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct FifoList {
    head: u32,
    tail: u32,
    len: u32,
}

impl FifoList {
    const EMPTY: FifoList = FifoList {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

#[derive(Debug, Clone)]
struct FifoNode<T> {
    value: T,
    next: u32,
}

/// Many FIFO queues over one contiguous slab (see module docs).
///
/// # Examples
///
/// ```
/// use mot3d_phys::slab::FifoSlab;
///
/// let mut q: FifoSlab<u64> = FifoSlab::new(3);
/// q.push_back(1, 10);
/// q.push_back(1, 11);
/// q.push_back(2, 20);
/// assert_eq!(q.pop_front(1), Some(10));
/// assert_eq!(q.front(1), Some(&11));
/// assert_eq!(q.len(1), 1);
/// assert_eq!(q.total_len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FifoSlab<T> {
    lists: Vec<FifoList>,
    nodes: Vec<FifoNode<T>>,
    free: u32,
    total: usize,
}

impl<T> FifoSlab<T> {
    /// Creates `lists` empty queues sharing one (initially empty) slab.
    pub fn new(lists: usize) -> Self {
        FifoSlab {
            lists: vec![FifoList::EMPTY; lists],
            nodes: Vec::new(),
            free: NIL,
            total: 0,
        }
    }

    /// Number of queues.
    pub fn lists(&self) -> usize {
        self.lists.len()
    }

    /// Appends `value` to queue `list`. Reuses a freed slot when one
    /// exists; grows the slab (the only allocation) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    // mot3d-lint: no-alloc
    pub fn push_back(&mut self, list: usize, value: T) {
        let idx = if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.value = value;
            node.next = NIL;
            idx
        } else {
            assert!(self.nodes.len() < NIL as usize, "FifoSlab capacity");
            self.nodes.push(FifoNode { value, next: NIL });
            (self.nodes.len() - 1) as u32
        };
        let l = &mut self.lists[list];
        if l.tail == NIL {
            l.head = idx;
        } else {
            self.nodes[l.tail as usize].next = idx;
        }
        l.tail = idx;
        l.len += 1;
        self.total += 1;
    }

    /// Removes and returns the front of queue `list`, if any.
    // mot3d-lint: no-alloc
    pub fn pop_front(&mut self, list: usize) -> Option<T>
    where
        T: Copy,
    {
        let l = &mut self.lists[list];
        if l.head == NIL {
            return None;
        }
        let idx = l.head;
        let node = &mut self.nodes[idx as usize];
        l.head = node.next;
        if l.head == NIL {
            l.tail = NIL;
        }
        l.len -= 1;
        self.total -= 1;
        let value = node.value;
        node.next = self.free;
        self.free = idx;
        Some(value)
    }

    /// The front of queue `list` without removing it.
    pub fn front(&self, list: usize) -> Option<&T> {
        let l = self.lists[list];
        (l.head != NIL).then(|| &self.nodes[l.head as usize].value)
    }

    /// Whether queue `list` is empty (O(1)).
    pub fn is_empty(&self, list: usize) -> bool {
        self.lists[list].head == NIL
    }

    /// Length of queue `list` (O(1)).
    pub fn len(&self, list: usize) -> usize {
        self.lists[list].len as usize
    }

    /// Entries across all queues (O(1)).
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Whether every queue is empty (O(1)).
    pub fn is_all_empty(&self) -> bool {
        self.total == 0
    }

    /// Empties every queue, keeping the slab's capacity for reuse.
    pub fn clear(&mut self) {
        self.lists.fill(FifoList::EMPTY);
        self.nodes.clear();
        self.free = NIL;
        self.total = 0;
    }
}

#[derive(Debug, Clone)]
struct GenSlot<T> {
    value: Option<T>,
    generation: u32,
    next_free: u32,
}

/// A slab with generational `u64` handles (see module docs).
///
/// # Examples
///
/// ```
/// use mot3d_phys::slab::GenSlab;
///
/// let mut slab: GenSlab<&str> = GenSlab::new();
/// let h = slab.insert("hello");
/// assert_eq!(slab.get(h), Some(&"hello"));
/// assert_eq!(slab.remove(h), Some("hello"));
/// assert_eq!(slab.get(h), None); // stale handle: generation mismatch
/// ```
#[derive(Debug, Clone, Default)]
pub struct GenSlab<T> {
    slots: Vec<GenSlot<T>>,
    free: u32,
    len: usize,
}

impl<T> GenSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        GenSlab {
            slots: Vec::new(),
            free: NIL,
            len: 0,
        }
    }

    fn split(handle: u64) -> (usize, u32) {
        (
            (handle & u64::from(u32::MAX)) as usize,
            (handle >> 32) as u32,
        )
    }

    /// Stores `value` and returns its handle. Handles are never
    /// `u64::MAX` (reserved by callers as a sentinel): a slot's
    /// generation wraps before reaching `u32::MAX`.
    // mot3d-lint: no-alloc
    pub fn insert(&mut self, value: T) -> u64 {
        let slot = if self.free != NIL {
            let slot = self.free as usize;
            let s = &mut self.slots[slot];
            self.free = s.next_free;
            s.value = Some(value);
            slot
        } else {
            assert!(self.slots.len() < NIL as usize, "GenSlab capacity");
            self.slots.push(GenSlot {
                value: Some(value),
                generation: 0,
                next_free: NIL,
            });
            self.slots.len() - 1
        };
        self.len += 1;
        (u64::from(self.slots[slot].generation) << 32) | slot as u64
    }

    /// The value behind `handle`, unless it was removed (or the slot was
    /// since reused: the generation no longer matches).
    // mot3d-lint: no-alloc
    pub fn get(&self, handle: u64) -> Option<&T> {
        let (slot, generation) = Self::split(handle);
        let s = self.slots.get(slot)?;
        (s.generation == generation).then_some(s.value.as_ref())?
    }

    /// Mutable access to the value behind `handle`.
    // mot3d-lint: no-alloc
    pub fn get_mut(&mut self, handle: u64) -> Option<&mut T> {
        let (slot, generation) = Self::split(handle);
        let s = self.slots.get_mut(slot)?;
        (s.generation == generation).then_some(s.value.as_mut())?
    }

    /// Removes and returns the value behind `handle`; the slot's
    /// generation advances so the handle goes stale.
    // mot3d-lint: no-alloc
    pub fn remove(&mut self, handle: u64) -> Option<T> {
        let (slot, generation) = Self::split(handle);
        let s = self.slots.get_mut(slot)?;
        if s.generation != generation {
            return None;
        }
        let value = s.value.take()?;
        // Wrap shy of u32::MAX so a handle can never be u64::MAX.
        s.generation = if s.generation >= u32::MAX - 1 {
            0
        } else {
            s.generation + 1
        };
        s.next_free = self.free;
        self.free = slot as u32;
        self.len -= 1;
        Some(value)
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live (O(1)).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping slot capacity; generations reset, so
    /// a cleared slab issues the same handle sequence as a fresh one
    /// (required for bit-reproducible simulator resets).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free = NIL;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_within_and_across_lists() {
        let mut q: FifoSlab<u32> = FifoSlab::new(2);
        q.push_back(0, 1);
        q.push_back(1, 10);
        q.push_back(0, 2);
        assert_eq!(q.pop_front(0), Some(1));
        assert_eq!(q.pop_front(0), Some(2));
        assert_eq!(q.pop_front(0), None);
        assert_eq!(q.pop_front(1), Some(10));
        assert!(q.is_all_empty());
    }

    #[test]
    fn fifo_reuses_freed_slots() {
        let mut q: FifoSlab<u32> = FifoSlab::new(1);
        for round in 0..100 {
            q.push_back(0, round);
            q.push_back(0, round + 1);
            assert_eq!(q.pop_front(0), Some(round));
            assert_eq!(q.pop_front(0), Some(round + 1));
        }
        // Steady state: two slots ever allocated.
        assert!(q.nodes.len() <= 2, "slab grew: {}", q.nodes.len());
    }

    #[test]
    fn fifo_counters_track_lengths() {
        let mut q: FifoSlab<u8> = FifoSlab::new(3);
        q.push_back(2, 7);
        q.push_back(2, 8);
        assert_eq!(q.len(2), 2);
        assert_eq!(q.len(0), 0);
        assert!(q.is_empty(0) && !q.is_empty(2));
        assert_eq!(q.total_len(), 2);
        q.clear();
        assert!(q.is_all_empty());
        assert_eq!(q.front(2), None);
    }

    #[test]
    fn fifo_interleaved_lists_stay_independent() {
        let mut q: FifoSlab<usize> = FifoSlab::new(4);
        for i in 0..40 {
            q.push_back(i % 4, i);
        }
        for list in 0..4 {
            let drained: Vec<usize> = std::iter::from_fn(|| q.pop_front(list)).collect();
            assert_eq!(drained, (0..10).map(|k| 4 * k + list).collect::<Vec<_>>());
        }
    }

    #[test]
    fn gen_slab_round_trips() {
        let mut s: GenSlab<u64> = GenSlab::new();
        let a = s.insert(100);
        let b = s.insert(200);
        assert_ne!(a, b);
        assert_eq!(s.get(a), Some(&100));
        *s.get_mut(b).unwrap() += 1;
        assert_eq!(s.remove(b), Some(201));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(a), Some(100));
        assert!(s.is_empty());
    }

    #[test]
    fn stale_handles_never_alias() {
        let mut s: GenSlab<u32> = GenSlab::new();
        let old = s.insert(1);
        s.remove(old);
        let new = s.insert(2); // reuses the slot
        assert_ne!(old, new);
        assert_eq!(s.get(old), None);
        assert_eq!(s.get_mut(old), None);
        assert_eq!(s.remove(old), None);
        assert_eq!(s.get(new), Some(&2));
    }

    #[test]
    fn cleared_slab_replays_handle_sequence() {
        let mut s: GenSlab<u8> = GenSlab::new();
        let first: Vec<u64> = (0..5).map(|v| s.insert(v)).collect();
        s.clear();
        let second: Vec<u64> = (0..5).map(|v| s.insert(v)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn handles_avoid_the_sentinel() {
        // Callers reserve u64::MAX; exhaustively wrapping one slot must
        // never produce it.
        let mut s: GenSlab<u8> = GenSlab::new();
        for _ in 0..1000 {
            let h = s.insert(0);
            assert_ne!(h, u64::MAX);
            s.remove(h);
        }
    }
}
