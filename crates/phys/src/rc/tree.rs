//! General RC-tree representation with Elmore delay evaluation.
//!
//! The paper estimates the delay of "the longest possible link between
//! cores and cache banks ... by using Elmore distributed RC delay model
//! \[15\]". This module provides the underlying engine: an arbitrary RC tree
//! (driver at the root, resistive branches, capacitive nodes) and the
//! first-moment (Elmore) delay at any sink.
//!
//! For a sink `i`, the Elmore delay is
//!
//! ```text
//! t_i = Σ_k  R(path(root→k) ∩ path(root→i)) · C_k
//!     = Σ_{e ∈ path(root→i)} R_e · C_downstream(e)
//! ```
//!
//! which the implementation evaluates in `O(n)` after one bottom-up pass
//! accumulating downstream capacitance.

use crate::units::{Farads, Ohms, Seconds};

/// Identifier of a node inside an [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The index of this node in creation order (root is `0`).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct RcNode {
    /// Parent node; `None` only for the root.
    parent: Option<NodeId>,
    /// Resistance of the branch connecting this node to its parent.
    resistance: Ohms,
    /// Grounded capacitance at this node.
    capacitance: Farads,
}

/// An RC tree: a driver at the root, resistive edges, capacitive nodes.
///
/// # Examples
///
/// A driver with resistance 1 kΩ into a 100 fF load has Elmore delay
/// `R·C = 100 ps`:
///
/// ```
/// use mot3d_phys::rc::RcTree;
/// use mot3d_phys::units::{Farads, Ohms};
///
/// let mut tree = RcTree::new(Farads::ZERO);
/// let load = tree.add_node(tree.root(), Ohms::from_kohms(1.0), Farads::from_ff(100.0));
/// assert!((tree.elmore_delay(load).ps() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcTree {
    nodes: Vec<RcNode>,
}

impl RcTree {
    /// Creates a tree containing only the root (driver output) node with
    /// the given grounded capacitance.
    pub fn new(root_cap: Farads) -> Self {
        RcTree {
            nodes: vec![RcNode {
                parent: None,
                resistance: Ohms::ZERO,
                capacitance: root_cap,
            }],
        }
    }

    /// The root (driver output) node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes including the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree holds only the root node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Adds a node connected to `parent` through a branch of resistance
    /// `r`, with grounded capacitance `c` at the new node. Returns the new
    /// node's id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not belong to this tree.
    pub fn add_node(&mut self, parent: NodeId, r: Ohms, c: Farads) -> NodeId {
        assert!(
            parent.0 < self.nodes.len(),
            "parent node {} out of bounds ({} nodes)",
            parent.0,
            self.nodes.len()
        );
        self.nodes.push(RcNode {
            parent: Some(parent),
            resistance: r,
            capacitance: c,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a uniform wire from `parent` as `segments` lumped π-sections of
    /// total resistance `r` and total capacitance `c`. Returns the far-end
    /// node.
    ///
    /// More sections approximate the distributed line better; the Elmore
    /// delay of an `n`-section ladder converges to `0.5·R·C` from above as
    /// `n → ∞` (the distributed limit).
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    pub fn add_wire(&mut self, parent: NodeId, r: Ohms, c: Farads, segments: usize) -> NodeId {
        assert!(segments > 0, "a wire needs at least one segment");
        let rs = r / segments as f64;
        let cs = c / segments as f64;
        let mut at = parent;
        for _ in 0..segments {
            at = self.add_node(at, rs, cs);
        }
        at
    }

    /// Adds extra grounded capacitance at an existing node (e.g. a fanout
    /// gate load).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this tree.
    pub fn add_cap(&mut self, node: NodeId, c: Farads) {
        assert!(node.0 < self.nodes.len(), "node out of bounds");
        self.nodes[node.0].capacitance += c;
    }

    /// Total grounded capacitance of the tree (the load seen by an ideal
    /// driver at DC).
    pub fn total_cap(&self) -> Farads {
        self.nodes.iter().map(|n| n.capacitance).sum()
    }

    /// Capacitance of the subtree rooted at `node` (inclusive).
    pub fn subtree_cap(&self, node: NodeId) -> Farads {
        self.downstream_caps()[node.0]
    }

    /// Elmore delay from the root to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `sink` does not belong to this tree.
    pub fn elmore_delay(&self, sink: NodeId) -> Seconds {
        assert!(sink.0 < self.nodes.len(), "sink out of bounds");
        let downstream = self.downstream_caps();
        let mut delay = Seconds::ZERO;
        let mut at = sink;
        while let Some(parent) = self.nodes[at.0].parent {
            delay += self.nodes[at.0].resistance * downstream[at.0];
            at = parent;
        }
        delay
    }

    /// Elmore delays from the root to every node, in node order.
    ///
    /// Cheaper than calling [`RcTree::elmore_delay`] per sink when all
    /// sinks are needed: one pass instead of one walk per sink.
    pub fn elmore_delays(&self) -> Vec<Seconds> {
        let downstream = self.downstream_caps();
        let mut delays = vec![Seconds::ZERO; self.nodes.len()];
        // Children always have larger indices than parents, so a single
        // forward pass sees every parent before its children.
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            // mot3d-lint: allow(P1) -- skip(1) never visits the root, and only the root has no parent
            let parent = node.parent.expect("non-root node has a parent");
            delays[i] = delays[parent.0] + node.resistance * downstream[i];
        }
        delays
    }

    /// Downstream (subtree) capacitance per node, computed bottom-up.
    fn downstream_caps(&self) -> Vec<Farads> {
        let mut caps: Vec<Farads> = self.nodes.iter().map(|n| n.capacitance).collect();
        for i in (1..self.nodes.len()).rev() {
            // mot3d-lint: allow(P1) -- the (1..).rev() range never visits the root
            let parent = self.nodes[i].parent.expect("non-root node has a parent");
            let c = caps[i];
            caps[parent.0] += c;
        }
        caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Farads, Ohms};

    fn ff(v: f64) -> Farads {
        Farads::from_ff(v)
    }

    fn kohm(v: f64) -> Ohms {
        Ohms::from_kohms(v)
    }

    #[test]
    fn single_rc_is_rc() {
        let mut t = RcTree::new(Farads::ZERO);
        let sink = t.add_node(t.root(), kohm(2.0), ff(10.0));
        assert!((t.elmore_delay(sink).ps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn chain_matches_closed_form() {
        // Ladder R1-C1, R2-C2: t = R1(C1+C2) + R2 C2.
        let mut t = RcTree::new(Farads::ZERO);
        let n1 = t.add_node(t.root(), kohm(1.0), ff(5.0));
        let n2 = t.add_node(n1, kohm(3.0), ff(7.0));
        let expected_ps = 1.0 * (5.0 + 7.0) + 3.0 * 7.0;
        assert!((t.elmore_delay(n2).ps() - expected_ps).abs() < 1e-9);
        // Intermediate node only sees R1 times everything downstream of R1.
        assert!((t.elmore_delay(n1).ps() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn branch_loads_shared_path() {
        // A side branch hanging off the shared path adds its capacitance to
        // the delay of the other sink (classic Elmore coupling).
        let mut t = RcTree::new(Farads::ZERO);
        let mid = t.add_node(t.root(), kohm(1.0), ff(0.0));
        let sink = t.add_node(mid, kohm(1.0), ff(10.0));
        let before = t.elmore_delay(sink);
        let mut t2 = t.clone();
        t2.add_node(mid, kohm(5.0), ff(20.0));
        let after = t2.elmore_delay(sink);
        // Extra 20 fF behind the first 1 kΩ: delay grows by exactly 20 ps.
        assert!(((after - before).ps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn wire_segments_converge_to_half_rc() {
        let r = kohm(1.0);
        let c = ff(100.0);
        let mut last = f64::INFINITY;
        for segments in [1usize, 2, 4, 16, 64, 256] {
            let mut t = RcTree::new(Farads::ZERO);
            let sink = t.add_wire(t.root(), r, c, segments);
            let d = t.elmore_delay(sink).ps();
            assert!(d <= last + 1e-9, "delay must not increase with refinement");
            last = d;
        }
        // Distributed limit is RC/2 = 50 ps; 256 segments is within 1%.
        assert!((last - 50.0).abs() < 0.5, "got {last} ps");
    }

    #[test]
    fn elmore_delays_matches_per_sink_queries() {
        let mut t = RcTree::new(ff(1.0));
        let a = t.add_node(t.root(), kohm(1.0), ff(2.0));
        let b = t.add_node(a, kohm(2.0), ff(3.0));
        let c = t.add_node(a, kohm(4.0), ff(5.0));
        let all = t.elmore_delays();
        for sink in [t.root(), a, b, c] {
            assert_eq!(all[sink.index()], t.elmore_delay(sink));
        }
    }

    #[test]
    fn total_and_subtree_caps() {
        let mut t = RcTree::new(ff(1.0));
        let a = t.add_node(t.root(), kohm(1.0), ff(2.0));
        let _b = t.add_node(a, kohm(1.0), ff(3.0));
        t.add_cap(a, ff(4.0));
        assert!((t.total_cap().ff() - 10.0).abs() < 1e-9);
        assert!((t.subtree_cap(a).ff() - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "parent node")]
    fn bad_parent_panics() {
        let mut t = RcTree::new(Farads::ZERO);
        let bogus = NodeId(42);
        t.add_node(bogus, kohm(1.0), ff(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segment_wire_panics() {
        let mut t = RcTree::new(Farads::ZERO);
        t.add_wire(t.root(), kohm(1.0), ff(1.0), 0);
    }

    #[test]
    fn empty_tree_root_delay_is_zero() {
        let t = RcTree::new(ff(10.0));
        assert!(t.is_empty());
        assert_eq!(t.elmore_delay(t.root()), Seconds::ZERO);
    }
}
