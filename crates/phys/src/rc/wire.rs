//! Repeated (buffered) on-chip wire model.
//!
//! Long horizontal MoT links are driven through periodically inserted
//! inverters — the repeaters that the paper's reconfigurable switch allows
//! to be power-gated along with their wire. This module models such a wire:
//! optimal repeater spacing (Bakoglu), 50 %-threshold Elmore delay per
//! segment, switching energy, and repeater leakage.
//!
//! Delay of one repeater-driven segment (driver resistance `R_d`, segment
//! wire `R_w`/`C_w`, next-stage load `C_L`):
//!
//! ```text
//! t_seg = t_int + ln2·R_d·(C_out + C_w + C_L) + R_w·(ln2·C_L + 0.38·C_w)
//! ```
//!
//! where `0.38·R_w·C_w` is the distributed-wire Elmore term and `ln 2`
//! rescales first-moment estimates to the 50 % crossing of a step response.

use crate::technology::Technology;
use crate::units::{Farads, Joules, Meters, Seconds, Watts};

const LN2: f64 = core::f64::consts::LN_2;
/// Distributed-RC coefficient for the 50 % point of a uniform line.
const DISTRIBUTED: f64 = 0.38;

/// Optimal repeater segment length for the node: `√(2·R_d·C_self / (r·c))`.
///
/// Shorter wires than this need no repeater at all; longer wires are split
/// into `ceil(L / L_opt)` segments.
///
/// # Examples
///
/// ```
/// use mot3d_phys::{rc::optimal_segment_length, Technology};
/// let l = optimal_segment_length(&Technology::lp45());
/// // calibrated node: ~0.8 mm spacing
/// assert!(l.mm() > 0.4 && l.mm() < 1.6);
/// ```
pub fn optimal_segment_length(tech: &Technology) -> Meters {
    let rd = tech.repeater.drive_resistance.value();
    let cself = tech.repeater.self_cap().value();
    let r = tech.wire_resistance.0;
    let c = tech.wire_capacitance.0;
    Meters::new((2.0 * rd * cself / (r * c)).sqrt())
}

/// A fixed-length wire with optimally spaced repeaters.
///
/// # Examples
///
/// ```
/// use mot3d_phys::{rc::RepeatedWire, Technology};
/// use mot3d_phys::units::Meters;
///
/// let tech = Technology::lp45();
/// let wire = RepeatedWire::new(&tech, Meters::from_mm(2.5));
/// assert!(wire.repeater_count() >= 2);
/// assert!(wire.delay().ns() < 2.5); // sub-ns/mm on the calibrated node
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatedWire {
    length: Meters,
    segments: usize,
    delay: Seconds,
    energy_per_transition: Joules,
    leakage: Watts,
    wire_cap: Farads,
}

impl RepeatedWire {
    /// Models a wire of the given length in the given technology, with the
    /// number of repeaters chosen by optimal spacing. Zero-length wires are
    /// free (no delay, no energy, no repeaters).
    pub fn new(tech: &Technology, length: Meters) -> Self {
        Self::with_load(tech, length, tech.repeater.input_cap)
    }

    /// Like [`RepeatedWire::new`] but with an explicit far-end load
    /// capacitance (e.g. the input of a switch cell instead of another
    /// repeater).
    pub fn with_load(tech: &Technology, length: Meters, end_load: Farads) -> Self {
        if length.value() <= 0.0 {
            return RepeatedWire {
                length: Meters::ZERO,
                segments: 0,
                delay: Seconds::ZERO,
                energy_per_transition: Joules::ZERO,
                leakage: Watts::ZERO,
                wire_cap: Farads::ZERO,
            };
        }
        let l_opt = optimal_segment_length(tech);
        let segments = (length.value() / l_opt.value()).ceil().max(1.0) as usize;
        let seg_len = length / segments as f64;

        let rep = &tech.repeater;
        let rw = tech.wire_resistance.over(seg_len);
        let cw = tech.wire_capacitance.over(seg_len);

        let mut delay = Seconds::ZERO;
        for i in 0..segments {
            let load = if i + 1 == segments {
                end_load
            } else {
                rep.input_cap
            };
            let driver_term = LN2
                * rep.drive_resistance.value()
                * (rep.output_cap.value() + cw.value() + load.value());
            let wire_term = rw.value() * (LN2 * load.value() + DISTRIBUTED * cw.value());
            delay += rep.intrinsic_delay + Seconds::new(driver_term + wire_term);
        }

        let wire_cap = tech.wire_capacitance.over(length);
        // One driving repeater per segment switches its self-cap plus the
        // segment wire; the end load belongs to the receiver and is counted
        // there.
        let switched = wire_cap + rep.self_cap() * segments as f64;
        let energy = switched.switching_energy(tech.vdd);
        let leakage = rep.leakage * segments as f64;

        RepeatedWire {
            length,
            segments,
            delay,
            energy_per_transition: energy,
            leakage,
            wire_cap,
        }
    }

    /// Physical wire length.
    #[inline]
    pub fn length(&self) -> Meters {
        self.length
    }

    /// Number of repeaters inserted (one per segment; zero for zero-length
    /// wires).
    #[inline]
    pub fn repeater_count(&self) -> usize {
        self.segments
    }

    /// 50 %-threshold propagation delay end to end.
    #[inline]
    pub fn delay(&self) -> Seconds {
        self.delay
    }

    /// Energy dissipated by one signal transition over the full wire
    /// (wire capacitance plus repeater self-capacitance, at `½·C·V²`).
    #[inline]
    pub fn energy_per_transition(&self) -> Joules {
        self.energy_per_transition
    }

    /// Total leakage power of the repeaters while the wire is powered.
    /// This is exactly what power-gating a disconnected MoT subtree saves.
    #[inline]
    pub fn leakage(&self) -> Watts {
        self.leakage
    }

    /// Total wire capacitance.
    #[inline]
    pub fn wire_cap(&self) -> Farads {
        self.wire_cap
    }
}

/// Delay of the same wire driven once at the source with *no* repeaters.
/// Used by tests and ablations to show why repeaters are inserted: the
/// unrepeated delay grows quadratically with length.
pub fn unrepeated_delay(tech: &Technology, length: Meters, end_load: Farads) -> Seconds {
    if length.value() <= 0.0 {
        return Seconds::ZERO;
    }
    let rep = &tech.repeater;
    let rw = tech.wire_resistance.over(length);
    let cw = tech.wire_capacitance.over(length);
    let driver_term = LN2
        * rep.drive_resistance.value()
        * (rep.output_cap.value() + cw.value() + end_load.value());
    let wire_term = rw.value() * (LN2 * end_load.value() + DISTRIBUTED * cw.value());
    rep.intrinsic_delay + Seconds::new(driver_term + wire_term)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_wire_is_free() {
        let tech = Technology::lp45();
        let w = RepeatedWire::new(&tech, Meters::ZERO);
        assert_eq!(w.delay(), Seconds::ZERO);
        assert_eq!(w.repeater_count(), 0);
        assert_eq!(w.energy_per_transition(), Joules::ZERO);
        assert_eq!(w.leakage(), Watts::ZERO);
    }

    #[test]
    fn delay_monotone_in_length() {
        let tech = Technology::lp45();
        let mut last = Seconds::ZERO;
        for mm in [0.1, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
            let w = RepeatedWire::new(&tech, Meters::from_mm(mm));
            assert!(w.delay() > last, "delay must grow with length at {mm} mm");
            last = w.delay();
        }
    }

    #[test]
    fn long_wire_delay_is_roughly_linear() {
        // Repeated wires have linear asymptotics: delay(4 mm) ≈ 2·delay(2 mm).
        let tech = Technology::lp45();
        let d2 = RepeatedWire::new(&tech, Meters::from_mm(2.0)).delay();
        let d4 = RepeatedWire::new(&tech, Meters::from_mm(4.0)).delay();
        let ratio = d4 / d2;
        assert!(ratio > 1.7 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn calibration_ns_per_mm_band() {
        // DESIGN.md §7: the calibrated node targets ≈ 0.42 ns/mm so Table I
        // latencies are reproduced downstream.
        let tech = Technology::lp45();
        let d = RepeatedWire::new(&tech, Meters::from_mm(1.0)).delay();
        assert!(
            d.ns() > 0.3 && d.ns() < 0.55,
            "repeated-wire delay per mm out of calibration band: {} ns",
            d.ns()
        );
    }

    #[test]
    fn repeaters_beat_unrepeated_for_long_wires() {
        let tech = Technology::lp45();
        let len = Meters::from_mm(5.0);
        let repeated = RepeatedWire::new(&tech, len).delay();
        let bare = unrepeated_delay(&tech, len, tech.repeater.input_cap);
        assert!(
            repeated < bare,
            "repeaters should win at 5 mm: {} vs {}",
            repeated.ns(),
            bare.ns()
        );
    }

    #[test]
    fn repeater_count_tracks_optimal_spacing() {
        let tech = Technology::lp45();
        let l_opt = optimal_segment_length(&tech);
        let w = RepeatedWire::new(&tech, l_opt * 3.5);
        assert_eq!(w.repeater_count(), 4);
    }

    #[test]
    fn energy_scales_with_length() {
        let tech = Technology::lp45();
        let e1 = RepeatedWire::new(&tech, Meters::from_mm(1.0)).energy_per_transition();
        let e3 = RepeatedWire::new(&tech, Meters::from_mm(3.0)).energy_per_transition();
        let ratio = e3 / e1;
        assert!(ratio > 2.5 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn leakage_counts_every_repeater() {
        let tech = Technology::lp45();
        let w = RepeatedWire::new(&tech, Meters::from_mm(4.0));
        let expected = tech.repeater.leakage * w.repeater_count() as f64;
        assert_eq!(w.leakage(), expected);
    }

    #[test]
    fn explicit_end_load_increases_delay() {
        let tech = Technology::lp45();
        let len = Meters::from_mm(1.0);
        let light = RepeatedWire::with_load(&tech, len, Farads::from_ff(1.0));
        let heavy = RepeatedWire::with_load(&tech, len, Farads::from_ff(50.0));
        assert!(heavy.delay() > light.delay());
    }
}
