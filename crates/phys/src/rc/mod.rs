//! RC parasitics and delay estimation.
//!
//! Two layers:
//!
//! * [`RcTree`] — a general RC tree with Elmore (first-moment) delay at any
//!   sink, the model named by the paper for its longest-path latency
//!   estimates;
//! * [`RepeatedWire`] — the engineering abstraction built on top: a long
//!   wire with optimally spaced repeaters, yielding delay, energy per
//!   transition and repeater leakage for each MoT link.

mod tree;
mod wire;

pub use tree::{NodeId, RcTree};
pub use wire::{optimal_segment_length, unrepeated_delay, RepeatedWire};
