//! CACTI-style analytic SRAM bank model.
//!
//! The paper estimates "the size of a cache bank and the propagation delay
//! from bank I/Os to memory core cells within a SRAM cache bank ... from
//! CACTI \[13\]". This module reproduces that role with a compact analytic
//! model: the bank is partitioned into mats of at most 256 columns ×
//! 128 rows (CACTI-style subarray sizing); the access path is row decoder
//! → wordline → bitline discharge → sense amplifier → output drive →
//! H-tree routing back to the bank I/Os. All mats holding bits of the
//! addressed set activate in parallel.
//!
//! The model returns access delay, per-access read/write energy, leakage
//! power, and bank area. Constants are calibrated so a 64 KB / 32 B-block /
//! 8-way bank (the paper's L2 bank) lands at ≈ 2 cycles of access at 1 GHz
//! and a few tens of pJ per access, consistent with CACTI 4.0-era numbers
//! for a 45 nm-class node.

use std::error::Error;
use std::fmt;

use crate::rc::RepeatedWire;
use crate::technology::Technology;
use crate::units::{Farads, Joules, Meters, Seconds, SquareMeters, Volts, Watts};

/// Bitline capacitance contributed by one cell (drain junction + wire).
const BITLINE_CAP_PER_CELL: Farads = Farads::from_ff(0.8);
/// Wordline capacitance contributed by one cell (two access-gate inputs).
const WORDLINE_CAP_PER_CELL: Farads = Farads::from_ff(0.4);
/// Bitline sensing swing (differential, small-signal).
const BITLINE_SWING: Volts = Volts::new(0.2);
/// Fixed sense-amplifier resolution time.
const SENSE_AMP_DELAY: Seconds = Seconds::from_ps(120.0);
/// Sense-amplifier energy per column sensed.
const SENSE_AMP_ENERGY: Joules = Joules::from_pj(0.005);
/// Fixed output-driver delay.
const OUTPUT_DRIVER_DELAY: Seconds = Seconds::from_ps(100.0);
/// Decoder delay per address bit (one gate level each) plus fixed predecode.
const DECODER_DELAY_PER_BIT: Seconds = Seconds::from_ps(22.0);
const DECODER_FIXED: Seconds = Seconds::from_ps(50.0);
/// Equivalent resistance of the dedicated wordline driver.
const WORDLINE_DRIVER_RES: f64 = 1_000.0;
/// Largest subarray (mat) dimensions, CACTI-style.
const MAX_SUB_COLS: usize = 256;
const MAX_SUB_ROWS: usize = 128;
/// Fraction of bank area occupied by the cell arrays (rest is periphery).
const AREA_EFFICIENCY: f64 = 0.5;
/// Peripheral leakage as a fraction of array leakage.
const PERIPHERY_LEAKAGE_FRACTION: f64 = 0.25;

/// Errors produced when an SRAM configuration is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SramConfigError {
    /// Capacity is zero or not divisible into whole sets.
    BadCapacity {
        /// Requested capacity in bytes.
        capacity: usize,
        /// Bytes per set (`block_bytes × associativity`).
        set_bytes: usize,
    },
    /// Block size or associativity is zero.
    ZeroField(&'static str),
}

impl fmt::Display for SramConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramConfigError::BadCapacity {
                capacity,
                set_bytes,
            } => write!(
                f,
                "capacity {capacity} B is not a positive multiple of the set size {set_bytes} B"
            ),
            SramConfigError::ZeroField(name) => write!(f, "{name} must be non-zero"),
        }
    }
}

impl Error for SramConfigError {}

/// Logical organisation of an SRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Total data capacity in bytes.
    pub capacity_bytes: usize,
    /// Cache block (line) size in bytes; one block is read per access.
    pub block_bytes: usize,
    /// Set associativity (ways stored side by side in a row).
    pub associativity: usize,
}

impl SramConfig {
    /// The paper's L2 cache bank: 64 KB, 32 B blocks, 8-way (Table I).
    pub fn l2_bank_date16() -> Self {
        SramConfig {
            capacity_bytes: 64 * 1024,
            block_bytes: 32,
            associativity: 8,
        }
    }

    /// The paper's private L1 cache: 4 KB, 32 B blocks, 4-way (Table I).
    pub fn l1_date16() -> Self {
        SramConfig {
            capacity_bytes: 4 * 1024,
            block_bytes: 32,
            associativity: 4,
        }
    }

    /// Number of sets (rows of the logical array).
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.block_bytes * self.associativity)
    }
}

/// Delay/energy/area estimates for one SRAM bank.
///
/// # Examples
///
/// ```
/// use mot3d_phys::{sram::{SramBank, SramConfig}, Technology};
///
/// let tech = Technology::lp45();
/// let bank = SramBank::model(&tech, SramConfig::l2_bank_date16())?;
/// assert_eq!(bank.access_cycles(&tech), 2); // Table I's bank contribution
/// # Ok::<(), mot3d_phys::sram::SramConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramBank {
    config: SramConfig,
    access_delay: Seconds,
    read_energy: Joules,
    write_energy: Joules,
    leakage: Watts,
    area: SquareMeters,
    rows: usize,
    cols: usize,
}

impl SramBank {
    /// Evaluates the analytic model for `config` in technology `tech`.
    ///
    /// # Errors
    ///
    /// Returns [`SramConfigError`] if the capacity does not divide into
    /// whole sets or any field is zero.
    pub fn model(tech: &Technology, config: SramConfig) -> Result<Self, SramConfigError> {
        if config.block_bytes == 0 {
            return Err(SramConfigError::ZeroField("block_bytes"));
        }
        if config.associativity == 0 {
            return Err(SramConfigError::ZeroField("associativity"));
        }
        let set_bytes = config.block_bytes * config.associativity;
        if config.capacity_bytes == 0 || config.capacity_bytes % set_bytes != 0 {
            return Err(SramConfigError::BadCapacity {
                capacity: config.capacity_bytes,
                set_bytes,
            });
        }

        let rows = config.sets();
        let cols = config.block_bytes * 8 * config.associativity;

        // Partition into mats no larger than 256 × 128 cells.
        let sub_cols = cols.clamp(1, MAX_SUB_COLS);
        let sub_rows = rows.clamp(1, MAX_SUB_ROWS);

        let cell_pitch = Meters::from_um(tech.sram_cell_area_um2.sqrt() * 1.2);

        // --- delay -----------------------------------------------------
        let addr_bits = (rows.max(2) as f64).log2().ceil();
        let decoder = DECODER_FIXED + DECODER_DELAY_PER_BIT * addr_bits;

        let wl_len = cell_pitch * sub_cols as f64;
        let wl_cap = WORDLINE_CAP_PER_CELL * sub_cols as f64 + tech.wire_capacitance.over(wl_len);
        let wl_res = tech.wire_resistance.over(wl_len);
        // Distributed wordline: 0.38·R·C plus the dedicated-driver term.
        let wordline = Seconds::new(
            0.38 * wl_res.value() * wl_cap.value()
                + core::f64::consts::LN_2 * WORDLINE_DRIVER_RES * wl_cap.value(),
        );

        let bl_cap = BITLINE_CAP_PER_CELL * sub_rows as f64;
        // Cell read current discharges the bitline by the sensing swing;
        // an LP cell drives ≈ 40 µA.
        let cell_current = 40e-6;
        let bitline = Seconds::new(bl_cap.value() * BITLINE_SWING.value() / cell_current);

        // H-tree from the bank I/O to the mat and back (half the bank side
        // each way on average, repeated wire).
        let area = SquareMeters::new(
            config.capacity_bytes as f64 * 8.0 * tech.sram_cell_area_um2 * 1e-12 / AREA_EFFICIENCY,
        );
        let side = Meters::new(area.value().sqrt());
        let htree = RepeatedWire::new(tech, side / 2.0);

        let access_delay =
            decoder + wordline + bitline + SENSE_AMP_DELAY + OUTPUT_DRIVER_DELAY + htree.delay();

        // --- energy ----------------------------------------------------
        // Read: every bitline of the addressed set (all ways in parallel,
        // CACTI fast mode) swings by the sensing voltage; sense amps fire
        // per column; the H-tree toggles with ~half the block bits.
        let set_cols = cols as f64;
        let bitline_read =
            Joules::new(bl_cap.value() * set_cols * BITLINE_SWING.value() * tech.vdd.value());
        let sense = SENSE_AMP_ENERGY * set_cols;
        let block_bits = (config.block_bytes * 8) as f64;
        let htree_energy = htree.energy_per_transition() * (block_bits * 0.5);
        let wordline_energy = wl_cap.switching_energy(tech.vdd);
        let read_energy = bitline_read + sense + htree_energy + wordline_energy + decoder_energy();

        // Write: the selected way's columns swing full rail; the other
        // ways' bitlines still see the read-style swing (the row opens for
        // the whole set).
        let other_ways = set_cols - block_bits;
        let bitline_write = Farads::new(bl_cap.value() * block_bits).switching_energy(tech.vdd)
            + Joules::new(bl_cap.value() * other_ways * BITLINE_SWING.value() * tech.vdd.value());
        let write_energy = bitline_write + htree_energy + wordline_energy + decoder_energy();

        // --- leakage ---------------------------------------------------
        let kb = config.capacity_bytes as f64 / 1024.0;
        let leakage = tech.sram_leakage_per_kb * (kb * (1.0 + PERIPHERY_LEAKAGE_FRACTION));

        Ok(SramBank {
            config,
            access_delay,
            read_energy,
            write_energy,
            leakage,
            area,
            rows,
            cols,
        })
    }

    /// The configuration this bank was modelled from.
    #[inline]
    pub fn config(&self) -> SramConfig {
        self.config
    }

    /// Propagation delay from bank I/Os to the cells and back (one access).
    #[inline]
    pub fn access_delay(&self) -> Seconds {
        self.access_delay
    }

    /// Access delay quantised to clock cycles.
    #[inline]
    pub fn access_cycles(&self, tech: &Technology) -> u64 {
        tech.cycles_for(self.access_delay)
    }

    /// Dynamic energy of one block read.
    #[inline]
    pub fn read_energy(&self) -> Joules {
        self.read_energy
    }

    /// Dynamic energy of one block write.
    #[inline]
    pub fn write_energy(&self) -> Joules {
        self.write_energy
    }

    /// Leakage power while the bank is powered. This is what power-gating
    /// an L2 bank (the paper's `MB8` states) saves.
    #[inline]
    pub fn leakage(&self) -> Watts {
        self.leakage
    }

    /// Estimated silicon area of the bank.
    #[inline]
    pub fn area(&self) -> SquareMeters {
        self.area
    }

    /// Logical rows (sets) of the array.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical columns (bits per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Fixed decoder switching energy per access.
fn decoder_energy() -> Joules {
    Joules::from_pj(0.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_bank_is_two_cycles_at_1ghz() {
        let tech = Technology::lp45();
        let bank = SramBank::model(&tech, SramConfig::l2_bank_date16()).unwrap();
        assert_eq!(
            bank.access_cycles(&tech),
            2,
            "access delay {} ns",
            bank.access_delay().ns()
        );
    }

    #[test]
    fn l1_is_single_cycle() {
        // Table I: L1 has 1-cycle latency.
        let tech = Technology::lp45();
        let l1 = SramBank::model(&tech, SramConfig::l1_date16()).unwrap();
        assert_eq!(
            l1.access_cycles(&tech),
            1,
            "delay {} ns",
            l1.access_delay().ns()
        );
    }

    #[test]
    fn geometry_of_the_paper_bank() {
        let tech = Technology::lp45();
        let bank = SramBank::model(&tech, SramConfig::l2_bank_date16()).unwrap();
        assert_eq!(bank.rows(), 256);
        assert_eq!(bank.cols(), 2048);
        // 64 KB at ~0.35 µm²/cell and 50 % efficiency: ~0.3–0.5 mm².
        assert!(bank.area().mm2() > 0.2 && bank.area().mm2() < 0.6);
    }

    #[test]
    fn read_energy_in_cacti_band() {
        let tech = Technology::lp45();
        let bank = SramBank::model(&tech, SramConfig::l2_bank_date16()).unwrap();
        let pj = bank.read_energy().pj();
        assert!(pj > 5.0 && pj < 120.0, "read energy {pj} pJ");
    }

    #[test]
    fn write_and_read_energy_are_comparable() {
        // CACTI-era 64 KB banks: read and write land within 2× of each
        // other (reads sense every way; writes swing the written way full
        // rail).
        let tech = Technology::lp45();
        let bank = SramBank::model(&tech, SramConfig::l2_bank_date16()).unwrap();
        let ratio = bank.write_energy() / bank.read_energy();
        assert!(ratio > 0.5 && ratio < 2.0, "write/read ratio {ratio}");
    }

    #[test]
    fn bigger_bank_is_slower_and_hungrier() {
        let tech = Technology::lp45();
        let small = SramBank::model(&tech, SramConfig::l2_bank_date16()).unwrap();
        let big = SramBank::model(
            &tech,
            SramConfig {
                capacity_bytes: 256 * 1024,
                ..SramConfig::l2_bank_date16()
            },
        )
        .unwrap();
        assert!(big.access_delay() > small.access_delay());
        assert!(big.leakage() > small.leakage());
        assert!(big.area() > small.area());
    }

    #[test]
    fn leakage_scales_with_capacity() {
        let tech = Technology::lp45();
        let bank = SramBank::model(&tech, SramConfig::l2_bank_date16()).unwrap();
        let expected = tech.sram_leakage_per_kb * (64.0 * 1.25);
        assert!((bank.leakage() / expected - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_indivisible_capacity() {
        let tech = Technology::lp45();
        let err = SramBank::model(
            &tech,
            SramConfig {
                capacity_bytes: 1000,
                block_bytes: 32,
                associativity: 8,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SramConfigError::BadCapacity { .. }));
        assert!(err.to_string().contains("1000"));
    }

    #[test]
    fn rejects_zero_fields() {
        let tech = Technology::lp45();
        for (block, assoc, name) in [(0usize, 8usize, "block_bytes"), (32, 0, "associativity")] {
            let err = SramBank::model(
                &tech,
                SramConfig {
                    capacity_bytes: 64 * 1024,
                    block_bytes: block,
                    associativity: assoc,
                },
            )
            .unwrap_err();
            assert_eq!(err, SramConfigError::ZeroField(name));
        }
    }
}
