//! Indexed hierarchical timing wheel for `(time, seq)`-ordered event
//! queues.
//!
//! The simulator's event queues (`Cluster`'s action queue, the NoC
//! baselines' packet queue) were `BinaryHeap<Reverse<(time, seq, _)>>`:
//! every schedule and pop paid an `O(log n)` sift of branchy `(u64,
//! u64)` comparisons. The access pattern those queues actually see is
//! far friendlier than the general case: the PR 2 wake-hint protocol
//! makes almost every event *near-future* (a handful of cycles for
//! interconnect hops and bank service, a few hundred for DRAM), and
//! time only moves forward. [`TimingWheel`] exploits that shape —
//! events hash into a calendar of 64-slot levels by their distance from
//! the wheel's current time, so schedule and pop are `O(1)` slot
//! operations, with the rare far-future event cascading down one level
//! at a time as the wheel turns.
//!
//! ## Ordering contract
//!
//! Pops are **bit-identical** to the heap they replace: strictly
//! ascending `(time, seq)` where `seq` is the wheel-assigned insertion
//! number. Two properties make this hold with no per-pop comparison in
//! the common case:
//!
//! * a level-0 slot within the current 64-cycle window holds events of
//!   exactly one timestamp, appended in `seq` order — FIFO drain *is*
//!   `(time, seq)` order;
//! * the rare slot that receives out-of-order appends (a cascade
//!   landing behind a direct insert, an overdue insert sharing the
//!   cursor slot) is flagged and lazily sorted once before it drains.
//!
//! The differential suite in `crates/phys/tests/wheel_equivalence.rs`
//! pins the equivalence against a reference heap under randomized
//! schedules, same-cycle bursts, far-future events, and
//! schedule-while-draining interleavings.
//!
//! ## Exact `O(1)` peek
//!
//! [`TimingWheel::next_time`] returns the exact earliest event time (not
//! a slot-granular bound) from a cached minimum: inserts fold into it
//! directly, and pops rebuild it from per-slot minima via one occupancy
//! bitmap scan per level. The event-driven runner's `next_activity`
//! wake hints depend on that exactness.
//!
//! # Examples
//!
//! ```
//! use mot3d_phys::wheel::TimingWheel;
//!
//! let mut q: TimingWheel<&str> = TimingWheel::new();
//! q.schedule(10, "dram refill");
//! q.schedule(3, "bank done");
//! q.schedule(3, "second at the same cycle");
//! assert_eq!(q.next_time(), Some(3));
//! assert_eq!(q.pop_due(5), Some((3, "bank done")));
//! assert_eq!(q.pop_due(5), Some((3, "second at the same cycle")));
//! assert_eq!(q.pop_due(5), None); // cycle 10 is not due yet
//! assert_eq!(q.next_time(), Some(10));
//! ```

use std::collections::VecDeque;

/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64: one occupancy `u64` per level).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` buckets are `64^l` cycles wide, so the wheel
/// spans `64^4 ≈ 16.7M` cycles ahead of `cur` before the overflow list
/// is touched — far beyond any latency the simulated cluster produces.
const LEVELS: usize = 4;
/// Circular slot-index mask.
const SLOT_MASK: u64 = SLOTS as u64 - 1;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    entries: VecDeque<Entry<T>>,
    /// Exact minimum event time across the slot (`u64::MAX` when empty).
    min_time: u64,
    /// Whether `entries` is known ascending by `(time, seq)`. Appends in
    /// `seq` order at a single timestamp (the overwhelmingly common
    /// case) keep it `true`; anything else clears it and the slot is
    /// sorted once before draining.
    sorted: bool,
}

impl<T> Slot<T> {
    const fn new() -> Self {
        Slot {
            entries: VecDeque::new(),
            min_time: u64::MAX,
            sorted: true,
        }
    }
}

/// A hierarchical timing wheel popping in exact `(time, seq)` order.
///
/// Drop-in replacement for the simulator's former
/// `BinaryHeap<Reverse<(time, seq, item)>>` queues; see the module docs
/// for the ordering contract. Times may be scheduled in any order,
/// including behind already-popped times (an "overdue" event pops
/// first, exactly as it would from the heap).
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    /// `LEVELS × SLOTS` slots, level-major.
    slots: Box<[Slot<T>]>,
    /// Per-level occupancy bitmaps (bit `i` = slot `i` non-empty).
    occ: [u64; LEVELS],
    /// The wheel's current time: the latest time ever popped. Only
    /// advances, and only to the exact time of the event being popped.
    cur: u64,
    /// Cached exact earliest live event time (`u64::MAX` when empty).
    next: u64,
    /// Live events.
    len: usize,
    /// Insertion counter; ties at one time pop in schedule order.
    seq: u64,
    /// Events too far ahead for the top level, in insertion order.
    overflow: Vec<Entry<T>>,
    /// Exact minimum time in `overflow` (`u64::MAX` when empty).
    overflow_min: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T> TimingWheel<T> {
    /// Builds an empty wheel starting at time 0.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS)
                .map(|_| Slot::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            occ: [0; LEVELS],
            cur: 0,
            next: u64::MAX,
            len: 0,
            seq: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
        }
    }

    /// Live (scheduled, not yet popped) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The exact earliest live event time, or `None` when empty. `O(1)`.
    pub fn next_time(&self) -> Option<u64> {
        (self.next != u64::MAX).then_some(self.next)
    }

    /// Schedules `item` at `time`. Events at equal times pop in
    /// schedule order (the `(time, seq)` contract).
    // mot3d-lint: no-alloc
    pub fn schedule(&mut self, time: u64, item: T) {
        self.seq += 1;
        self.len += 1;
        if time < self.next {
            self.next = time;
        }
        let entry = Entry {
            time,
            seq: self.seq,
            item,
        };
        self.place(entry);
    }

    /// Pops the earliest event if its time is `<= now`, returning
    /// `(time, item)`. Equivalent to the peek-compare-pop idiom on the
    /// reference heap.
    // mot3d-lint: no-alloc
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, T)> {
        if self.len == 0 || self.next > now {
            return None;
        }
        let t = self.next;
        if t > self.cur {
            self.advance_to(t);
        }
        if self.overflow_min <= t {
            self.drain_overflow();
        }
        // The due event sits in the level-0 slot of `t` — or, when it
        // was scheduled behind the wheel ("overdue"), of `cur`, where
        // `place` parked it.
        let idx = (t.max(self.cur) & SLOT_MASK) as usize;
        let slot = &mut self.slots[idx];
        if !slot.sorted {
            slot.entries
                .make_contiguous()
                .sort_unstable_by_key(|e| (e.time, e.seq));
            slot.sorted = true;
        }
        debug_assert_eq!(slot.entries.front().map(|e| e.time), Some(t));
        let entry = slot.entries.pop_front()?;
        self.len -= 1;
        match slot.entries.front() {
            Some(front) => {
                slot.min_time = front.time;
                // `t` was the global minimum, so nothing live is earlier;
                // a remaining same-cycle entry keeps `next` exact without
                // the per-level rescan (same-cycle bursts are the common
                // case in the simulator's delivery traffic).
                if front.time == t {
                    self.next = t;
                    return Some((entry.time, entry.item));
                }
            }
            None => {
                slot.min_time = u64::MAX;
                self.occ[0] &= !(1 << idx);
            }
        }
        self.recompute_next();
        Some((entry.time, entry.item))
    }

    /// Empties the wheel and rewinds it to construction state (time 0,
    /// seq 0) without releasing slot capacity. A cleared wheel replays
    /// a schedule bit-identically to a fresh one.
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            slot.entries.clear();
            slot.min_time = u64::MAX;
            slot.sorted = true;
        }
        self.occ = [0; LEVELS];
        self.cur = 0;
        self.next = u64::MAX;
        self.len = 0;
        self.seq = 0;
        self.overflow.clear();
        self.overflow_min = u64::MAX;
    }

    /// The level whose window (relative to `cur`) contains `t`, plus the
    /// slot index there, or `None` when `t` is beyond the top level.
    /// `t >= cur` required. Level `l` is chosen when `t` and `cur` are
    /// fewer than 64 level-`l` buckets apart, so an event never lands in
    /// the bucket holding `cur` itself (levels ≥ 1 keep that slot empty
    /// — the cascade invariant) and never collides across rotations.
    #[inline]
    fn locate(&self, t: u64) -> Option<(usize, usize)> {
        debug_assert!(t >= self.cur);
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            if (t >> shift) - (self.cur >> shift) < SLOTS as u64 {
                return Some((level, ((t >> shift) & SLOT_MASK) as usize));
            }
        }
        None
    }

    /// Files one entry into its slot (or the overflow list). Does not
    /// touch `len`/`seq`/`next` — callers own those.
    // mot3d-lint: no-alloc
    #[inline]
    fn place(&mut self, entry: Entry<T>) {
        // An overdue entry (scheduled behind an already-popped time)
        // parks in the cursor slot; its true `time` still drives
        // `min_time`, sorting, and the popped result.
        let at = entry.time.max(self.cur);
        match self.locate(at) {
            Some((level, idx)) => {
                let slot = &mut self.slots[level * SLOTS + idx];
                if let Some(last) = slot.entries.back() {
                    if (entry.time, entry.seq) < (last.time, last.seq) {
                        slot.sorted = false;
                    }
                }
                if entry.time < slot.min_time {
                    slot.min_time = entry.time;
                }
                slot.entries.push_back(entry);
                self.occ[level] |= 1 << idx;
            }
            None => {
                if entry.time < self.overflow_min {
                    self.overflow_min = entry.time;
                }
                self.overflow.push(entry);
            }
        }
    }

    /// Advances the wheel to `t` (the exact global-minimum event time),
    /// cascading every level whose bucket boundary is crossed. All
    /// slots strictly between the old and new positions are empty —
    /// they could only hold events earlier than the minimum — so only
    /// the bucket *containing* `t` needs draining at each level, top
    /// down (drained entries re-file into strictly lower levels).
    fn advance_to(&mut self, t: u64) {
        debug_assert!(t >= self.cur);
        let old = self.cur;
        self.cur = t;
        for level in (1..LEVELS).rev() {
            let shift = SLOT_BITS * level as u32;
            if (t >> shift) == (old >> shift) {
                continue;
            }
            let idx = ((t >> shift) & SLOT_MASK) as usize;
            let flat = level * SLOTS + idx;
            if self.slots[flat].entries.is_empty() {
                continue;
            }
            let mut drained = std::mem::take(&mut self.slots[flat].entries);
            self.slots[flat].min_time = u64::MAX;
            self.slots[flat].sorted = true;
            self.occ[level] &= !(1 << idx);
            for entry in drained.drain(..) {
                self.place(entry);
            }
            // `place` never re-targets the bucket being drained, so the
            // slot is still empty: hand its capacity back.
            self.slots[flat].entries = drained;
        }
    }

    /// Re-files every overflow entry relative to the advanced `cur`.
    /// Entries still beyond the top level go back to overflow.
    fn drain_overflow(&mut self) {
        let mut spilled = std::mem::take(&mut self.overflow);
        self.overflow_min = u64::MAX;
        for entry in spilled.drain(..) {
            self.place(entry);
        }
        if self.overflow.is_empty() {
            // Nothing re-overflowed: keep the old capacity.
            self.overflow = spilled;
        }
    }

    /// Rebuilds the cached `next` from per-slot minima: one occupancy
    /// bitmap rotation per level finds the level's earliest slot (slots
    /// scan in time order starting at the cursor), whose stored
    /// `min_time` is exact.
    #[inline]
    fn recompute_next(&mut self) {
        let mut next = self.overflow_min;
        for level in 0..LEVELS {
            let bits = self.occ[level];
            if bits == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cursor = ((self.cur >> shift) & SLOT_MASK) as u32;
            let offset = bits.rotate_right(cursor).trailing_zeros();
            let idx = ((cursor + offset) as u64 & SLOT_MASK) as usize;
            let candidate = self.slots[level * SLOTS + idx].min_time;
            if candidate < next {
                next = candidate;
            }
        }
        self.next = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains everything due by `now`, returning `(time, item)` pairs.
    fn drain<T>(w: &mut TimingWheel<T>, now: u64) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        while let Some(popped) = w.pop_due(now) {
            out.push(popped);
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.schedule(5, "a");
        w.schedule(2, "b");
        w.schedule(5, "c");
        w.schedule(2, "d");
        assert_eq!(w.next_time(), Some(2));
        assert_eq!(drain(&mut w, 10), [(2, "b"), (2, "d"), (5, "a"), (5, "c")]);
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = TimingWheel::new();
        w.schedule(3, 1u32);
        w.schedule(7, 2);
        assert_eq!(w.pop_due(2), None);
        assert_eq!(w.pop_due(3), Some((3, 1)));
        assert_eq!(w.pop_due(6), None);
        assert_eq!(w.pop_due(100), Some((7, 2)));
    }

    #[test]
    fn cascades_across_level_boundaries() {
        let mut w = TimingWheel::new();
        // One event per level, plus one in overflow.
        let times = [5u64, 100, 5_000, 300_000, 20_000_000, 2_000_000_000];
        for (i, &t) in times.iter().enumerate() {
            w.schedule(t, i);
        }
        assert_eq!(w.len(), times.len());
        let popped = drain(&mut w, u64::MAX);
        let expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        assert_eq!(popped, expect);
    }

    #[test]
    fn next_time_is_exact_at_every_level() {
        for &t in &[1u64, 63, 64, 65, 4095, 4096, 262_143, 262_144, 50_000_000] {
            let mut w = TimingWheel::new();
            w.schedule(t, ());
            assert_eq!(w.next_time(), Some(t), "t={t}");
            assert_eq!(w.pop_due(t), Some((t, ())));
        }
    }

    #[test]
    fn same_slot_different_rotation_does_not_collide() {
        let mut w = TimingWheel::new();
        // Advance the wheel off zero so bucket indices wrap.
        w.schedule(100, "warm");
        assert_eq!(w.pop_due(100), Some((100, "warm")));
        // 100 + 64 shares slot index (100+64) % 64 at level 0 with
        // nothing in-window; 100 + 64*64 shares the level-1 bucket
        // index of `cur`'s next rotation.
        w.schedule(100 + 64, "next-window");
        w.schedule(100 + 64 * 64, "next-rotation");
        w.schedule(101, "near");
        assert_eq!(
            drain(&mut w, u64::MAX),
            [
                (101, "near"),
                (164, "next-window"),
                (100 + 64 * 64, "next-rotation")
            ]
        );
    }

    #[test]
    fn overdue_schedules_pop_first() {
        let mut w = TimingWheel::new();
        w.schedule(50, "future");
        assert_eq!(w.pop_due(50), None.or(Some((50, "future"))));
        // The wheel now sits at 50; schedule behind it.
        w.schedule(10, "overdue");
        w.schedule(50, "present");
        assert_eq!(w.next_time(), Some(10));
        assert_eq!(drain(&mut w, 50), [(10, "overdue"), (50, "present")]);
    }

    #[test]
    fn schedule_while_draining_same_cycle() {
        let mut w = TimingWheel::new();
        w.schedule(4, 0u32);
        w.schedule(4, 1);
        assert_eq!(w.pop_due(4), Some((4, 0)));
        // Scheduled mid-drain at the already-draining cycle: pops after
        // the earlier seqs, exactly like the heap.
        w.schedule(4, 2);
        assert_eq!(w.pop_due(4), Some((4, 1)));
        assert_eq!(w.pop_due(4), Some((4, 2)));
        assert_eq!(w.pop_due(4), None);
    }

    #[test]
    fn clear_replays_bit_identically() {
        let mut w = TimingWheel::new();
        let script = |w: &mut TimingWheel<u64>| {
            for i in 0..200u64 {
                w.schedule(i * 7 % 300, i);
            }
            drain(w, 1000)
        };
        let fresh = script(&mut w);
        w.clear();
        assert!(w.is_empty());
        let replayed = script(&mut w);
        assert_eq!(fresh, replayed);
    }

    #[test]
    fn far_future_overflow_reaches_the_wheel() {
        let mut w = TimingWheel::new();
        let far = 64u64.pow(4) + 123; // beyond the top level from cur=0
        w.schedule(far, "far");
        w.schedule(far + 1, "farther");
        assert_eq!(w.next_time(), Some(far));
        assert_eq!(w.pop_due(far - 1), None);
        assert_eq!(w.pop_due(far), Some((far, "far")));
        assert_eq!(w.next_time(), Some(far + 1));
        assert_eq!(w.pop_due(u64::MAX), Some((far + 1, "farther")));
        assert!(w.is_empty());
    }

    #[test]
    fn len_tracks_through_all_paths() {
        let mut w = TimingWheel::new();
        w.schedule(1, ());
        w.schedule(70, ());
        w.schedule(1 << 30, ());
        w.schedule(1 << 40, ()); // overflow
        assert_eq!(w.len(), 4);
        let mut left = 4;
        while w.pop_due(u64::MAX).is_some() {
            left -= 1;
            assert_eq!(w.len(), left);
        }
        assert_eq!(w.len(), 0);
    }
}
