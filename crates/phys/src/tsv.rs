//! Through-silicon-via (TSV) and micro-bump electrical model.
//!
//! Vertical hops in the 3-D stack are short (~40 µm die-to-die in Fig. 5)
//! and electrically cheap compared to millimetres of horizontal wire — the
//! delay asymmetry that the whole 3-D MoT design exploits. The model follows
//! Katti et al. (IEEE TED 2010): the TSV is a copper cylinder through
//! silicon with an oxide liner, giving
//!
//! ```text
//! R_tsv = ρ_cu · h / (π · r²)
//! C_tsv = 2π · ε_ox · h / ln(r_ox / r)
//! ```
//!
//! Bonding uses micro-bumps (the paper cites a 40 µm × 50 µm minimum pitch
//! from IMEC \[14\]); their series resistance and pad capacitance are small
//! constants added per vertical hop.

use crate::technology::Technology;
use crate::units::{Farads, Joules, Meters, Ohms, Seconds};

/// Copper resistivity (Ω·m) at operating temperature.
const RHO_CU: f64 = 2.2e-8;
/// SiO₂ permittivity (F/m): ε_r ≈ 3.9 × ε₀.
const EPS_OX: f64 = 3.9 * 8.854e-12;

/// Geometry and parasitics of one TSV plus its micro-bump.
///
/// # Examples
///
/// ```
/// use mot3d_phys::tsv::Tsv;
///
/// let tsv = Tsv::date16();
/// // Vertical hops are electrically tiny: tens of mΩ, tens of fF.
/// assert!(tsv.resistance().value() < 1.0);
/// assert!(tsv.capacitance().ff() < 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tsv {
    /// Conductor radius.
    pub radius: Meters,
    /// Via height (die thickness after thinning; Fig. 5 shows ~40 µm).
    pub height: Meters,
    /// Oxide liner thickness.
    pub liner: Meters,
    /// Micro-bump series resistance.
    pub bump_resistance: Ohms,
    /// Micro-bump pad capacitance.
    pub bump_capacitance: Farads,
    /// Micro-bump pitch along x (paper: 40 µm).
    pub bump_pitch_x: Meters,
    /// Micro-bump pitch along y (paper: 50 µm).
    pub bump_pitch_y: Meters,
}

impl Tsv {
    /// The TSV/micro-bump stack assumed by the paper: ~40 µm thinned dies,
    /// 5 µm-diameter vias, 40 µm × 50 µm micro-bump pitch \[14\].
    pub fn date16() -> Self {
        Tsv {
            radius: Meters::from_um(2.5),
            height: Meters::from_um(40.0),
            liner: Meters::from_um(0.5),
            bump_resistance: Ohms::new(0.05),
            bump_capacitance: Farads::from_ff(10.0),
            bump_pitch_x: Meters::from_um(40.0),
            bump_pitch_y: Meters::from_um(50.0),
        }
    }

    /// Series resistance of the via body plus its micro-bump.
    pub fn resistance(&self) -> Ohms {
        let r = self.radius.value();
        let body = RHO_CU * self.height.value() / (core::f64::consts::PI * r * r);
        Ohms::new(body) + self.bump_resistance
    }

    /// Capacitance of the via (coaxial through the oxide liner) plus the
    /// micro-bump pad.
    pub fn capacitance(&self) -> Farads {
        let r_in = self.radius.value();
        let r_out = r_in + self.liner.value();
        let body = 2.0 * core::f64::consts::PI * EPS_OX * self.height.value() / (r_out / r_in).ln();
        Farads::new(body) + self.bump_capacitance
    }

    /// 50 %-threshold delay of `hops` stacked vertical crossings driven by
    /// the node's repeater cell. One hop = one die-to-die crossing (TSV +
    /// micro-bump).
    ///
    /// This is deliberately a lumped-RC estimate: the vertical path is so
    /// short that distributed effects are negligible next to the driver
    /// term.
    pub fn hop_delay(&self, tech: &Technology, hops: usize) -> Seconds {
        self.hop_delay_with_driver(tech, hops, tech.repeater.drive_resistance)
    }

    /// Like [`Tsv::hop_delay`] but with an explicit driver resistance.
    ///
    /// TSV buses are typically driven by dedicated, sized-up drivers (the
    /// capacitive load is known and fixed at design time), so the MoT
    /// latency model passes a stronger driver here than the generic wire
    /// repeater.
    pub fn hop_delay_with_driver(&self, tech: &Technology, hops: usize, driver: Ohms) -> Seconds {
        if hops == 0 {
            return Seconds::ZERO;
        }
        let n = hops as f64;
        let c_total = self.capacitance() * n + tech.repeater.input_cap;
        let r_via = self.resistance() * n;
        // ln2·R_drv·C + ln2·R_via·C_load — both terms tiny by construction.
        let t = core::f64::consts::LN_2
            * (driver.value() * c_total.value() + r_via.value() * tech.repeater.input_cap.value());
        tech.repeater.intrinsic_delay + Seconds::new(t)
    }

    /// Switching energy of one transition through `hops` crossings.
    pub fn hop_energy(&self, tech: &Technology, hops: usize) -> Joules {
        (self.capacitance() * hops as f64).switching_energy(tech.vdd)
    }

    /// Vertical span of `hops` crossings (for Fig. 5-style geometry
    /// reports).
    pub fn span(&self, hops: usize) -> Meters {
        self.height * hops as f64
    }
}

impl Default for Tsv {
    /// Defaults to the paper's assumed stack ([`Tsv::date16`]).
    fn default() -> Self {
        Tsv::date16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date16_resistance_in_milliohm_range() {
        let r = Tsv::date16().resistance();
        assert!(r.value() > 0.01 && r.value() < 1.0, "R = {} Ω", r.value());
    }

    #[test]
    fn date16_capacitance_in_tens_of_ff() {
        let c = Tsv::date16().capacitance();
        assert!(c.ff() > 10.0 && c.ff() < 200.0, "C = {} fF", c.ff());
    }

    #[test]
    fn vertical_hop_is_much_faster_than_horizontal_mm() {
        // The delay asymmetry from Fig. 5: a vertical hop (~40 µm) is far
        // faster than 1 mm of repeated wire (driver-dominated, so the gap
        // is a small multiple rather than the raw 25× length ratio).
        let tech = Technology::lp45();
        let tsv = Tsv::date16();
        let vertical = tsv.hop_delay(&tech, 1);
        let horizontal = crate::rc::RepeatedWire::new(&tech, Meters::from_mm(1.0)).delay();
        assert!(
            vertical.value() * 2.0 < horizontal.value(),
            "vertical {} ns vs horizontal {} ns",
            vertical.ns(),
            horizontal.ns()
        );
    }

    #[test]
    fn hop_delay_zero_hops_is_zero() {
        let tech = Technology::lp45();
        assert_eq!(Tsv::date16().hop_delay(&tech, 0), Seconds::ZERO);
    }

    #[test]
    fn hop_delay_monotone_in_hops() {
        let tech = Technology::lp45();
        let tsv = Tsv::date16();
        let d1 = tsv.hop_delay(&tech, 1);
        let d2 = tsv.hop_delay(&tech, 2);
        assert!(d2 > d1);
    }

    #[test]
    fn span_matches_height_times_hops() {
        let tsv = Tsv::date16();
        assert!((tsv.span(2).um() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_linearly_with_hops() {
        let tech = Technology::lp45();
        let tsv = Tsv::date16();
        let e1 = tsv.hop_energy(&tech, 1);
        let e3 = tsv.hop_energy(&tech, 3);
        assert!((e3 / e1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn thinner_liner_means_more_capacitance() {
        let mut thin = Tsv::date16();
        thin.liner = Meters::from_um(0.05);
        assert!(thin.capacitance() > Tsv::date16().capacitance());
    }
}
