//! Strongly-typed physical quantities.
//!
//! Every physical model in this workspace passes quantities around as
//! newtypes over `f64` ([`Seconds`], [`Ohms`], [`Farads`], ...) instead of
//! bare floats. This statically rules out the classic modelling bugs —
//! adding a resistance to a capacitance, or feeding picoseconds where the
//! model expects seconds — while compiling down to plain `f64` arithmetic.
//!
//! All values are stored in base SI units. Convenience constructors and
//! accessors are provided for the magnitudes that actually occur in on-chip
//! interconnect modelling (ps/ns, µm/mm, fF/pF, pJ, mW).
//!
//! Physically meaningful products are implemented as operator overloads:
//! `Ohms * Farads = Seconds` (RC time constant), `Watts * Seconds = Joules`,
//! `Amperes * Volts = Watts`, and so on. Dimensionless scaling uses
//! `f64 * quantity` / `quantity * f64`.
//!
//! # Examples
//!
//! ```
//! use mot3d_phys::units::{Ohms, Farads, Seconds};
//!
//! let r = Ohms::new(1_000.0);
//! let c = Farads::from_ff(50.0);
//! let tau: Seconds = r * c;
//! assert!((tau.ps() - 50.0).abs() < 1e-9);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for one scalar quantity newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a quantity from a value in base SI units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base SI units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", engineering(self.0), $unit)
            }
        }
    };
}

quantity!(
    /// A time duration in seconds.
    Seconds,
    "s"
);
quantity!(
    /// An electrical resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// An electrical capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// A length in meters.
    Meters,
    "m"
);
quantity!(
    /// An energy in joules.
    Joules,
    "J"
);
quantity!(
    /// A power in watts.
    Watts,
    "W"
);
quantity!(
    /// An electrical potential in volts.
    Volts,
    "V"
);
quantity!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// An area in square meters.
    SquareMeters,
    "m²"
);

impl Seconds {
    /// Creates a duration from picoseconds.
    #[inline]
    pub const fn from_ps(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// The duration in picoseconds.
    #[inline]
    pub fn ps(self) -> f64 {
        self.0 * 1e12
    }

    /// The duration in nanoseconds.
    #[inline]
    pub fn ns(self) -> f64 {
        self.0 * 1e9
    }

    /// The duration in microseconds.
    #[inline]
    pub fn us(self) -> f64 {
        self.0 * 1e6
    }
}

impl Ohms {
    /// Creates a resistance from kilo-ohms.
    #[inline]
    pub const fn from_kohms(kohms: f64) -> Self {
        Self(kohms * 1e3)
    }

    /// The resistance in kilo-ohms.
    #[inline]
    pub fn kohms(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Farads {
    /// Creates a capacitance from femtofarads.
    #[inline]
    pub const fn from_ff(ff: f64) -> Self {
        Self(ff * 1e-15)
    }

    /// Creates a capacitance from picofarads.
    #[inline]
    pub const fn from_pf(pf: f64) -> Self {
        Self(pf * 1e-12)
    }

    /// The capacitance in femtofarads.
    #[inline]
    pub fn ff(self) -> f64 {
        self.0 * 1e15
    }

    /// The capacitance in picofarads.
    #[inline]
    pub fn pf(self) -> f64 {
        self.0 * 1e12
    }

    /// Dynamic switching energy `½ C V²` for a full-swing transition.
    #[inline]
    pub fn switching_energy(self, vdd: Volts) -> Joules {
        Joules(0.5 * self.0 * vdd.0 * vdd.0)
    }
}

impl Meters {
    /// Creates a length from micrometers.
    #[inline]
    pub const fn from_um(um: f64) -> Self {
        Self(um * 1e-6)
    }

    /// Creates a length from millimeters.
    #[inline]
    pub const fn from_mm(mm: f64) -> Self {
        Self(mm * 1e-3)
    }

    /// The length in micrometers.
    #[inline]
    pub fn um(self) -> f64 {
        self.0 * 1e6
    }

    /// The length in millimeters.
    #[inline]
    pub fn mm(self) -> f64 {
        self.0 * 1e3
    }
}

impl Joules {
    /// Creates an energy from picojoules.
    #[inline]
    pub const fn from_pj(pj: f64) -> Self {
        Self(pj * 1e-12)
    }

    /// Creates an energy from nanojoules.
    #[inline]
    pub const fn from_nj(nj: f64) -> Self {
        Self(nj * 1e-9)
    }

    /// Creates an energy from millijoules.
    #[inline]
    pub const fn from_mj(mj: f64) -> Self {
        Self(mj * 1e-3)
    }

    /// The energy in picojoules.
    #[inline]
    pub fn pj(self) -> f64 {
        self.0 * 1e12
    }

    /// The energy in nanojoules.
    #[inline]
    pub fn nj(self) -> f64 {
        self.0 * 1e9
    }

    /// The energy in millijoules.
    #[inline]
    pub fn mj(self) -> f64 {
        self.0 * 1e3
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    #[inline]
    pub const fn from_mw(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[inline]
    pub const fn from_uw(uw: f64) -> Self {
        Self(uw * 1e-6)
    }

    /// The power in milliwatts.
    #[inline]
    pub fn mw(self) -> f64 {
        self.0 * 1e3
    }

    /// The power in microwatts.
    #[inline]
    pub fn uw(self) -> f64 {
        self.0 * 1e6
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// The frequency in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// The clock period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period(self) -> Seconds {
        assert!(self.0 > 0.0, "period of a zero frequency is undefined");
        Seconds(1.0 / self.0)
    }
}

impl SquareMeters {
    /// Creates an area from square millimeters.
    #[inline]
    pub const fn from_mm2(mm2: f64) -> Self {
        Self(mm2 * 1e-6)
    }

    /// The area in square millimeters.
    #[inline]
    pub fn mm2(self) -> f64 {
        self.0 * 1e6
    }

    /// The area in square micrometers.
    #[inline]
    pub fn um2(self) -> f64 {
        self.0 * 1e12
    }
}

// ---- physically meaningful cross-type products -----------------------------

impl Mul<Farads> for Ohms {
    type Output = Seconds;
    /// RC time constant.
    #[inline]
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Farads {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy = power × time.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power = energy / time.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Mul<Joules> for Seconds {
    type Output = JouleSeconds;
    /// Energy–delay product.
    #[inline]
    fn mul(self, rhs: Joules) -> JouleSeconds {
        JouleSeconds(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Joules {
    type Output = JouleSeconds;
    #[inline]
    fn mul(self, rhs: Seconds) -> JouleSeconds {
        JouleSeconds(self.0 * rhs.0)
    }
}

impl Mul<Meters> for Meters {
    type Output = SquareMeters;
    #[inline]
    fn mul(self, rhs: Meters) -> SquareMeters {
        SquareMeters(self.0 * rhs.0)
    }
}

quantity!(
    /// An energy-delay product in joule-seconds.
    ///
    /// EDP is the paper's headline power-efficiency metric (lower is
    /// better); see Fig. 7 and Fig. 8.
    JouleSeconds,
    "J·s"
);

/// Resistance per unit length, for wire parasitics (Ω/m).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OhmsPerMeter(pub f64);

/// Capacitance per unit length, for wire parasitics (F/m).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaradsPerMeter(pub f64);

impl OhmsPerMeter {
    /// Total resistance of a wire of the given length.
    #[inline]
    pub fn over(self, length: Meters) -> Ohms {
        Ohms(self.0 * length.value())
    }
}

impl FaradsPerMeter {
    /// Total capacitance of a wire of the given length.
    #[inline]
    pub fn over(self, length: Meters) -> Farads {
        Farads(self.0 * length.value())
    }
}

/// Formats a raw value with an engineering-notation SI prefix.
fn engineering(v: f64) -> String {
    if v == 0.0 || !v.is_finite() {
        return format!("{v}");
    }
    let mag = v.abs();
    let prefixes: [(f64, &str); 9] = [
        (1e-15, "f"),
        (1e-12, "p"),
        (1e-9, "n"),
        (1e-6, "µ"),
        (1e-3, "m"),
        (1.0, ""),
        (1e3, "k"),
        (1e6, "M"),
        (1e9, "G"),
    ];
    let mut best = (1.0, "");
    for (scale, p) in prefixes {
        if mag >= scale {
            best = (scale, p);
        }
    }
    format!("{:.3}{}", v / best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_time() {
        let tau = Ohms::from_kohms(2.0) * Farads::from_ff(25.0);
        assert!((tau.ps() - 50.0).abs() < 1e-9);
        let tau2 = Farads::from_ff(25.0) * Ohms::from_kohms(2.0);
        assert_eq!(tau, tau2);
    }

    #[test]
    fn switching_energy_half_cv2() {
        let e = Farads::from_ff(100.0).switching_energy(Volts::new(1.0));
        assert!((e.pj() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn power_time_energy_roundtrip() {
        let p = Watts::from_mw(10.0);
        let t = Seconds::from_us(2.0);
        let e: Joules = p * t;
        assert!((e.nj() - 20.0).abs() < 1e-9);
        let back: Watts = e / t;
        assert!((back.mw() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn edp_units() {
        let edp = Joules::from_pj(10.0) * Seconds::from_ns(5.0);
        assert!((edp.value() - 50e-21).abs() < 1e-30);
    }

    #[test]
    fn period_of_1ghz_is_1ns() {
        assert!((Hertz::from_ghz(1.0).period().ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn period_of_zero_frequency_panics() {
        let _ = Hertz::new(0.0).period();
    }

    #[test]
    fn length_conversions() {
        assert!((Meters::from_mm(5.0).um() - 5_000.0).abs() < 1e-9);
        assert!((Meters::from_um(40.0).mm() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn per_length_parasitics() {
        let r = OhmsPerMeter(100e3); // 100 Ω/mm
        let c = FaradsPerMeter(200e-12); // 200 fF/mm
        let wire = Meters::from_mm(2.0);
        assert!((r.over(wire).value() - 200.0).abs() < 1e-9);
        assert!((c.over(wire).ff() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let ratio = Seconds::from_ns(10.0) / Seconds::from_ns(2.0);
        assert!((ratio - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_ordering() {
        let total: Seconds = [Seconds::from_ps(10.0), Seconds::from_ps(15.0)]
            .into_iter()
            .sum();
        assert!((total.ps() - 25.0).abs() < 1e-9);
        assert!(Seconds::from_ps(10.0) < Seconds::from_ps(15.0));
        assert_eq!(
            Seconds::from_ps(10.0).max(Seconds::from_ps(15.0)),
            Seconds::from_ps(15.0)
        );
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(format!("{}", Seconds::from_ps(50.0)), "50.000p s");
        assert_eq!(format!("{}", Farads::from_ff(1.5)), "1.500f F");
        assert_eq!(format!("{}", Watts::from_mw(250.0)), "250.000m W");
    }

    #[test]
    fn zero_and_negation() {
        assert_eq!(Seconds::ZERO.value(), 0.0);
        assert_eq!(
            -Seconds::from_ns(1.0) + Seconds::from_ns(1.0),
            Seconds::ZERO
        );
    }
}
