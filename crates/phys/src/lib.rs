//! # mot3d-phys — physical modelling substrate
//!
//! Physical models underpinning the reproduction of *"A Power-Efficient 3-D
//! On-Chip Interconnect for Multi-Core Accelerators with Stacked L2 Cache"*
//! (Kang et al., DATE 2016). The paper derives its latency and power
//! numbers from a handful of classical models; this crate implements each
//! of them:
//!
//! * [`units`] — strongly-typed physical quantities (`Seconds`, `Ohms`, …);
//! * [`technology`] — process parameters of a calibrated 45 nm-class LP
//!   node at 1 GHz;
//! * [`rc`] — Elmore RC-tree delay (paper ref \[15\]) and optimally repeated
//!   wires (the power-gateable "inverters placed along the on-chip wires");
//! * [`tsv`] — TSV + micro-bump electrical model (refs \[14\]\[15\]);
//! * [`sram`] — CACTI-style SRAM bank delay/energy/area (ref \[13\]);
//! * [`geometry`] — the 3-D floorplan and Fig. 5 wire-length model;
//! * [`power`] — McPAT-style core power (ref \[19\]), DRAM energy options,
//!   and the energy-delay-product bookkeeping of Figs. 7–8;
//! * [`slab`] — allocation-free hot-path containers (multi-queue
//!   [`slab::FifoSlab`], generational-handle [`slab::GenSlab`]) shared by
//!   the simulator crates above this one;
//! * [`wheel`] — the hierarchical [`wheel::TimingWheel`] event queue
//!   popping in exact `(time, seq)` order: the `O(1)`
//!   schedule/peek/pop replacement for the simulator's former
//!   `BinaryHeap` queues (`mot3d-lint` rule H1);
//! * [`fnv`] — deterministic FNV-1a hashing ([`fnv::FnvHashMap`],
//!   [`fnv::FnvHashSet`]): the sanctioned hash collections for
//!   result-affecting crates (`mot3d-lint` rule D1).
//!
//! # Quick example
//!
//! Derive the longest-path delay of the paper's full configuration:
//!
//! ```
//! use mot3d_phys::{geometry::Floorplan, rc::RepeatedWire, Technology};
//!
//! let tech = Technology::lp45();
//! let fp = Floorplan::date16();
//! let path = fp.longest_path(16, 32)?; // all 16 cores, all 32 banks
//! let wire = RepeatedWire::new(&tech, path.horizontal);
//! let tsv = fp.tsv.hop_delay(&tech, path.vertical_hops);
//! let one_way = wire.delay() + tsv;
//! assert!(one_way.ns() > 2.0 && one_way.ns() < 5.0);
//! # Ok::<(), mot3d_phys::geometry::FloorplanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fnv;
pub mod geometry;
pub mod power;
pub mod rc;
pub mod slab;
pub mod sram;
pub mod technology;
pub mod tsv;
pub mod units;
pub mod wheel;

pub use technology::Technology;
