//! # mot3d-workloads — SPLASH-2-inspired synthetic workloads
//!
//! The paper evaluates on the SPLASH-2 suite \[12\] under Graphite. Running
//! the original binaries is out of scope for this reproduction (no
//! functional ISA simulator); instead, each program is modelled as a
//! deterministic per-core operation stream whose parameters encode the
//! two axes the paper's conclusions depend on — *parallel scalability*
//! and *L2 capacity demand* — plus the secondary traffic knobs (memory
//! intensity, writes, locality, sharing, synchronisation density). See
//! `DESIGN.md` §2 for why this substitution preserves the experiments.
//!
//! * [`spec`] — the parameter set and the [`spec::Op`] vocabulary;
//! * [`splash`] — presets for the eight evaluated programs;
//! * [`source`] — the [`WorkloadSource`] abstraction experiment plans
//!   sweep over (a future trace-driven backend is another implementor);
//! * [`generator`] — deterministic stream generation (Amdahl serial
//!   sections, rotating imbalance, barrier phases);
//! * [`rng`] — the self-contained xoshiro256** generator.
//!
//! # Quick example
//!
//! ```
//! use mot3d_workloads::generator::CoreStream;
//! use mot3d_workloads::splash::SplashBenchmark;
//!
//! let spec = SplashBenchmark::Radix.spec().scaled(0.001);
//! let ops: Vec<_> = CoreStream::new(&spec, 16, 0, 42).collect();
//! assert!(!ops.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod rng;
pub mod source;
pub mod spec;
pub mod splash;

pub use generator::{streams, CoreStream, StreamOp};
pub use source::WorkloadSource;
pub use spec::{Op, WorkloadSpec};
pub use splash::SplashBenchmark;
