//! Workload parameterisation.
//!
//! The paper's power-state conclusions rest on two per-program axes
//! (§IV): *scalability of parallelism* (does the program profit from 16
//! cores over 4?) and *L2 cache demand* (does its working set fit in 8
//! banks = 512 KB?). [`WorkloadSpec`] captures those two axes plus the
//! secondary knobs that shape traffic (memory intensity, write share,
//! locality, sharing, synchronisation density).

/// One core's next program step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute `n` non-memory instructions (1 cycle each).
    Compute(u32),
    /// Load from a byte address.
    Load(u64),
    /// Store to a byte address.
    Store(u64),
    /// Wait for all active cores at barrier `id`.
    Barrier(u32),
}

/// Parameters of one synthetic program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Program name (SPLASH-2 benchmark it is modelled on).
    pub name: &'static str,
    /// Amdahl serial fraction: share of the work only one core performs.
    /// Limited-scalability programs (cholesky, fft, volrend, raytrace)
    /// have 0.25–0.45; scalable ones 0.02–0.06.
    pub serial_fraction: f64,
    /// Per-phase load imbalance amplitude (0 = perfectly balanced).
    pub imbalance: f64,
    /// Fraction of instructions that are memory operations.
    pub mem_ratio: f64,
    /// Fraction of memory operations that are stores.
    pub write_fraction: f64,
    /// Total data footprint in bytes. > 512 KB means the program needs
    /// more L2 than the 8 banks the `MB8` states leave powered.
    pub working_set_bytes: usize,
    /// Fraction of accesses that hit the shared region (vs the core's
    /// private slice).
    pub shared_fraction: f64,
    /// Probability that an access continues sequentially (spatial
    /// locality; the rest are uniform within the region).
    pub locality: f64,
    /// Fraction of accesses that hit the core's small *hot set* (stack,
    /// loop-carried scalars — a 2 KB region that lives in L1). This is
    /// what gives the streams SPLASH-2-like L1 hit rates; without it,
    /// every stream would be pathologically L1-hostile.
    pub hot_fraction: f64,
    /// Number of barrier-separated phases.
    pub phases: u32,
    /// Total instructions across all cores (serial + parallel).
    pub total_ops: u64,
    /// Probability per instruction of an L1-I miss, refetched over the
    /// Miss bus (§II).
    pub ifetch_miss_rate: f64,
    /// Base of the program's address space.
    pub base_addr: u64,
}

impl WorkloadSpec {
    /// Scales the program length by `factor` (phases preserved), for
    /// quick tests vs full benchmark runs.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.total_ops = ((self.total_ops as f64 * factor).round() as u64).max(self.phases as u64);
        self
    }

    /// Whether the working set exceeds what `MB8` leaves powered
    /// (8 × 64 KB).
    pub fn needs_more_than_8_banks(&self) -> bool {
        self.working_set_bytes > 8 * 64 * 1024
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`, or sizes are zero.
    pub fn validate(&self) {
        for (what, v) in [
            ("serial_fraction", self.serial_fraction),
            ("mem_ratio", self.mem_ratio),
            ("write_fraction", self.write_fraction),
            ("shared_fraction", self.shared_fraction),
            ("locality", self.locality),
            ("hot_fraction", self.hot_fraction),
            ("ifetch_miss_rate", self.ifetch_miss_rate),
        ] {
            assert!((0.0..=1.0).contains(&v), "{what} = {v} outside [0, 1]");
        }
        assert!(self.imbalance >= 0.0 && self.imbalance < 1.0);
        assert!(self.working_set_bytes > 0, "working set must be non-empty");
        assert!(self.phases > 0, "at least one phase");
        assert!(
            self.total_ops >= self.phases as u64,
            "ops must cover phases"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            serial_fraction: 0.1,
            imbalance: 0.1,
            mem_ratio: 0.3,
            write_fraction: 0.3,
            working_set_bytes: 256 * 1024,
            shared_fraction: 0.2,
            locality: 0.7,
            hot_fraction: 0.5,
            phases: 4,
            total_ops: 10_000,
            ifetch_miss_rate: 0.001,
            base_addr: 0x1000_0000,
        }
    }

    #[test]
    fn scaled_preserves_phases() {
        let s = spec().scaled(0.1);
        assert_eq!(s.total_ops, 1000);
        assert_eq!(s.phases, 4);
    }

    #[test]
    fn l2_demand_threshold_is_512kb() {
        let mut s = spec();
        s.working_set_bytes = 512 * 1024;
        assert!(!s.needs_more_than_8_banks());
        s.working_set_bytes = 512 * 1024 + 1;
        assert!(s.needs_more_than_8_banks());
    }

    #[test]
    fn validate_accepts_sane_spec() {
        spec().validate();
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn validate_rejects_bad_probability() {
        let mut s = spec();
        s.mem_ratio = 1.5;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = spec().scaled(0.0);
    }
}
