//! Deterministic per-core operation-stream generation.
//!
//! A program with `phases` barrier-separated phases distributes its
//! `total_ops` instructions over the active cores:
//!
//! * each phase starts with the phase's **serial** share, executed by rank
//!   0 alone (the other ranks go straight to the barrier — Amdahl's law in
//!   the flesh);
//! * the **parallel** share splits evenly across ranks, modulated by a
//!   rotating imbalance factor so a different rank straggles each phase
//!   (raytrace/volrend-style task imbalance);
//! * every instruction is a memory operation with probability
//!   `mem_ratio`, targeting the shared or the rank's private region, and
//!   sequentially or at random per `locality`;
//! * rare `IFetchMiss` events model the instruction refills the paper
//!   routes over the Miss bus.
//!
//! Streams are pure functions of `(spec, active_cores, rank, seed)` —
//! bit-identical on every run, which the determinism tests rely on.

use crate::rng::Xoshiro256;
use crate::spec::{Op, WorkloadSpec};

/// Line size used for address alignment decisions (Table I: 32 B).
const LINE: u64 = 32;
/// Sequential access stride in bytes (word-granular walks).
const STRIDE: u64 = 8;
/// Size of the per-core hot set (stack-like region that lives in L1).
const HOT_BYTES: u64 = 2 * 1024;

/// An extended op stream item: the plain [`Op`]s plus instruction-fetch
/// misses (which bypass the L2 and ride the Miss bus, §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// A regular operation.
    Op(Op),
    /// An L1-I miss: refill one line from DRAM over the Miss bus.
    IFetchMiss(u64),
}

/// Deterministic operation stream of one core.
///
/// # Examples
///
/// ```
/// use mot3d_workloads::generator::CoreStream;
/// use mot3d_workloads::splash::SplashBenchmark;
///
/// let spec = SplashBenchmark::Fft.spec().scaled(0.01);
/// let a: Vec<_> = CoreStream::new(&spec, 4, 0, 42).collect();
/// let b: Vec<_> = CoreStream::new(&spec, 4, 0, 42).collect();
/// assert_eq!(a, b); // bit-identical
/// ```
#[derive(Debug, Clone)]
pub struct CoreStream {
    spec: WorkloadSpec,
    active_cores: usize,
    rank: usize,
    rng: Xoshiro256,
    phase: u32,
    segment: Segment,
    ops_left: u64,
    pending_mem: bool,
    shared_ptr: u64,
    private_ptr: u64,
    hot_ptr: u64,
    code_ptr: u64,
    shared_bytes: u64,
    private_bytes: u64,
    private_base: u64,
    hot_base: u64,
    /// `(1.0 - mem_ratio).ln()`, hoisted out of the per-run geometric
    /// draw (same bits as computing it inline — only the redundant `ln`
    /// call is saved).
    ln_one_minus_mem: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Serial,
    Parallel,
    Barrier,
    Done,
}

impl CoreStream {
    /// Builds the stream for `rank` of `active_cores` (ranks index the
    /// *active* cores, not physical core ids).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= active_cores`, `active_cores == 0`, or the spec
    /// fails validation.
    pub fn new(spec: &WorkloadSpec, active_cores: usize, rank: usize, seed: u64) -> Self {
        spec.validate();
        assert!(active_cores > 0, "need at least one active core");
        assert!(
            rank < active_cores,
            "rank {rank} out of {active_cores} active cores"
        );
        let shared_bytes =
            line_floor((spec.working_set_bytes as f64 * spec.shared_fraction) as u64).max(LINE);
        let remaining = (spec.working_set_bytes as u64).saturating_sub(shared_bytes);
        let private_bytes = line_floor(remaining / active_cores as u64).max(LINE);
        let private_base = spec.base_addr + shared_bytes + rank as u64 * private_bytes;
        // Hot sets live past the working set, one disjoint slice per rank.
        let hot_base =
            spec.base_addr + spec.working_set_bytes as u64 + LINE + rank as u64 * HOT_BYTES;
        let mut stream = CoreStream {
            spec: *spec,
            active_cores,
            rank,
            rng: Xoshiro256::seeded(
                seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5,
            ),
            phase: 0,
            segment: Segment::Serial,
            ops_left: 0,
            pending_mem: false,
            shared_ptr: 0,
            private_ptr: 0,
            hot_ptr: 0,
            code_ptr: 0,
            shared_bytes,
            private_bytes,
            private_base,
            hot_base,
            ln_one_minus_mem: (1.0 - spec.mem_ratio).ln(),
        };
        stream.enter_phase(0);
        stream
    }

    /// The total instruction budget of this rank (serial + parallel over
    /// all phases), before memory/compute classification.
    pub fn budget(&self) -> u64 {
        let mut total = 0;
        for phase in 0..self.spec.phases {
            total += self.serial_share(phase) + self.parallel_share(phase);
        }
        total
    }

    fn per_phase_ops(&self) -> u64 {
        (self.spec.total_ops / self.spec.phases as u64).max(1)
    }

    fn serial_share(&self, _phase: u32) -> u64 {
        if self.rank != 0 {
            return 0;
        }
        (self.per_phase_ops() as f64 * self.spec.serial_fraction).round() as u64
    }

    fn parallel_share(&self, phase: u32) -> u64 {
        let parallel = self.per_phase_ops()
            - (self.per_phase_ops() as f64 * self.spec.serial_fraction).round() as u64;
        let base = parallel as f64 / self.active_cores as f64;
        // Rotating imbalance: a different rank straggles each phase.
        let z = if self.active_cores == 1 {
            0.0
        } else {
            let position = (self.rank + phase as usize) % self.active_cores;
            2.0 * position as f64 / (self.active_cores - 1) as f64 - 1.0
        };
        (base * (1.0 + self.spec.imbalance * z)).round().max(0.0) as u64
    }

    fn enter_phase(&mut self, phase: u32) {
        self.phase = phase;
        let serial = self.serial_share(phase);
        if serial > 0 {
            self.segment = Segment::Serial;
            self.ops_left = serial;
        } else {
            self.segment = Segment::Parallel;
            self.ops_left = self.parallel_share(phase);
        }
        self.pending_mem = false;
    }

    fn next_address(&mut self) -> u64 {
        // Hot-set accesses (stack/scalars): tiny per-core region, L1-bound.
        if self.rng.chance(self.spec.hot_fraction) {
            self.hot_ptr = (self.hot_ptr + STRIDE) % HOT_BYTES;
            return self.hot_base + self.hot_ptr;
        }
        let use_shared = self.rng.chance(self.spec.shared_fraction);
        let (base, size, ptr) = if use_shared {
            (self.spec.base_addr, self.shared_bytes, &mut self.shared_ptr)
        } else {
            (self.private_base, self.private_bytes, &mut self.private_ptr)
        };
        if self.rng.chance(self.spec.locality) {
            // `ptr < size` and `STRIDE < size` (size ≥ LINE), so the wrap
            // is a single conditional subtract — same value as `% size`
            // without the per-access integer division.
            let mut next = *ptr + STRIDE;
            if next >= size {
                next -= size;
            }
            *ptr = next;
            base + next
        } else {
            let off = self.rng.next_below(size / STRIDE) * STRIDE;
            *ptr = off;
            base + off
        }
    }

    fn memory_op(&mut self) -> Op {
        let addr = self.next_address();
        if self.rng.chance(self.spec.write_fraction) {
            Op::Store(addr)
        } else {
            Op::Load(addr)
        }
    }
}

impl Iterator for CoreStream {
    type Item = StreamOp;

    fn next(&mut self) -> Option<StreamOp> {
        loop {
            match self.segment {
                Segment::Done => return None,
                Segment::Barrier => {
                    let id = self.phase;
                    if self.phase + 1 < self.spec.phases {
                        let next = self.phase + 1;
                        self.enter_phase(next);
                    } else {
                        self.segment = Segment::Done;
                    }
                    return Some(StreamOp::Op(Op::Barrier(id)));
                }
                Segment::Serial | Segment::Parallel => {
                    if self.ops_left == 0 {
                        if self.segment == Segment::Serial {
                            self.segment = Segment::Parallel;
                            self.ops_left = self.parallel_share(self.phase);
                            continue;
                        }
                        self.segment = Segment::Barrier;
                        continue;
                    }
                    // Rare instruction-fetch miss, charged per instruction.
                    if self.rng.chance(self.spec.ifetch_miss_rate) {
                        self.code_ptr = (self.code_ptr + LINE) % (64 * 1024);
                        let addr = self.spec.base_addr - 0x10_0000 + self.code_ptr;
                        return Some(StreamOp::IFetchMiss(addr));
                    }
                    if self.pending_mem {
                        self.pending_mem = false;
                        self.ops_left -= 1;
                        return Some(StreamOp::Op(self.memory_op()));
                    }
                    // Geometric run of compute ops until the next memory op.
                    let p = self.spec.mem_ratio;
                    let run = if p <= 0.0 {
                        self.ops_left
                    } else {
                        let u = self.rng.next_f64().max(1e-18);
                        ((u.ln() / self.ln_one_minus_mem).floor() as u64).min(self.ops_left)
                    };
                    if run == 0 {
                        self.pending_mem = false;
                        self.ops_left -= 1;
                        return Some(StreamOp::Op(self.memory_op()));
                    }
                    self.ops_left -= run;
                    self.pending_mem = self.ops_left > 0;
                    return Some(StreamOp::Op(Op::Compute(run.min(u32::MAX as u64) as u32)));
                }
            }
        }
    }
}

/// Builds the streams for every rank of an `active_cores`-way run.
pub fn streams(spec: &WorkloadSpec, active_cores: usize, seed: u64) -> Vec<CoreStream> {
    (0..active_cores)
        .map(|rank| CoreStream::new(spec, active_cores, rank, seed))
        .collect()
}

fn line_floor(bytes: u64) -> u64 {
    bytes / LINE * LINE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splash::SplashBenchmark;

    fn small(bench: SplashBenchmark) -> WorkloadSpec {
        bench.spec().scaled(0.01)
    }

    /// Counts instructions (Compute(n) = n) and memory ops in a stream.
    fn census(stream: CoreStream) -> (u64, u64, u64, u64) {
        let (mut insns, mut mems, mut barriers, mut stores) = (0u64, 0u64, 0u64, 0u64);
        for op in stream {
            match op {
                StreamOp::Op(Op::Compute(n)) => insns += n as u64,
                StreamOp::Op(Op::Load(_)) => {
                    insns += 1;
                    mems += 1;
                }
                StreamOp::Op(Op::Store(_)) => {
                    insns += 1;
                    mems += 1;
                    stores += 1;
                }
                StreamOp::Op(Op::Barrier(_)) => barriers += 1,
                StreamOp::IFetchMiss(_) => {}
            }
        }
        (insns, mems, barriers, stores)
    }

    #[test]
    fn stream_is_deterministic() {
        let spec = small(SplashBenchmark::Radix);
        let a: Vec<_> = CoreStream::new(&spec, 8, 3, 99).collect();
        let b: Vec<_> = CoreStream::new(&spec, 8, 3, 99).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_ranks_differ() {
        let spec = small(SplashBenchmark::Radix);
        let a: Vec<_> = CoreStream::new(&spec, 8, 0, 99).collect();
        let b: Vec<_> = CoreStream::new(&spec, 8, 1, 99).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn every_rank_hits_every_barrier_once() {
        let spec = small(SplashBenchmark::Fmm);
        for rank in 0..4 {
            let barriers: Vec<u32> = CoreStream::new(&spec, 4, rank, 7)
                .filter_map(|op| match op {
                    StreamOp::Op(Op::Barrier(id)) => Some(id),
                    _ => None,
                })
                .collect();
            let expect: Vec<u32> = (0..spec.phases).collect();
            assert_eq!(barriers, expect, "rank {rank}");
        }
    }

    #[test]
    fn instruction_budget_is_respected() {
        let spec = small(SplashBenchmark::Fft);
        for rank in 0..4 {
            let s = CoreStream::new(&spec, 4, rank, 5);
            let budget = s.budget();
            let (insns, ..) = census(s);
            assert_eq!(insns, budget, "rank {rank}");
        }
    }

    #[test]
    fn serial_work_lands_on_rank_zero_only() {
        let spec = small(SplashBenchmark::Cholesky); // serial_fraction 0.34
        let s0 = CoreStream::new(&spec, 4, 0, 5);
        let s1 = CoreStream::new(&spec, 4, 1, 5);
        let b0 = s0.budget();
        let b1 = s1.budget();
        assert!(
            b0 as f64 > b1 as f64 * 1.8,
            "rank 0 must carry the serial work: {b0} vs {b1}"
        );
    }

    #[test]
    fn scalable_programs_split_evenly() {
        let spec = small(SplashBenchmark::Radix); // serial 0.05, imb 0.04
        let budgets: Vec<u64> = (0..8)
            .map(|r| CoreStream::new(&spec, 8, r, 5).budget())
            .collect();
        let min = *budgets.iter().min().unwrap() as f64;
        let max = *budgets.iter().max().unwrap() as f64;
        assert!(max / min < 1.6, "scalable split too skewed: {budgets:?}");
    }

    #[test]
    fn memory_ratio_tracks_spec() {
        let spec = small(SplashBenchmark::OceanContiguous); // mem 0.40
        let (insns, mems, _, _) = census(CoreStream::new(&spec, 4, 2, 5));
        let ratio = mems as f64 / insns as f64;
        assert!(
            (ratio - spec.mem_ratio).abs() < 0.05,
            "memory ratio {ratio} vs spec {}",
            spec.mem_ratio
        );
    }

    #[test]
    fn write_fraction_tracks_spec() {
        let spec = small(SplashBenchmark::Radix); // writes 0.45
        let (_, mems, _, stores) = census(CoreStream::new(&spec, 4, 1, 5));
        let ratio = stores as f64 / mems as f64;
        assert!(
            (ratio - spec.write_fraction).abs() < 0.06,
            "write fraction {ratio}"
        );
    }

    #[test]
    fn addresses_stay_inside_working_set_plus_hot_slices() {
        let spec = small(SplashBenchmark::Fft);
        let cores = 4u64;
        let hot_end =
            spec.base_addr + spec.working_set_bytes as u64 + LINE + cores * HOT_BYTES + LINE;
        for op in CoreStream::new(&spec, 4, 3, 5) {
            if let StreamOp::Op(Op::Load(a) | Op::Store(a)) = op {
                assert!(a >= spec.base_addr);
                assert!(a < hot_end, "address {a:#x} outside footprint");
            }
        }
    }

    #[test]
    fn hot_set_gives_high_l1_style_reuse() {
        // With hot_fraction 0.5, at least a third of memory ops revisit a
        // tiny region that any L1 retains.
        let spec = small(SplashBenchmark::Fft);
        let mut hot = 0u64;
        let mut total = 0u64;
        let hot_lo = spec.base_addr + spec.working_set_bytes as u64;
        for op in CoreStream::new(&spec, 4, 1, 5) {
            if let StreamOp::Op(Op::Load(a) | Op::Store(a)) = op {
                total += 1;
                if a >= hot_lo {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(
            (frac - spec.hot_fraction).abs() < 0.08,
            "hot fraction {frac} vs spec {}",
            spec.hot_fraction
        );
    }

    #[test]
    fn private_regions_do_not_collide() {
        let spec = small(SplashBenchmark::WaterNsquared);
        let collect = |rank| -> mot3d_phys::fnv::FnvHashSet<u64> {
            CoreStream::new(&spec, 4, rank, 5)
                .filter_map(|op| match op {
                    StreamOp::Op(Op::Load(a) | Op::Store(a)) => Some(a / LINE),
                    _ => None,
                })
                .collect()
        };
        let shared_lines = (spec.working_set_bytes as f64 * spec.shared_fraction) as u64 / LINE + 1;
        let a = collect(0);
        let b = collect(1);
        let shared_base_line = spec.base_addr / LINE;
        for line in a.intersection(&b) {
            assert!(
                *line < shared_base_line + shared_lines,
                "private lines overlapped across ranks: {line:#x}"
            );
        }
    }

    #[test]
    fn streams_helper_builds_all_ranks() {
        let spec = small(SplashBenchmark::Fmm);
        let all = streams(&spec, 4, 1);
        assert_eq!(all.len(), 4);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_out_of_range_panics() {
        let spec = small(SplashBenchmark::Fmm);
        CoreStream::new(&spec, 4, 4, 1);
    }
}
