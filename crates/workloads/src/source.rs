//! Workload *sources* — the abstraction an experiment plan sweeps over.
//!
//! The experiment harness used to be hardwired to [`SplashBenchmark`]:
//! every sweep axis named one of the eight synthetic presets. A
//! [`WorkloadSource`] decouples the plan from the preset table: anything
//! that can resolve to a concrete [`WorkloadSpec`] at a given length
//! scale can sit on a plan's workload axis. Today that is the two
//! synthetic forms ([`SplashBenchmark`] and a raw [`WorkloadSpec`]);
//! the ROADMAP's trace-driven backend becomes a third implementor that
//! derives its spec (footprint, mix, locality, phase structure) from a
//! recorded trace instead of a preset.

use crate::spec::WorkloadSpec;
use crate::splash::SplashBenchmark;
use std::fmt;

/// Anything that can supply a workload for one simulated run.
///
/// Implementors resolve to a concrete [`WorkloadSpec`] at a given length
/// `scale` (fraction of the source's default instruction budget, the
/// same factor [`WorkloadSpec::scaled`] applies). Resolution must be
/// **pure**: the same `(source, scale)` pair always yields the same
/// spec, which the harness's bit-identical-results guarantees rely on.
///
/// # Examples
///
/// ```
/// use mot3d_workloads::{SplashBenchmark, WorkloadSource};
///
/// let src: &dyn WorkloadSource = &SplashBenchmark::Fft;
/// let spec = src.resolve(0.01);
/// assert_eq!(src.source_name(), "fft");
/// assert_eq!(spec, SplashBenchmark::Fft.spec().scaled(0.01));
/// ```
pub trait WorkloadSource: fmt::Debug + Send + Sync {
    /// The workload's display name (used in run labels and sink rows).
    fn source_name(&self) -> String;

    /// Resolves to the concrete spec at `scale` × the default length.
    fn resolve(&self, scale: f64) -> WorkloadSpec;
}

impl WorkloadSource for SplashBenchmark {
    fn source_name(&self) -> String {
        self.name().to_string()
    }

    fn resolve(&self, scale: f64) -> WorkloadSpec {
        self.spec().scaled(scale)
    }
}

impl WorkloadSource for WorkloadSpec {
    fn source_name(&self) -> String {
        self.name.to_string()
    }

    fn resolve(&self, scale: f64) -> WorkloadSpec {
        self.scaled(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splash_source_matches_direct_spec() {
        for b in SplashBenchmark::all() {
            assert_eq!(b.resolve(0.01), b.spec().scaled(0.01));
            assert_eq!(b.source_name(), b.name());
        }
    }

    #[test]
    fn spec_source_scales_itself() {
        let spec = SplashBenchmark::Radix.spec();
        assert_eq!(spec.resolve(0.5), spec.scaled(0.5));
        assert_eq!(spec.source_name(), "radix");
    }

    #[test]
    fn sources_are_object_safe() {
        let sources: Vec<Box<dyn WorkloadSource>> = vec![
            Box::new(SplashBenchmark::Fmm),
            Box::new(SplashBenchmark::Fmm.spec()),
        ];
        for s in &sources {
            assert_eq!(s.source_name(), "fmm");
            assert!(s.resolve(0.002).total_ops > 0);
        }
    }
}
