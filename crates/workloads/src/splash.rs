//! SPLASH-2-inspired program presets.
//!
//! The paper runs the SPLASH-2 suite \[12\] under Graphite. We model each
//! program as a [`WorkloadSpec`] whose two decisive axes follow the
//! paper's own grouping (§IV):
//!
//! * **limited scalability** (gain little from 16 vs 4 cores — Fig. 7(b)
//!   "reduction up to 33 %, 19 % on average"): cholesky, fft, volrend,
//!   raytrace → high Amdahl serial fraction / imbalance;
//! * **scalable** ("up to 69 %, 64 % on average"): fmm, radix,
//!   ocean_contiguous, water-nsquared → tiny serial fraction;
//! * **small L2 demand** (PC16-MB8 helps: fft, fmm, volrend, raytrace,
//!   water-nsquared) → working set ≤ 512 KB;
//! * **large L2 demand** (PC16-MB8 hurts by up to 31 %: cholesky, radix,
//!   ocean_contiguous) → working set ≫ 512 KB.
//!
//! Secondary knobs (memory intensity, writes, locality, sharing,
//! synchronisation density) follow the published SPLASH-2
//! characterisations (Woo et al., ISCA'95).

use crate::spec::WorkloadSpec;
use std::fmt;

/// The eight SPLASH-2 programs the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SplashBenchmark {
    /// Sparse Cholesky factorisation: limited scalability, large footprint.
    Cholesky,
    /// 1-D FFT: limited scalability (all-to-all transposes), small footprint.
    Fft,
    /// Fast multipole method: scalable, small footprint.
    Fmm,
    /// Ocean simulation (contiguous partitions): scalable, large footprint,
    /// memory-intensive.
    OceanContiguous,
    /// Radix sort: scalable, large footprint, very memory-intensive.
    Radix,
    /// Ray tracer: limited scalability (task imbalance), small footprint.
    Raytrace,
    /// Volume renderer: limited scalability, small footprint.
    Volrend,
    /// N-body water simulation (O(n²)): scalable, small footprint,
    /// compute-bound.
    WaterNsquared,
}

impl SplashBenchmark {
    /// All eight, in the paper's figure order.
    pub fn all() -> [SplashBenchmark; 8] {
        [
            SplashBenchmark::Cholesky,
            SplashBenchmark::Fft,
            SplashBenchmark::Fmm,
            SplashBenchmark::OceanContiguous,
            SplashBenchmark::Radix,
            SplashBenchmark::Raytrace,
            SplashBenchmark::Volrend,
            SplashBenchmark::WaterNsquared,
        ]
    }

    /// The paper's limited-scalability group (profits from `PC4`).
    pub fn limited_scalability() -> [SplashBenchmark; 4] {
        [
            SplashBenchmark::Cholesky,
            SplashBenchmark::Fft,
            SplashBenchmark::Volrend,
            SplashBenchmark::Raytrace,
        ]
    }

    /// The paper's scalable group.
    pub fn scalable() -> [SplashBenchmark; 4] {
        [
            SplashBenchmark::Fmm,
            SplashBenchmark::Radix,
            SplashBenchmark::OceanContiguous,
            SplashBenchmark::WaterNsquared,
        ]
    }

    /// The group whose working set fits 8 banks (profits from `MB8`).
    pub fn small_l2_demand() -> [SplashBenchmark; 5] {
        [
            SplashBenchmark::Fft,
            SplashBenchmark::Fmm,
            SplashBenchmark::Volrend,
            SplashBenchmark::Raytrace,
            SplashBenchmark::WaterNsquared,
        ]
    }

    /// The default-scale spec for this program.
    pub fn spec(self) -> WorkloadSpec {
        let base = WorkloadSpec {
            name: self.name(),
            serial_fraction: 0.0,
            imbalance: 0.0,
            mem_ratio: 0.30,
            write_fraction: 0.30,
            working_set_bytes: 384 * 1024,
            shared_fraction: 0.20,
            locality: 0.75,
            hot_fraction: 0.60,
            phases: 8,
            total_ops: 1_600_000,
            ifetch_miss_rate: 0.0004,
            base_addr: 0x1000_0000,
        };
        match self {
            SplashBenchmark::Cholesky => WorkloadSpec {
                serial_fraction: 0.45,
                imbalance: 0.25,
                mem_ratio: 0.32,
                write_fraction: 0.28,
                working_set_bytes: 1280 * 1024,
                shared_fraction: 0.35,
                locality: 0.55,
                hot_fraction: 0.45,
                phases: 10,
                ..base
            },
            SplashBenchmark::Fft => WorkloadSpec {
                serial_fraction: 0.52,
                imbalance: 0.05,
                mem_ratio: 0.38,
                write_fraction: 0.40,
                working_set_bytes: 384 * 1024,
                shared_fraction: 0.45,
                locality: 0.70,
                hot_fraction: 0.50,
                phases: 6,
                ..base
            },
            SplashBenchmark::Fmm => WorkloadSpec {
                serial_fraction: 0.03,
                imbalance: 0.08,
                mem_ratio: 0.24,
                write_fraction: 0.22,
                working_set_bytes: 384 * 1024,
                shared_fraction: 0.25,
                locality: 0.78,
                hot_fraction: 0.70,
                phases: 8,
                ..base
            },
            SplashBenchmark::OceanContiguous => WorkloadSpec {
                serial_fraction: 0.04,
                imbalance: 0.05,
                mem_ratio: 0.40,
                write_fraction: 0.33,
                working_set_bytes: 1792 * 1024,
                shared_fraction: 0.15,
                locality: 0.85,
                hot_fraction: 0.50,
                phases: 12,
                ..base
            },
            SplashBenchmark::Radix => WorkloadSpec {
                serial_fraction: 0.05,
                imbalance: 0.04,
                mem_ratio: 0.45,
                write_fraction: 0.45,
                working_set_bytes: 1024 * 1024,
                shared_fraction: 0.30,
                locality: 0.70,
                hot_fraction: 0.45,
                phases: 6,
                ..base
            },
            SplashBenchmark::Raytrace => WorkloadSpec {
                serial_fraction: 0.45,
                imbalance: 0.35,
                mem_ratio: 0.28,
                write_fraction: 0.15,
                working_set_bytes: 448 * 1024,
                shared_fraction: 0.40,
                locality: 0.60,
                hot_fraction: 0.60,
                phases: 8,
                ..base
            },
            SplashBenchmark::Volrend => WorkloadSpec {
                serial_fraction: 0.50,
                imbalance: 0.30,
                mem_ratio: 0.26,
                write_fraction: 0.12,
                working_set_bytes: 320 * 1024,
                shared_fraction: 0.35,
                locality: 0.68,
                hot_fraction: 0.65,
                phases: 8,
                ..base
            },
            SplashBenchmark::WaterNsquared => WorkloadSpec {
                serial_fraction: 0.04,
                imbalance: 0.06,
                mem_ratio: 0.18,
                write_fraction: 0.25,
                working_set_bytes: 256 * 1024,
                shared_fraction: 0.20,
                locality: 0.80,
                hot_fraction: 0.75,
                phases: 10,
                ..base
            },
        }
    }

    /// The program's display name (paper spelling).
    pub fn name(self) -> &'static str {
        match self {
            SplashBenchmark::Cholesky => "cholesky",
            SplashBenchmark::Fft => "fft",
            SplashBenchmark::Fmm => "fmm",
            SplashBenchmark::OceanContiguous => "ocean_contiguous",
            SplashBenchmark::Radix => "radix",
            SplashBenchmark::Raytrace => "raytrace",
            SplashBenchmark::Volrend => "volrend",
            SplashBenchmark::WaterNsquared => "water-nsquared",
        }
    }
}

impl fmt::Display for SplashBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for b in SplashBenchmark::all() {
            b.spec().validate();
        }
    }

    #[test]
    fn groups_match_the_paper() {
        // Limited-scalability group has high serial fraction; scalable low.
        for b in SplashBenchmark::limited_scalability() {
            assert!(b.spec().serial_fraction >= 0.25, "{b} should scale poorly");
        }
        for b in SplashBenchmark::scalable() {
            assert!(b.spec().serial_fraction <= 0.06, "{b} should scale well");
        }
    }

    #[test]
    fn l2_demand_groups_match_the_paper() {
        for b in SplashBenchmark::small_l2_demand() {
            assert!(
                !b.spec().needs_more_than_8_banks(),
                "{b} should fit 8 banks"
            );
        }
        for b in [
            SplashBenchmark::Cholesky,
            SplashBenchmark::Radix,
            SplashBenchmark::OceanContiguous,
        ] {
            assert!(
                b.spec().needs_more_than_8_banks(),
                "{b} should overflow 8 banks"
            );
        }
    }

    #[test]
    fn groups_partition_the_suite() {
        let mut all: Vec<_> = SplashBenchmark::limited_scalability().to_vec();
        all.extend(SplashBenchmark::scalable());
        all.sort();
        let mut expect = SplashBenchmark::all().to_vec();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn names_match_paper_spelling() {
        assert_eq!(
            SplashBenchmark::OceanContiguous.to_string(),
            "ocean_contiguous"
        );
        assert_eq!(SplashBenchmark::WaterNsquared.to_string(), "water-nsquared");
    }

    #[test]
    fn radix_is_the_most_memory_intensive() {
        let radix = SplashBenchmark::Radix.spec().mem_ratio;
        for b in SplashBenchmark::all() {
            assert!(b.spec().mem_ratio <= radix, "{b}");
        }
    }
}
