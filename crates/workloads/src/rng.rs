//! Self-contained deterministic PRNG (SplitMix64 seeding + xoshiro256**).
//!
//! The reproduction's workload streams must be bit-identical across
//! platforms and releases — experiment tables are diffed against recorded
//! results — so we implement the generator rather than depend on an
//! external crate whose stream could change (see DESIGN.md §6).

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
///
/// # Examples
///
/// ```
/// use mot3d_workloads::rng::Xoshiro256;
/// let mut a = Xoshiro256::seeded(42);
/// let mut b = Xoshiro256::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed ⇒ same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64 so
    /// nearby seeds give unrelated streams).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        // All-zero state is invalid; SplitMix64 cannot produce it from the
        // four calls above, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        Xoshiro256 { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for the bounds used here
        // (≪ 2^32) and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seeded(123);
        let mut b = Xoshiro256::seeded(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be unrelated");
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = Xoshiro256::seeded(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_draws_stay_in_bounds_and_cover() {
        let mut r = Xoshiro256::seeded(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Xoshiro256::seeded(11);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_is_centred() {
        let mut r = Xoshiro256::seeded(13);
        let mean: f64 = (0..50_000).map(|_| r.next_f64()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
