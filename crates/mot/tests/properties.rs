//! Property-based tests for the MoT invariants (DESIGN.md §5).

use mot3d_mot::fabric::RoutingFabric;
use mot3d_mot::network::MotNetwork;
use mot3d_mot::power_state::PowerState;
use mot3d_mot::reconfig::MotConfiguration;
use mot3d_mot::switch::{ArbitrationTree, RoutingMode};
use mot3d_mot::topology::{MotTopology, SwitchAddr};
use mot3d_mot::traits::{Interconnect, MemRequest, ReqKind};
use proptest::prelude::*;

/// Power-of-two strategy in [2, max].
fn pow2(max_log: u32) -> impl Strategy<Value = usize> {
    (1..=max_log).prop_map(|l| 1usize << l)
}

/// A power state that fits 16 cores × 32 banks with ≥ 2 live each.
fn fitting_state() -> impl Strategy<Value = PowerState> {
    (pow2(4), pow2(5)).prop_map(|(c, b)| PowerState::new(c, b).expect("powers of two"))
}

proptest! {
    /// The bank remap is always onto active banks, perfectly balanced
    /// (each live bank absorbs exactly B/B_a home indices), and the
    /// identity on live banks.
    #[test]
    fn remap_balanced_and_idempotent(state in fitting_state()) {
        let cfg = MotConfiguration::new(MotTopology::date16(), state).unwrap();
        let banks = 32;
        let mut load = vec![0usize; banks];
        for h in 0..banks {
            let p = cfg.remap_bank(h);
            prop_assert!(cfg.is_bank_active(p), "{h} → {p} inactive");
            prop_assert_eq!(cfg.remap_bank(p), p, "remap not idempotent at {}", p);
            load[p] += 1;
        }
        let expect = banks / state.active_banks();
        for (b, &l) in load.iter().enumerate() {
            if cfg.is_bank_active(b) {
                prop_assert_eq!(l, expect, "bank {} load", b);
            } else {
                prop_assert_eq!(l, 0usize, "gated bank {} got traffic", b);
            }
        }
    }

    /// Walking every home bank's route through the switch modes lands on
    /// the remapped bank without ever touching an `Off` switch.
    #[test]
    fn switch_modes_realise_the_remap(state in fitting_state()) {
        let topo = MotTopology::date16();
        let cfg = MotConfiguration::new(topo, state).unwrap();
        for home in 0..32usize {
            let mut idx = 0usize;
            for level in 1..=topo.routing_levels() {
                let mode = cfg.routing_mode(SwitchAddr { level, index: idx });
                let bit = (home >> topo.bit_of_level(level)) & 1 == 1;
                let port = match mode {
                    RoutingMode::Off => {
                        return Err(TestCaseError::fail(format!(
                            "home {home} crossed an off switch (level {level}, idx {idx})"
                        )))
                    }
                    RoutingMode::Conventional => mot3d_mot::switch::Port::from_bit(bit),
                    RoutingMode::UserDefined(p) => p,
                };
                idx = (idx << 1) | port.bit() as usize;
            }
            prop_assert_eq!(idx, cfg.remap_bank(home));
        }
    }

    /// Component conservation: powered + gated equals the physical
    /// inventory, and gating is monotone (smaller states never power more).
    #[test]
    fn component_counts_conserved(state in fitting_state()) {
        let topo = MotTopology::date16();
        let cfg = MotConfiguration::new(topo, state).unwrap();
        let c = cfg.counts();
        prop_assert_eq!(
            c.routing_switches + c.gated_routing_switches,
            topo.total_routing_switches()
        );
        prop_assert_eq!(
            c.arbitration_cells + c.gated_arbitration_cells,
            topo.total_arbitration_cells()
        );
        let full = MotConfiguration::new(topo, PowerState::full()).unwrap().counts();
        prop_assert!(c.routing_switches <= full.routing_switches);
        prop_assert!(c.arbitration_cells <= full.arbitration_cells);
    }

    /// Round-robin tree arbitration is starvation-free: under any fixed
    /// request pattern, every requester is granted within `n` rounds.
    #[test]
    fn arbitration_tree_starvation_free(
        n_log in 1u32..5,
        pattern in prop::collection::vec(any::<bool>(), 1..32),
    ) {
        let n = 1usize << n_log;
        let mut requests = vec![false; n];
        for (i, &p) in pattern.iter().enumerate() {
            requests[i % n] |= p;
        }
        if !requests.iter().any(|&r| r) {
            return Ok(());
        }
        let mut tree = ArbitrationTree::new(n);
        let requesters: Vec<usize> =
            (0..n).filter(|&i| requests[i]).collect();
        let mut last_grant = vec![0usize; n];
        for round in 1..=(3 * n) {
            let g = tree.grant(&requests).expect("requests pending");
            prop_assert!(requests[g], "granted a non-requester");
            last_grant[g] = round;
        }
        for &r in &requesters {
            prop_assert!(
                last_grant[r] > 0,
                "requester {} starved over {} rounds ({} requesters)",
                r, 3 * n, requesters.len()
            );
            // And recently: within the last n rounds.
            prop_assert!(
                last_grant[r] > 2 * n,
                "requester {} not granted in the final n rounds", r
            );
        }
    }

    /// The structural switch fabric (gate-level walk through Fig. 3
    /// cells) realises exactly the arithmetic remap, for every reachable
    /// power state and home bank.
    #[test]
    fn fabric_equals_remap(state in fitting_state()) {
        let cfg = MotConfiguration::new(MotTopology::date16(), state).unwrap();
        let fabric = RoutingFabric::configure(&cfg);
        for home in 0..32 {
            prop_assert_eq!(fabric.route(home), Some(cfg.remap_bank(home)),
                "{}: home {}", state, home);
        }
    }

    /// Derived latency is monotone: gating cores or banks never makes the
    /// round trip slower.
    #[test]
    fn latency_monotone_under_gating(state in fitting_state()) {
        let full = MotNetwork::date16(PowerState::full()).unwrap().latency();
        let gated = MotNetwork::date16(state).unwrap().latency();
        prop_assert!(gated.round_trip() <= full.round_trip(),
            "{state}: {:?} vs full {:?}", gated, full);
    }

    /// Network conservation: every injected request arrives exactly once,
    /// at an active bank, and never before the uncontended latency.
    #[test]
    fn network_delivers_every_request_once(
        state in fitting_state(),
        picks in prop::collection::vec((0usize..16, 0usize..32), 1..40),
    ) {
        let mut net = MotNetwork::date16(state).unwrap();
        let cores = net.configuration().active_cores();
        let lat = net.latency().request_cycles;
        let mut injected = 0u64;
        for (i, (c, b)) in picks.iter().enumerate() {
            let core = cores[c % cores.len()];
            net.inject_request(0, MemRequest {
                core,
                home_bank: *b,
                kind: ReqKind::ReadLine,
                tag: i as u64,
            });
            injected += 1;
        }
        let mut seen = mot3d_phys::fnv::FnvHashSet::default();
        for now in 0..(lat + injected + 8) {
            net.tick(now);
            while let Some(a) = net.pop_arrival() {
                prop_assert!(a.at_cycle >= lat, "arrived before the wire allows");
                prop_assert!(net.configuration().is_bank_active(a.bank));
                prop_assert!(seen.insert(a.request.tag), "duplicate tag {}", a.request.tag);
            }
        }
        prop_assert_eq!(seen.len() as u64, injected, "lost requests");
    }
}
