//! Crate-level error type.

use crate::power_state::PowerStateError;
use crate::reconfig::ReconfigError;
use crate::topology::TopologyError;
use mot3d_phys::geometry::FloorplanError;
use mot3d_phys::sram::SramConfigError;
use std::error::Error;
use std::fmt;

/// Any error a `mot3d-mot` operation can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum MotError {
    /// Invalid power state.
    PowerState(PowerStateError),
    /// Invalid topology.
    Topology(TopologyError),
    /// Invalid reconfiguration request.
    Reconfig(ReconfigError),
    /// Floorplan query failed.
    Floorplan(FloorplanError),
    /// SRAM model rejected the bank configuration.
    Sram(SramConfigError),
}

impl fmt::Display for MotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MotError::PowerState(e) => write!(f, "power state: {e}"),
            MotError::Topology(e) => write!(f, "topology: {e}"),
            MotError::Reconfig(e) => write!(f, "reconfiguration: {e}"),
            MotError::Floorplan(e) => write!(f, "floorplan: {e}"),
            MotError::Sram(e) => write!(f, "sram model: {e}"),
        }
    }
}

impl Error for MotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MotError::PowerState(e) => Some(e),
            MotError::Topology(e) => Some(e),
            MotError::Reconfig(e) => Some(e),
            MotError::Floorplan(e) => Some(e),
            MotError::Sram(e) => Some(e),
        }
    }
}

impl From<PowerStateError> for MotError {
    fn from(e: PowerStateError) -> Self {
        MotError::PowerState(e)
    }
}

impl From<TopologyError> for MotError {
    fn from(e: TopologyError) -> Self {
        MotError::Topology(e)
    }
}

impl From<ReconfigError> for MotError {
    fn from(e: ReconfigError) -> Self {
        MotError::Reconfig(e)
    }
}

impl From<FloorplanError> for MotError {
    fn from(e: FloorplanError) -> Self {
        MotError::Floorplan(e)
    }
}

impl From<SramConfigError> for MotError {
    fn from(e: SramConfigError) -> Self {
        MotError::Sram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_the_source() {
        let e: MotError = PowerStateError::NotPowerOfTwo("cores", 3).into();
        assert!(e.to_string().starts_with("power state:"));
        assert!(e.source().is_some());
    }
}
