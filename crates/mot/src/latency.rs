//! Latency derivation: physical models → Table I cycle counts.
//!
//! "In order to estimate the latency of 3-D MoT interconnect, the delay
//! for the longest possible link between cores and cache banks is
//! estimated by using Elmore distributed RC delay model" (§IV). This
//! module composes that estimate:
//!
//! ```text
//! t_request  = wire(longest path) + log2(B)·t_routing + log2(P_a)·t_arb
//!            + t_TSV + t_inject
//! t_response = wire(longest path) + log2(B)·t_routing + t_TSV + t_eject
//! ```
//!
//! quantised to clock cycles, plus the CACTI-derived bank access. The
//! request leg pays the arbitration tree; the response returns over the
//! (grantless) distribution side. Packets traverse all `log2(B)` routing
//! levels even in folded states — user-defined switches are powered and
//! still on the path (Fig. 4's gray circles).
//!
//! With the calibrated `lp45` node this reproduces Table I exactly:
//! Full = 12, PC16-MB8 = 9, PC4-MB32 = 9, PC4-MB8 = 7 cycles.

use crate::power_state::PowerState;
use crate::topology::MotTopology;
use crate::MotError;
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::rc::RepeatedWire;
use mot3d_phys::sram::{SramBank, SramConfig};
use mot3d_phys::units::{Ohms, Seconds};
use mot3d_phys::Technology;

/// Interface-timing constants of the MoT implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotTimingParams {
    /// Core-side injection overhead (request register + packetisation +
    /// first driver).
    pub injection: Seconds,
    /// Core-side ejection overhead (response latch).
    pub ejection: Seconds,
    /// Driver strength used for the TSV bus (dedicated sized-up driver).
    pub tsv_driver: Ohms,
}

impl Default for MotTimingParams {
    /// Calibrated defaults (see `DESIGN.md` §7): 0.30 ns injection,
    /// 0.10 ns ejection, 1 kΩ TSV driver.
    fn default() -> Self {
        MotTimingParams {
            injection: Seconds::from_ps(300.0),
            ejection: Seconds::from_ps(100.0),
            tsv_driver: Ohms::from_kohms(1.0),
        }
    }
}

/// Derived latency of one power state, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotLatency {
    /// Core → bank traversal (includes arbitration).
    pub request_cycles: u64,
    /// SRAM bank access.
    pub bank_cycles: u64,
    /// Bank → core traversal.
    pub response_cycles: u64,
}

impl MotLatency {
    /// Full L2 access latency — the numbers Table I quotes (12/9/9/7).
    pub fn round_trip(&self) -> u64 {
        self.request_cycles + self.bank_cycles + self.response_cycles
    }

    /// Derives the latency of `state` on `topology` from the physical
    /// models.
    ///
    /// # Errors
    ///
    /// [`MotError`] if the state does not fit the topology/floorplan or
    /// the SRAM configuration is inconsistent.
    pub fn derive(
        tech: &Technology,
        floorplan: &Floorplan,
        topology: MotTopology,
        params: &MotTimingParams,
        state: PowerState,
    ) -> Result<Self, MotError> {
        state.check_fits(topology.cores(), topology.banks())?;
        let path = floorplan.longest_path(state.active_cores(), state.active_banks())?;
        let wire = RepeatedWire::new(tech, path.horizontal).delay();
        let tsv = floorplan
            .tsv
            .hop_delay_with_driver(tech, path.vertical_hops, params.tsv_driver);

        let per_routing_switch = tech.switch.routing_switch_delay + tech.switch.reconfig_mux_delay;
        let routing = per_routing_switch * topology.routing_levels() as f64;
        let arb_levels = (state.active_cores().trailing_zeros()) as f64;
        let arbitration = tech.switch.arbitration_switch_delay * arb_levels;

        let t_request = wire + routing + arbitration + tsv + params.injection;
        let t_response = wire + routing + tsv + params.ejection;

        let bank = SramBank::model(tech, SramConfig::l2_bank_date16())?;

        Ok(MotLatency {
            request_cycles: tech.cycles_for(t_request),
            bank_cycles: bank.access_cycles(tech),
            response_cycles: tech.cycles_for(t_response),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn derive(state: PowerState) -> MotLatency {
        MotLatency::derive(
            &Technology::lp45(),
            &Floorplan::date16(),
            MotTopology::date16(),
            &MotTimingParams::default(),
            state,
        )
        .unwrap()
    }

    #[test]
    fn table1_full_connection_is_12_cycles() {
        let l = derive(PowerState::full());
        assert_eq!(l.round_trip(), 12, "{l:?}");
    }

    #[test]
    fn table1_pc16_mb8_is_9_cycles() {
        let l = derive(PowerState::pc16_mb8());
        assert_eq!(l.round_trip(), 9, "{l:?}");
    }

    #[test]
    fn table1_pc4_mb32_is_9_cycles() {
        let l = derive(PowerState::pc4_mb32());
        assert_eq!(l.round_trip(), 9, "{l:?}");
    }

    #[test]
    fn table1_pc4_mb8_is_7_cycles() {
        let l = derive(PowerState::pc4_mb8());
        assert_eq!(l.round_trip(), 7, "{l:?}");
    }

    #[test]
    fn bank_access_is_constant_across_states() {
        let states = PowerState::date16_states();
        let banks: Vec<u64> = states.iter().map(|s| derive(*s).bank_cycles).collect();
        assert!(banks.windows(2).all(|w| w[0] == w[1]), "{banks:?}");
    }

    #[test]
    fn request_leg_is_never_faster_than_response() {
        // The request pays arbitration on top of the same wire.
        for s in PowerState::date16_states() {
            let l = derive(s);
            assert!(l.request_cycles >= l.response_cycles, "{s}: {l:?}");
        }
    }

    #[test]
    fn oversized_state_is_rejected() {
        let err = MotLatency::derive(
            &Technology::lp45(),
            &Floorplan::date16(),
            MotTopology::date16(),
            &MotTimingParams::default(),
            PowerState::new(32, 32).unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("exceed"));
    }
}
