//! Structural (gate-accurate) model of one core's routing tree.
//!
//! [`crate::reconfig::MotConfiguration`] computes routes *behaviourally*
//! (bit arithmetic). This module instantiates the actual fabric of
//! Fig. 2(a)/Fig. 4 — one [`RoutingSwitch`] cell per tree node, each
//! driven by its own `ctr_1/ctr_0` control pair — and routes packets by
//! walking signals through the cells. It exists for the same reason RTL
//! exists next to a spec: to prove the control plane (`routing_mode`)
//! and the arithmetic remap agree with what the circuit actually does,
//! switch by switch. The equivalence is checked by unit tests here and
//! property tests in `tests/properties.rs`.

use crate::reconfig::MotConfiguration;
use crate::switch::RoutingSwitch;
use crate::topology::{MotTopology, SwitchAddr};

/// One core's routing tree, as physical switch instances.
///
/// # Examples
///
/// ```
/// use mot3d_mot::fabric::RoutingFabric;
/// use mot3d_mot::power_state::PowerState;
/// use mot3d_mot::reconfig::MotConfiguration;
/// use mot3d_mot::topology::MotTopology;
///
/// let cfg = MotConfiguration::new(MotTopology::date16(), PowerState::pc16_mb8())?;
/// let fabric = RoutingFabric::configure(&cfg);
/// // The circuit lands every packet exactly where the remap says.
/// for home in 0..32 {
///     assert_eq!(fabric.route(home), Some(cfg.remap_bank(home)));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutingFabric {
    topology: MotTopology,
    /// Levels 1..=L, each `2^(level-1)` switch cells.
    levels: Vec<Vec<RoutingSwitch>>,
}

impl RoutingFabric {
    /// Builds the tree with every switch in conventional mode.
    pub fn new(topology: MotTopology) -> Self {
        let levels = (1..=topology.routing_levels())
            .map(|l| vec![RoutingSwitch::new(); topology.switches_in_level(l)])
            .collect();
        RoutingFabric { topology, levels }
    }

    /// Builds the tree and drives every switch's control pair from the
    /// configuration's control plane (what the power-management unit
    /// would program over the `ctr` wires, Fig. 3(b)).
    pub fn configure(cfg: &MotConfiguration) -> Self {
        let mut fabric = RoutingFabric::new(cfg.topology());
        for level in 1..=fabric.topology.routing_levels() {
            for index in 0..fabric.topology.switches_in_level(level) {
                let mode = cfg.routing_mode(SwitchAddr { level, index });
                // Round-trip through the physical control encoding.
                let (c1, c0) = mode.to_ctr();
                fabric.levels[(level - 1) as usize][index]
                    .set_mode(crate::switch::RoutingMode::from_ctr(c1, c0));
            }
        }
        fabric
    }

    /// The switch instance at `(level, index)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn switch(&self, addr: SwitchAddr) -> &RoutingSwitch {
        &self.levels[(addr.level - 1) as usize][addr.index]
    }

    /// Routes a packet addressed to home bank `home` through the switch
    /// cells; returns the physical bank it lands on, or `None` if it hit
    /// a power-gated switch (a control-plane bug).
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    pub fn route(&self, home: usize) -> Option<usize> {
        assert!(home < self.topology.banks(), "bank {home} out of range");
        let mut index = 0usize;
        for level in 1..=self.topology.routing_levels() {
            let bit = (home >> self.topology.bit_of_level(level)) & 1 == 1;
            let port = self.levels[(level - 1) as usize][index].route(bit)?;
            index = (index << 1) | port.bit() as usize;
        }
        Some(index)
    }

    /// Number of powered switch instances.
    pub fn powered_switches(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .filter(|s| s.is_powered())
            .count()
    }

    /// Total switch instances (`banks − 1`).
    pub fn total_switches(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_state::PowerState;

    fn fabric_for(state: PowerState) -> (RoutingFabric, MotConfiguration) {
        let cfg = MotConfiguration::new(MotTopology::date16(), state).unwrap();
        (RoutingFabric::configure(&cfg), cfg)
    }

    #[test]
    fn unconfigured_fabric_is_the_identity() {
        let fabric = RoutingFabric::new(MotTopology::date16());
        for home in 0..32 {
            assert_eq!(fabric.route(home), Some(home));
        }
        assert_eq!(fabric.total_switches(), 31);
        assert_eq!(fabric.powered_switches(), 31);
    }

    #[test]
    fn circuit_agrees_with_arithmetic_remap_in_all_states() {
        for state in PowerState::date16_states() {
            let (fabric, cfg) = fabric_for(state);
            for home in 0..32 {
                assert_eq!(
                    fabric.route(home),
                    Some(cfg.remap_bank(home)),
                    "{state}, home {home}"
                );
            }
        }
    }

    #[test]
    fn fig4_example_structurally() {
        // 4×8 MoT with half the banks gated: the circuit must realise
        // M0→M2, M1→M3, M6→M4, M7→M5 (§III).
        let cfg = MotConfiguration::new(
            MotTopology::new(4, 8).unwrap(),
            PowerState::new(4, 4).unwrap(),
        )
        .unwrap();
        let fabric = RoutingFabric::configure(&cfg);
        assert_eq!(fabric.route(0b000), Some(0b010));
        assert_eq!(fabric.route(0b001), Some(0b011));
        assert_eq!(fabric.route(0b110), Some(0b100));
        assert_eq!(fabric.route(0b111), Some(0b101));
        assert_eq!(fabric.route(0b011), Some(0b011)); // live bank: untouched
    }

    #[test]
    fn powered_switch_count_matches_control_plane() {
        for state in PowerState::date16_states() {
            let (fabric, cfg) = fabric_for(state);
            let per_tree = cfg.counts().routing_switches / cfg.active_cores().len();
            assert_eq!(
                fabric.powered_switches(),
                per_tree,
                "{state}: fabric vs counts()"
            );
        }
    }

    #[test]
    fn gated_fabric_never_routes_to_a_gated_bank() {
        let (fabric, cfg) = fabric_for(PowerState::pc4_mb8());
        for home in 0..32 {
            let phys = fabric.route(home).expect("control plane is closed");
            assert!(
                cfg.is_bank_active(phys),
                "home {home} landed on gated {phys}"
            );
        }
    }
}
