//! The reconfiguration control plane (§III, Fig. 4).
//!
//! Given a [`PowerState`], this module decides, for every routing switch
//! in every core's tree, whether it runs *conventional*, *user-defined*
//! (folding traffic toward the die-center banks), or *off* — and derives
//! the induced bank remap, the set of live cores/banks, and the component
//! counts that the leakage model charges.
//!
//! ## The fold rule
//!
//! Gating from `B` to `B_a` banks removes `g = log2(B/B_a)` bank-index
//! bits from routing. Following Fig. 4 (and keeping the survivors central
//! on the die, as Fig. 5 shows), the *g* bits **after the MSB** are folded:
//! every folded switch in the left half of the die (bank MSB = 0) is
//! forced toward port 1 (inward) and every folded switch in the right half
//! toward port 0 (inward). The remap is therefore
//!
//! ```text
//! remap(h) = h with each folded bit replaced by ¬h[MSB]
//! ```
//!
//! which the paper describes as the ignored "second digit of cache bank
//! index": data for a gated bank lands on a live bank automatically, with
//! perfect balance (each live bank absorbs exactly `B/B_a` home indices)
//! and no change to the cache addressing.
//!
//! Cores are gated by the same central rule, so `PC4` keeps the four
//! die-center cores.

use crate::power_state::{PowerState, PowerStateError};
use crate::switch::{Port, RoutingMode};
use crate::topology::{MotTopology, SwitchAddr, TopologyError};
use std::error::Error;
use std::fmt;

/// Errors from building a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// The power state does not fit the topology.
    PowerState(PowerStateError),
    /// The topology itself is invalid.
    Topology(TopologyError),
    /// Folding needs at least two live banks (and two live cores) unless
    /// the cluster itself is that small: a single live leaf would require
    /// folding the root, which the central-fold rule does not define.
    TooFewActive(&'static str),
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::PowerState(e) => write!(f, "power state: {e}"),
            ReconfigError::Topology(e) => write!(f, "topology: {e}"),
            ReconfigError::TooFewActive(what) => {
                write!(f, "central folding needs at least two active {what}")
            }
        }
    }
}

impl Error for ReconfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReconfigError::PowerState(e) => Some(e),
            ReconfigError::Topology(e) => Some(e),
            ReconfigError::TooFewActive(_) => None,
        }
    }
}

impl From<PowerStateError> for ReconfigError {
    fn from(e: PowerStateError) -> Self {
        ReconfigError::PowerState(e)
    }
}

impl From<TopologyError> for ReconfigError {
    fn from(e: TopologyError) -> Self {
        ReconfigError::Topology(e)
    }
}

/// Component counts of a configuration, for the leakage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentCounts {
    /// Powered routing switches (over all live cores' trees).
    pub routing_switches: usize,
    /// Powered arbitration cells (over all live banks' trees).
    pub arbitration_cells: usize,
    /// Power-gated routing switches.
    pub gated_routing_switches: usize,
    /// Power-gated arbitration cells.
    pub gated_arbitration_cells: usize,
}

/// A fully-resolved interconnect configuration for one power state.
///
/// # Examples
///
/// Fig. 4's example — 8 banks, gate half of them:
///
/// ```
/// use mot3d_mot::reconfig::MotConfiguration;
/// use mot3d_mot::power_state::PowerState;
/// use mot3d_mot::topology::MotTopology;
///
/// let topo = MotTopology::new(4, 8)?;
/// let cfg = MotConfiguration::new(topo, PowerState::new(4, 4)?)?;
/// // M0, M1 fold onto M2, M3; M6, M7 onto M4, M5 (paper §III).
/// assert_eq!(cfg.remap_bank(0b000), 0b010);
/// assert_eq!(cfg.remap_bank(0b001), 0b011);
/// assert_eq!(cfg.remap_bank(0b110), 0b100);
/// assert_eq!(cfg.remap_bank(0b111), 0b101);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MotConfiguration {
    topology: MotTopology,
    state: PowerState,
    folded_bank_bits: u64,
    folded_core_bits: u64,
    counts: ComponentCounts,
}

impl MotConfiguration {
    /// Resolves a power state against a topology.
    ///
    /// # Errors
    ///
    /// [`ReconfigError`] if the state exceeds the topology or asks for a
    /// single live leaf on a multi-leaf tree.
    pub fn new(topology: MotTopology, state: PowerState) -> Result<Self, ReconfigError> {
        state.check_fits(topology.cores(), topology.banks())?;
        if state.active_banks() < 2 && topology.banks() > 1 {
            return Err(ReconfigError::TooFewActive("banks"));
        }
        if state.active_cores() < 2 && topology.cores() > 1 {
            return Err(ReconfigError::TooFewActive("cores"));
        }
        let folded_bank_bits = folded_bits(topology.banks(), state.active_banks());
        let folded_core_bits = folded_bits(topology.cores(), state.active_cores());
        let mut cfg = MotConfiguration {
            topology,
            state,
            folded_bank_bits,
            folded_core_bits,
            counts: ComponentCounts::default(),
        };
        cfg.counts = cfg.count_components();
        Ok(cfg)
    }

    /// The underlying topology.
    pub fn topology(&self) -> MotTopology {
        self.topology
    }

    /// The resolved power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// The physical bank that serves home index `home` under this
    /// configuration (identity when nothing is folded).
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    pub fn remap_bank(&self, home: usize) -> usize {
        assert!(home < self.topology.banks(), "bank {home} out of range");
        remap(home, self.topology.banks(), self.folded_bank_bits)
    }

    /// Whether a physical bank stays powered.
    pub fn is_bank_active(&self, bank: usize) -> bool {
        self.remap_bank(bank) == bank
    }

    /// The live banks, ascending.
    pub fn active_banks(&self) -> Vec<usize> {
        (0..self.topology.banks())
            .filter(|&b| self.is_bank_active(b))
            .collect()
    }

    /// Whether a core stays powered (central fold, same rule as banks).
    pub fn is_core_active(&self, core: usize) -> bool {
        assert!(core < self.topology.cores(), "core {core} out of range");
        remap(core, self.topology.cores(), self.folded_core_bits) == core
    }

    /// The live cores, ascending.
    pub fn active_cores(&self) -> Vec<usize> {
        (0..self.topology.cores())
            .filter(|&c| self.is_core_active(c))
            .collect()
    }

    /// The operating mode of routing switch `sw` (in any live core's
    /// tree).
    ///
    /// A switch is `Off` when no live bank sits under it; `UserDefined`
    /// (forced inward) when its level's bank bit is folded; `Conventional`
    /// otherwise.
    pub fn routing_mode(&self, sw: SwitchAddr) -> RoutingMode {
        let span = self.topology.banks_under(sw);
        let reachable = span.clone().any(|b| self.is_bank_active(b));
        if !reachable {
            return RoutingMode::Off;
        }
        let bit = self.topology.bit_of_level(sw.level);
        if self.folded_bank_bits & (1 << bit) != 0 {
            // Forced inward: left half of the die (MSB 0) folds toward
            // port 1, right half toward port 0.
            let msb_of_subtree = span.start >> (self.topology.routing_levels() - 1);
            let inward = if msb_of_subtree == 0 {
                Port::Port1
            } else {
                Port::Port0
            };
            RoutingMode::UserDefined(inward)
        } else {
            RoutingMode::Conventional
        }
    }

    /// Bank-index bits ignored by routing under this configuration (the
    /// paper's "second digit ... ignored for packet routing").
    pub fn folded_bank_bits(&self) -> u64 {
        self.folded_bank_bits
    }

    /// Powered/gated component counts for the leakage model.
    pub fn counts(&self) -> ComponentCounts {
        self.counts
    }

    fn count_components(&self) -> ComponentCounts {
        let mut c = ComponentCounts::default();
        // Routing switches: per live core's tree; gated cores' whole trees
        // are off.
        let live_cores = self.active_cores().len();
        let gated_cores = self.topology.cores() - live_cores;
        for level in 1..=self.topology.routing_levels() {
            for index in 0..self.topology.switches_in_level(level) {
                let sw = SwitchAddr { level, index };
                if self.routing_mode(sw) == RoutingMode::Off {
                    c.gated_routing_switches += live_cores;
                } else {
                    c.routing_switches += live_cores;
                }
            }
        }
        c.gated_routing_switches += gated_cores * self.topology.routing_switches_per_tree();

        // Arbitration cells: per live bank's tree, a cell is powered iff a
        // live core sits under it. The arbitration tree over P cores at
        // level ℓ (1-based from the bank) has 2^(ℓ-1) cells... count
        // bottom-up over core-index subtrees instead:
        let p = self.topology.cores();
        let mut live_cells_per_tree = 0usize;
        let levels = self.topology.arbitration_levels();
        for level in 1..=levels {
            let cells = 1usize << (level - 1);
            let span = p >> (level - 1);
            for index in 0..cells {
                let lo = index * span;
                let hi = lo + span;
                if (lo..hi).any(|core| self.is_core_active(core)) {
                    live_cells_per_tree += 1;
                }
            }
        }
        let cells_per_tree = self.topology.arbitration_cells_per_tree();
        let live_banks = self.active_banks().len();
        let gated_banks = self.topology.banks() - live_banks;
        c.arbitration_cells = live_banks * live_cells_per_tree;
        c.gated_arbitration_cells =
            live_banks * (cells_per_tree - live_cells_per_tree) + gated_banks * cells_per_tree;
        c
    }
}

/// The mask of folded (ignored) index bits when gating `total` → `active`.
///
/// The MSB is never folded (it selects the die half); the `g` bits right
/// below it are. When `active == total` the mask is empty.
fn folded_bits(total: usize, active: usize) -> u64 {
    let bits = total.trailing_zeros() as u64;
    let g = (total / active).trailing_zeros() as u64;
    if g == 0 || bits == 0 {
        return 0;
    }
    debug_assert!(
        g <= bits.saturating_sub(1),
        "fold depth exceeds sub-MSB bits"
    );
    // Bits (bits-2) down to (bits-1-g), i.e. g bits directly below the MSB.
    let top = bits - 1; // MSB position
    let mut mask = 0u64;
    for k in 1..=g {
        mask |= 1 << (top - k);
    }
    mask
}

/// Applies the central-fold remap: folded bits := ¬MSB.
fn remap(index: usize, total: usize, folded: u64) -> usize {
    if folded == 0 {
        return index;
    }
    let bits = total.trailing_zeros() as u64;
    let msb = (index >> (bits - 1)) & 1;
    let fill = 1 - msb;
    let idx = index as u64;
    let cleared = idx & !folded;
    let filled = if fill == 1 { cleared | folded } else { cleared };
    filled as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cores: usize, banks: usize, ac: usize, ab: usize) -> MotConfiguration {
        MotConfiguration::new(
            MotTopology::new(cores, banks).unwrap(),
            PowerState::new(ac, ab).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn fig4_remap_exactly_as_paper() {
        // 4 cores × 8 banks, half the banks gated: M0→M2, M1→M3, M6→M4,
        // M7→M5; M2..M5 stay put (§III).
        let c = cfg(4, 8, 4, 4);
        let expect = [
            (0b000, 0b010),
            (0b001, 0b011),
            (0b010, 0b010),
            (0b011, 0b011),
            (0b100, 0b100),
            (0b101, 0b101),
            (0b110, 0b100),
            (0b111, 0b101),
        ];
        for (home, phys) in expect {
            assert_eq!(c.remap_bank(home), phys, "home {home:03b}");
        }
        assert_eq!(c.active_banks(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn fig4_switch_modes() {
        // Level-2 switches run user-defined (gray in Fig. 4), all others
        // conventional; none off (every level-3 switch above a live bank
        // pair... the outer level-3 switches are off).
        let c = cfg(4, 8, 4, 4);
        assert_eq!(
            c.routing_mode(SwitchAddr { level: 1, index: 0 }),
            RoutingMode::Conventional
        );
        // Left half folds inward (port 1), right half inward (port 0).
        assert_eq!(
            c.routing_mode(SwitchAddr { level: 2, index: 0 }),
            RoutingMode::UserDefined(Port::Port1)
        );
        assert_eq!(
            c.routing_mode(SwitchAddr { level: 2, index: 1 }),
            RoutingMode::UserDefined(Port::Port0)
        );
        // Level 3: switches over gated pairs {M0,M1} and {M6,M7} are off.
        assert_eq!(
            c.routing_mode(SwitchAddr { level: 3, index: 0 }),
            RoutingMode::Off
        );
        assert_eq!(
            c.routing_mode(SwitchAddr { level: 3, index: 3 }),
            RoutingMode::Off
        );
        assert_eq!(
            c.routing_mode(SwitchAddr { level: 3, index: 1 }),
            RoutingMode::Conventional
        );
        assert_eq!(
            c.routing_mode(SwitchAddr { level: 3, index: 2 }),
            RoutingMode::Conventional
        );
    }

    #[test]
    fn full_state_is_identity() {
        let c = cfg(16, 32, 16, 32);
        for b in 0..32 {
            assert_eq!(c.remap_bank(b), b);
        }
        assert_eq!(c.active_banks().len(), 32);
        assert_eq!(c.active_cores().len(), 16);
        assert_eq!(c.folded_bank_bits(), 0);
        let counts = c.counts();
        assert_eq!(counts.routing_switches, 16 * 31);
        assert_eq!(counts.gated_routing_switches, 0);
        assert_eq!(counts.arbitration_cells, 32 * 15);
    }

    #[test]
    fn mb8_of_32_keeps_central_banks() {
        let c = cfg(16, 32, 16, 8);
        // g = 2: banks 01100..01111 (12..15) and 10000..10011 (16..19).
        assert_eq!(c.active_banks(), vec![12, 13, 14, 15, 16, 17, 18, 19]);
        // Perfect balance: each live bank absorbs exactly 4 home indices.
        let mut loads = vec![0usize; 32];
        for h in 0..32 {
            loads[c.remap_bank(h)] += 1;
        }
        for (b, &load) in loads.iter().enumerate() {
            let want = if c.is_bank_active(b) { 4 } else { 0 };
            assert_eq!(load, want, "bank {b}");
        }
    }

    #[test]
    fn pc4_keeps_central_cores() {
        let c = cfg(16, 32, 4, 32);
        assert_eq!(c.active_cores(), vec![6, 7, 8, 9]);
        assert_eq!(c.active_banks().len(), 32);
    }

    #[test]
    fn gating_reduces_powered_component_counts() {
        let full = cfg(16, 32, 16, 32).counts();
        let gated = cfg(16, 32, 4, 8).counts();
        assert!(gated.routing_switches < full.routing_switches);
        assert!(gated.arbitration_cells < full.arbitration_cells);
        // Conservation: powered + gated covers the physical inventory.
        let topo = MotTopology::date16();
        assert_eq!(
            gated.routing_switches + gated.gated_routing_switches,
            topo.total_routing_switches()
        );
        assert_eq!(
            gated.arbitration_cells + gated.gated_arbitration_cells,
            topo.total_arbitration_cells()
        );
    }

    #[test]
    fn remapped_targets_are_always_active() {
        for (ac, ab) in [(16, 32), (16, 8), (4, 32), (4, 8), (2, 2), (8, 16)] {
            let c = cfg(16, 32, ac, ab);
            for h in 0..32 {
                let phys = c.remap_bank(h);
                assert!(c.is_bank_active(phys), "({ac},{ab}): {h} → {phys} inactive");
            }
        }
    }

    #[test]
    fn no_live_path_crosses_an_off_switch() {
        // For every home bank, walking the route through the switch modes
        // must land exactly on remap_bank(home).
        let c = cfg(16, 32, 16, 8);
        let topo = c.topology();
        for home in 0..32 {
            let mut reached = 0usize; // path bits so far = switch index at each level
            for level in 1..=topo.routing_levels() {
                let mode = c.routing_mode(SwitchAddr {
                    level,
                    index: reached,
                });
                let addr_bit = (home >> topo.bit_of_level(level)) & 1 == 1;
                let port = match mode {
                    RoutingMode::Off => {
                        panic!("home {home} hit an off switch at level {level} index {reached}")
                    }
                    RoutingMode::Conventional => Port::from_bit(addr_bit),
                    RoutingMode::UserDefined(p) => p,
                };
                reached = (reached << 1) | port.bit() as usize;
            }
            assert_eq!(reached, c.remap_bank(home), "home {home}");
        }
    }

    #[test]
    fn rejects_single_leaf_folds() {
        let topo = MotTopology::new(4, 8).unwrap();
        assert!(matches!(
            MotConfiguration::new(topo, PowerState::new(4, 1).unwrap()),
            Err(ReconfigError::TooFewActive("banks"))
        ));
        assert!(matches!(
            MotConfiguration::new(topo, PowerState::new(1, 8).unwrap()),
            Err(ReconfigError::TooFewActive("cores"))
        ));
    }

    #[test]
    fn rejects_oversized_states() {
        let topo = MotTopology::new(4, 8).unwrap();
        assert!(matches!(
            MotConfiguration::new(topo, PowerState::new(8, 8).unwrap()),
            Err(ReconfigError::PowerState(_))
        ));
    }
}
