//! Arbitration switches (Fig. 2(c)).
//!
//! Each L2 bank is reached through a binary arbitration tree that merges
//! requests from all cores. A 2-input arbitration switch grants one of its
//! two upstream ports per cycle; "a round-robin algorithm is implemented
//! for a starvation-free arbitration" (§II). The tree composes these
//! 2-input cells; [`ArbitrationTree`] provides the whole-tree view used by
//! the network model (grant one requester per bank per cycle, rotating
//! fairly).

/// A 2-input round-robin arbiter cell.
///
/// # Examples
///
/// ```
/// use mot3d_mot::switch::Arbiter2;
///
/// let mut arb = Arbiter2::new();
/// // Both request: grants alternate.
/// let first = arb.grant(true, true).unwrap();
/// let second = arb.grant(true, true).unwrap();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Arbiter2 {
    /// Port granted last (loses the next tie).
    last: bool,
}

impl Arbiter2 {
    /// A fresh arbiter; port 0 wins the first tie.
    pub fn new() -> Self {
        Arbiter2 { last: true }
    }

    /// One arbitration round: `req0`/`req1` are the request lines; returns
    /// the granted port index, or `None` if nobody requests.
    pub fn grant(&mut self, req0: bool, req1: bool) -> Option<usize> {
        let winner = match (req0, req1) {
            (false, false) => return None,
            (true, false) => false,
            (false, true) => true,
            // Tie: the port that lost last time wins (round robin).
            (true, true) => !self.last,
        };
        self.last = winner;
        Some(winner as usize)
    }

    /// The port that would win a tie right now (without arbitrating).
    pub fn tie_winner(&self) -> usize {
        (!self.last) as usize
    }
}

/// A whole arbitration tree for one bank: grants one of `n` requesters per
/// round, starvation-free, by composing [`Arbiter2`] cells bottom-up.
#[derive(Debug, Clone)]
pub struct ArbitrationTree {
    cells: Vec<Arbiter2>,
    inputs: usize,
}

impl ArbitrationTree {
    /// Builds a tree over `inputs` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not a non-zero power of two (MoT arbitration
    /// trees are full binary trees).
    pub fn new(inputs: usize) -> Self {
        assert!(
            inputs.is_power_of_two() && inputs > 0,
            "arbitration tree needs a power-of-two input count, got {inputs}"
        );
        ArbitrationTree {
            cells: vec![Arbiter2::new(); inputs.saturating_sub(1)],
            inputs,
        }
    }

    /// Number of leaf request inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of internal arbiter cells (`inputs − 1`).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Restores every cell's round-robin state to construction time, so a
    /// reset tree grants in exactly the same order as a fresh one.
    pub fn reset(&mut self) {
        self.cells.fill(Arbiter2::new());
    }

    /// One arbitration round over the request bitmap; returns the granted
    /// requester index, or `None` if no line is asserted.
    ///
    /// Only the cells on the granted path update their round-robin state
    /// (grant-path update). Updating every cell each round would make all
    /// cells flip in lockstep under saturation and starve the middle
    /// requesters — the classic tree-arbiter pitfall.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != inputs`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(
            requests.len(),
            self.inputs,
            "request bitmap must have {} entries",
            self.inputs
        );
        if self.inputs == 1 {
            return requests[0].then_some(0);
        }
        if !requests.iter().any(|&r| r) {
            return None;
        }
        // Cells form an implicit heap over the leaves: cell 0 is the root,
        // cell i's children are 2i+1 and 2i+2; the subtree of a cell at
        // depth d covers inputs [lo, lo + inputs >> d).
        let mut cell = 0usize;
        let mut lo = 0usize;
        let mut span = self.inputs;
        while span > 1 {
            let half = span / 2;
            let left = requests[lo..lo + half].iter().any(|&r| r);
            let right = requests[lo + half..lo + span].iter().any(|&r| r);
            let side = self.cells[cell]
                .grant(left, right)
                // mot3d-lint: allow(P1) -- descent only enters subtrees holding a requester
                .expect("subtree has a requester by construction");
            if side == 1 {
                lo += half;
            }
            cell = 2 * cell + 1 + side;
            span = half;
        }
        Some(lo)
    }

    /// [`ArbitrationTree::grant`] over a request *bitmask* (bit `i` ⇔
    /// requester `i` asserted), for trees of up to 32 inputs. Identical
    /// grants and identical cell-state updates — subtree occupancy is one
    /// mask test instead of a slice scan, which is what the interconnect's
    /// per-cycle grant loop wants.
    ///
    /// # Panics
    ///
    /// Panics if the tree has more than 32 inputs.
    pub fn grant_mask(&mut self, requests: u32) -> Option<usize> {
        assert!(self.inputs <= 32, "grant_mask serves trees of ≤ 32 inputs");
        if self.inputs == 1 {
            return (requests & 1 != 0).then_some(0);
        }
        if requests == 0 {
            return None;
        }
        let mut cell = 0usize;
        let mut lo = 0usize;
        let mut span = self.inputs;
        while span > 1 {
            let half = span / 2;
            let half_mask = (1u32 << half) - 1;
            let left = requests & (half_mask << lo) != 0;
            let right = requests & (half_mask << (lo + half)) != 0;
            let side = self.cells[cell]
                .grant(left, right)
                // mot3d-lint: allow(P1) -- descent only enters subtrees holding a requester
                .expect("subtree has a requester by construction");
            if side == 1 {
                lo += half;
            }
            cell = 2 * cell + 1 + side;
            span = half;
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_requester_always_wins() {
        let mut arb = Arbiter2::new();
        for _ in 0..5 {
            assert_eq!(arb.grant(true, false), Some(0));
            assert_eq!(arb.grant(false, true), Some(1));
        }
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = Arbiter2::new();
        assert_eq!(arb.grant(false, false), None);
        let mut tree = ArbitrationTree::new(8);
        assert_eq!(tree.grant(&[false; 8]), None);
    }

    #[test]
    fn saturated_pair_alternates() {
        let mut arb = Arbiter2::new();
        let seq: Vec<usize> = (0..6).map(|_| arb.grant(true, true).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn tree_grants_everyone_under_saturation() {
        // 8 requesters all asserting: within 8 rounds each must win at
        // least once (starvation freedom).
        let mut tree = ArbitrationTree::new(8);
        let mut wins = [0u32; 8];
        for _ in 0..8 {
            let g = tree.grant(&[true; 8]).unwrap();
            wins[g] += 1;
        }
        assert!(
            wins.iter().all(|&w| w >= 1),
            "someone starved in 8 rounds: {wins:?}"
        );
    }

    #[test]
    fn tree_of_one_is_passthrough() {
        let mut tree = ArbitrationTree::new(1);
        assert_eq!(tree.grant(&[true]), Some(0));
        assert_eq!(tree.grant(&[false]), None);
        assert_eq!(tree.cell_count(), 0);
    }

    #[test]
    fn cell_count_is_inputs_minus_one() {
        for n in [1usize, 2, 4, 8, 16, 32] {
            assert_eq!(ArbitrationTree::new(n).cell_count(), n - 1);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two_inputs() {
        ArbitrationTree::new(6);
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn rejects_wrong_bitmap_size() {
        let mut tree = ArbitrationTree::new(4);
        tree.grant(&[true; 3]);
    }

    #[test]
    fn mask_grant_matches_slice_grant() {
        // Same request patterns through both entry points must produce
        // identical grant sequences (and identical cell-state evolution).
        for inputs in [1usize, 2, 4, 8, 16, 32] {
            let mut by_slice = ArbitrationTree::new(inputs);
            let mut by_mask = ArbitrationTree::new(inputs);
            let mut pattern: u32 = 0x9E37_79B9;
            for round in 0..64 {
                let mask = if inputs == 32 {
                    pattern
                } else {
                    pattern & ((1u32 << inputs) - 1)
                };
                let slice: Vec<bool> = (0..inputs).map(|i| mask & (1 << i) != 0).collect();
                assert_eq!(
                    by_slice.grant(&slice),
                    by_mask.grant_mask(mask),
                    "inputs {inputs} round {round} mask {mask:#x}"
                );
                pattern = pattern.rotate_left(5) ^ round;
            }
        }
    }

    #[test]
    fn sparse_requests_route_to_the_requester() {
        let mut tree = ArbitrationTree::new(16);
        for only in [0usize, 5, 11, 15] {
            let mut req = [false; 16];
            req[only] = true;
            assert_eq!(tree.grant(&req), Some(only));
        }
    }
}
