//! MoT switch cells: the modified routing switch (Fig. 3) and the
//! round-robin arbitration switch (Fig. 2(c)).

mod arbitration;
mod routing;

pub use arbitration::{Arbiter2, ArbitrationTree};
pub use routing::{Port, RoutingMode, RoutingSwitch};
