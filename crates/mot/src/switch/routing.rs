//! The modified (reconfigurable) routing switch — the paper's central
//! circuit contribution (Fig. 3).
//!
//! A classic MoT routing switch (Fig. 2(b)) is a MUX + DEMUX pair whose
//! select is one bit of the packet's destination bank index. The modified
//! switch adds one more multiplexer (the gray MUX of Fig. 3(a)) on the
//! select path, controlled by two signals `ctr_1 ctr_0` (Fig. 3(b)):
//!
//! | `ctr_1` | `ctr_0` | behaviour                              |
//! |---------|---------|----------------------------------------|
//! | 0       | 0       | conventional: route by the address bit |
//! | 0       | 1       | user-defined: always port 0            |
//! | 1       | 0       | user-defined: always port 1            |
//! | 1       | 1       | switch (and its subtree) power-gated   |
//!
//! In user-defined mode the address bit is *ignored*, which is exactly
//! what folds the gated half of a bank subtree onto the live half while
//! leaving the cache addressing untouched (Fig. 4).

use std::fmt;

/// Which downstream port a routing decision selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Downstream port 0 (address bit 0 in conventional mode).
    Port0,
    /// Downstream port 1 (address bit 1 in conventional mode).
    Port1,
}

impl Port {
    /// The port selected by an address bit in conventional mode.
    #[inline]
    pub fn from_bit(bit: bool) -> Port {
        if bit {
            Port::Port1
        } else {
            Port::Port0
        }
    }

    /// The bit value this port represents.
    #[inline]
    pub fn bit(self) -> bool {
        matches!(self, Port::Port1)
    }

    /// The other port.
    #[inline]
    pub fn other(self) -> Port {
        match self {
            Port::Port0 => Port::Port1,
            Port::Port1 => Port::Port0,
        }
    }
}

/// Operating mode of a modified routing switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingMode {
    /// Route by the destination-address bit (Fig. 3(b), `ctr = 00`).
    #[default]
    Conventional,
    /// Ignore the address bit and always take the given port
    /// (`ctr = 01` / `ctr = 10`).
    UserDefined(Port),
    /// Power-gated (`ctr = 11`): the switch must not see traffic.
    Off,
}

impl RoutingMode {
    /// Decodes the `(ctr_1, ctr_0)` control pair of Fig. 3(b).
    pub fn from_ctr(ctr_1: bool, ctr_0: bool) -> RoutingMode {
        match (ctr_1, ctr_0) {
            (false, false) => RoutingMode::Conventional,
            (false, true) => RoutingMode::UserDefined(Port::Port0),
            (true, false) => RoutingMode::UserDefined(Port::Port1),
            (true, true) => RoutingMode::Off,
        }
    }

    /// Encodes back to the `(ctr_1, ctr_0)` control pair.
    pub fn to_ctr(self) -> (bool, bool) {
        match self {
            RoutingMode::Conventional => (false, false),
            RoutingMode::UserDefined(Port::Port0) => (false, true),
            RoutingMode::UserDefined(Port::Port1) => (true, false),
            RoutingMode::Off => (true, true),
        }
    }
}

impl fmt::Display for RoutingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingMode::Conventional => write!(f, "conventional"),
            RoutingMode::UserDefined(p) => write!(f, "user-defined({p:?})"),
            RoutingMode::Off => write!(f, "off"),
        }
    }
}

/// One modified routing switch instance.
///
/// # Examples
///
/// ```
/// use mot3d_mot::switch::{Port, RoutingMode, RoutingSwitch};
///
/// let mut sw = RoutingSwitch::new();
/// assert_eq!(sw.route(true), Some(Port::Port1)); // conventional
/// sw.set_mode(RoutingMode::UserDefined(Port::Port0));
/// assert_eq!(sw.route(true), Some(Port::Port0)); // address bit ignored
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingSwitch {
    mode: RoutingMode,
}

impl RoutingSwitch {
    /// A switch in conventional mode (reset state).
    pub fn new() -> Self {
        RoutingSwitch::default()
    }

    /// Current mode.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Reconfigures the switch (drives its `ctr` signals).
    pub fn set_mode(&mut self, mode: RoutingMode) {
        self.mode = mode;
    }

    /// Routes a packet whose relevant destination-address bit is
    /// `addr_bit`. Returns `None` if the switch is power-gated (a routing
    /// bug in the control plane — callers assert on it).
    pub fn route(&self, addr_bit: bool) -> Option<Port> {
        match self.mode {
            RoutingMode::Conventional => Some(Port::from_bit(addr_bit)),
            RoutingMode::UserDefined(port) => Some(port),
            RoutingMode::Off => None,
        }
    }

    /// Whether the switch is powered.
    pub fn is_powered(&self) -> bool {
        self.mode != RoutingMode::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_follows_address_bit() {
        let sw = RoutingSwitch::new();
        assert_eq!(sw.route(false), Some(Port::Port0));
        assert_eq!(sw.route(true), Some(Port::Port1));
    }

    #[test]
    fn user_defined_ignores_address_bit() {
        let mut sw = RoutingSwitch::new();
        sw.set_mode(RoutingMode::UserDefined(Port::Port1));
        assert_eq!(sw.route(false), Some(Port::Port1));
        assert_eq!(sw.route(true), Some(Port::Port1));
        sw.set_mode(RoutingMode::UserDefined(Port::Port0));
        assert_eq!(sw.route(false), Some(Port::Port0));
        assert_eq!(sw.route(true), Some(Port::Port0));
    }

    #[test]
    fn off_switch_routes_nothing() {
        let mut sw = RoutingSwitch::new();
        sw.set_mode(RoutingMode::Off);
        assert_eq!(sw.route(false), None);
        assert_eq!(sw.route(true), None);
        assert!(!sw.is_powered());
    }

    #[test]
    fn ctr_truth_table_round_trips() {
        // Fig. 3(b): all four control combinations decode and re-encode.
        for ctr in [(false, false), (false, true), (true, false), (true, true)] {
            let mode = RoutingMode::from_ctr(ctr.0, ctr.1);
            assert_eq!(mode.to_ctr(), ctr);
        }
        assert_eq!(
            RoutingMode::from_ctr(false, false),
            RoutingMode::Conventional
        );
        assert_eq!(
            RoutingMode::from_ctr(false, true),
            RoutingMode::UserDefined(Port::Port0)
        );
        assert_eq!(
            RoutingMode::from_ctr(true, false),
            RoutingMode::UserDefined(Port::Port1)
        );
        assert_eq!(RoutingMode::from_ctr(true, true), RoutingMode::Off);
    }

    #[test]
    fn port_bit_round_trip() {
        assert!(!Port::from_bit(false).bit());
        assert!(Port::from_bit(true).bit());
        assert_eq!(Port::Port0.other(), Port::Port1);
        assert_eq!(Port::Port1.other(), Port::Port0);
    }

    #[test]
    fn default_mode_is_conventional() {
        assert_eq!(RoutingSwitch::default().mode(), RoutingMode::Conventional);
    }
}
