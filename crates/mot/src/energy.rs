//! Interconnect energy model (Liao–He-style, paper ref \[20\]).
//!
//! Dynamic energy per transaction = bits moved × (wire switching energy
//! over the average path + switch-cell traversal energy per level + TSV
//! bus energy), at 0.5 toggle activity. Leakage = powered routing
//! switches + arbitration cells + wire repeaters, from the configuration's
//! component counts — this is precisely the portion the paper's
//! reconfigurable switch design can power-gate.

use crate::latency::MotTimingParams;
use crate::reconfig::MotConfiguration;
use crate::traits::ReqKind;
use crate::MotError;
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::rc::{optimal_segment_length, RepeatedWire};
use mot3d_phys::units::{Joules, Watts};
use mot3d_phys::Technology;

/// Control bits of a request (address + command + tag).
pub const REQUEST_CTRL_BITS: usize = 48;
/// Data bits of one 32 B cache line.
pub const LINE_DATA_BITS: usize = 256;
/// Control bits of a response header / write ack.
pub const RESPONSE_CTRL_BITS: usize = 16;
/// Toggle probability per bit per transfer.
const ACTIVITY: f64 = 0.5;
/// Average path length as a fraction of the longest (uniform traffic over
/// a centered region; documented approximation).
const AVG_PATH_FRACTION: f64 = 0.6;

/// Per-transaction energies and standing leakage of one configuration.
///
/// # Examples
///
/// ```
/// use mot3d_mot::energy::MotEnergyModel;
/// use mot3d_mot::power_state::PowerState;
/// use mot3d_mot::reconfig::MotConfiguration;
/// use mot3d_mot::topology::MotTopology;
/// use mot3d_phys::{geometry::Floorplan, Technology};
///
/// let cfg = MotConfiguration::new(MotTopology::date16(), PowerState::full())?;
/// let model = MotEnergyModel::derive(
///     &Technology::lp45(), &Floorplan::date16(), &cfg, &Default::default())?;
/// assert!(model.leakage().mw() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotEnergyModel {
    read_request: Joules,
    write_request: Joules,
    read_response: Joules,
    write_response: Joules,
    leakage: Watts,
}

impl MotEnergyModel {
    /// Evaluates the model for one configuration.
    ///
    /// # Errors
    ///
    /// [`MotError`] if the floorplan rejects the active counts.
    pub fn derive(
        tech: &Technology,
        floorplan: &Floorplan,
        cfg: &MotConfiguration,
        params: &MotTimingParams,
    ) -> Result<Self, MotError> {
        let state = cfg.state();
        let path = floorplan.longest_path(state.active_cores(), state.active_banks())?;
        let avg_wire = RepeatedWire::new(tech, path.horizontal * AVG_PATH_FRACTION);

        let levels_request =
            cfg.topology().routing_levels() + state.active_cores().trailing_zeros();
        let levels_response = cfg.topology().routing_levels();
        let switch_bit = tech
            .switch
            .switch_traversal_energy_per_bit
            .switching_energy(tech.vdd);
        let tsv_bit = floorplan.tsv.hop_energy(tech, path.vertical_hops);
        let _ = params; // driver strength does not change CV² energy

        let per_bit_req =
            avg_wire.energy_per_transition() + switch_bit * levels_request as f64 + tsv_bit;
        let per_bit_resp =
            avg_wire.energy_per_transition() + switch_bit * levels_response as f64 + tsv_bit;

        let bits = |n: usize| n as f64 * ACTIVITY;
        let read_request = per_bit_req * bits(REQUEST_CTRL_BITS);
        let write_request = per_bit_req * bits(REQUEST_CTRL_BITS + LINE_DATA_BITS);
        let read_response = per_bit_resp * bits(RESPONSE_CTRL_BITS + LINE_DATA_BITS);
        let write_response = per_bit_resp * bits(RESPONSE_CTRL_BITS);

        // Leakage of the powered portion.
        let counts = cfg.counts();
        let wire_total =
            floorplan.active_wire_estimate(state.active_cores(), state.active_banks())?;
        let repeaters = (wire_total.value() / optimal_segment_length(tech).value()).ceil();
        let leakage = tech.switch.routing_switch_leakage * counts.routing_switches as f64
            + tech.switch.arbitration_switch_leakage * counts.arbitration_cells as f64
            + tech.repeater.leakage * repeaters;

        Ok(MotEnergyModel {
            read_request,
            write_request,
            read_response,
            write_response,
            leakage,
        })
    }

    /// Energy of one request traversal.
    pub fn request_energy(&self, kind: ReqKind) -> Joules {
        match kind {
            ReqKind::ReadLine => self.read_request,
            ReqKind::WriteLine => self.write_request,
        }
    }

    /// Energy of one response traversal.
    pub fn response_energy(&self, kind: ReqKind) -> Joules {
        match kind {
            ReqKind::ReadLine => self.read_response,
            ReqKind::WriteLine => self.write_response,
        }
    }

    /// Standing leakage of the powered interconnect portion.
    pub fn leakage(&self) -> Watts {
        self.leakage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_state::PowerState;
    use crate::topology::MotTopology;

    fn model(state: PowerState) -> MotEnergyModel {
        let cfg = MotConfiguration::new(MotTopology::date16(), state).unwrap();
        MotEnergyModel::derive(
            &Technology::lp45(),
            &Floorplan::date16(),
            &cfg,
            &MotTimingParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn data_carrying_legs_cost_more() {
        let m = model(PowerState::full());
        assert!(m.request_energy(ReqKind::WriteLine) > m.request_energy(ReqKind::ReadLine));
        assert!(m.response_energy(ReqKind::ReadLine) > m.response_energy(ReqKind::WriteLine));
    }

    #[test]
    fn gating_cuts_leakage_substantially() {
        let full = model(PowerState::full());
        let gated = model(PowerState::pc4_mb8());
        let ratio = gated.leakage() / full.leakage();
        assert!(
            ratio < 0.45,
            "PC4-MB8 interconnect leakage should drop well below half: {ratio}"
        );
    }

    #[test]
    fn gating_cuts_per_transaction_energy() {
        // Shorter wires in the folded states make each transaction cheaper.
        let full = model(PowerState::full());
        let gated = model(PowerState::pc4_mb8());
        assert!(gated.request_energy(ReqKind::ReadLine) < full.request_energy(ReqKind::ReadLine));
        assert!(gated.response_energy(ReqKind::ReadLine) < full.response_energy(ReqKind::ReadLine));
    }

    #[test]
    fn transaction_energies_in_plausible_pj_band() {
        let m = model(PowerState::full());
        let read_rt = m.request_energy(ReqKind::ReadLine) + m.response_energy(ReqKind::ReadLine);
        // A full line round trip over a few mm: tens to a few hundred pJ.
        assert!(
            read_rt.pj() > 5.0 && read_rt.pj() < 1000.0,
            "read round trip {} pJ",
            read_rt.pj()
        );
    }

    #[test]
    fn full_leakage_in_plausible_mw_band() {
        let m = model(PowerState::full());
        assert!(
            m.leakage().mw() > 0.1 && m.leakage().mw() < 20.0,
            "leakage {} mW",
            m.leakage().mw()
        );
    }
}
