//! Cycle-accurate functional model of the circuit-switched 3-D MoT.
//!
//! The combinational MoT is non-blocking between disjoint (core, bank)
//! pairs (§II): requests to different banks never interfere, while
//! simultaneous requests to the *same* bank serialise through that bank's
//! round-robin arbitration tree at one grant per cycle. This model
//! implements exactly that contract behind the [`Interconnect`] trait:
//!
//! * a request injected at cycle `t` reaches its (remapped) bank's
//!   arbitration point at `t + request_cycles`;
//! * each cycle, every bank grants one waiting request, chosen by its
//!   [`crate::switch::ArbitrationTree`] over the requesting cores;
//! * a response injected at `t` is delivered at `t + response_cycles`.
//!
//! Latencies come from the Elmore-based [`MotLatency`] derivation, so the
//! uncontended round trip equals Table I's values; queueing at hot banks
//! emerges from the arbitration.

use std::collections::VecDeque;

use mot3d_phys::slab::FifoSlab;

use crate::energy::MotEnergyModel;
use crate::latency::{MotLatency, MotTimingParams};
use crate::power_state::PowerState;
use crate::reconfig::MotConfiguration;
use crate::switch::ArbitrationTree;
use crate::topology::MotTopology;
use crate::traits::{
    BankArrival, CoreDelivery, Interconnect, InterconnectStats, MemRequest, MemResponse,
};
use crate::MotError;
use mot3d_phys::geometry::Floorplan;
use mot3d_phys::units::{Joules, Watts};
use mot3d_phys::Technology;

/// A request in flight toward a bank.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    request: MemRequest,
    injected_at: u64,
    arrives_at: u64,
    bank: usize,
}

/// The reconfigurable 3-D MoT interconnect.
///
/// # Examples
///
/// ```
/// use mot3d_mot::network::MotNetwork;
/// use mot3d_mot::power_state::PowerState;
/// use mot3d_mot::traits::{Interconnect, MemRequest, ReqKind};
///
/// let mut net = MotNetwork::date16(PowerState::full())?;
/// net.inject_request(0, MemRequest { core: 0, home_bank: 5, kind: ReqKind::ReadLine, tag: 1 });
/// let mut arrival = None;
/// for now in 0..20 {
///     net.tick(now);
///     if let Some(a) = net.pop_arrival() { arrival = Some(a); break; }
/// }
/// let a = arrival.expect("request must arrive");
/// assert_eq!(a.bank, 5); // no gating: home bank is the physical bank
/// # Ok::<(), mot3d_mot::MotError>(())
/// ```
#[derive(Debug)]
pub struct MotNetwork {
    cfg: MotConfiguration,
    latency: MotLatency,
    energy_model: MotEnergyModel,
    /// Requests in transit, ordered by injection (FIFO per same latency;
    /// a ring buffer, so steady-state pushes never allocate).
    transit_req: VecDeque<InFlight>,
    /// `arrives_at` of `transit_req`'s front (`u64::MAX` when empty),
    /// mirrored inline so the per-step `tick`/`next_activity` polls read
    /// one field instead of dereferencing the ring buffer. The fixed
    /// per-network request latency keeps the front the minimum.
    next_req_land: u64,
    /// Delivery time of `transit_resp`'s front (`u64::MAX` when empty);
    /// same inline mirror, for the response ring.
    next_resp_land: u64,
    /// Per-(bank, core) head-of-line queues awaiting the bank grant: one
    /// FIFO list per `bank * cores + core` over a single contiguous node
    /// slab, instead of banks × cores separate `VecDeque` allocations.
    waiting: FifoSlab<InFlight>,
    /// Per-bank request bitmask (bit `core` set while that (bank, core)
    /// queue is non-empty), maintained incrementally so the grant loop
    /// skips idle banks and feeds [`ArbitrationTree::grant_mask`] without
    /// rebuilding a bitmap.
    wait_mask: Vec<u32>,
    /// Bank-level occupancy bitmap (bit `bank` set while `wait_mask[bank]`
    /// is non-zero): the grant loop walks only the set bits instead of
    /// scanning every bank's mask each tick.
    bank_busy: u64,
    /// Core count (list-index stride into `waiting`).
    cores: usize,
    /// Per-bank arbitration trees over cores.
    arbiters: Vec<ArbitrationTree>,
    arrivals: VecDeque<BankArrival>,
    transit_resp: VecDeque<(u64, MemResponse)>,
    deliveries: VecDeque<CoreDelivery>,
    dynamic_energy: Joules,
    stats: InterconnectStats,
    last_tick: Option<u64>,
}

impl MotNetwork {
    /// Builds the MoT for an arbitrary topology/floorplan/technology.
    ///
    /// # Errors
    ///
    /// [`MotError`] if the power state does not fit or a model rejects its
    /// configuration.
    pub fn new(
        tech: &Technology,
        floorplan: &Floorplan,
        topology: MotTopology,
        params: &MotTimingParams,
        state: PowerState,
    ) -> Result<Self, MotError> {
        let cfg = MotConfiguration::new(topology, state)?;
        let latency = MotLatency::derive(tech, floorplan, topology, params, state)?;
        let energy_model = MotEnergyModel::derive(tech, floorplan, &cfg, params)?;
        let banks = topology.banks();
        let cores = topology.cores();
        assert!(cores <= 32, "wait masks hold at most 32 cores per bank");
        assert!(
            banks <= 64,
            "the bank occupancy bitmap holds at most 64 banks"
        );
        Ok(MotNetwork {
            cfg,
            latency,
            energy_model,
            transit_req: VecDeque::new(),
            next_req_land: u64::MAX,
            next_resp_land: u64::MAX,
            waiting: FifoSlab::new(banks * cores),
            wait_mask: vec![0; banks],
            bank_busy: 0,
            cores,
            arbiters: (0..banks).map(|_| ArbitrationTree::new(cores)).collect(),
            arrivals: VecDeque::new(),
            transit_resp: VecDeque::new(),
            deliveries: VecDeque::new(),
            dynamic_energy: Joules::ZERO,
            stats: InterconnectStats::default(),
            last_tick: None,
        })
    }

    /// The paper's 16×32 cluster on the calibrated node.
    ///
    /// # Errors
    ///
    /// [`MotError`] if the power state does not fit.
    pub fn date16(state: PowerState) -> Result<Self, MotError> {
        MotNetwork::new(
            &Technology::lp45(),
            &Floorplan::date16(),
            MotTopology::date16(),
            &MotTimingParams::default(),
            state,
        )
    }

    /// The resolved configuration (power state, remap, switch modes).
    pub fn configuration(&self) -> &MotConfiguration {
        &self.cfg
    }

    /// The derived uncontended latency.
    pub fn latency(&self) -> MotLatency {
        self.latency
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &MotEnergyModel {
        &self.energy_model
    }

    // --- Observability probes (read-only, allocation-free) ---

    /// Bit `b` set while at least one request is queued at bank `b`'s
    /// arbitration tree awaiting its grant.
    pub fn waiting_banks(&self) -> u64 {
        self.bank_busy
    }

    /// Bit `b` set while a request is still in transit down the tree
    /// toward bank `b` (injected, not yet landed at the arbiter).
    pub fn transit_banks(&self) -> u64 {
        let mut mask = 0u64;
        for f in &self.transit_req {
            mask |= 1u64 << f.bank;
        }
        mask
    }

    /// Requests currently in transit from cores toward bank arbiters.
    pub fn transit_request_depth(&self) -> usize {
        self.transit_req.len()
    }

    /// Responses currently in transit from banks back to cores.
    pub fn transit_response_depth(&self) -> usize {
        self.transit_resp.len()
    }
}

impl Interconnect for MotNetwork {
    fn name(&self) -> &str {
        "3-D MoT"
    }

    // mot3d-lint: no-alloc
    fn tick(&mut self, now: u64) {
        if let Some(last) = self.last_tick {
            debug_assert!(now >= last, "tick must not go backwards");
        }
        self.last_tick = Some(now);

        // 1. Land transits whose time has come at their bank's wait queue.
        let cores = self.cores;
        if self.next_req_land <= now {
            while let Some(front) = self.transit_req.front() {
                if front.arrives_at > now {
                    break;
                }
                // mot3d-lint: allow(P1) -- front() returned Some on this very queue
                let f = self.transit_req.pop_front().expect("checked non-empty");
                self.waiting.push_back(f.bank * cores + f.request.core, f);
                self.wait_mask[f.bank] |= 1 << f.request.core;
                self.bank_busy |= 1 << f.bank;
            }
            self.next_req_land = self.transit_req.front().map_or(u64::MAX, |f| f.arrives_at);
        }

        // 2. One grant per bank per cycle, round-robin over cores. Only
        // banks with waiters are visited — the occupancy bitmap walk hits
        // exactly the banks the full ascending scan would, in the same
        // order — and each grant works on the bank's incrementally-
        // maintained request bitmask: this is the simulator's hottest loop.
        let mut busy = self.bank_busy;
        while busy != 0 {
            let bank = busy.trailing_zeros() as usize;
            busy &= busy - 1;
            if let Some(core) = self.arbiters[bank].grant_mask(self.wait_mask[bank]) {
                let f = self
                    .waiting
                    .pop_front(bank * cores + core)
                    // mot3d-lint: allow(P1) -- wait_mask bit set ⇒ queue non-empty (tick keeps them in lockstep)
                    .expect("granted core has a waiting request");
                if self.waiting.is_empty(bank * cores + core) {
                    self.wait_mask[bank] &= !(1 << core);
                    if self.wait_mask[bank] == 0 {
                        self.bank_busy &= !(1u64 << bank);
                    }
                }
                let transit = now.saturating_sub(f.injected_at);
                self.stats.total_request_latency += transit;
                self.stats.max_request_latency = self.stats.max_request_latency.max(transit);
                self.arrivals.push_back(BankArrival {
                    request: f.request,
                    bank,
                    at_cycle: now,
                });
            }
        }

        // 3. Deliver responses whose transit elapsed.
        if self.next_resp_land <= now {
            while let Some((at, _)) = self.transit_resp.front() {
                if *at > now {
                    break;
                }
                // mot3d-lint: allow(P1) -- front() returned Some on this very queue
                let (at, response) = self.transit_resp.pop_front().expect("checked non-empty");
                self.stats.responses += 1;
                self.deliveries.push_back(CoreDelivery {
                    response,
                    at_cycle: at,
                });
            }
            self.next_resp_land = self.transit_resp.front().map_or(u64::MAX, |(at, _)| *at);
        }
    }

    fn inject_request(&mut self, now: u64, request: MemRequest) {
        assert!(
            request.core < self.cfg.topology().cores(),
            "core {} out of range",
            request.core
        );
        assert!(
            self.cfg.is_core_active(request.core),
            "core {} is power-gated and cannot inject",
            request.core
        );
        let bank = self.cfg.remap_bank(request.home_bank);
        self.stats.requests += 1;
        self.dynamic_energy += self.energy_model.request_energy(request.kind);
        let arrives_at = now + self.latency.request_cycles;
        self.next_req_land = self.next_req_land.min(arrives_at);
        self.transit_req.push_back(InFlight {
            request,
            injected_at: now,
            arrives_at,
            bank,
        });
    }

    fn pop_arrival(&mut self) -> Option<BankArrival> {
        self.arrivals.pop_front()
    }

    fn inject_response(&mut self, now: u64, response: MemResponse) {
        assert!(
            self.cfg.is_bank_active(response.bank),
            "bank {} is power-gated and cannot respond",
            response.bank
        );
        self.dynamic_energy += self.energy_model.response_energy(response.kind);
        let at = now + self.latency.response_cycles;
        self.next_resp_land = self.next_resp_land.min(at);
        self.transit_resp.push_back((at, response));
    }

    fn pop_delivery(&mut self) -> Option<CoreDelivery> {
        self.deliveries.pop_front()
    }

    fn next_activity(&self, now: u64) -> Option<u64> {
        // A non-empty wait queue means an arbitration grant fires on the
        // very next tick; otherwise the earliest landing transit (requests
        // are FIFO with a fixed latency, so the front is the minimum) or
        // response delivery decides. Pending arrivals/deliveries count as
        // immediate activity — the caller has not consumed them yet.
        if !self.arrivals.is_empty() || !self.deliveries.is_empty() || self.bank_busy != 0 {
            return Some(now);
        }
        let t = self.next_req_land.min(self.next_resp_land);
        (t != u64::MAX).then(|| t.max(now))
    }

    fn reset(&mut self) {
        self.transit_req.clear();
        self.next_req_land = u64::MAX;
        self.next_resp_land = u64::MAX;
        self.waiting.clear();
        self.wait_mask.fill(0);
        self.bank_busy = 0;
        for arb in &mut self.arbiters {
            arb.reset();
        }
        self.arrivals.clear();
        self.transit_resp.clear();
        self.deliveries.clear();
        self.dynamic_energy = Joules::ZERO;
        self.stats = InterconnectStats::default();
        self.last_tick = None;
    }

    fn oneway_latency_hint(&self) -> u64 {
        self.latency.request_cycles
    }

    fn dynamic_energy(&self) -> Joules {
        self.dynamic_energy
    }

    fn leakage_power(&self) -> Watts {
        self.energy_model.leakage()
    }

    fn stats(&self) -> InterconnectStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ReqKind;

    fn req(core: usize, bank: usize, tag: u64) -> MemRequest {
        MemRequest {
            core,
            home_bank: bank,
            kind: ReqKind::ReadLine,
            tag,
        }
    }

    fn run_until_arrivals(net: &mut MotNetwork, cycles: u64) -> Vec<BankArrival> {
        let mut out = Vec::new();
        for now in 0..cycles {
            net.tick(now);
            while let Some(a) = net.pop_arrival() {
                out.push(a);
            }
        }
        out
    }

    #[test]
    fn uncontended_transit_matches_derived_latency() {
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        let lat = net.latency().request_cycles;
        net.inject_request(0, req(0, 7, 1));
        let arrivals = run_until_arrivals(&mut net, lat + 3);
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].at_cycle, lat);
        assert_eq!(arrivals[0].bank, 7);
    }

    #[test]
    fn distinct_banks_are_non_blocking() {
        // All 16 cores hit 16 different banks in the same cycle: all
        // arrive together (the MoT's headline property).
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        for core in 0..16 {
            net.inject_request(0, req(core, core, core as u64));
        }
        let lat = net.latency().request_cycles;
        let arrivals = run_until_arrivals(&mut net, lat + 2);
        assert_eq!(arrivals.len(), 16);
        assert!(arrivals.iter().all(|a| a.at_cycle == lat));
    }

    #[test]
    fn same_bank_serialises_one_per_cycle() {
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        for core in 0..4 {
            net.inject_request(0, req(core, 9, core as u64));
        }
        let lat = net.latency().request_cycles;
        let arrivals = run_until_arrivals(&mut net, lat + 10);
        assert_eq!(arrivals.len(), 4);
        let times: Vec<u64> = arrivals.iter().map(|a| a.at_cycle).collect();
        assert_eq!(times, vec![lat, lat + 1, lat + 2, lat + 3]);
        // All four granted cores distinct.
        let mut cores: Vec<usize> = arrivals.iter().map(|a| a.request.core).collect();
        cores.sort();
        cores.dedup();
        assert_eq!(cores.len(), 4);
    }

    #[test]
    fn contention_round_robin_is_fair_over_time() {
        // Two cores hammer the same bank; grants must alternate.
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        let lat = net.latency().request_cycles;
        for round in 0..6u64 {
            net.inject_request(round, req(0, 3, round * 2));
            net.inject_request(round, req(1, 3, round * 2 + 1));
        }
        let arrivals = run_until_arrivals(&mut net, lat + 40);
        assert_eq!(arrivals.len(), 12);
        let cores: Vec<usize> = arrivals.iter().map(|a| a.request.core).collect();
        let zeros = cores.iter().filter(|&&c| c == 0).count();
        assert_eq!(zeros, 6, "round robin must split grants evenly: {cores:?}");
    }

    #[test]
    fn gated_state_remaps_to_active_banks() {
        let mut net = MotNetwork::date16(PowerState::pc16_mb8()).unwrap();
        net.inject_request(0, req(0, 0, 1)); // home bank 0 is gated
        let lat = net.latency().request_cycles;
        let arrivals = run_until_arrivals(&mut net, lat + 2);
        assert_eq!(arrivals.len(), 1);
        assert!(net.configuration().is_bank_active(arrivals[0].bank));
        assert_eq!(arrivals[0].bank, net.configuration().remap_bank(0));
    }

    #[test]
    fn responses_round_trip() {
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        net.inject_request(0, req(2, 11, 42));
        let lat_req = net.latency().request_cycles;
        let lat_resp = net.latency().response_cycles;
        let mut delivered = None;
        for now in 0..(lat_req + lat_resp + 10) {
            net.tick(now);
            while let Some(a) = net.pop_arrival() {
                net.inject_response(
                    now,
                    MemResponse {
                        core: a.request.core,
                        bank: a.bank,
                        kind: a.request.kind,
                        tag: a.request.tag,
                    },
                );
            }
            while let Some(d) = net.pop_delivery() {
                delivered = Some(d);
            }
        }
        let d = delivered.expect("response must come back");
        assert_eq!(d.response.tag, 42);
        assert_eq!(d.response.core, 2);
        assert_eq!(d.at_cycle, lat_req + lat_resp);
        assert_eq!(net.stats().responses, 1);
    }

    #[test]
    fn energy_accrues_per_transaction() {
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        assert_eq!(net.dynamic_energy(), Joules::ZERO);
        net.inject_request(0, req(0, 1, 1));
        let after_one = net.dynamic_energy();
        assert!(after_one.pj() > 0.0);
        net.inject_request(0, req(1, 2, 2));
        let after_two = net.dynamic_energy();
        assert!((after_two / after_one - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power-gated")]
    fn gated_core_cannot_inject() {
        let mut net = MotNetwork::date16(PowerState::pc4_mb32()).unwrap();
        // PC4 keeps cores {6,7,8,9}; core 0 is gated.
        net.inject_request(0, req(0, 1, 1));
    }

    #[test]
    fn stats_track_contention() {
        let mut net = MotNetwork::date16(PowerState::full()).unwrap();
        for core in 0..8 {
            net.inject_request(0, req(core, 5, core as u64));
        }
        let lat = net.latency().request_cycles;
        let _ = run_until_arrivals(&mut net, lat + 20);
        let s = net.stats();
        assert_eq!(s.requests, 8);
        assert_eq!(s.max_request_latency, lat + 7);
        assert!(s.mean_request_latency() > lat as f64);
    }
}
