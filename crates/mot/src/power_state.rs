//! Cluster power states (§III, Table I).
//!
//! A power state names how many cores and L2 banks stay powered; everything
//! else — the complementary cores, banks, and the interconnect circuits
//! serving only them — is power-gated. The paper evaluates four states on
//! its 16-core / 32-bank cluster:
//!
//! | name            | cores | banks | L2 latency (Table I) |
//! |-----------------|-------|-------|----------------------|
//! | Full connection | 16    | 32    | 12 cycles            |
//! | PC16-MB8        | 16    | 8     | 9 cycles             |
//! | PC4-MB32        | 4     | 32    | 9 cycles             |
//! | PC4-MB8         | 4     | 8     | 7 cycles             |
//!
//! `PCx` = x powered cores, `MBy` = y powered memory banks. The type
//! supports any power-of-two combination for sweeps beyond the paper's
//! four points.

use std::error::Error;
use std::fmt;

/// Number of cores and L2 banks kept powered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PowerState {
    active_cores: usize,
    active_banks: usize,
}

/// Errors from invalid power-state requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PowerStateError {
    /// Active count must be a non-zero power of two (the MoT folds whole
    /// subtrees, so only power-of-two populations are reachable).
    NotPowerOfTwo(&'static str, usize),
    /// Active count exceeds the physical total.
    ExceedsTotal(&'static str, usize, usize),
}

impl fmt::Display for PowerStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerStateError::NotPowerOfTwo(what, n) => {
                write!(f, "active {what} must be a non-zero power of two, got {n}")
            }
            PowerStateError::ExceedsTotal(what, n, total) => {
                write!(f, "{n} active {what} exceed the {total} present")
            }
        }
    }
}

impl Error for PowerStateError {}

impl PowerState {
    /// Creates a power state, validating both counts are non-zero powers
    /// of two.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] otherwise.
    pub fn new(active_cores: usize, active_banks: usize) -> Result<Self, PowerStateError> {
        if active_cores == 0 || !active_cores.is_power_of_two() {
            return Err(PowerStateError::NotPowerOfTwo("cores", active_cores));
        }
        if active_banks == 0 || !active_banks.is_power_of_two() {
            return Err(PowerStateError::NotPowerOfTwo("banks", active_banks));
        }
        Ok(PowerState {
            active_cores,
            active_banks,
        })
    }

    /// Full connection: all 16 cores and all 32 banks powered.
    pub fn full() -> Self {
        PowerState {
            active_cores: 16,
            active_banks: 32,
        }
    }

    /// PC16-MB8: all cores, 8 banks.
    pub fn pc16_mb8() -> Self {
        PowerState {
            active_cores: 16,
            active_banks: 8,
        }
    }

    /// PC4-MB32: 4 cores, all banks.
    pub fn pc4_mb32() -> Self {
        PowerState {
            active_cores: 4,
            active_banks: 32,
        }
    }

    /// PC4-MB8: 4 cores, 8 banks.
    pub fn pc4_mb8() -> Self {
        PowerState {
            active_cores: 4,
            active_banks: 8,
        }
    }

    /// The paper's four evaluated states, in Fig. 7 order.
    pub fn date16_states() -> [PowerState; 4] {
        [
            PowerState::full(),
            PowerState::pc16_mb8(),
            PowerState::pc4_mb32(),
            PowerState::pc4_mb8(),
        ]
    }

    /// Powered core count.
    #[inline]
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// Powered bank count.
    #[inline]
    pub fn active_banks(&self) -> usize {
        self.active_banks
    }

    /// Checks the state fits a cluster of the given totals.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError::ExceedsTotal`] when it does not.
    pub fn check_fits(
        &self,
        total_cores: usize,
        total_banks: usize,
    ) -> Result<(), PowerStateError> {
        if self.active_cores > total_cores {
            return Err(PowerStateError::ExceedsTotal(
                "cores",
                self.active_cores,
                total_cores,
            ));
        }
        if self.active_banks > total_banks {
            return Err(PowerStateError::ExceedsTotal(
                "banks",
                self.active_banks,
                total_banks,
            ));
        }
        Ok(())
    }

    /// Whether this state gates anything relative to the given totals.
    pub fn gates_anything(&self, total_cores: usize, total_banks: usize) -> bool {
        self.active_cores < total_cores || self.active_banks < total_banks
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == PowerState::full() {
            write!(f, "Full connection")
        } else {
            write!(f, "PC{}-MB{}", self.active_cores, self.active_banks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        assert_eq!(PowerState::full().active_cores(), 16);
        assert_eq!(PowerState::full().active_banks(), 32);
        assert_eq!(PowerState::pc16_mb8().active_banks(), 8);
        assert_eq!(PowerState::pc4_mb32().active_cores(), 4);
        assert_eq!(PowerState::pc4_mb8().active_cores(), 4);
        assert_eq!(PowerState::pc4_mb8().active_banks(), 8);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(PowerState::full().to_string(), "Full connection");
        assert_eq!(PowerState::pc16_mb8().to_string(), "PC16-MB8");
        assert_eq!(PowerState::pc4_mb32().to_string(), "PC4-MB32");
        assert_eq!(PowerState::pc4_mb8().to_string(), "PC4-MB8");
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            PowerState::new(3, 32),
            Err(PowerStateError::NotPowerOfTwo("cores", 3))
        ));
        assert!(matches!(
            PowerState::new(4, 12),
            Err(PowerStateError::NotPowerOfTwo("banks", 12))
        ));
        assert!(matches!(
            PowerState::new(0, 8),
            Err(PowerStateError::NotPowerOfTwo("cores", 0))
        ));
    }

    #[test]
    fn check_fits_enforces_totals() {
        let s = PowerState::new(32, 64).unwrap();
        assert!(s.check_fits(32, 64).is_ok());
        assert!(matches!(
            s.check_fits(16, 64),
            Err(PowerStateError::ExceedsTotal("cores", 32, 16))
        ));
        assert!(matches!(
            s.check_fits(32, 32),
            Err(PowerStateError::ExceedsTotal("banks", 64, 32))
        ));
    }

    #[test]
    fn gates_anything_detects_full() {
        assert!(!PowerState::full().gates_anything(16, 32));
        assert!(PowerState::pc16_mb8().gates_anything(16, 32));
        assert!(PowerState::full().gates_anything(32, 32));
    }

    #[test]
    fn date16_states_in_figure_order() {
        let names: Vec<String> = PowerState::date16_states()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            names,
            vec!["Full connection", "PC16-MB8", "PC4-MB32", "PC4-MB8"]
        );
    }
}
