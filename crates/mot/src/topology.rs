//! Mesh-of-Tree topology (Fig. 2(a)).
//!
//! A MoT interconnect for `P` cores and `B` banks (both powers of two) is
//! two families of binary trees:
//!
//! * one **routing tree** per core, depth `log2(B)`: level 1 consumes the
//!   bank-index MSB, level `log2(B)` the LSB. Each tree has `B − 1`
//!   routing switches.
//! * one **arbitration tree** per bank, depth `log2(P)`, merging the `P`
//!   request lines into the bank with `P − 1` round-robin cells.
//!
//! A core→bank transaction traverses `log2(B)` routing switches, then
//! `log2(P)` arbitration levels, then the bank's TSV bus (Fig. 1).
//!
//! Switches are addressed as `(level, index)`: level `ℓ ∈ 1..=log2(B)` has
//! `2^(ℓ−1)` switches, and the switch met en route to bank `b` at level
//! `ℓ` is the one indexed by `b`'s top `ℓ − 1` bits.

use std::error::Error;
use std::fmt;

use crate::switch::Port;

/// Errors from invalid topology parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Core/bank counts must be non-zero powers of two.
    NotPowerOfTwo(&'static str, usize),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotPowerOfTwo(what, n) => {
                write!(f, "{what} must be a non-zero power of two, got {n}")
            }
        }
    }
}

impl Error for TopologyError {}

/// Identifies one routing switch inside one core's routing tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchAddr {
    /// Tree level, `1 ..= log2(banks)`.
    pub level: u32,
    /// Switch index within the level, `0 .. 2^(level-1)`.
    pub index: usize,
}

/// The MoT structure for a given cluster size.
///
/// # Examples
///
/// ```
/// use mot3d_mot::topology::MotTopology;
///
/// // The paper's Fig. 2(a) example: 4 cores × 8 banks.
/// let mot = MotTopology::new(4, 8)?;
/// assert_eq!(mot.routing_levels(), 3);
/// assert_eq!(mot.routing_switches_per_tree(), 7);
/// assert_eq!(mot.arbitration_cells_per_tree(), 3);
/// # Ok::<(), mot3d_mot::topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotTopology {
    cores: usize,
    banks: usize,
}

impl MotTopology {
    /// Builds the topology, validating both counts.
    ///
    /// # Errors
    ///
    /// [`TopologyError::NotPowerOfTwo`] if a count is 0 or not a power of
    /// two.
    pub fn new(cores: usize, banks: usize) -> Result<Self, TopologyError> {
        if cores == 0 || !cores.is_power_of_two() {
            return Err(TopologyError::NotPowerOfTwo("cores", cores));
        }
        if banks == 0 || !banks.is_power_of_two() {
            return Err(TopologyError::NotPowerOfTwo("banks", banks));
        }
        Ok(MotTopology { cores, banks })
    }

    /// The paper's cluster: 16 cores × 32 banks.
    pub fn date16() -> Self {
        MotTopology {
            cores: 16,
            banks: 32,
        }
    }

    /// Number of cores (routing trees).
    #[inline]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of banks (arbitration trees).
    #[inline]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Routing-tree depth `log2(banks)`.
    #[inline]
    pub fn routing_levels(&self) -> u32 {
        self.banks.trailing_zeros()
    }

    /// Arbitration-tree depth `log2(cores)`.
    #[inline]
    pub fn arbitration_levels(&self) -> u32 {
        self.cores.trailing_zeros()
    }

    /// Routing switches in one core's tree (`banks − 1`).
    #[inline]
    pub fn routing_switches_per_tree(&self) -> usize {
        self.banks - 1
    }

    /// Arbitration cells in one bank's tree (`cores − 1`).
    #[inline]
    pub fn arbitration_cells_per_tree(&self) -> usize {
        self.cores - 1
    }

    /// Total routing switches across all trees.
    pub fn total_routing_switches(&self) -> usize {
        self.cores * self.routing_switches_per_tree()
    }

    /// Total arbitration cells across all trees.
    pub fn total_arbitration_cells(&self) -> usize {
        self.banks * self.arbitration_cells_per_tree()
    }

    /// The bank-index bit consumed by routing level `ℓ` (level 1 → MSB).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of `1..=routing_levels()`.
    pub fn bit_of_level(&self, level: u32) -> u32 {
        assert!(
            (1..=self.routing_levels()).contains(&level),
            "level {level} out of 1..={}",
            self.routing_levels()
        );
        self.routing_levels() - level
    }

    /// The routing switch met at `level` on the way to `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `bank` is out of range.
    pub fn switch_on_path(&self, bank: usize, level: u32) -> SwitchAddr {
        assert!(bank < self.banks, "bank {bank} out of range");
        let shift = self.bit_of_level(level) + 1;
        SwitchAddr {
            level,
            index: bank >> shift,
        }
    }

    /// The full conventional route to `bank`: the port taken at each level
    /// 1..=`routing_levels()`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn route_to(&self, bank: usize) -> Vec<Port> {
        assert!(bank < self.banks, "bank {bank} out of range");
        (1..=self.routing_levels())
            .map(|l| Port::from_bit((bank >> self.bit_of_level(l)) & 1 == 1))
            .collect()
    }

    /// Number of switches in one tree level (`2^(level−1)`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn switches_in_level(&self, level: u32) -> usize {
        assert!(
            (1..=self.routing_levels()).contains(&level),
            "level {level} out of 1..={}",
            self.routing_levels()
        );
        1 << (level - 1)
    }

    /// The banks reachable through routing switch `(level, index)` — the
    /// leaves of its subtree.
    pub fn banks_under(&self, sw: SwitchAddr) -> std::ops::Range<usize> {
        let span = self.banks >> (sw.level - 1);
        (sw.index * span)..((sw.index + 1) * span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date16_dimensions() {
        let t = MotTopology::date16();
        assert_eq!(t.routing_levels(), 5);
        assert_eq!(t.arbitration_levels(), 4);
        assert_eq!(t.total_routing_switches(), 16 * 31);
        assert_eq!(t.total_arbitration_cells(), 32 * 15);
    }

    #[test]
    fn fig2_example_4x8() {
        let t = MotTopology::new(4, 8).unwrap();
        assert_eq!(t.routing_levels(), 3);
        assert_eq!(t.arbitration_levels(), 2);
        assert_eq!(t.routing_switches_per_tree(), 7);
        assert_eq!(t.arbitration_cells_per_tree(), 3);
    }

    #[test]
    fn level_bits_are_msb_first() {
        let t = MotTopology::new(4, 8).unwrap(); // 3 levels, bits 2,1,0
        assert_eq!(t.bit_of_level(1), 2);
        assert_eq!(t.bit_of_level(2), 1);
        assert_eq!(t.bit_of_level(3), 0);
    }

    #[test]
    fn route_to_bank_reads_bits_msb_first() {
        let t = MotTopology::new(4, 8).unwrap();
        use crate::switch::Port::{Port0, Port1};
        assert_eq!(t.route_to(0b000), vec![Port0, Port0, Port0]);
        assert_eq!(t.route_to(0b101), vec![Port1, Port0, Port1]);
        assert_eq!(t.route_to(0b111), vec![Port1, Port1, Port1]);
    }

    #[test]
    fn switch_on_path_indexes_by_prefix() {
        let t = MotTopology::new(4, 8).unwrap();
        // Level 1: single root switch for every bank.
        for b in 0..8 {
            assert_eq!(t.switch_on_path(b, 1), SwitchAddr { level: 1, index: 0 });
        }
        // Level 2: split by MSB.
        assert_eq!(t.switch_on_path(0b011, 2).index, 0);
        assert_eq!(t.switch_on_path(0b100, 2).index, 1);
        // Level 3: split by top two bits.
        assert_eq!(t.switch_on_path(0b101, 3).index, 0b10);
    }

    #[test]
    fn banks_under_covers_subtree() {
        let t = MotTopology::new(4, 8).unwrap();
        assert_eq!(t.banks_under(SwitchAddr { level: 1, index: 0 }), 0..8);
        assert_eq!(t.banks_under(SwitchAddr { level: 2, index: 1 }), 4..8);
        assert_eq!(t.banks_under(SwitchAddr { level: 3, index: 2 }), 4..6);
    }

    #[test]
    fn every_bank_has_unique_route() {
        let t = MotTopology::date16();
        let mut routes: Vec<Vec<crate::switch::Port>> = (0..32).map(|b| t.route_to(b)).collect();
        routes.sort_by_key(|r| r.iter().map(|p| p.bit() as u8).collect::<Vec<_>>());
        routes.dedup();
        assert_eq!(routes.len(), 32, "routes must be distinct per bank");
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(matches!(
            MotTopology::new(3, 8),
            Err(TopologyError::NotPowerOfTwo("cores", 3))
        ));
        assert!(matches!(
            MotTopology::new(4, 0),
            Err(TopologyError::NotPowerOfTwo("banks", 0))
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn route_to_bad_bank_panics() {
        MotTopology::date16().route_to(99);
    }
}
