//! The transaction-level interconnect abstraction shared by the 3-D MoT
//! and the packet-switched baselines.
//!
//! The cluster simulator drives every interconnect through the same
//! cycle-stepped contract: inject memory requests at cores, tick, collect
//! requests as they arrive at banks, inject responses at banks, collect
//! deliveries at cores. Contention (MoT per-bank arbitration, NoC router
//! queueing, bus TDMA) is each implementation's business; the simulator
//! only sees when things arrive.

use mot3d_phys::units::{Joules, Watts};

/// What a memory transaction does at the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Fetch a line (L1 refill).
    ReadLine,
    /// Write a line back (L1 eviction / flush).
    WriteLine,
}

/// A core→bank request travelling the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuing core.
    pub core: usize,
    /// *Home* bank index from the address interleaving (the interconnect
    /// may remap it under power gating).
    pub home_bank: usize,
    /// Transaction kind.
    pub kind: ReqKind,
    /// Caller tag to match completions.
    pub tag: u64,
}

/// A request that reached a physical bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankArrival {
    /// The original request.
    pub request: MemRequest,
    /// The physical bank it arrived at (equals `request.home_bank` unless
    /// a power-gating remap redirected it).
    pub bank: usize,
    /// Arrival cycle.
    pub at_cycle: u64,
}

/// A bank→core response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Destination core.
    pub core: usize,
    /// Responding physical bank.
    pub bank: usize,
    /// Kind of the original request.
    pub kind: ReqKind,
    /// The original request's tag.
    pub tag: u64,
}

/// A response delivered back at a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreDelivery {
    /// The response.
    pub response: MemResponse,
    /// Delivery cycle.
    pub at_cycle: u64,
}

/// Aggregate interconnect statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterconnectStats {
    /// Requests injected.
    pub requests: u64,
    /// Responses delivered.
    pub responses: u64,
    /// Sum of request transit latencies (cycles, injection → bank
    /// arrival, including contention).
    pub total_request_latency: u64,
    /// Worst single request transit.
    pub max_request_latency: u64,
}

impl InterconnectStats {
    /// Mean request transit latency in cycles.
    pub fn mean_request_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_request_latency as f64 / self.requests as f64
        }
    }
}

/// A cycle-stepped interconnect between cores and L2 banks.
///
/// Implementations: [`crate::network::MotNetwork`] (this paper) and the
/// three packet-switched baselines in `mot3d-noc`.
pub trait Interconnect {
    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &str;

    /// Advances internal state to cycle `now`. Must be called with
    /// monotonically non-decreasing `now`, once per simulated cycle.
    fn tick(&mut self, now: u64);

    /// Injects a request at its core. Queuing is unbounded; cores
    /// self-limit (one outstanding blocking miss each).
    fn inject_request(&mut self, now: u64, request: MemRequest);

    /// Pops one request that has arrived at a bank (after [`Self::tick`]).
    fn pop_arrival(&mut self) -> Option<BankArrival>;

    /// Injects a response at its bank.
    fn inject_response(&mut self, now: u64, response: MemResponse);

    /// Pops one response delivered back at a core.
    fn pop_delivery(&mut self) -> Option<CoreDelivery>;

    /// Wake hint for event-driven callers: the earliest cycle `>= now` at
    /// which ticking this interconnect could change observable state
    /// (a transit landing, an arbitration grant, a response delivery), or
    /// `None` when it is completely idle.
    ///
    /// `now` is the next cycle the caller would tick. The contract is that
    /// a caller who ticks at every returned cycle (and at every cycle it
    /// injects something) observes *exactly* the same arrivals and
    /// deliveries as one ticking every cycle — skipped cycles must be
    /// provable no-ops. The conservative default, `Some(now)`, claims
    /// activity every cycle and therefore disables skipping.
    fn next_activity(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// Resets traffic state to construction time: in-flight messages,
    /// arbitration/round-robin positions, statistics, and accumulated
    /// dynamic energy are cleared. Topology and derived latency/energy
    /// models persist, which is what makes resetting much cheaper than
    /// rebuilding.
    fn reset(&mut self);

    /// Uncontended one-way transit in cycles (used by the simulator to
    /// charge coherence control messages without modelling their full
    /// transport).
    fn oneway_latency_hint(&self) -> u64;

    /// Dynamic energy consumed so far.
    fn dynamic_energy(&self) -> Joules;

    /// Leakage power of the powered portion of the interconnect.
    fn leakage_power(&self) -> Watts;

    /// Traffic statistics so far.
    fn stats(&self) -> InterconnectStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_handles_empty() {
        let s = InterconnectStats::default();
        assert_eq!(s.mean_request_latency(), 0.0);
    }

    #[test]
    fn stats_mean_is_total_over_count() {
        let s = InterconnectStats {
            requests: 4,
            responses: 4,
            total_request_latency: 40,
            max_request_latency: 15,
        };
        assert_eq!(s.mean_request_latency(), 10.0);
    }
}
