//! # mot3d-mot — the reconfigurable circuit-switched 3-D Mesh-of-Tree
//!
//! This crate implements the primary contribution of *"A Power-Efficient
//! 3-D On-Chip Interconnect for Multi-Core Accelerators with Stacked L2
//! Cache"* (Kang et al., DATE 2016): a circuit-switched Mesh-of-Tree
//! interconnect between a multi-core cluster and its stacked L2 banks,
//! made **reconfigurable** by a modified routing switch so that cores,
//! banks, and the interconnect circuits serving them can be power-gated.
//!
//! * [`topology`] — the MoT structure: routing trees (one per core) and
//!   arbitration trees (one per bank), Fig. 2(a);
//! * [`switch`] — the modified routing switch with its Fig. 3(b) control
//!   truth table, and round-robin arbitration cells;
//! * [`power_state`] — `Full` / `PC16-MB8` / `PC4-MB32` / `PC4-MB8`;
//! * [`reconfig`] — which switches fold or gate for a state, and the
//!   induced balanced bank remap (Fig. 4);
//! * [`latency`] — Elmore-based derivation of Table I's 12/9/9/7-cycle
//!   L2 latencies from the Fig. 5 wire geometry;
//! * [`energy`] — per-transaction dynamic energy and gateable leakage;
//! * [`fabric`] — a structural switch-instance model cross-validating the
//!   control plane against the arithmetic remap;
//! * [`network`] — the cycle-accurate non-blocking network model;
//! * [`traits`] — the [`traits::Interconnect`] contract shared with the
//!   packet-switched baselines in `mot3d-noc`.
//!
//! # Quick example
//!
//! ```
//! use mot3d_mot::network::MotNetwork;
//! use mot3d_mot::power_state::PowerState;
//! use mot3d_mot::traits::Interconnect;
//!
//! // Full connection: Table I's 12-cycle L2 round trip.
//! let full = MotNetwork::date16(PowerState::full())?;
//! assert_eq!(full.latency().round_trip(), 12);
//!
//! // Gating 12 cores and 24 banks shortens the active wires: 7 cycles.
//! let gated = MotNetwork::date16(PowerState::pc4_mb8())?;
//! assert_eq!(gated.latency().round_trip(), 7);
//! assert!(gated.leakage_power() < full.leakage_power());
//! # Ok::<(), mot3d_mot::MotError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;

pub mod energy;
pub mod fabric;
pub mod latency;
pub mod network;
pub mod power_state;
pub mod reconfig;
pub mod switch;
pub mod topology;
pub mod traits;

pub use error::MotError;
pub use network::MotNetwork;
pub use power_state::PowerState;
