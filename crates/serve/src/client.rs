//! The `mot3d submit` side: send one request, relay the stream — and
//! retry it when the connection dies under the submission.
//!
//! Resubmission is **idempotent**: every point the server completed on
//! an earlier attempt replays from its result cache, so the retried
//! stream is byte-identical to what an uninterrupted submission would
//! have produced. [`submit_with_retry`] buffers each attempt and only
//! copies the *successful* attempt to the caller's writer, so a stream
//! that dies halfway never leaves half-written output behind.

use crate::exec::PlanOutcome;
use crate::protocol::{self, PlanRequest};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How [`submit_with_retry`] reacts to a dead connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (`0` = a single attempt).
    pub retries: u32,
    /// Delay before the first retry; doubles each further retry
    /// (exponential backoff).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// No retries — [`submit`] semantics.
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff: Duration::from_millis(200),
        }
    }
}

/// Whether a failed attempt is worth retrying: connection-shaped
/// errors are; a server-side rejection (`InvalidInput`) never is —
/// the request would just be rejected again.
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// What one completed submission reported: the outcome counters plus,
/// for a `"trace": true` submission, the server-side directory its
/// per-point trace files landed in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReport {
    /// The summary line's submission counters.
    pub outcome: PlanOutcome,
    /// The summary line's `"trace_dir"`, when the submission was traced.
    pub trace_dir: Option<String>,
}

/// Submits `request` to the server at `addr`, copying the header and
/// every record line (newline included) to `out` as they arrive. The
/// terminal summary line is consumed, not copied — `out` ends up with
/// exactly the bytes `mot3d sweep --json` would have written.
///
/// # Errors
///
/// Fails on connection errors, a server-reported `{"error": ...}` line
/// (as `InvalidInput`), or a stream that ends without a summary.
pub fn submit(addr: &str, request: &PlanRequest, out: &mut impl Write) -> io::Result<PlanOutcome> {
    submit_report(addr, request, out).map(|r| r.outcome)
}

/// [`submit`], also returning the summary's trace directory (set for
/// `"trace": true` submissions).
///
/// # Errors
///
/// As [`submit`].
pub fn submit_report(
    addr: &str,
    request: &PlanRequest,
    out: &mut impl Write,
) -> io::Result<SubmitReport> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{}", request.to_line())?;
    writer.flush()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        match protocol::parse_summary(&line) {
            Ok(None) => {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
            }
            Ok(Some(outcome)) => {
                out.flush()?;
                return Ok(SubmitReport {
                    outcome,
                    trace_dir: protocol::summary_trace_dir(&line),
                });
            }
            Err(msg) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("server rejected the submission: {msg}"),
                ));
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "server closed the connection before the summary line",
    ))
}

/// [`submit`] with resubmission-on-disconnect: up to `policy.retries`
/// extra attempts with exponential backoff, each buffered so `out`
/// receives only the one complete, successful stream. Completed points
/// replay from the server's cache, so the result is byte-identical to
/// an uninterrupted run.
///
/// # Errors
///
/// Fails with the last attempt's error once the policy is exhausted,
/// or immediately on a non-retryable error (a server rejection).
pub fn submit_with_retry(
    addr: &str,
    request: &PlanRequest,
    out: &mut impl Write,
    policy: RetryPolicy,
) -> io::Result<PlanOutcome> {
    submit_report_with_retry(addr, request, out, policy).map(|r| r.outcome)
}

/// [`submit_with_retry`], also returning the summary's trace directory
/// (set for `"trace": true` submissions).
///
/// # Errors
///
/// As [`submit_with_retry`].
pub fn submit_report_with_retry(
    addr: &str,
    request: &PlanRequest,
    out: &mut impl Write,
    policy: RetryPolicy,
) -> io::Result<SubmitReport> {
    let mut delay = policy.backoff;
    let mut attempt = 0u32;
    loop {
        let mut buffered: Vec<u8> = Vec::new();
        match submit_report(addr, request, &mut buffered) {
            Ok(report) => {
                out.write_all(&buffered)?;
                out.flush()?;
                return Ok(report);
            }
            Err(e) if retryable(&e) && attempt < policy.retries => {
                attempt += 1;
                eprintln!(
                    "mot3d submit: attempt {attempt} failed ({e}); retrying in {} ms",
                    delay.as_millis()
                );
                std::thread::sleep(delay);
                delay = delay.checked_mul(2).unwrap_or(delay);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Asks the server at `addr` for a graceful shutdown: stop accepting,
/// drain in-flight submissions, flush the store, exit 0. Returns once
/// the server has *acknowledged* the request (the drain itself may
/// outlive this call).
///
/// # Errors
///
/// Fails on connection errors or a missing/garbled acknowledgement.
pub fn shutdown(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{}", protocol::SHUTDOWN_LINE)?;
    writer.flush()?;
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack)?;
    if protocol::is_shutdown(ack.trim_end_matches(['\n', '\r'])) {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("server did not acknowledge the shutdown: {ack:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_are_not_retryable_but_disconnects_are() {
        assert!(!retryable(&io::Error::new(
            io::ErrorKind::InvalidInput,
            "x"
        )));
        assert!(retryable(&io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "x"
        )));
        assert!(retryable(&io::Error::new(
            io::ErrorKind::ConnectionReset,
            "x"
        )));
        assert!(retryable(&io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "x"
        )));
    }

    #[test]
    fn default_policy_is_single_shot() {
        let p = RetryPolicy::default();
        assert_eq!(p.retries, 0);
        assert!(p.backoff > Duration::ZERO);
    }
}
