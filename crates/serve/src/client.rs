//! The `mot3d submit` side: send one request, relay the stream.

use crate::exec::PlanOutcome;
use crate::protocol::{self, PlanRequest};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Submits `request` to the server at `addr`, copying the header and
/// every record line (newline included) to `out` as they arrive. The
/// terminal summary line is consumed, not copied — `out` ends up with
/// exactly the bytes `mot3d sweep --json` would have written.
///
/// # Errors
///
/// Fails on connection errors, a server-reported `{"error": ...}` line
/// (as `InvalidInput`), or a stream that ends without a summary.
pub fn submit(addr: &str, request: &PlanRequest, out: &mut impl Write) -> io::Result<PlanOutcome> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{}", request.to_line())?;
    writer.flush()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        match protocol::parse_summary(&line) {
            Ok(None) => {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
            }
            Ok(Some(outcome)) => {
                out.flush()?;
                return Ok(outcome);
            }
            Err(msg) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("server rejected the submission: {msg}"),
                ));
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "server closed the connection before the summary line",
    ))
}
