//! # mot3d-serve — sweep service with a content-addressed result cache
//!
//! The ROADMAP's serving story: PRs 5–6 made every sweep point a pure,
//! deterministic function `RunPoint -> RunRecord`, which means repeated
//! points are pure waste. This crate adds the two layers that exploit
//! that purity:
//!
//! * a **persistent result store** ([`store`]) on disk, keyed by a
//!   content hash of the canonicalised run point plus a code/config
//!   fingerprint ([`codec`]) — a hit replays the stored metrics
//!   byte-identically to a fresh run;
//! * a **long-running TCP service** ([`server`]) accepting
//!   `ExperimentPlan` submissions over a line-delimited JSON protocol
//!   ([`protocol`]), deduping identical in-flight points across
//!   concurrent clients ([`exec`]) and executing misses on the bench
//!   crate's worker pool; [`client`] is the `mot3d submit` side.
//!
//! The unified `mot3d` binary lives in this crate: `serve`/`submit`
//! dispatch here ([`cli`]), every other subcommand falls through to
//! [`mot3d_bench::cli`].
//!
//! ## Protocol (one JSON document per line)
//!
//! ```text
//! client → {"submit": "sweep", "bench": "fft", "scale": "tiny"}
//! server → {"plan": "sweep", "points": 1, "scale": 0.004, "seed": 7, "schema": 1}
//! server → {"index": 0, "workload": "fft", ...}            (per record)
//! server → {"done": true, "points": 1, "hits": 0, ...}     (summary)
//! ```
//!
//! The header and record lines are exactly the bytes `mot3d sweep
//! --json` writes for the same plan, so offline and served streams can
//! be compared byte for byte (CI does).
//!
//! ## Failure semantics
//!
//! A failing point becomes a typed `{"failed": true, ...}` record in
//! the stream, never a dropped connection; failed points are never
//! cached, so a retry re-executes them. A submission owner that dies
//! mid-point *poisons* its flight and the first waiter takes over the
//! re-run ([`exec`]); `{"shutdown": true}` drains the server
//! gracefully; [`fault`] injects deterministic failures for the chaos
//! tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod client;
pub mod codec;
pub mod exec;
pub mod fault;
pub mod json;
pub mod protocol;
pub mod server;
pub mod store;
pub mod sync;

pub use client::RetryPolicy;
pub use codec::{cache_key, CacheKey, Fingerprint};
pub use exec::{CachedExecutor, PlanOutcome, PointOutcome, MAX_ATTEMPTS};
pub use fault::{FaultPlan, FaultSite, Faults};
pub use protocol::PlanRequest;
pub use server::{serve, BoundServer, ServerConfig};
pub use store::{ResultStore, StoreStats};
