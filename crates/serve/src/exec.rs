//! Cache-backed plan execution with cross-client in-flight dedupe.
//!
//! A [`CachedExecutor`] owns the [`ResultStore`] plus an *in-flight
//! table*: when several clients submit overlapping plans concurrently,
//! the first claimant of a point becomes its **owner** and simulates
//! it; everyone else **waits** on the owner's [`Flight`] and receives a
//! clone of the result. Each physical point is therefore simulated at
//! most once per process lifetime — and at most once ever, once the
//! store holds it.
//!
//! [`CachedExecutor::run_plan`] streams records **in expansion order**
//! while misses execute concurrently on the bench worker pool, exactly
//! like `ExperimentPlan::run_with` does for uncached runs.

use crate::codec::{cache_key, CacheKey, Fingerprint};
use crate::store::{ResultStore, StoreStats};
use mot3d_bench::plan::{ExperimentPlan, RunPoint, RunRecord};
use mot3d_bench::pool;
use mot3d_phys::fnv::FnvHashMap;
use mot3d_sim::{run_spec, Metrics};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A point being simulated right now; waiters block on the condvar.
#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<Metrics>>,
    ready: Condvar,
}

impl Flight {
    fn fulfill(&self, metrics: Metrics) {
        let mut slot = self.slot.lock().expect("flight lock not poisoned");
        *slot = Some(metrics);
        self.ready.notify_all();
    }

    fn wait(&self) -> Metrics {
        let mut slot = self.slot.lock().expect("flight lock not poisoned");
        loop {
            if let Some(metrics) = slot.as_ref() {
                return metrics.clone();
            }
            slot = self.ready.wait(slot).expect("flight lock not poisoned");
        }
    }
}

/// How one point of a submission was satisfied.
enum Slot {
    /// Served from the persistent store.
    Cached(Box<Metrics>),
    /// This submission owns the simulation.
    Own(Arc<Flight>),
    /// Another in-flight submission owns it; wait for its result.
    Wait(Arc<Flight>),
}

/// Per-submission outcome counters (the wire summary reports these
/// alongside the store's process-lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanOutcome {
    /// Points the plan expanded to.
    pub points: u64,
    /// Points served straight from the persistent store.
    pub hits: u64,
    /// Points deduped against another client's in-flight simulation.
    pub waited: u64,
    /// Points this submission simulated.
    pub executed: u64,
}

/// The serving core: persistent store + in-flight dedupe + worker-pool
/// execution. One per server process, shared by connection threads.
#[derive(Debug)]
pub struct CachedExecutor {
    store: Mutex<ResultStore>,
    fingerprint: Fingerprint,
    inflight: Mutex<FnvHashMap<CacheKey, Arc<Flight>>>,
    threads: Option<usize>,
    pool_capacity: Option<usize>,
    executed_total: AtomicU64,
}

impl CachedExecutor {
    /// An executor over `store` keyed under `fingerprint`.
    ///
    /// `threads` pins the worker count per submission (default: the
    /// pool's own resolution); `pool_capacity` bounds every worker's
    /// thread-local [`mot3d_sim::ClusterPool`] — a long-running server
    /// otherwise accumulates one cached cluster per distinct
    /// configuration it ever simulates.
    pub fn new(
        store: ResultStore,
        fingerprint: Fingerprint,
        threads: Option<usize>,
        pool_capacity: Option<usize>,
    ) -> Self {
        CachedExecutor {
            store: Mutex::new(store),
            fingerprint,
            inflight: Mutex::new(FnvHashMap::default()),
            threads,
            pool_capacity,
            executed_total: AtomicU64::new(0),
        }
    }

    /// Total simulations this process has executed (misses only —
    /// cache hits and deduped waits don't count).
    pub fn executed_total(&self) -> u64 {
        self.executed_total.load(Ordering::Relaxed)
    }

    /// The store's hit/miss/insert counters.
    pub fn store_stats(&self) -> StoreStats {
        self.store.lock().expect("store lock not poisoned").stats()
    }

    /// The executor's fingerprint.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Claims every point of a submission: a store probe under the
    /// in-flight lock, so a point can never be double-owned and a
    /// just-finished flight is always found in the store.
    fn claim(&self, points: &[RunPoint], keys: &[CacheKey]) -> io::Result<Vec<Slot>> {
        let mut slots = Vec::with_capacity(points.len());
        for key in keys {
            let mut inflight = self.inflight.lock().expect("inflight lock not poisoned");
            if let Some(flight) = inflight.get(key) {
                slots.push(Slot::Wait(Arc::clone(flight)));
                continue;
            }
            let cached = self
                .store
                .lock()
                .expect("store lock not poisoned")
                .get(*key)?;
            match cached {
                Some(metrics) => slots.push(Slot::Cached(Box::new(metrics))),
                None => {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(*key, Arc::clone(&flight));
                    slots.push(Slot::Own(flight));
                }
            }
        }
        Ok(slots)
    }

    /// Executes `plan` against the cache and streams every record — in
    /// expansion order, as soon as it is available — to `on_record`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the plan fails its own `check`, the
    /// first store I/O error, or the first `on_record` error (remaining
    /// simulations still complete and are cached).
    ///
    /// # Panics
    ///
    /// Panics if the simulator rejects a point `check` cannot see
    /// (none are known today) — mirroring `ExperimentPlan::run_with`.
    pub fn run_plan(
        &self,
        plan: &ExperimentPlan,
        mut on_record: impl FnMut(&RunRecord) -> io::Result<()>,
    ) -> io::Result<PlanOutcome> {
        if let Err(msg) = plan.check() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
        }
        let points = plan.points();
        let keys: Vec<CacheKey> = points
            .iter()
            .map(|p| cache_key(&self.fingerprint, p))
            .collect();
        let slots = self.claim(&points, &keys)?;

        let mut outcome = PlanOutcome {
            points: points.len() as u64,
            ..PlanOutcome::default()
        };
        let mut owned: Vec<usize> = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Slot::Cached(_) => outcome.hits += 1,
                Slot::Wait(_) => outcome.waited += 1,
                Slot::Own(_) => {
                    outcome.executed += 1;
                    owned.push(i);
                }
            }
        }

        let store_err: Mutex<Option<io::Error>> = Mutex::new(None);
        let mut emit_err: Option<io::Error> = None;
        std::thread::scope(|scope| {
            if !owned.is_empty() {
                let threads = self
                    .threads
                    .unwrap_or_else(|| pool::worker_threads(owned.len()));
                let owned = &owned;
                let points = &points;
                let keys = &keys;
                let slots = &slots;
                let store_err = &store_err;
                scope.spawn(move || {
                    pool::parallel_map_streamed_on(
                        threads,
                        owned.len(),
                        |j| {
                            if let Some(cap) = self.pool_capacity {
                                mot3d_sim::set_local_pool_capacity(Some(cap));
                            }
                            let p = &points[owned[j]];
                            run_spec(&p.spec, &p.config)
                                .unwrap_or_else(|e| panic!("{}: {e}", p.label()))
                        },
                        |j, metrics| {
                            let i = owned[j];
                            self.executed_total.fetch_add(1, Ordering::Relaxed);
                            self.settle(keys[i], metrics, store_err);
                            if let Slot::Own(flight) = &slots[i] {
                                flight.fulfill(metrics.clone());
                            }
                        },
                    );
                });
            }
            // Stream in expansion order while the pool works: each slot
            // is either ready or will be fulfilled by an owner (ours on
            // the pool above, or another client's).
            for (i, slot) in slots.iter().enumerate() {
                let metrics = match slot {
                    Slot::Cached(metrics) => (**metrics).clone(),
                    Slot::Own(flight) | Slot::Wait(flight) => flight.wait(),
                };
                if emit_err.is_some() {
                    continue; // keep draining so owned work still caches
                }
                let record = RunRecord::new(points[i].clone(), metrics);
                if let Err(e) = on_record(&record) {
                    emit_err = Some(e);
                }
            }
        });
        if let Some(e) = emit_err {
            return Err(e);
        }
        if let Some(e) = store_err.into_inner().expect("store-err lock not poisoned") {
            return Err(e);
        }
        Ok(outcome)
    }

    /// Publishes a finished simulation: store first, then drop the
    /// in-flight entry — both under the in-flight lock, so a concurrent
    /// [`CachedExecutor::claim`] sees either the flight or the stored
    /// result, never neither.
    fn settle(&self, key: CacheKey, metrics: &Metrics, store_err: &Mutex<Option<io::Error>>) {
        let mut inflight = self.inflight.lock().expect("inflight lock not poisoned");
        let put = self
            .store
            .lock()
            .expect("store lock not poisoned")
            .put(key, metrics);
        if let Err(e) = put {
            let mut slot = store_err.lock().expect("store-err lock not poisoned");
            slot.get_or_insert(e);
        }
        inflight.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot3d_bench::ExperimentScale;
    use std::path::PathBuf;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mot3d-exec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::new("exec")
            .page_policies([false, true])
            .scale(ExperimentScale::tiny())
    }

    #[test]
    fn second_submission_is_fully_cached_and_runs_nothing() {
        let dir = scratch_dir("rerun");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(2),
            None,
        );
        let plan = tiny_plan();
        let mut first = Vec::new();
        let cold = exec
            .run_plan(&plan, |r| {
                first.push(mot3d_bench::sink::record_json_line(r));
                Ok(())
            })
            .unwrap();
        assert_eq!(cold.executed, cold.points);
        assert_eq!(cold.hits, 0);
        let mut second = Vec::new();
        let warm = exec
            .run_plan(&plan, |r| {
                second.push(mot3d_bench::sink::record_json_line(r));
                Ok(())
            })
            .unwrap();
        assert_eq!(warm.hits, warm.points, "hit counter equals point count");
        assert_eq!(warm.executed, 0, "zero simulations on the second pass");
        assert_eq!(first, second, "replay is byte-identical");
        assert_eq!(exec.executed_total(), cold.points);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_overlapping_plans_simulate_shared_points_once() {
        let dir = scratch_dir("overlap");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(2),
            None,
        );
        let plan = tiny_plan(); // both clients submit the same points
        let (a, b) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| {
                let mut lines = Vec::new();
                let out = exec
                    .run_plan(&plan, |r| {
                        lines.push(mot3d_bench::sink::record_json_line(r));
                        Ok(())
                    })
                    .unwrap();
                (out, lines)
            });
            let hb = scope.spawn(|| {
                let mut lines = Vec::new();
                let out = exec
                    .run_plan(&plan, |r| {
                        lines.push(mot3d_bench::sink::record_json_line(r));
                        Ok(())
                    })
                    .unwrap();
                (out, lines)
            });
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(a.1, b.1, "both clients see identical streams");
        assert_eq!(
            exec.executed_total(),
            a.0.points,
            "each shared point simulated exactly once across both clients"
        );
        assert_eq!(
            a.0.executed + b.0.executed + a.0.waited + b.0.waited + a.0.hits + b.0.hits,
            2 * a.0.points,
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn emit_errors_do_not_poison_the_cache() {
        let dir = scratch_dir("emit-err");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(1),
            Some(2),
        );
        let plan = tiny_plan();
        let err = exec
            .run_plan(&plan, |_| Err(io::Error::other("client hung up")))
            .expect_err("emit error must surface");
        assert_eq!(err.to_string(), "client hung up");
        // The simulations still completed and were cached.
        let warm = exec.run_plan(&plan, |_| Ok(())).unwrap();
        assert_eq!(warm.hits, warm.points);
        assert_eq!(warm.executed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_plans_are_rejected_up_front() {
        let dir = scratch_dir("invalid");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(1),
            None,
        );
        let empty = ExperimentPlan::new("empty").splash([]);
        let err = exec.run_plan(&empty, |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(exec.executed_total(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
