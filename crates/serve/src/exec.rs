//! Cache-backed plan execution with cross-client in-flight dedupe and
//! per-point fault tolerance.
//!
//! A [`CachedExecutor`] owns the [`ResultStore`] plus an *in-flight
//! table*: when several clients submit overlapping plans concurrently,
//! the first claimant of a point becomes its **owner** and simulates
//! it; everyone else **waits** on the owner's [`Flight`] and receives a
//! clone of the result. Each physical point is therefore simulated at
//! most once per process lifetime — and at most once ever, once the
//! store holds it.
//!
//! [`CachedExecutor::run_plan`] streams [`PointOutcome`]s **in
//! expansion order** while misses execute concurrently on the bench
//! worker pool, exactly like `ExperimentPlan::run_with` does for
//! uncached runs.
//!
//! ## Failure semantics
//!
//! A long-running service degrades **per point**, never per process:
//!
//! * A simulator error does not panic the pool. The owner **poisons**
//!   its flight with the error; the first thread to observe the poison
//!   (a waiter, or the owner's own streaming loop) atomically **takes
//!   the flight over** — `Poisoned → Pending` under the lock, so
//!   exactly one thread re-runs the point — up to [`MAX_ATTEMPTS`]
//!   total executions. A flight that exhausts its attempts turns
//!   terminally `Failed`: every waiter receives the typed
//!   [`PointOutcome::Failed`], and the key leaves the in-flight table
//!   so a *later* submission may try again. Failed points are never
//!   cached.
//! * An owner that **panics** mid-simulation is caught by a drop guard
//!   that poisons the flight, so waiters take over instead of blocking
//!   forever on a flight nobody will fulfill.
//! * A store write error is logged and the result served **uncached**
//!   — a full disk must not fail a simulation that already succeeded.
//! * Locks recover from `std::sync` poisoning ([`crate::sync`]): every
//!   critical section here keeps its state consistent, so a panicking
//!   holder must not cascade into every other connection thread.

use crate::codec::{cache_key, CacheKey, Fingerprint};
use crate::fault::{FaultSite, Faults};
use crate::store::{ResultStore, StoreStats};
use crate::sync::{lock_recover, wait_recover};
use mot3d_bench::plan::{ExperimentPlan, RunPoint, RunRecord};
use mot3d_bench::pool;
use mot3d_phys::fnv::FnvHashMap;
use mot3d_sim::{run_spec, Metrics, SimError};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Executions of one point before its flight fails terminally (the
/// initial owner run plus takeover re-runs).
pub const MAX_ATTEMPTS: u32 = 3;

/// Where a [`Flight`] stands.
#[derive(Debug, Default)]
enum FlightState {
    /// Someone owns the simulation and is running it.
    #[default]
    Pending,
    /// The simulation finished; the metrics are ready to clone.
    /// (Boxed: `Metrics` dwarfs the other variants.)
    Done(Box<Metrics>),
    /// The last execution attempt failed (or its owner died). The
    /// first observer takes the flight over and re-runs the point.
    Poisoned {
        /// The last attempt's error.
        error: String,
        /// Executions so far.
        attempts: u32,
    },
    /// Terminally failed after [`MAX_ATTEMPTS`] executions.
    Failed(String),
}

/// A point being simulated right now; waiters block on the condvar.
#[derive(Debug, Default)]
struct Flight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

/// What [`Flight::wait_or_take`] observed.
enum Waited {
    /// The flight finished; here is its result.
    Done(Box<Metrics>),
    /// The flight failed terminally; the caller must
    /// [`CachedExecutor::abandon`] the key and emit a failed outcome.
    Failed(String),
    /// The flight was poisoned and *this* caller now owns it: re-run
    /// the point (this is execution attempt `attempts + 1`).
    TakeOver {
        /// Executions before this takeover.
        attempts: u32,
    },
}

impl Flight {
    fn fulfill(&self, metrics: Metrics) {
        *lock_recover(&self.state) = FlightState::Done(Box::new(metrics));
        self.ready.notify_all();
    }

    /// Records a failed execution attempt (`attempts` executions so
    /// far) and wakes everyone so one of them takes the flight over.
    fn poison(&self, error: String, attempts: u32) {
        *lock_recover(&self.state) = FlightState::Poisoned { error, attempts };
        self.ready.notify_all();
    }

    /// Blocks until the flight resolves — or *this* caller becomes the
    /// one that must resolve it. The `Poisoned → Pending` transition
    /// happens under the state lock, so exactly one observer of a
    /// poisoning re-runs the point.
    fn wait_or_take(&self) -> Waited {
        let mut state = lock_recover(&self.state);
        loop {
            match &*state {
                FlightState::Done(metrics) => return Waited::Done(metrics.clone()),
                FlightState::Failed(error) => return Waited::Failed(error.clone()),
                FlightState::Poisoned { error, attempts } => {
                    if *attempts >= MAX_ATTEMPTS {
                        let error = error.clone();
                        *state = FlightState::Failed(error.clone());
                        self.ready.notify_all();
                        return Waited::Failed(error);
                    }
                    let attempts = *attempts;
                    *state = FlightState::Pending;
                    return Waited::TakeOver { attempts };
                }
                FlightState::Pending => state = wait_recover(&self.ready, state),
            }
        }
    }
}

/// Poisons the flight if dropped while armed — the execution-attempt
/// panic net: if `run_spec` (or an injected fault path) panics, waiters
/// find `Poisoned` and take over instead of blocking forever.
struct PoisonOnDrop<'a> {
    flight: &'a Flight,
    attempts: u32,
    armed: bool,
}

impl Drop for PoisonOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flight
                .poison("point owner panicked".to_string(), self.attempts);
        }
    }
}

/// How one point of a submission was satisfied.
enum Slot {
    /// Served from the persistent store.
    Cached(Box<Metrics>),
    /// This submission owns the simulation.
    Own(Arc<Flight>),
    /// Another in-flight submission owns it; wait for its result.
    Wait(Arc<Flight>),
}

/// One point's result on the stream: a record, or a typed failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point simulated (or replayed from the cache) fine.
    /// (Boxed: a `RunRecord` dwarfs the failure variant.)
    Record(Box<RunRecord>),
    /// The point failed terminally after bounded attempts. It was not
    /// cached and does not abort the rest of the plan.
    Failed {
        /// The point's human-readable label.
        label: String,
        /// The last attempt's error.
        error: String,
    },
}

/// Per-submission outcome counters (the wire summary reports these
/// alongside the store's process-lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanOutcome {
    /// Points the plan expanded to.
    pub points: u64,
    /// Points served straight from the persistent store.
    pub hits: u64,
    /// Points deduped against another client's in-flight simulation.
    pub waited: u64,
    /// Execution attempts this submission made (initial owned runs plus
    /// takeover re-runs).
    pub executed: u64,
    /// Points that failed terminally (streamed as failure records).
    pub failed: u64,
}

/// The serving core: persistent store + in-flight dedupe + worker-pool
/// execution. One per server process, shared by connection threads.
#[derive(Debug)]
pub struct CachedExecutor {
    store: Mutex<ResultStore>,
    fingerprint: Fingerprint,
    inflight: Mutex<FnvHashMap<CacheKey, Arc<Flight>>>,
    threads: Option<usize>,
    pool_capacity: Option<usize>,
    executed_total: AtomicU64,
    faults: Faults,
}

impl CachedExecutor {
    /// An executor over `store` keyed under `fingerprint`.
    ///
    /// `threads` pins the worker count per submission (default: the
    /// pool's own resolution); `pool_capacity` bounds every worker's
    /// thread-local [`mot3d_sim::ClusterPool`] — a long-running server
    /// otherwise accumulates one cached cluster per distinct
    /// configuration it ever simulates.
    pub fn new(
        store: ResultStore,
        fingerprint: Fingerprint,
        threads: Option<usize>,
        pool_capacity: Option<usize>,
    ) -> Self {
        CachedExecutor {
            store: Mutex::new(store),
            fingerprint,
            inflight: Mutex::new(FnvHashMap::default()),
            threads,
            pool_capacity,
            executed_total: AtomicU64::new(0),
            faults: Faults::none(),
        }
    }

    /// Attaches a fault-injection plan ([`Faults::none`] by default).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// The attached fault-injection plan (shared, cheaply cloneable).
    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// Total execution attempts this process has made (cache hits and
    /// deduped waits don't count; failed attempts do).
    pub fn executed_total(&self) -> u64 {
        self.executed_total.load(Ordering::Relaxed)
    }

    /// The store's hit/miss/insert counters.
    pub fn store_stats(&self) -> StoreStats {
        lock_recover(&self.store).stats()
    }

    /// The result store's directory. Traced submissions write their
    /// per-point timeline files under `<store_dir>/traces/`.
    pub fn store_dir(&self) -> std::path::PathBuf {
        lock_recover(&self.store).dir().to_path_buf()
    }

    /// Flushes the store's buffered writers (graceful-shutdown drain).
    pub fn flush_store(&self) {
        if let Err(e) = lock_recover(&self.store).flush() {
            eprintln!("mot3d serve: store flush failed: {e}");
        }
    }

    /// The executor's fingerprint.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Claims every point of a submission: a store probe under the
    /// in-flight lock, so a point can never be double-owned and a
    /// just-finished flight is always found in the store.
    fn claim(&self, points: &[RunPoint], keys: &[CacheKey]) -> io::Result<Vec<Slot>> {
        let mut slots = Vec::with_capacity(points.len());
        for key in keys {
            let mut inflight = lock_recover(&self.inflight);
            if let Some(flight) = inflight.get(key) {
                slots.push(Slot::Wait(Arc::clone(flight)));
                continue;
            }
            let cached = lock_recover(&self.store).get(*key)?;
            match cached {
                Some(metrics) => slots.push(Slot::Cached(Box::new(metrics))),
                None => {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(*key, Arc::clone(&flight));
                    slots.push(Slot::Own(flight));
                }
            }
        }
        Ok(slots)
    }

    /// One execution attempt (number `attempt`, counting from 1) of
    /// `point`, guarded so a panicking simulator poisons `flight`
    /// instead of stranding its waiters.
    fn attempt(&self, point: &RunPoint, flight: &Flight, attempt: u32) -> Result<Metrics, String> {
        if let Some(cap) = self.pool_capacity {
            mot3d_sim::set_local_pool_capacity(Some(cap));
        }
        self.executed_total.fetch_add(1, Ordering::Relaxed);
        let mut guard = PoisonOnDrop {
            flight,
            attempts: attempt,
            armed: true,
        };
        let result = if self.faults.should_fail(FaultSite::PointRun) {
            Err(SimError::Injected(format!("point run {}", point.label())))
        } else {
            run_spec(&point.spec, &point.config)
        };
        guard.armed = false;
        result.map_err(|e| format!("{}: {e}", point.label()))
    }

    /// Executes `plan` against the cache and streams every point's
    /// [`PointOutcome`] — in expansion order, as soon as it is
    /// available — to `on_outcome`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the plan fails its own `check`, a
    /// store *read* error during claiming, or the first `on_outcome`
    /// error (remaining simulations still complete and are cached). A
    /// failing **point** is not an error: it streams as
    /// [`PointOutcome::Failed`] and counts in [`PlanOutcome::failed`].
    pub fn run_plan(
        &self,
        plan: &ExperimentPlan,
        mut on_outcome: impl FnMut(&PointOutcome) -> io::Result<()>,
    ) -> io::Result<PlanOutcome> {
        if let Err(msg) = plan.check() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
        }
        let points = plan.points();
        let keys: Vec<CacheKey> = points
            .iter()
            .map(|p| cache_key(&self.fingerprint, p))
            .collect();
        let slots = self.claim(&points, &keys)?;

        let mut outcome = PlanOutcome {
            points: points.len() as u64,
            ..PlanOutcome::default()
        };
        let mut owned: Vec<(usize, Arc<Flight>)> = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Slot::Cached(_) => outcome.hits += 1,
                Slot::Wait(_) => outcome.waited += 1,
                Slot::Own(flight) => {
                    outcome.executed += 1;
                    owned.push((i, Arc::clone(flight)));
                }
            }
        }

        let mut emit_err: Option<io::Error> = None;
        std::thread::scope(|scope| {
            if !owned.is_empty() {
                let threads = self
                    .threads
                    .unwrap_or_else(|| pool::worker_threads(owned.len()));
                let owned = &owned;
                let points = &points;
                let keys = &keys;
                scope.spawn(move || {
                    pool::parallel_map_streamed_on(
                        threads,
                        owned.len(),
                        |j| {
                            let (i, flight) = &owned[j];
                            match self.attempt(&points[*i], flight, 1) {
                                Ok(metrics) => {
                                    self.settle(keys[*i], &metrics);
                                    flight.fulfill(metrics);
                                }
                                Err(error) => flight.poison(error, 1),
                            }
                        },
                        |_, ()| {},
                    );
                });
            }
            // Stream in expansion order while the pool works: each slot
            // is either ready, will resolve under an owner (ours on the
            // pool above, or another client's), or — after a poisoning
            // — is taken over and re-run right here.
            for (i, slot) in slots.iter().enumerate() {
                let point_outcome = match slot {
                    Slot::Cached(metrics) => PointOutcome::Record(Box::new(RunRecord::new(
                        points[i].clone(),
                        (**metrics).clone(),
                    ))),
                    Slot::Own(flight) | Slot::Wait(flight) => loop {
                        match flight.wait_or_take() {
                            Waited::Done(metrics) => {
                                break PointOutcome::Record(Box::new(RunRecord::new(
                                    points[i].clone(),
                                    *metrics,
                                )));
                            }
                            Waited::Failed(error) => {
                                self.abandon(keys[i], flight);
                                outcome.failed += 1;
                                break PointOutcome::Failed {
                                    label: points[i].label(),
                                    error,
                                };
                            }
                            Waited::TakeOver { attempts } => {
                                outcome.executed += 1;
                                match self.attempt(&points[i], flight, attempts + 1) {
                                    Ok(metrics) => {
                                        self.settle(keys[i], &metrics);
                                        flight.fulfill(metrics);
                                    }
                                    Err(error) => flight.poison(error, attempts + 1),
                                }
                                // Loop: observe the state we just set
                                // (or whatever a racer set since).
                            }
                        }
                    },
                };
                if emit_err.is_some() {
                    continue; // keep draining so owned work still caches
                }
                if let Err(e) = on_outcome(&point_outcome) {
                    emit_err = Some(e);
                }
            }
        });
        if let Some(e) = emit_err {
            return Err(e);
        }
        Ok(outcome)
    }

    /// Publishes a finished simulation: store first, then drop the
    /// in-flight entry — both under the in-flight lock, so a concurrent
    /// [`CachedExecutor::claim`] sees either the flight or the stored
    /// result, never neither. A store write error is logged and the
    /// result served uncached — it must not fail a simulation that
    /// already succeeded.
    fn settle(&self, key: CacheKey, metrics: &Metrics) {
        let mut inflight = lock_recover(&self.inflight);
        if let Err(e) = lock_recover(&self.store).put(key, metrics) {
            eprintln!("mot3d serve: store write failed (result served uncached): {e}");
        }
        inflight.remove(&key);
    }

    /// Drops a terminally-failed flight from the in-flight table — iff
    /// the entry still maps to *this* flight — so a later submission
    /// may retry the point from scratch.
    fn abandon(&self, key: CacheKey, flight: &Arc<Flight>) {
        let mut inflight = lock_recover(&self.inflight);
        if inflight.get(&key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            inflight.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use mot3d_bench::ExperimentScale;
    use std::path::PathBuf;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mot3d-exec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::new("exec")
            .page_policies([false, true])
            .scale(ExperimentScale::tiny())
    }

    fn record_lines(exec: &CachedExecutor, plan: &ExperimentPlan) -> (PlanOutcome, Vec<String>) {
        let mut lines = Vec::new();
        let outcome = exec
            .run_plan(plan, |po| {
                lines.push(match po {
                    PointOutcome::Record(r) => mot3d_bench::sink::record_json_line(r),
                    PointOutcome::Failed { label, error } => format!("FAILED {label}: {error}"),
                });
                Ok(())
            })
            .unwrap();
        (outcome, lines)
    }

    #[test]
    fn second_submission_is_fully_cached_and_runs_nothing() {
        let dir = scratch_dir("rerun");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(2),
            None,
        );
        let plan = tiny_plan();
        let (cold, first) = record_lines(&exec, &plan);
        assert_eq!(cold.executed, cold.points);
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.failed, 0);
        let (warm, second) = record_lines(&exec, &plan);
        assert_eq!(warm.hits, warm.points, "hit counter equals point count");
        assert_eq!(warm.executed, 0, "zero simulations on the second pass");
        assert_eq!(first, second, "replay is byte-identical");
        assert_eq!(exec.executed_total(), cold.points);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_overlapping_plans_simulate_shared_points_once() {
        let dir = scratch_dir("overlap");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(2),
            None,
        );
        let plan = tiny_plan(); // both clients submit the same points
        let (a, b) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| record_lines(&exec, &plan));
            let hb = scope.spawn(|| record_lines(&exec, &plan));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(a.1, b.1, "both clients see identical streams");
        assert_eq!(
            exec.executed_total(),
            a.0.points,
            "each shared point simulated exactly once across both clients"
        );
        assert_eq!(
            a.0.executed + b.0.executed + a.0.waited + b.0.waited + a.0.hits + b.0.hits,
            2 * a.0.points,
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn emit_errors_do_not_poison_the_cache() {
        let dir = scratch_dir("emit-err");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(1),
            Some(2),
        );
        let plan = tiny_plan();
        let err = exec
            .run_plan(&plan, |_| Err(io::Error::other("client hung up")))
            .expect_err("emit error must surface");
        assert_eq!(err.to_string(), "client hung up");
        // The simulations still completed and were cached.
        let warm = exec.run_plan(&plan, |_| Ok(())).unwrap();
        assert_eq!(warm.hits, warm.points);
        assert_eq!(warm.executed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_plans_are_rejected_up_front() {
        let dir = scratch_dir("invalid");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(1),
            None,
        );
        let empty = ExperimentPlan::new("empty").splash([]);
        let err = exec.run_plan(&empty, |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(exec.executed_total(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_injected_point_failure_is_taken_over_and_recovered() {
        let dir = scratch_dir("takeover");
        let mut exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(1),
            None,
        );
        // The very first execution fails; the streaming loop takes the
        // poisoned flight over and the re-run succeeds.
        exec.set_faults(Faults::plan(FaultPlan::new().fail(FaultSite::PointRun, 0)));
        let plan = tiny_plan();
        let (out, lines) = record_lines(&exec, &plan);
        assert_eq!(out.failed, 0, "the takeover recovered the point");
        assert_eq!(
            out.executed,
            out.points + 1,
            "exactly one extra execution attempt"
        );
        assert_eq!(exec.executed_total(), out.points + 1);
        assert!(lines.iter().all(|l| !l.starts_with("FAILED")));
        // Everything (including the recovered point) was cached.
        let (warm, warm_lines) = record_lines(&exec, &plan);
        assert_eq!(warm.hits, warm.points);
        assert_eq!(lines, warm_lines, "recovered stream replays identically");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_attempts_fail_typed_and_stay_uncached() {
        let dir = scratch_dir("exhaust");
        let mut exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(1),
            None,
        );
        let plan = tiny_plan();
        let n = plan.len() as u64;
        // Fail every attempt the first submission can possibly make.
        let mut fault = FaultPlan::new();
        for i in 0..n * u64::from(MAX_ATTEMPTS) {
            fault = fault.fail(FaultSite::PointRun, i);
        }
        exec.set_faults(Faults::plan(fault));
        let (out, lines) = record_lines(&exec, &plan);
        assert_eq!(out.failed, out.points, "every point failed typed");
        assert_eq!(
            out.executed,
            n * u64::from(MAX_ATTEMPTS),
            "bounded attempts: exactly MAX_ATTEMPTS executions per point"
        );
        assert!(lines.iter().all(|l| l.starts_with("FAILED")));
        assert!(
            lines.iter().all(|l| l.contains("injected fault")),
            "{lines:?}"
        );
        // Nothing was cached, and the keys left the in-flight table:
        // a later submission retries from scratch and succeeds.
        let (retry, retry_lines) = record_lines(&exec, &plan);
        assert_eq!(retry.failed, 0);
        assert_eq!(retry.hits, 0, "failed points were never cached");
        assert_eq!(retry.executed, retry.points);
        assert!(retry_lines.iter().all(|l| !l.starts_with("FAILED")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_write_faults_serve_uncached_but_do_not_fail_the_plan() {
        let dir = scratch_dir("store-fault");
        let exec = CachedExecutor::new(
            ResultStore::open(&dir).unwrap(),
            Fingerprint::current(),
            Some(1),
            None,
        );
        let plan = tiny_plan();
        let n = plan.len() as u64;
        let mut fault = FaultPlan::new();
        for i in 0..n {
            fault = fault.fail(FaultSite::StoreWrite, i);
        }
        {
            let mut store = lock_recover(&exec.store);
            store.set_faults(Faults::plan(fault));
        }
        let (out, lines) = record_lines(&exec, &plan);
        assert_eq!(out.failed, 0, "store faults never fail the stream");
        assert_eq!(out.executed, out.points);
        assert_eq!(lock_recover(&exec.store).len(), 0, "nothing was cached");
        // The next submission re-executes (no cache) — byte-identically.
        let (again, lines2) = record_lines(&exec, &plan);
        assert_eq!(again.executed, again.points);
        assert_eq!(lines, lines2, "uncached replay is byte-identical");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
