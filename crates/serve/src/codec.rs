//! Content addressing and the exact metrics codec.
//!
//! **Cache key.** A [`CacheKey`] is a 128-bit content hash of the
//! *canonicalised* run point — every axis spelled in its
//! [`mot3d_bench::axes`] canonical token, every workload-spec and
//! config scalar rendered exactly (floats as `to_bits`) — prefixed by a
//! [`Fingerprint`] of the code that would produce the result. Two
//! plans that expand to the same physical run share a key regardless of
//! plan name, axis spelling, or position in the grid (`RunPoint::index`
//! is deliberately excluded); any change to a knob that could change
//! the simulation lands in the key material and produces a different
//! key.
//!
//! **Metrics codec.** The store persists [`Metrics`], not whole
//! records: the caller reconstructs `RunRecord::new(point, metrics)`
//! with the point it already holds, which recomputes the derived
//! scalars the same deterministic way a fresh run does — so a cache hit
//! serialises byte-identically to the run that populated it. All `f64`
//! fields travel as `to_bits()` integers; nothing takes a lossy float
//! detour.

use crate::json::{self, json_string, JsonValue};
use mot3d_bench::axes;
use mot3d_bench::plan::RunPoint;
use mot3d_mot::traits::InterconnectStats;
use mot3d_phys::fnv::{fnv1a64_fold, FNV_OFFSET};
use mot3d_phys::power::EnergyBreakdown;
use mot3d_phys::units::{Joules, Seconds};
use mot3d_sim::metrics::LatencyStats;
use mot3d_sim::Metrics;
use std::fmt::Write as _;

/// Record-stream schema version (mirrors the `"schema"` field of the
/// JSON-lines plan header). Bumping it invalidates every cached result.
pub const RECORD_SCHEMA: u32 = 1;

/// Identifies the code+configuration that produced a cached result:
/// crate version plus the record schema. Results cached under one
/// fingerprint are invisible under any other, so a rebuilt simulator
/// never replays stale numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint(String);

impl Fingerprint {
    /// The running build's fingerprint.
    pub fn current() -> Self {
        Fingerprint(format!(
            "mot3d/{} schema={RECORD_SCHEMA}",
            env!("CARGO_PKG_VERSION")
        ))
    }

    /// An arbitrary fingerprint — for tests that prove a fingerprint
    /// change changes every key.
    pub fn custom(tag: impl Into<String>) -> Self {
        Fingerprint(tag.into())
    }

    /// The fingerprint text (stored in the cache directory's meta file).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A 128-bit content hash: two independent FNV-1a folds (the second
/// salted) over the canonical key material. Collision-resistant enough
/// for a result cache whose worst failure is a spurious hit among a few
/// million entries, with zero dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

/// Salt for the second fold, so the two 64-bit halves are independent.
const KEY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

impl CacheKey {
    /// The key's canonical 32-hex-digit spelling (stable across
    /// processes and platforms; used in segment and index lines).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses [`CacheKey::to_hex`] output.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey { hi, lo })
    }
}

/// Renders the canonical key material for one run point under one
/// fingerprint. Public so tests can pin its exact layout — the layout
/// IS the cache-compatibility contract: any change orphans every
/// existing cache entry.
pub fn key_material(fingerprint: &Fingerprint, point: &RunPoint) -> String {
    let spec = &point.spec;
    let config = &point.config;
    let mut m = String::with_capacity(256);
    let _ = write!(m, "fp={};", fingerprint.as_str());
    let _ = write!(m, "workload={};", point.workload);
    let _ = write!(m, "ic={};", axes::interconnect_token(config.interconnect));
    let _ = write!(m, "ps={};", axes::power_state_token(config.power_state));
    let _ = write!(m, "dram={};", axes::dram_token(config.dram));
    let _ = write!(m, "page={};", axes::page_token(config.dram_open_page));
    let _ = write!(m, "seed={};", config.seed);
    let _ = write!(m, "repeat={};", point.repeat);
    let _ = write!(m, "golden={};", config.check_golden);
    let _ = write!(m, "missbus={};", config.miss_bus_occupancy);
    let _ = write!(m, "maxcyc={};", config.max_cycles);
    let _ = write!(
        m,
        "spec={},{:x},{:x},{:x},{:x},{},{:x},{:x},{:x},{},{},{:x},{}",
        spec.name,
        spec.serial_fraction.to_bits(),
        spec.imbalance.to_bits(),
        spec.mem_ratio.to_bits(),
        spec.write_fraction.to_bits(),
        spec.working_set_bytes,
        spec.shared_fraction.to_bits(),
        spec.locality.to_bits(),
        spec.hot_fraction.to_bits(),
        spec.phases,
        spec.total_ops,
        spec.ifetch_miss_rate.to_bits(),
        spec.base_addr,
    );
    m
}

/// The content-addressed key of one run point under one fingerprint.
pub fn cache_key(fingerprint: &Fingerprint, point: &RunPoint) -> CacheKey {
    let material = key_material(fingerprint, point);
    let bytes = material.as_bytes();
    let hi = fnv1a64_fold(FNV_OFFSET, bytes);
    let lo = fnv1a64_fold(FNV_OFFSET ^ KEY_SALT, bytes);
    CacheKey { hi, lo }
}

// ------------------------------------------------------ metrics codec

fn write_latency(out: &mut String, stats: &LatencyStats) {
    let _ = write!(
        out,
        "{{\"count\":{},\"total\":{},\"max\":{},\"buckets\":[",
        stats.count(),
        stats.total(),
        stats.max()
    );
    for (i, b) in stats.buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Serialises metrics as one JSON line (no trailing newline). Floats
/// are stored as `to_bits()` integers — see the module docs.
pub fn metrics_to_json(m: &Metrics) -> String {
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"label\":{},\"cycles\":{},\"exec_time_bits\":{},\"instructions\":{},\
         \"l1_hits\":{},\"l1_misses\":{},\"l2_hits\":{},\"l2_misses\":{},\"dram_accesses\":{},\
         \"invalidations\":{},\"recalls\":{},\"l2_latency\":",
        json_string(&m.label),
        m.cycles,
        m.exec_time.value().to_bits(),
        m.instructions,
        m.l1_hits,
        m.l1_misses,
        m.l2_hits,
        m.l2_misses,
        m.dram_accesses,
        m.invalidations,
        m.recalls,
    );
    write_latency(&mut s, &m.l2_latency);
    let ic = &m.interconnect;
    let _ = write!(
        s,
        ",\"interconnect\":{{\"requests\":{},\"responses\":{},\
         \"total_request_latency\":{},\"max_request_latency\":{}}}",
        ic.requests, ic.responses, ic.total_request_latency, ic.max_request_latency,
    );
    let e = &m.energy;
    let _ = write!(
        s,
        ",\"energy_bits\":{{\"cores\":{},\"l1\":{},\"l2\":{},\"interconnect\":{},\"dram\":{}}}}}",
        e.cores.value().to_bits(),
        e.l1.value().to_bits(),
        e.l2.value().to_bits(),
        e.interconnect.value().to_bits(),
        e.dram.value().to_bits(),
    );
    s
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-u64 field {key:?}"))
}

fn field_joules(v: &JsonValue, key: &str) -> Result<Joules, String> {
    Ok(Joules::new(f64::from_bits(field_u64(v, key)?)))
}

/// Parses [`metrics_to_json`] output back into bit-identical metrics.
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn metrics_from_json(line: &str) -> Result<Metrics, String> {
    metrics_from_value(&json::parse(line)?)
}

/// [`metrics_from_json`] on an already-parsed value (the store wraps
/// metrics in an envelope object and hands the inner value here).
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn metrics_from_value(v: &JsonValue) -> Result<Metrics, String> {
    let label = v
        .get("label")
        .and_then(JsonValue::as_str)
        .ok_or("missing label")?
        .to_string();
    let lat = v.get("l2_latency").ok_or("missing l2_latency")?;
    let bucket_values = lat
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or("missing l2_latency.buckets")?;
    let mut buckets = [0u64; 7];
    if bucket_values.len() != buckets.len() {
        return Err(format!("expected 7 buckets, got {}", bucket_values.len()));
    }
    for (slot, b) in buckets.iter_mut().zip(bucket_values) {
        *slot = b.as_u64().ok_or("non-u64 bucket")?;
    }
    let l2_latency = LatencyStats::from_raw(
        field_u64(lat, "count")?,
        field_u64(lat, "total")?,
        field_u64(lat, "max")?,
        buckets,
    );
    let ic = v.get("interconnect").ok_or("missing interconnect")?;
    let interconnect = InterconnectStats {
        requests: field_u64(ic, "requests")?,
        responses: field_u64(ic, "responses")?,
        total_request_latency: field_u64(ic, "total_request_latency")?,
        max_request_latency: field_u64(ic, "max_request_latency")?,
    };
    let e = v.get("energy_bits").ok_or("missing energy_bits")?;
    let energy = EnergyBreakdown {
        cores: field_joules(e, "cores")?,
        l1: field_joules(e, "l1")?,
        l2: field_joules(e, "l2")?,
        interconnect: field_joules(e, "interconnect")?,
        dram: field_joules(e, "dram")?,
    };
    Ok(Metrics {
        label,
        cycles: field_u64(v, "cycles")?,
        exec_time: Seconds::new(f64::from_bits(field_u64(v, "exec_time_bits")?)),
        instructions: field_u64(v, "instructions")?,
        l1_hits: field_u64(v, "l1_hits")?,
        l1_misses: field_u64(v, "l1_misses")?,
        l2_hits: field_u64(v, "l2_hits")?,
        l2_misses: field_u64(v, "l2_misses")?,
        dram_accesses: field_u64(v, "dram_accesses")?,
        l2_latency,
        invalidations: field_u64(v, "invalidations")?,
        recalls: field_u64(v, "recalls")?,
        interconnect,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot3d_bench::plan::ExperimentPlan;
    use mot3d_bench::ExperimentScale;

    fn tiny_record() -> mot3d_bench::plan::RunRecord {
        ExperimentPlan::new("codec")
            .scale(ExperimentScale::tiny())
            .threads(1)
            .run()
            .unwrap()
            .remove(0)
    }

    #[test]
    fn metrics_round_trip_is_bit_identical() {
        let record = tiny_record();
        let line = metrics_to_json(&record.metrics);
        let back = metrics_from_json(&line).unwrap();
        assert_eq!(back, record.metrics);
        assert_eq!(
            back.exec_time.value().to_bits(),
            record.metrics.exec_time.value().to_bits(),
            "exact bits, not approximate equality"
        );
        assert_eq!(metrics_to_json(&back), line, "re-encoding is stable");
    }

    #[test]
    fn replayed_record_serialises_byte_identically() {
        let record = tiny_record();
        let replayed = mot3d_bench::plan::RunRecord::new(
            record.point.clone(),
            metrics_from_json(&metrics_to_json(&record.metrics)).unwrap(),
        );
        assert_eq!(
            mot3d_bench::sink::record_json_line(&replayed),
            mot3d_bench::sink::record_json_line(&record),
        );
    }

    #[test]
    fn hex_spelling_round_trips() {
        let record = tiny_record();
        let key = cache_key(&Fingerprint::current(), &record.point);
        let hex = key.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(CacheKey::from_hex(&hex), Some(key));
        assert_eq!(CacheKey::from_hex("feed"), None);
        assert_eq!(CacheKey::from_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn key_ignores_plan_position_but_sees_every_axis() {
        let fp = Fingerprint::current();
        let record = tiny_record();
        let mut moved = record.point.clone();
        moved.index += 17;
        assert_eq!(
            cache_key(&fp, &moved),
            cache_key(&fp, &record.point),
            "grid position must not partition the cache"
        );
        let mut reseeded = record.point.clone();
        reseeded.config.seed ^= 1;
        assert_ne!(cache_key(&fp, &reseeded), cache_key(&fp, &record.point));
        assert_ne!(
            cache_key(&Fingerprint::custom("other build"), &record.point),
            cache_key(&fp, &record.point),
        );
    }

    #[test]
    fn malformed_metrics_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"label\":\"x\"}",
            "not json",
            // cycles as a float: the exact-integer contract is load-bearing.
            "{\"label\":\"x\",\"cycles\":1.5}",
        ] {
            assert!(metrics_from_json(bad).is_err(), "{bad:?}");
        }
    }
}
