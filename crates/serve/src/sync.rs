//! Poison-recovering lock acquisition for the serving core.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while holding
//! the guard, and every subsequent `lock()` returns `Err` forever. The
//! PR-7 service treated that as unreachable (`.expect("lock not
//! poisoned")`), which turned one panicking connection thread into a
//! cascading abort of the whole server: the first waiter to touch the
//! poisoned mutex panicked too, and so on.
//!
//! A long-running service wants the opposite policy: **recover the
//! guard and keep serving**. That is sound here because every critical
//! section in this crate leaves its protected state consistent at all
//! times:
//!
//! * the in-flight table maps keys to flights — insert/remove are
//!   single operations, never a multi-step mutation;
//! * the result store appends whole lines and repairs torn tails at
//!   open, so an interrupted `put` at worst loses its in-memory index
//!   entry for a line that is re-indexed on the next open (and a
//!   re-`put` of the same key is idempotent);
//! * a flight's state is a single enum assignment, and a flight whose
//!   owner died without assigning one is *explicitly* poisoned by its
//!   drop guard so a waiter can take the point over.
//!
//! [`lock_recover`]/[`wait_recover`] encode that policy in one place so
//! the rest of the crate never spells `.lock().expect(...)` again (the
//! workspace no-panic lint now covers `crates/serve/src`).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar` with `guard`, recovering the reacquired guard if
/// another holder panicked while this thread slept.
pub fn wait_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let m = Mutex::new(7u32);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the mutex");
        }));
        assert!(poison.is_err());
        assert!(m.lock().is_err(), "the mutex really is poisoned");
        assert_eq!(*lock_recover(&m), 7, "the state is still reachable");
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }
}
