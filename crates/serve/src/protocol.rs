//! The line-delimited JSON wire protocol.
//!
//! One request line from the client, then a response stream from the
//! server:
//!
//! * a **header** line and one line per [`RunRecord`] — exactly the
//!   bytes `mot3d sweep --json` writes for the same plan
//!   ([`mot3d_bench::sink::JsonLinesSink`] serialises both), so served
//!   and offline streams compare byte for byte;
//! * zero or more **failure** lines — `{"failed": true, "label": ...,
//!   "error": ...}` for points that failed terminally (a healthy run
//!   has none, so byte-identity with offline output holds);
//! * one **summary** line — `{"done": true, ...}` with the submission's
//!   [`PlanOutcome`] counters and the store's lifetime totals, or
//!   `{"error": "..."}` if the submission was rejected.
//!
//! A client may also send the [`SHUTDOWN_LINE`] control request instead
//! of a submission: the server acknowledges with the same line, stops
//! accepting, drains in-flight submissions, flushes the store, and
//! exits 0.
//!
//! A request names the plan and, optionally, any sweep axis; absent
//! axes keep the [`ExperimentPlan::new`] defaults (all benchmarks, the
//! MoT 3-D interconnect, Full power, 200 ns DRAM, flat pages):
//!
//! ```text
//! {"submit": "sweep", "bench": "fft,radix", "interconnect": "all",
//!  "power_state": "full", "dram": "63ns", "page": "both",
//!  "repeat": 2, "scale": "tiny", "seed": 7}
//! ```
//!
//! Adding `"trace": true` attaches the timeline tracer: every point
//! runs fresh (bypassing the result cache), writes one
//! Perfetto-loadable file under the server's cache directory, and the
//! summary line carries the directory as `"trace_dir"`. The record
//! stream itself is unchanged — tracing is observation-only, so traced
//! records are bit-identical to cached/untraced ones.
//!
//! [`RunRecord`]: mot3d_bench::plan::RunRecord

use crate::exec::PlanOutcome;
use crate::json::{self, json_string, JsonValue};
use crate::store::StoreStats;
use mot3d_bench::axes;
use mot3d_bench::plan::ExperimentPlan;
use mot3d_bench::ExperimentScale;
use std::fmt::Write as _;

/// A parsed submission: the plan name plus optional axis selections,
/// kept as their raw comma-separated wire spellings so the request
/// round-trips verbatim ([`PlanRequest::to_line`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanRequest {
    /// Plan name, echoed in the response header (`"submit"`).
    pub name: String,
    /// Benchmark list (`"bench"`), e.g. `"fft,radix"` or `"all"`.
    pub bench: Option<String>,
    /// Interconnect list (`"interconnect"`).
    pub interconnect: Option<String>,
    /// Power-state list (`"power_state"`).
    pub power_state: Option<String>,
    /// DRAM list (`"dram"`).
    pub dram: Option<String>,
    /// Page-policy axis (`"page"`): `flat`, `open`, or `both`.
    pub page: Option<String>,
    /// Runs per grid cell (`"repeat"`).
    pub repeat: Option<u32>,
    /// Run-length scale (`"scale"`): a factor or `"tiny"`.
    pub scale: Option<String>,
    /// Workload seed override (`"seed"`).
    pub seed: Option<u64>,
    /// Attach the timeline tracer (`"trace": true`): every point runs
    /// fresh (bypassing the result cache — a cache hit has no timeline
    /// to write), one Perfetto-loadable file lands per point under the
    /// server's cache directory, and the summary line reports the
    /// directory as `"trace_dir"`.
    pub trace: bool,
}

impl PlanRequest {
    /// A request for `name` with every axis at its default.
    pub fn new(name: impl Into<String>) -> Self {
        PlanRequest {
            name: name.into(),
            ..PlanRequest::default()
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Describes the first malformed field: bad JSON, a missing
    /// `"submit"` key, or a wrong-typed member. Axis *values* are
    /// validated later, by [`PlanRequest::to_plan`].
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = json::parse(line)?;
        if !matches!(doc, JsonValue::Obj(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let name = doc
            .get("submit")
            .ok_or_else(|| "missing \"submit\" (the plan name)".to_string())?
            .as_str()
            .ok_or_else(|| "\"submit\" must be a string".to_string())?
            .to_string();
        let text = |key: &str| -> Result<Option<String>, String> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("{key:?} must be a string")),
            }
        };
        let scale = match doc.get("scale") {
            None | Some(JsonValue::Null) => None,
            // A bare factor is allowed alongside "tiny"-style strings.
            Some(JsonValue::Num(raw)) => Some(raw.clone()),
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| "\"scale\" must be a string or a number".to_string())?
                    .to_string(),
            ),
        };
        let u64_field = |key: &str| -> Result<Option<u64>, String> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("{key:?} must be an unsigned integer")),
            }
        };
        let repeat = match u64_field("repeat")? {
            None => None,
            Some(r) => Some(
                u32::try_from(r)
                    .ok()
                    .filter(|&r| r > 0)
                    .ok_or_else(|| "\"repeat\" must be a positive u32".to_string())?,
            ),
        };
        let trace = match doc.get("trace") {
            None | Some(JsonValue::Null) => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| "\"trace\" must be a boolean".to_string())?,
        };
        Ok(PlanRequest {
            name,
            bench: text("bench")?,
            interconnect: text("interconnect")?,
            power_state: text("power_state")?,
            dram: text("dram")?,
            page: text("page")?,
            repeat,
            scale,
            seed: u64_field("seed")?,
            trace,
        })
    }

    /// Serialises the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"submit\": {}", json_string(&self.name));
        for (key, value) in [
            ("bench", &self.bench),
            ("interconnect", &self.interconnect),
            ("power_state", &self.power_state),
            ("dram", &self.dram),
            ("page", &self.page),
        ] {
            if let Some(v) = value {
                let _ = write!(s, ", \"{key}\": {}", json_string(v));
            }
        }
        if let Some(r) = self.repeat {
            let _ = write!(s, ", \"repeat\": {r}");
        }
        if let Some(scale) = &self.scale {
            // Emit bare factors as numbers so they round-trip as sent.
            if scale.parse::<f64>().is_ok() {
                let _ = write!(s, ", \"scale\": {scale}");
            } else {
                let _ = write!(s, ", \"scale\": {}", json_string(scale));
            }
        }
        if let Some(seed) = self.seed {
            let _ = write!(s, ", \"seed\": {seed}");
        }
        if self.trace {
            s.push_str(", \"trace\": true");
        }
        s.push('}');
        s
    }

    /// The request's effective scale: the `"scale"` field (default
    /// 0.35) with the `"seed"` override applied — also what the
    /// server's response header reports.
    ///
    /// # Errors
    ///
    /// Describes a malformed `"scale"` value.
    pub fn resolved_scale(&self) -> Result<ExperimentScale, String> {
        let mut scale = match &self.scale {
            Some(raw) => ExperimentScale::parse(raw)?,
            None => ExperimentScale::default(),
        };
        if let Some(seed) = self.seed {
            scale.seed = seed;
        }
        Ok(scale)
    }

    /// Expands the request into an [`ExperimentPlan`], the same way
    /// `mot3d sweep` builds one from its axis flags.
    ///
    /// # Errors
    ///
    /// Describes the first invalid axis value or scale.
    pub fn to_plan(&self) -> Result<ExperimentPlan, String> {
        let scale = self.resolved_scale()?;
        let mut plan = ExperimentPlan::new(self.name.clone())
            .scale(scale)
            .repeats(self.repeat.unwrap_or(1));
        if let Some(list) = &self.bench {
            plan = plan.splash(axes::parse_benches(list)?);
        }
        if let Some(list) = &self.interconnect {
            plan = plan.interconnects(axes::parse_interconnects(list)?);
        }
        if let Some(list) = &self.power_state {
            plan = plan.power_states(axes::parse_power_states(list)?);
        }
        if let Some(list) = &self.dram {
            plan = plan.drams(axes::parse_drams(list)?);
        }
        if let Some(list) = &self.page {
            plan = plan.page_policies(axes::parse_pages(list)?);
        }
        Ok(plan)
    }
}

/// The terminal success line: submission counters plus the store's
/// process-lifetime totals (no trailing newline). A traced submission
/// also reports the server-side directory its trace files landed in.
pub fn summary_line(outcome: PlanOutcome, store: StoreStats, trace_dir: Option<&str>) -> String {
    let mut s = format!(
        "{{\"done\": true, \"points\": {}, \"hits\": {}, \"waited\": {}, \
         \"executed\": {}, \"failed\": {}, \"store_hits\": {}, \
         \"store_misses\": {}, \"store_inserts\": {}",
        outcome.points,
        outcome.hits,
        outcome.waited,
        outcome.executed,
        outcome.failed,
        store.hits,
        store.misses,
        store.inserts,
    );
    if let Some(dir) = trace_dir {
        let _ = write!(s, ", \"trace_dir\": {}", json_string(dir));
    }
    s.push('}');
    s
}

/// The `"trace_dir"` a summary line reports, if `line` is a summary of
/// a traced submission.
pub fn summary_trace_dir(line: &str) -> Option<String> {
    let doc = json::parse(line).ok()?;
    if doc.get("done").and_then(JsonValue::as_bool) != Some(true) {
        return None;
    }
    doc.get("trace_dir")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
}

/// The terminal failure line (no trailing newline).
pub fn error_line(message: &str) -> String {
    format!("{{\"error\": {}}}", json_string(message))
}

/// A per-point failure line (no trailing newline): the point completed
/// its bounded attempts and failed terminally; the stream continues.
pub fn failed_line(label: &str, error: &str) -> String {
    format!(
        "{{\"failed\": true, \"label\": {}, \"error\": {}}}",
        json_string(label),
        json_string(error)
    )
}

/// The graceful-shutdown control line — both the client's request and
/// the server's acknowledgement.
pub const SHUTDOWN_LINE: &str = "{\"shutdown\": true}";

/// Whether `line` is the shutdown control request/acknowledgement.
pub fn is_shutdown(line: &str) -> bool {
    json::parse(line)
        .ok()
        .is_some_and(|doc| doc.get("shutdown").and_then(JsonValue::as_bool) == Some(true))
}

/// Parses a summary line back into its counters, if `line` is one.
/// Returns `Ok(None)` for header/record/failure lines, `Err` for an
/// `{"error": ...}` rejection line.
pub fn parse_summary(line: &str) -> Result<Option<PlanOutcome>, String> {
    let Ok(doc) = json::parse(line) else {
        return Ok(None); // not a protocol line for us to interpret
    };
    // Per-point failure lines carry an "error" member too — classify
    // them (as pass-through stream lines) before the rejection check.
    if doc.get("failed").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(None);
    }
    if let Some(msg) = doc.get("error").and_then(JsonValue::as_str) {
        return Err(msg.to_string());
    }
    if doc.get("done").and_then(JsonValue::as_bool) != Some(true) {
        return Ok(None);
    }
    let field = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    Ok(Some(PlanOutcome {
        points: field("points"),
        hits: field("hits"),
        waited: field("waited"),
        executed: field("executed"),
        failed: field("failed"),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_spelling() {
        let req = PlanRequest {
            name: "sweep".to_string(),
            bench: Some("fft,radix".to_string()),
            interconnect: Some("all".to_string()),
            power_state: Some("pc4-mb8".to_string()),
            dram: Some("63ns".to_string()),
            page: Some("both".to_string()),
            repeat: Some(2),
            scale: Some("tiny".to_string()),
            seed: Some(7),
            trace: true,
        };
        assert!(req.to_line().ends_with(", \"trace\": true}"));
        assert_eq!(PlanRequest::parse(&req.to_line()).unwrap(), req);
        let bare = PlanRequest::new("sweep");
        assert_eq!(bare.to_line(), "{\"submit\": \"sweep\"}");
        assert_eq!(PlanRequest::parse(&bare.to_line()).unwrap(), bare);
    }

    #[test]
    fn numeric_scales_round_trip_as_numbers() {
        let req = PlanRequest {
            scale: Some("0.35".to_string()),
            ..PlanRequest::new("s")
        };
        assert!(
            req.to_line().contains("\"scale\": 0.35"),
            "{}",
            req.to_line()
        );
        assert_eq!(PlanRequest::parse(&req.to_line()).unwrap(), req);
    }

    #[test]
    fn to_plan_matches_the_sweep_cli_expansion() {
        let req = PlanRequest {
            bench: Some("fft".to_string()),
            dram: Some("all".to_string()),
            scale: Some("tiny".to_string()),
            repeat: Some(2),
            ..PlanRequest::new("sweep")
        };
        let plan = req.to_plan().unwrap();
        // 1 bench × 1 ic × 1 state × 3 drams × 1 page × 2 repeats.
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.name(), "sweep");
        let seeded = PlanRequest {
            seed: Some(99),
            ..req
        };
        assert_eq!(seeded.to_plan().unwrap().points()[0].config.seed, 99);
    }

    #[test]
    fn bad_requests_are_described() {
        for (line, needle) in [
            ("nope", "literal"),
            ("[1]", "object"),
            ("{\"bench\": \"fft\"}", "submit"),
            ("{\"submit\": 3}", "string"),
            ("{\"submit\": \"s\", \"repeat\": 0}", "positive"),
            ("{\"submit\": \"s\", \"repeat\": -1}", "unsigned"),
            ("{\"submit\": \"s\", \"seed\": \"x\"}", "unsigned"),
            ("{\"submit\": \"s\", \"bench\": 1}", "string"),
            ("{\"submit\": \"s\", \"trace\": 1}", "boolean"),
        ] {
            let err = PlanRequest::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
        let bad_axis = PlanRequest {
            bench: Some("nonesuch".to_string()),
            ..PlanRequest::new("s")
        };
        assert!(bad_axis.to_plan().is_err());
    }

    #[test]
    fn summaries_round_trip_and_classify_lines() {
        let outcome = PlanOutcome {
            points: 6,
            hits: 4,
            waited: 1,
            executed: 2,
            failed: 1,
        };
        let stats = StoreStats {
            hits: 10,
            misses: 2,
            inserts: 2,
        };
        let line = summary_line(outcome, stats, None);
        assert_eq!(parse_summary(&line).unwrap(), Some(outcome));
        assert_eq!(summary_trace_dir(&line), None);
        assert_eq!(parse_summary("{\"index\": 0}").unwrap(), None);
        assert_eq!(parse_summary("free text").unwrap(), None);
        assert_eq!(
            parse_summary(&error_line("boom")).unwrap_err(),
            "boom".to_string()
        );
    }

    #[test]
    fn traced_summaries_report_the_trace_dir() {
        let outcome = PlanOutcome {
            points: 2,
            executed: 2,
            ..PlanOutcome::default()
        };
        let stats = StoreStats::default();
        let line = summary_line(outcome, stats, Some("/tmp/cache/traces/sweep-0.002-1"));
        // The extra member must not confuse the counter parser...
        assert_eq!(parse_summary(&line).unwrap(), Some(outcome));
        // ...and is recoverable on its own.
        assert_eq!(
            summary_trace_dir(&line).as_deref(),
            Some("/tmp/cache/traces/sweep-0.002-1")
        );
        assert_eq!(summary_trace_dir("{\"index\": 0}"), None);
    }

    #[test]
    fn failure_lines_are_stream_lines_not_rejections() {
        let line = failed_line("fft @ mot3d", "injected fault: point run");
        // Despite the embedded "error" member, a per-point failure is a
        // pass-through stream line, not a server rejection.
        assert_eq!(parse_summary(&line).unwrap(), None);
        let doc = json::parse(&line).unwrap();
        assert_eq!(
            doc.get("label").and_then(JsonValue::as_str),
            Some("fft @ mot3d")
        );
        assert_eq!(
            doc.get("error").and_then(JsonValue::as_str),
            Some("injected fault: point run")
        );
    }

    #[test]
    fn shutdown_line_is_recognised() {
        assert!(is_shutdown(SHUTDOWN_LINE));
        assert!(!is_shutdown("{\"shutdown\": false}"));
        assert!(!is_shutdown("{\"submit\": \"sweep\"}"));
        assert!(!is_shutdown("not json"));
        assert_eq!(parse_summary(SHUTDOWN_LINE).unwrap(), None);
    }
}
