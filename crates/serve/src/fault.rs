//! Deterministic fault injection for the sweep service.
//!
//! A [`FaultPlan`] names, per fault **site**, the exact operation
//! indices that must fail: the 3rd store write, the 0th point
//! execution, the 5th record streamed onto a socket. Each site keeps
//! its own monotonic operation counter, so a plan is a *schedule*, not
//! a probability — the same plan against the same request sequence
//! injects the same faults, which is what lets the chaos suite pin
//! exact recovery behavior (a takeover happens exactly once, a retried
//! stream is byte-identical, …).
//!
//! Plans come from three constructors:
//!
//! * [`FaultPlan::new`] + [`FaultPlan::fail`] — targeted tests name
//!   individual indices;
//! * [`FaultPlan::parse`] — the `mot3d serve --fault
//!   point@0,store@3,drop@5` CLI spelling (CI chaos smoke);
//! * [`FaultPlan::from_seed`] — a seeded schedule derived with
//!   SplitMix64, so "any seed" chaos properties are replayable from the
//!   one `u64`.
//!
//! Production servers hold [`Faults::none`]: every injection check is a
//! single branch on an empty `Option`, touching no counters — the
//! harness costs nothing when off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where an injected fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A point execution on the worker pool (or a takeover re-run):
    /// `run_spec` is replaced by an injected simulator error.
    PointRun,
    /// A [`crate::store::ResultStore::put`]: the write fails with an
    /// I/O error before touching the segment file.
    StoreWrite,
    /// A record line streamed to a client: the connection is dropped
    /// mid-stream instead of writing the line.
    StreamWrite,
}

/// All fault sites, in schedule/report order.
pub const FAULT_SITES: [FaultSite; 3] = [
    FaultSite::PointRun,
    FaultSite::StoreWrite,
    FaultSite::StreamWrite,
];

/// One site's schedule: sorted fault indices plus the live op counter.
#[derive(Debug, Default)]
struct SiteSchedule {
    /// Sorted, deduplicated operation indices that must fail.
    indices: Vec<u64>,
    /// Operations seen so far at this site (process-wide).
    next_op: AtomicU64,
}

impl SiteSchedule {
    fn should_fail(&self) -> bool {
        let op = self.next_op.fetch_add(1, Ordering::Relaxed);
        self.indices.binary_search(&op).is_ok()
    }
}

/// A deterministic schedule of injected faults — see the module docs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    point_run: SiteSchedule,
    store_write: SiteSchedule,
    stream_write: SiteSchedule,
}

/// SplitMix64 step: the standard 64-bit mix, deterministic per state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no site ever fails until [`FaultPlan::fail`] adds
    /// indices).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn site(&self, site: FaultSite) -> &SiteSchedule {
        match site {
            FaultSite::PointRun => &self.point_run,
            FaultSite::StoreWrite => &self.store_write,
            FaultSite::StreamWrite => &self.stream_write,
        }
    }

    fn site_mut(&mut self, site: FaultSite) -> &mut SiteSchedule {
        match site {
            FaultSite::PointRun => &mut self.point_run,
            FaultSite::StoreWrite => &mut self.store_write,
            FaultSite::StreamWrite => &mut self.stream_write,
        }
    }

    /// Adds one failing operation index at `site` (builder style).
    #[must_use]
    pub fn fail(mut self, site: FaultSite, index: u64) -> Self {
        let s = self.site_mut(site);
        if let Err(pos) = s.indices.binary_search(&index) {
            s.indices.insert(pos, index);
        }
        self
    }

    /// A seeded schedule: up to `per_site` distinct fault indices below
    /// `horizon` at every site, derived from `seed` with SplitMix64.
    /// The same `(seed, horizon, per_site)` always yields the same
    /// schedule — chaos runs are replayable from the seed alone.
    pub fn from_seed(seed: u64, horizon: u64, per_site: usize) -> Self {
        let mut plan = FaultPlan::new();
        let horizon = horizon.max(1);
        let mut state = seed;
        for site in FAULT_SITES {
            for _ in 0..per_site {
                let index = splitmix64(&mut state) % horizon;
                plan = plan.fail(site, index);
            }
        }
        plan
    }

    /// Parses the CLI spelling: comma-separated `<site>@<index>` terms
    /// with sites `point`, `store`, and `drop`, e.g.
    /// `point@0,store@3,drop@5`.
    ///
    /// # Errors
    ///
    /// Describes the first malformed term.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for term in spec.split(',') {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            let (site, index) = term
                .split_once('@')
                .ok_or_else(|| format!("fault term {term:?} is not <site>@<index>"))?;
            let site = match site {
                "point" => FaultSite::PointRun,
                "store" => FaultSite::StoreWrite,
                "drop" => FaultSite::StreamWrite,
                other => {
                    return Err(format!(
                        "unknown fault site {other:?} (expected point, store, or drop)"
                    ))
                }
            };
            let index: u64 = index
                .parse()
                .map_err(|_| format!("fault index {index:?} is not an unsigned integer"))?;
            plan = plan.fail(site, index);
        }
        Ok(plan)
    }

    /// The sorted, deduplicated fault indices scheduled at `site`.
    pub fn schedule(&self, site: FaultSite) -> &[u64] {
        &self.site(site).indices
    }

    /// Consumes one operation at `site` and reports whether it was
    /// scheduled to fail. Counters are process-wide and monotonic; an
    /// index fires at most once.
    pub fn should_fail(&self, site: FaultSite) -> bool {
        self.site(site).should_fail()
    }

    /// Whether any site has at least one scheduled fault.
    pub fn is_empty(&self) -> bool {
        FAULT_SITES.iter().all(|&s| self.site(s).indices.is_empty())
    }
}

/// A shareable, possibly-absent fault plan. [`Faults::none`] is the
/// production value: checks short-circuit on the `None` without
/// touching any counter.
#[derive(Debug, Clone, Default)]
pub struct Faults(Option<Arc<FaultPlan>>);

impl Faults {
    /// No injection anywhere (the default).
    pub fn none() -> Self {
        Faults(None)
    }

    /// Injection driven by `plan`.
    pub fn plan(plan: FaultPlan) -> Self {
        Faults(Some(Arc::new(plan)))
    }

    /// Consumes one operation at `site`; true when it must fail.
    pub fn should_fail(&self, site: FaultSite) -> bool {
        match &self.0 {
            None => false,
            Some(plan) => plan.should_fail(site),
        }
    }

    /// Whether a plan is attached (the server banner mentions it so a
    /// chaos run is never mistaken for a healthy one).
    pub fn is_active(&self) -> bool {
        self.0.as_ref().is_some_and(|p| !p.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_fire_exactly_once_in_op_order() {
        let faults = Faults::plan(
            FaultPlan::new()
                .fail(FaultSite::StoreWrite, 1)
                .fail(FaultSite::StoreWrite, 3),
        );
        let fired: Vec<bool> = (0..6)
            .map(|_| faults.should_fail(FaultSite::StoreWrite))
            .collect();
        assert_eq!(fired, [false, true, false, true, false, false]);
        // Other sites keep independent counters.
        assert!(!faults.should_fail(FaultSite::PointRun));
    }

    #[test]
    fn parse_round_trips_the_cli_spelling() {
        let plan = FaultPlan::parse("point@0, store@3,drop@5,store@1").unwrap();
        assert_eq!(plan.schedule(FaultSite::PointRun), [0]);
        assert_eq!(plan.schedule(FaultSite::StoreWrite), [1, 3]);
        assert_eq!(plan.schedule(FaultSite::StreamWrite), [5]);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        for bad in ["point", "disk@1", "point@x", "point@-1"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::from_seed(42, 100, 4);
        let b = FaultPlan::from_seed(42, 100, 4);
        for site in FAULT_SITES {
            assert_eq!(a.schedule(site), b.schedule(site));
            assert!(a.schedule(site).len() <= 4);
            assert!(a.schedule(site).iter().all(|&i| i < 100));
            assert!(a.schedule(site).windows(2).all(|w| w[0] < w[1]));
        }
        let c = FaultPlan::from_seed(43, 100, 4);
        assert!(
            FAULT_SITES.iter().any(|&s| a.schedule(s) != c.schedule(s)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn none_is_inert() {
        let faults = Faults::none();
        assert!(!faults.is_active());
        assert!(!faults.should_fail(FaultSite::PointRun));
        assert!(!Faults::plan(FaultPlan::new()).is_active());
        assert!(Faults::plan(FaultPlan::new().fail(FaultSite::PointRun, 0)).is_active());
    }
}
